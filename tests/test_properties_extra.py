"""Additional property-based tests across subsystems (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.spaces import BoolParam, IntRange, ParameterSpace, PowerOfTwoRange
from repro.devices import ResourceVector
from repro.estimation.kernels import gaussian_kernel, squared_distances
from repro.estimation.nadaraya_watson import NadarayaWatson
from repro.moo.crossover import IntegerSBX
from repro.moo.mutation import GaussianIntegerMutation
from repro.moo.problem import IntegerProblem, Objective
from repro.util.rng import stable_hash_seed


# ---------------------------------------------------------------------------
# parameter spaces
# ---------------------------------------------------------------------------

@st.composite
def spaces(draw):
    n = draw(st.integers(1, 4))
    dims = []
    for i in range(n):
        kind = draw(st.sampled_from(["int", "pow2", "bool"]))
        if kind == "int":
            lo = draw(st.integers(-20, 50))
            hi = lo + draw(st.integers(0, 60))
            dims.append(IntRange(f"p{i}", lo, hi))
        elif kind == "pow2":
            lo = draw(st.integers(0, 10))
            hi = lo + draw(st.integers(0, 6))
            dims.append(PowerOfTwoRange(f"p{i}", lo, hi))
        else:
            dims.append(BoolParam(f"p{i}"))
    return ParameterSpace(dims)


@settings(max_examples=80, deadline=None)
@given(spaces(), st.randoms(use_true_random=False))
def test_space_encode_decode_roundtrip(space, rnd):
    encoded = np.array(
        [rnd.randint(d.low, d.high) for d in space.dimensions], dtype=np.int64
    )
    params = space.decode(encoded)
    back = space.encode(params)
    assert np.array_equal(back, encoded)


@settings(max_examples=60, deadline=None)
@given(spaces())
def test_space_cardinality_matches_enumeration(space):
    total = 1
    for d in space.dimensions:
        total *= len(d.values())
    assert space.cardinality() == total


@settings(max_examples=60, deadline=None)
@given(spaces(), st.randoms(use_true_random=False))
def test_decode_always_within_dimension_values(space, rnd):
    encoded = [rnd.randint(d.low - 5, d.high + 5) for d in space.dimensions]
    params = space.decode(encoded)  # clips out-of-range encodings
    for d in space.dimensions:
        assert params[d.name] in d.values()


# ---------------------------------------------------------------------------
# resource vectors
# ---------------------------------------------------------------------------

_counts = st.dictionaries(
    st.sampled_from(["LUT", "FF", "BRAM", "DSP", "CARRY"]),
    st.integers(0, 10**6),
    max_size=5,
)


@settings(max_examples=80, deadline=None)
@given(_counts, _counts)
def test_resource_vector_addition_commutes(a, b):
    va = ResourceVector.of(**a)
    vb = ResourceVector.of(**b)
    left = va + vb
    right = vb + va
    for kind in set(a) | set(b):
        assert left.get(kind) == right.get(kind) == va.get(kind) + vb.get(kind)


@settings(max_examples=60, deadline=None)
@given(_counts)
def test_resource_vector_zero_identity(a):
    v = ResourceVector.of(**a)
    assert (v + ResourceVector()).as_dict() == v.as_dict()


@settings(max_examples=60, deadline=None)
@given(_counts, st.floats(min_value=0, max_value=3, allow_nan=False))
def test_resource_vector_scaling_bounds(a, factor):
    v = ResourceVector.of(**a)
    scaled = v.scaled(factor)
    for kind, count in v:
        assert abs(scaled.get(kind) - count * factor) <= 0.5


# ---------------------------------------------------------------------------
# GA operators never leave the lattice
# ---------------------------------------------------------------------------

class _Box(IntegerProblem):
    def __init__(self, lows, highs):
        super().__init__(lows, highs, [Objective.minimize("f")])

    def evaluate(self, X):  # pragma: no cover - operators never call it
        return X[:, :1].astype(float)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(0, 1000),
    st.integers(2, 6),
    st.integers(4, 30),
)
def test_sbx_children_always_feasible(seed, n_var, n_pairs):
    rng = np.random.default_rng(seed)
    lows = rng.integers(-50, 0, n_var)
    highs = lows + rng.integers(1, 100, n_var)
    p = _Box(lows, highs)
    A = rng.integers(lows, highs + 1, (n_pairs, n_var))
    B = rng.integers(lows, highs + 1, (n_pairs, n_var))
    c1, c2 = IntegerSBX()(p, A, B, seed)
    for C in (c1, c2):
        assert np.all(C >= lows) and np.all(C <= highs)
        assert C.dtype == np.int64


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 1000), st.integers(1, 5))
def test_mutation_always_feasible(seed, n_var):
    rng = np.random.default_rng(seed)
    lows = rng.integers(-10, 0, n_var)
    highs = lows + rng.integers(1, 40, n_var)
    p = _Box(lows, highs)
    X = rng.integers(lows, highs + 1, (20, n_var))
    out = GaussianIntegerMutation(prob_mean=0.8)(p, X, seed)
    assert np.all(out >= lows) and np.all(out <= highs)


# ---------------------------------------------------------------------------
# estimation
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 100, allow_nan=False),
                  st.floats(-50, 50, allow_nan=False)),
        min_size=2, max_size=20, unique_by=lambda t: round(t[0], 6),
    ),
    st.floats(0.1, 50),
)
def test_nwm_prediction_within_training_hull(pairs, h):
    """Kernel-weighted averages can never leave [min(Y), max(Y)]."""
    X = np.array([[p[0]] for p in pairs])
    Y = np.array([[p[1]] for p in pairs])
    model = NadarayaWatson(bandwidth=h).fit(X, Y)
    for probe in (X.min() - 5, X.mean(), X.max() + 5):
        pred = model.predict(np.array([probe]))[0]
        assert Y.min() - 1e-6 <= pred <= Y.max() + 1e-6


@settings(max_examples=50, deadline=None)
@given(st.floats(0.01, 100), st.lists(st.floats(0, 1000, allow_nan=False),
                                      min_size=1, max_size=30))
def test_gaussian_kernel_bounded(h, dists):
    k = gaussian_kernel(np.asarray(dists), h)
    assert np.all(k >= 0)
    assert np.all(k <= 1.0 / np.sqrt(2 * np.pi) + 1e-12)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.tuples(st.floats(-100, 100, allow_nan=False),
                       st.floats(-100, 100, allow_nan=False)),
             min_size=1, max_size=15)
)
def test_squared_distances_nonnegative_and_symmetric(points):
    X = np.asarray(points)
    for row in X:
        d = squared_distances(row, X)
        assert np.all(d >= 0)
        assert d[np.all(X == row, axis=1)].min() == 0


# ---------------------------------------------------------------------------
# stable hashing
# ---------------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(
    st.recursive(
        st.one_of(st.integers(-10**6, 10**6), st.text(max_size=8),
                  st.booleans()),
        lambda inner: st.lists(inner, max_size=4),
        max_leaves=12,
    )
)
def test_stable_hash_deterministic(value):
    assert stable_hash_seed(value) == stable_hash_seed(value)
    assert 0 <= stable_hash_seed(value) < 2**63
