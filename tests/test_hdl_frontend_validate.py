"""Tests for frontend dispatch and the interface lint pass."""

import pytest

from repro.errors import (
    ModuleNotFoundInSource,
    UnknownLanguageError,
    ValidationError,
)
from repro.hdl.ast import HdlLanguage
from repro.hdl.frontend import SourceCollection, detect_language, parse_file, parse_source
from repro.hdl.validate import Severity, lint_module, validate_module

VHDL = "entity e is port (clk : in std_logic); end e;"
SV = "module m(input logic clk); endmodule"


class TestDetectLanguage:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("a.vhd", HdlLanguage.VHDL),
            ("a.vhdl", HdlLanguage.VHDL),
            ("a.v", HdlLanguage.VERILOG),
            ("a.sv", HdlLanguage.SYSTEMVERILOG),
            ("a.svh", HdlLanguage.SYSTEMVERILOG),
        ],
    )
    def test_by_extension(self, name, expected):
        assert detect_language(name) == expected

    def test_content_fallback_vhdl(self):
        assert detect_language("noext", VHDL) == HdlLanguage.VHDL

    def test_content_fallback_sv(self):
        assert detect_language("noext", SV) == HdlLanguage.SYSTEMVERILOG

    def test_content_fallback_plain_verilog(self):
        assert detect_language("x", "module m(a); input a; endmodule") == HdlLanguage.VERILOG

    def test_undetectable_raises(self):
        with pytest.raises(UnknownLanguageError):
            detect_language("mystery.txt", "int main() {}")


class TestParseFile:
    def test_reads_and_dispatches(self, tmp_path):
        path = tmp_path / "e.vhd"
        path.write_text(VHDL)
        unit = parse_file(path)
        assert unit.language == HdlLanguage.VHDL
        assert unit.module("e").name == "e"


class TestSourceCollection:
    def test_find_module_case_insensitive(self):
        coll = SourceCollection.from_sources([(SV, "systemverilog")])
        assert coll.find_module("M").name == "m"

    def test_missing_module_lists_available(self):
        coll = SourceCollection.from_sources([(SV, "systemverilog")])
        with pytest.raises(ModuleNotFoundInSource, match="available: m"):
            coll.find_module("ghost")

    def test_vhdl_library_from_directory(self, tmp_path):
        libdir = tmp_path / "mylib"
        libdir.mkdir()
        f = libdir / "e.vhd"
        f.write_text(VHDL)
        coll = SourceCollection()
        coll.add_file(f, root=tmp_path)
        assert coll.vhdl_library[str(f)] == "mylib"

    def test_vhdl_library_root_is_work(self, tmp_path):
        f = tmp_path / "e.vhd"
        f.write_text(VHDL)
        coll = SourceCollection()
        coll.add_file(f, root=tmp_path)
        assert coll.vhdl_library[str(f)] == "work"

    def test_compile_order_packages_first(self):
        pkg = "package p; localparam K = 1; endpackage"
        coll = SourceCollection.from_sources(
            [(SV, "systemverilog"), (pkg, "systemverilog")]
        )
        order = coll.compile_order()
        assert order[0].modules == ()  # the package file leads
        assert order[1].modules[0].name == "m"

    def test_languages_summary(self):
        coll = SourceCollection.from_sources(
            [(SV, "systemverilog"), (VHDL, "vhdl")]
        )
        assert coll.languages() == {HdlLanguage.SYSTEMVERILOG, HdlLanguage.VHDL}


class TestLint:
    def _module(self, src, lang="vhdl"):
        return parse_source(src, lang)[0]

    def test_clean_module_no_errors(self):
        m = self._module("entity e is port (clk : in std_logic); end e;")
        assert all(f.severity != Severity.ERROR for f in lint_module(m))

    def test_duplicate_port_e001(self):
        m = self._module("entity e is port (a : in std_logic; A : out std_logic); end e;")
        codes = [f.code for f in lint_module(m)]
        assert "E001" in codes

    def test_duplicate_parameter_e002(self):
        m = self._module(
            "module m #(parameter X = 1, parameter X = 2)(input wire clk); endmodule",
            "verilog",
        )
        assert "E002" in [f.code for f in lint_module(m)]

    def test_port_parameter_collision_e003(self):
        m = self._module(
            "module m #(parameter clk = 1)(input wire clk); endmodule", "verilog"
        )
        assert "E003" in [f.code for f in lint_module(m)]

    def test_unknown_width_reference_e004(self):
        m = self._module(
            "module m (input wire [GHOST-1:0] d, input wire clk); endmodule",
            "verilog",
        )
        assert "E004" in [f.code for f in lint_module(m)]

    def test_no_ports_warning(self):
        m = self._module("entity e is end e;")
        assert "W001" in [f.code for f in lint_module(m)]

    def test_no_clock_warning(self):
        m = self._module("entity e is port (d : in std_logic); end e;")
        assert "W002" in [f.code for f in lint_module(m)]

    def test_missing_default_warning(self):
        m = self._module(
            "entity e is generic (N : natural); port (clk : in std_logic); end e;"
        )
        assert "W003" in [f.code for f in lint_module(m)]

    def test_unknown_default_reference_e005(self):
        m = self._module(
            "module m #(parameter W = GHOST + 1)(input wire clk); endmodule",
            "verilog",
        )
        assert "E005" in [f.code for f in lint_module(m)]

    def test_default_referencing_declared_parameter_no_e005(self):
        m = self._module(
            "module m #(parameter A = 4, parameter B = A * 2)"
            "(input wire clk); endmodule",
            "verilog",
        )
        assert "E005" not in [f.code for f in lint_module(m)]

    def test_no_input_ports_warning_w004(self):
        m = self._module("module m(output wire q); endmodule", "verilog")
        assert "W004" in [f.code for f in lint_module(m)]

    def test_inout_only_module_no_w004(self):
        # inout carries input connectivity: a pad-only module is not
        # input-less.
        m = self._module("module m(inout wire pad); endmodule", "verilog")
        assert "W004" not in [f.code for f in lint_module(m)]

    def test_validate_raises_on_error(self):
        m = self._module("entity e is port (a : in std_logic; a : in std_logic); end e;")
        with pytest.raises(ValidationError, match="E001"):
            validate_module(m)

    def test_validate_returns_warnings(self):
        m = self._module("entity e is port (d : in std_logic); end e;")
        warnings = validate_module(m)
        assert any(w.code == "W002" for w in warnings)
