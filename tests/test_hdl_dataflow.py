"""Tests for the module-body scan and the parameter dependency graph."""

from __future__ import annotations

from repro.hdl.dataflow import (
    ParameterDependencyGraph,
    build_dependency_graph,
    scan_bodies,
    scan_for,
)
from repro.hdl.frontend import parse_source

VERILOG_BODY = """
module widget #(
    parameter DEPTH = 16,
    parameter WIDTH = 8,
    parameter USE_ECC = 0,
    parameter SPARE = 3,
    localparam ADDR = $clog2(DEPTH)
)(
    input  logic clk,
    input  logic [WIDTH-1:0] din,
    input  logic [ADDR-1:0] waddr,
    output logic [WIDTH-1:0] dout
);
    fifo #(.DEPTH(DEPTH), .W(WIDTH)) u_fifo (
        .clk(clk), .d(din), .q(dout)
    );
    if (USE_ECC) begin : gen_ecc
        ecc_unit u_ecc (.clk(clk), .d(din));
    end
    always_ff @(posedge clk) begin
        if (waddr == 0) dout <= din;
    end
endmodule
"""

VHDL_BODY = """
entity gadget is
  generic (
    DEPTH : natural := 16;
    MODE  : natural := 0;
    IDLE  : natural := 1
  );
  port (
    clk : in  bit;
    q   : out bit
  );
end entity;

architecture rtl of gadget is
begin
  gen_fast : if MODE > 0 generate
    u_core : entity work.core
      generic map (DEPTH => DEPTH * 2, LANES => 4)
      port map (clk => clk, q => q);
  end generate;
end architecture;
"""


class TestVerilogScan:
    def test_child_instance_bindings(self):
        scan = scan_bodies(VERILOG_BODY, "systemverilog")[0]
        named = {(b.target, b.generic): b.value.render()
                 for b in scan.generic_bindings}
        assert ("fifo", "DEPTH") in named
        assert ("fifo", "W") in named
        assert named[("fifo", "W")] == "WIDTH"

    def test_generate_condition_captured(self):
        scan = scan_bodies(VERILOG_BODY, "systemverilog")[0]
        rendered = [c.condition.render() for c in scan.generate_conditions]
        assert "USE_ECC" in rendered

    def test_body_idents_include_procedural_references(self):
        scan = scan_bodies(VERILOG_BODY, "systemverilog")[0]
        assert "waddr" in scan.body_idents

    def test_scan_for_is_case_insensitive(self):
        sources = ((VERILOG_BODY, "systemverilog"),)
        assert scan_for("WIDGET", sources) is not None
        assert scan_for("nonexistent", sources) is None


class TestVhdlScan:
    def test_generate_condition_and_generic_map(self):
        scan = scan_bodies(VHDL_BODY, "vhdl")[0]
        assert scan.module == "gadget"
        rendered = [c.condition.render() for c in scan.generate_conditions]
        assert any("MODE" in r for r in rendered)
        bindings = {(b.target, b.generic): b.value.render()
                    for b in scan.generic_bindings}
        assert ("core", "DEPTH") in bindings
        assert "DEPTH" in bindings[("core", "DEPTH")]


class TestDependencyGraph:
    def _graph(self) -> ParameterDependencyGraph:
        module = parse_source(VERILOG_BODY, "systemverilog")[0]
        return build_dependency_graph(
            module, sources=((VERILOG_BODY, "systemverilog"),)
        )

    def test_localparam_threads_flows_transitively(self):
        graph = self._graph()
        kinds = {s.kind for s in graph.flows("DEPTH")}
        # DEPTH -> ADDR (localparam) -> waddr port range, plus the child
        # generic binding .DEPTH(DEPTH).
        assert "port-range" in kinds
        assert "child-generic" in kinds

    def test_generate_sink(self):
        graph = self._graph()
        assert any(
            s.kind == "generate-if" for s in graph.flows("USE_ECC")
        )

    def test_dead_parameter_detected(self):
        graph = self._graph()
        assert graph.dead_parameters() == ("SPARE",)
        assert not graph.is_live("SPARE")
        assert "dead" in graph.describe("SPARE")

    def test_no_scan_means_no_dead_verdicts(self):
        module = parse_source(VERILOG_BODY, "systemverilog")[0]
        graph = ParameterDependencyGraph(module=module, scan=None)
        # Without a body scan, body-only parameters would look dead;
        # the graph refuses to guess.
        assert graph.dead_parameters() == ()

    def test_vhdl_graph(self):
        module = parse_source(VHDL_BODY, "vhdl")[0]
        graph = build_dependency_graph(
            module, sources=((VHDL_BODY, "vhdl"),)
        )
        assert any(s.kind == "generate-if" for s in graph.flows("MODE"))
        assert any(s.kind == "child-generic" for s in graph.flows("DEPTH"))
        assert "IDLE" in graph.dead_parameters()
