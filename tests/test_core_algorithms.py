"""Tests for DseSession's algorithm selection (nsga2 / mosa / exhaustive / auto)."""

import pytest

from repro.core import DseSession, MetricSpec, ParameterSpace
from repro.core.spaces import IntRange, PowerOfTwoRange
from repro.designs import get_design
from repro.moo.nds import non_dominated_mask

import numpy as np


def _session(**kw):
    design = get_design("corundum-cqm")
    return DseSession(
        design=design, part="XC7K70T",
        use_model=kw.pop("use_model", False), seed=kw.pop("seed", 8), **kw,
    )


class TestMosaSession:
    def test_mosa_explores(self):
        sess = _session()
        res = sess.explore(generations=6, population=10, algorithm="mosa")
        assert res.evaluations >= 55  # n_eval budget = 60
        assert len(res.pareto) >= 1
        F = np.array([
            [p.metrics["LUT"], -p.metrics["frequency"]] for p in res.pareto
        ])
        assert not non_dominated_mask(F).size == 0

    def test_unknown_algorithm_rejected(self):
        sess = _session()
        with pytest.raises(ValueError, match="unknown algorithm"):
            sess.explore(generations=2, population=4, algorithm="quantum")


class TestExhaustiveSession:
    def test_small_space_enumerated(self):
        design = get_design("neorv32")
        space = ParameterSpace([
            PowerOfTwoRange("MEM_INT_IMEM_SIZE", 12, 14),
            PowerOfTwoRange("MEM_INT_DMEM_SIZE", 12, 14),
        ])
        sess = DseSession(
            design=design, space=space, part="XC7K70T",
            use_model=False, seed=0,
        )
        res = sess.explore(algorithm="exhaustive")
        assert res.evaluations == 9  # full 3x3 space
        assert res.archive_size == 9


class TestAutoSelection:
    def test_auto_enumerates_tiny_space(self):
        design = get_design("neorv32")
        space = ParameterSpace([
            PowerOfTwoRange("MEM_INT_IMEM_SIZE", 12, 14),
        ])
        sess = DseSession(
            design=design, space=space, part="XC7K70T",
            use_model=False, seed=0,
        )
        res = sess.explore(algorithm="auto")
        assert sess.last_algorithm_choice.name == "exhaustive"
        assert res.evaluations == 3

    def test_auto_defaults_to_nsga2_without_dataset(self):
        sess = _session(use_model=False)
        res = sess.explore(generations=2, population=8, algorithm="auto")
        assert sess.last_algorithm_choice.name == "nsga2"
        assert res.generations == 2

    def test_auto_consults_dataset_when_model_active(self):
        design = get_design("cv32e40p-fifo")
        # >512 points so the tiny-space exhaustive rule doesn't preempt the
        # dataset-driven choice.
        space = ParameterSpace([IntRange("DEPTH", 4, 1003)])
        sess = DseSession(
            design=design, space=space, part="XC7K70T",
            use_model=True, pretrain_size=25, seed=3,
        )
        res = sess.explore(generations=3, population=8, algorithm="auto")
        choice = sess.last_algorithm_choice
        # 1-D space: either the smooth-landscape walker or nsga2, but the
        # reasoning must reference the measured ruggedness.
        assert choice.name in ("mosa", "nsga2")
        assert "ruggedness" in choice.reason or "smooth" in choice.reason
        assert res.evaluations > 0


class TestSpea2Session:
    def test_spea2_explores(self):
        sess = _session()
        res = sess.explore(generations=4, population=10, algorithm="spea2")
        assert res.evaluations >= 10
        assert len(res.pareto) >= 1
