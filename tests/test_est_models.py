"""Tests for the alternative-estimator extension."""

import numpy as np
import pytest

from repro.errors import EmptyDatasetError, EstimationError
from repro.estimation.models import (
    KnnRegressor,
    NwmEstimator,
    RbfInterpolator,
    RidgeRegressor,
    compare_estimators,
    select_estimator,
)


def smooth_data(n=40, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, (n, 2))
    y1 = np.sin(X[:, 0]) + 0.3 * X[:, 1]
    y2 = X[:, 0] * X[:, 1] / 10.0
    Y = np.stack([y1, y2], axis=1) + noise * rng.standard_normal((n, 2))
    return X, Y


ALL = [NwmEstimator, KnnRegressor, RbfInterpolator, RidgeRegressor]


class TestEstimatorContract:
    @pytest.mark.parametrize("cls", ALL)
    def test_fit_predict_shape(self, cls):
        X, Y = smooth_data()
        model = cls().fit(X, Y)
        pred = model.predict(X[0])
        assert np.asarray(pred).shape == (2,)

    @pytest.mark.parametrize("cls", ALL)
    def test_unfitted_raises(self, cls):
        with pytest.raises(EmptyDatasetError):
            cls().predict(np.array([1.0, 1.0]))

    @pytest.mark.parametrize("cls", ALL)
    def test_empty_fit_raises(self, cls):
        with pytest.raises(EmptyDatasetError):
            cls().fit(np.empty((0, 2)), np.empty((0, 2)))

    @pytest.mark.parametrize("cls", ALL)
    def test_reasonable_accuracy_on_smooth_surface(self, cls):
        X, Y = smooth_data(n=60)
        model = cls().fit(X, Y)
        probe = np.array([5.0, 5.0])
        truth = np.array([np.sin(5.0) + 1.5, 2.5])
        pred = model.predict(probe)
        # A degree-2 polynomial cannot track sin() over [0, 10]; the
        # parametric comparator gets a looser bound (that mismatch is the
        # point of the paper's small-data observation).
        tolerance = 1.6 if cls is RidgeRegressor else 0.8
        assert np.abs(pred - truth).max() < tolerance

    @pytest.mark.parametrize("cls", ALL)
    def test_loo_mse_finite(self, cls):
        X, Y = smooth_data(n=25, noise=0.05)
        mse = cls().loo_mse(X, Y)
        assert 0 <= mse < 1.0


class TestSpecificBehaviours:
    def test_knn_k1_exact_at_training_points(self):
        X, Y = smooth_data(n=20)
        model = KnnRegressor(k=1).fit(X, Y)
        assert model.predict(X[3]) == pytest.approx(Y[3])

    def test_rbf_interpolates_training_points(self):
        X, Y = smooth_data(n=20)
        model = RbfInterpolator().fit(X, Y)
        assert model.predict(X[3]) == pytest.approx(Y[3], abs=1e-3)

    def test_ridge_fits_quadratic_exactly(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, (30, 2))
        Y = (1 + 2 * X[:, 0] - X[:, 1] + 0.5 * X[:, 0] ** 2).reshape(-1, 1)
        model = RidgeRegressor(alpha=1e-8).fit(X, Y)
        probe = np.array([1.0, -1.0])
        expected = 1 + 2 + 1 + 0.5
        assert model.predict(probe)[0] == pytest.approx(expected, abs=0.05)

    def test_loo_needs_three_points(self):
        X, Y = smooth_data(n=2)
        with pytest.raises(EstimationError):
            KnnRegressor().loo_mse(X, Y)


class TestSelection:
    def test_compare_returns_sorted_scores(self):
        X, Y = smooth_data(n=30, noise=0.02)
        scores = compare_estimators(X, Y)
        values = list(scores.values())
        assert values == sorted(values)
        assert set(scores) == {"nadaraya-watson", "knn", "rbf", "ridge"}

    def test_select_returns_fitted_best(self):
        X, Y = smooth_data(n=30)
        best, scores = select_estimator(X, Y)
        assert best.name == next(iter(scores))
        pred = best.predict(X[0])
        assert np.isfinite(pred).all()

    def test_rbf_wins_on_noiseless_smooth_data(self):
        """Exact interpolation should dominate when there is no noise."""
        X, Y = smooth_data(n=40, noise=0.0)
        scores = compare_estimators(X, Y)
        assert min(scores, key=scores.get) in ("rbf", "nadaraya-watson")

    def test_parametric_overfits_small_noisy_data(self):
        """The paper's observation: higher-variance parametric models do
        worse on small noisy datasets than the NWM family."""
        X, Y = smooth_data(n=12, noise=0.3, seed=5)
        scores = compare_estimators(X, Y)
        assert scores["ridge"] >= min(scores.values())
