"""Tests for the interval (abstract) evaluator of HDL constant expressions.

The load-bearing property is *soundness against the concrete evaluator*:
for any expression and any concrete environment drawn from an abstract
one, either the concrete evaluation raises and the abstract result said
``may_fail`` (or bottom), or the concrete value lies inside the abstract
interval.  The hypothesis test at the bottom checks exactly that over
randomly generated expressions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl import expr as E
from repro.hdl.interval import AbstractInt, Interval, evaluate_abstract
from repro.hdl.verilog_parser import parse_verilog


def parse_expr(text: str) -> E.Expr:
    """Parse one constant expression via a throwaway parameter default."""
    src = f"module t #(parameter X = {text}) (input logic clk); endmodule"
    return parse_verilog(src)[0].parameter("X").default


def abstract(text: str, **env: AbstractInt) -> AbstractInt:
    return evaluate_abstract(parse_expr(text), env)


class TestInterval:
    def test_point_and_span(self):
        assert Interval.point(3) == Interval(3, 3)
        assert Interval.span(9, 2) == Interval(2, 9)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_contains_with_open_ends(self):
        assert Interval(None, 10).contains(-(10**9))
        assert not Interval(None, 10).contains(11)
        assert Interval(0, None).contains(10**9)

    def test_definite_predicates(self):
        assert Interval(1, 3).definitely_ge(1)
        assert Interval(1, 3).definitely_lt(4)
        assert not Interval(1, None).definitely_lt(100)
        assert Interval(1, 3).definitely_nonzero()
        assert Interval(0, 0).definitely_zero()

    def test_join(self):
        assert Interval(0, 4).join(Interval(2, 9)) == Interval(0, 9)
        assert Interval(0, 4).join(Interval(None, 1)) == Interval(None, 4)


class TestAbstractInt:
    def test_bottom_always_may_fail(self):
        assert AbstractInt(None).may_fail
        assert AbstractInt.bottom().definitely_fails()

    def test_exact(self):
        v = AbstractInt.exact(7)
        assert v.interval == Interval(7, 7)
        assert not v.may_fail


class TestArithmetic:
    def test_constant_folding_is_exact(self):
        assert abstract("3 + 4 * 2").interval == Interval(11, 11)

    def test_addition_over_range(self):
        r = abstract("W + 1", W=AbstractInt.of(2, 8))
        assert r.interval == Interval(3, 9)
        assert not r.may_fail

    def test_subtraction_can_go_negative(self):
        r = abstract("W - 2", W=AbstractInt.of(1, 4))
        assert r.interval == Interval(-1, 2)

    def test_multiplication_corners(self):
        r = abstract("A * B", A=AbstractInt.of(-2, 3), B=AbstractInt.of(-5, 4))
        assert r.interval == Interval(-15, 12)

    def test_division_by_straddling_range_may_fail(self):
        r = abstract("10 / D", D=AbstractInt.of(-1, 2))
        assert r.may_fail          # D = 0 raises EvalError concretely
        assert not r.definitely_fails()

    def test_division_by_definite_zero_is_bottom(self):
        assert abstract("10 / D", D=AbstractInt.exact(0)).definitely_fails()

    def test_clog2_domain(self):
        ok = abstract("$clog2(D)", D=AbstractInt.of(1, 512))
        assert ok.interval == Interval(0, 9)
        assert not ok.may_fail
        edge = abstract("$clog2(D)", D=AbstractInt.of(0, 8))
        assert edge.may_fail       # D = 0 raises
        assert edge.interval == Interval(0, 3)
        assert abstract("$clog2(D)", D=AbstractInt.of(-4, 0)).definitely_fails()

    def test_power(self):
        r = abstract("2 ** E", E=AbstractInt.of(0, 10))
        assert r.interval == Interval(1, 1024)
        assert abstract("2 ** E", E=AbstractInt.of(-3, -1)).definitely_fails()

    def test_oversized_shift_goes_top_and_may_fail(self):
        # Shift counts beyond the materialization limit: the concrete
        # evaluator rejects them (folding bit limit), so the abstract
        # result must stay top *and* admit failure.
        r = abstract("1 << S", S=AbstractInt.of(0, 10**19))
        assert r.interval == Interval(None, None)
        assert r.may_fail
        assert not r.definitely_fails()

    def test_negative_shift_is_not_definite_failure(self):
        # Concrete evaluation raises a bare ValueError (a crash, not an
        # EvalError rejection) — the abstract layer must not claim bottom.
        r = abstract("1 << S", S=AbstractInt.of(-2, -1))
        assert not r.definitely_fails()
        assert r.may_fail

    def test_unbound_name_is_bottom(self):
        assert abstract("MISSING + 1").definitely_fails()

    def test_conditional_branch_join(self):
        r = abstract("(C ? 4 : 9)", C=AbstractInt.of(0, 1))
        assert r.interval == Interval(4, 9)
        taken = abstract("(C ? 4 : 9)", C=AbstractInt.exact(1))
        assert taken.interval == Interval(4, 4)

    def test_conditional_with_one_failing_branch(self):
        r = abstract(
            "(C ? $clog2(0) : 7)", C=AbstractInt.of(0, 1)
        )
        assert r.interval == Interval(7, 7)
        assert r.may_fail

    def test_comparison_definite(self):
        assert abstract("A < 5", A=AbstractInt.of(0, 4)).interval == Interval(1, 1)
        assert abstract("A < 5", A=AbstractInt.of(5, 9)).interval == Interval(0, 0)
        assert abstract("A < 5", A=AbstractInt.of(0, 9)).interval == Interval(0, 1)

    def test_min_max_abs(self):
        assert abstract(
            "max(A, 4)", A=AbstractInt.of(1, 9)
        ).interval == Interval(4, 9)
        assert abstract(
            "min(A, 4)", A=AbstractInt.of(1, 9)
        ).interval == Interval(1, 4)
        assert abstract(
            "abs(A)", A=AbstractInt.of(-3, 2)
        ).interval == Interval(0, 3)

    def test_mod_sign_rules(self):
        r = abstract("A % 8", A=AbstractInt.of(-20, 20))
        assert r.interval == Interval(0, 7)  # python % takes divisor's sign


# ---------------------------------------------------------------------------
# soundness against the concrete evaluator
# ---------------------------------------------------------------------------

_NAMES = ("A", "B", "C")


def _exprs(depth: int):
    leaf = st.one_of(
        st.integers(-8, 64).map(E.Num),
        st.sampled_from(_NAMES).map(E.Name),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["-", "+", "~", "!"]), sub).map(
            lambda t: E.UnOp(*t)
        ),
        st.tuples(
            st.sampled_from(
                ["+", "-", "*", "/", "%", "**", "<<", ">>", "&", "|", "^",
                 "<", "<=", ">", ">=", "==", "!=", "&&", "||"]
            ),
            sub,
            sub,
        ).map(lambda t: E.BinOp(t[0], t[1], t[2])),
        st.tuples(sub, sub, sub).map(lambda t: E.Cond(*t)),
        st.tuples(st.sampled_from(["$clog2", "max", "min", "abs"]), sub).map(
            lambda t: E.Call(t[0], (t[1],))
        ),
    )


@settings(max_examples=300, deadline=None)
@given(
    expr=_exprs(3),
    bounds=st.dictionaries(
        st.sampled_from(_NAMES),
        st.tuples(st.integers(-6, 6), st.integers(0, 8)),
        min_size=len(_NAMES),
        max_size=len(_NAMES),
    ),
    picks=st.tuples(
        st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)
    ),
)
def test_abstract_evaluation_is_sound(expr, bounds, picks):
    aenv = {
        name: AbstractInt.of(lo, lo + width)
        for name, (lo, width) in bounds.items()
    }
    cenv = {
        name: int(round(lo + pick * width))
        for (name, (lo, width)), pick in zip(sorted(bounds.items()), picks)
    }
    result = evaluate_abstract(expr, aenv)
    try:
        concrete = E.evaluate(expr, cenv)
    except E.EvalError:
        assert result.definitely_fails() or result.may_fail
        return
    except (ValueError, OverflowError):
        return  # crash-class failures carry no abstract obligation
    assert result.interval is not None, (
        f"{expr.render()} = {concrete} at {cenv}, but abstract said bottom"
    )
    assert result.interval.contains(concrete), (
        f"{expr.render()} = {concrete} at {cenv}, "
        f"outside abstract {result.interval}"
    )
