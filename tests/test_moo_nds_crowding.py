"""Tests for non-dominated sorting and crowding distance."""

import numpy as np
import pytest

from repro.moo.crowding import crowding_distance
from repro.moo.nds import dominates_matrix, fast_non_dominated_sort, non_dominated_mask


class TestDomination:
    def test_strict_domination(self):
        F = np.array([[1.0, 1.0], [2.0, 2.0]])
        D = dominates_matrix(F)
        assert D[0, 1] and not D[1, 0]

    def test_incomparable(self):
        F = np.array([[1.0, 2.0], [2.0, 1.0]])
        D = dominates_matrix(F)
        assert not D.any()

    def test_equal_points_do_not_dominate(self):
        F = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert not dominates_matrix(F).any()

    def test_weak_improvement_dominates(self):
        F = np.array([[1.0, 1.0], [1.0, 2.0]])
        D = dominates_matrix(F)
        assert D[0, 1]


class TestFronts:
    def test_layered_fronts(self):
        F = np.array([
            [1.0, 4.0], [2.0, 3.0], [4.0, 1.0],   # front 0
            [2.0, 5.0], [3.0, 4.0],               # front 1
            [5.0, 5.0],                           # front 2
        ])
        fronts = fast_non_dominated_sort(F)
        assert sorted(fronts[0].tolist()) == [0, 1, 2]
        assert sorted(fronts[1].tolist()) == [3, 4]
        assert fronts[2].tolist() == [5]

    def test_all_fronts_partition(self):
        rng = np.random.default_rng(0)
        F = rng.random((50, 3))
        fronts = fast_non_dominated_sort(F)
        joined = np.concatenate(fronts)
        assert sorted(joined.tolist()) == list(range(50))

    def test_front0_matches_mask(self):
        rng = np.random.default_rng(1)
        F = rng.random((60, 2))
        fronts = fast_non_dominated_sort(F)
        mask = non_dominated_mask(F)
        assert sorted(fronts[0].tolist()) == np.nonzero(mask)[0].tolist()

    def test_empty(self):
        assert fast_non_dominated_sort(np.empty((0, 2))) == []
        assert non_dominated_mask(np.empty((0, 2))).size == 0

    def test_duplicates_share_front(self):
        F = np.array([[1.0, 1.0]] * 4)
        fronts = fast_non_dominated_sort(F)
        assert len(fronts) == 1
        assert len(fronts[0]) == 4

    def test_single_objective(self):
        F = np.array([[3.0], [1.0], [2.0]])
        mask = non_dominated_mask(F)
        assert mask.tolist() == [False, True, False]


class TestCrowding:
    def test_boundaries_infinite(self):
        F = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        d = crowding_distance(F)
        assert np.isinf(d[0]) and np.isinf(d[3])
        assert np.isfinite(d[1]) and np.isfinite(d[2])

    def test_two_points_infinite(self):
        assert np.isinf(crowding_distance(np.array([[0.0, 1.0], [1.0, 0.0]]))).all()

    def test_sparser_point_larger_distance(self):
        # Interior points: index 1 is crowded, index 2 sits in a gap.
        F = np.array([[0.0, 10.0], [1.0, 9.0], [5.0, 3.0], [10.0, 0.0]])
        d = crowding_distance(F)
        assert d[2] > d[1]

    def test_degenerate_objective_ignored(self):
        F = np.array([[0.0, 5.0], [1.0, 5.0], [2.0, 5.0]])
        d = crowding_distance(F)
        assert np.isfinite(d[1])

    def test_empty(self):
        assert crowding_distance(np.empty((0, 2))).size == 0
