"""Tests for the vectorless power estimator and its reporting."""

import pytest

from repro.core import DseSession, MetricSpec
from repro.designs import get_design
from repro.devices import ResourceVector, get_device
from repro.errors import FlowError
from repro.flow.power import (
    estimate_power,
    parse_power_report,
    render_power_report,
)


def sample_usage():
    return ResourceVector.of(LUT=1000, FF=1500, BRAM=4, DSP=2)


class TestEstimate:
    def test_components_positive(self):
        p = estimate_power(sample_usage(), get_device("XC7K70T"), 200.0)
        assert p.static_mw > 0
        assert p.clocks_mw > 0
        assert p.logic_mw > 0
        assert p.bram_mw > 0
        assert p.dsp_mw > 0
        assert p.total_mw == pytest.approx(p.static_mw + p.dynamic_mw)

    def test_magnitude_plausible(self):
        """~1k LUT at 200 MHz on 28 nm: tens of mW, not watts."""
        p = estimate_power(sample_usage(), get_device("XC7K70T"), 200.0)
        assert 20 < p.total_mw < 300

    def test_dynamic_scales_with_frequency(self):
        slow = estimate_power(sample_usage(), get_device("XC7K70T"), 100.0)
        fast = estimate_power(sample_usage(), get_device("XC7K70T"), 200.0)
        assert fast.dynamic_mw == pytest.approx(2 * slow.dynamic_mw)
        assert fast.static_mw == pytest.approx(slow.static_mw)

    def test_toggle_rate_scales_logic_only(self):
        base = estimate_power(sample_usage(), get_device("XC7K70T"), 200.0)
        hot = estimate_power(
            sample_usage(), get_device("XC7K70T"), 200.0, toggle_rate=0.25
        )
        assert hot.logic_mw == pytest.approx(2 * base.logic_mw)
        assert hot.clocks_mw == pytest.approx(base.clocks_mw)

    def test_process_advantage(self):
        """Same design, same clock: 16 nm consumes less in every category."""
        k7 = estimate_power(sample_usage(), get_device("XC7K70T"), 200.0)
        zu = estimate_power(sample_usage(), get_device("ZU3EG"), 200.0)
        assert zu.clocks_mw < k7.clocks_mw
        assert zu.logic_mw < k7.logic_mw
        assert zu.bram_mw < k7.bram_mw

    def test_routing_factor_penalizes_logic(self):
        base = estimate_power(sample_usage(), get_device("XC7K70T"), 200.0)
        congested = estimate_power(
            sample_usage(), get_device("XC7K70T"), 200.0, routing_factor=1.5
        )
        assert congested.logic_mw == pytest.approx(1.5 * base.logic_mw)

    def test_invalid_inputs(self):
        with pytest.raises(FlowError):
            estimate_power(sample_usage(), get_device("XC7K70T"), 0.0)
        with pytest.raises(FlowError):
            estimate_power(
                sample_usage(), get_device("XC7K70T"), 100.0, toggle_rate=0.0
            )


class TestReportRoundtrip:
    def test_roundtrip(self):
        p = estimate_power(sample_usage(), get_device("XC7K70T"), 187.5)
        text = render_power_report(p, design="dut", part="XC7K70T")
        parsed = parse_power_report(text)
        assert parsed.total_mw == pytest.approx(p.total_mw, abs=0.01)
        assert parsed.frequency_mhz == pytest.approx(187.5)
        assert parsed.toggle_rate == pytest.approx(0.125)

    def test_parse_garbage(self):
        with pytest.raises(FlowError, match="malformed"):
            parse_power_report("Total: lots")


class TestTclSurface:
    def test_report_power_command(self, cqm_design):
        from repro.flow import VivadoSim
        from repro.tcl import TclInterp, VivadoTclSession, bind_vivado_commands

        sim = VivadoSim(part="XC7K70T", seed=2)
        session = VivadoTclSession(sim=sim)
        session.stage_source("dut.v", cqm_design.source(), cqm_design.language)
        interp = TclInterp()
        bind_vivado_commands(interp, session)
        interp.eval(
            "read_verilog dut.v\ncreate_clock -period 1.0\n"
            "synth_design -top cpl_queue_manager\n"
            "place_design\nroute_design\n"
            "report_power -file p.rpt -toggle_rate 0.25"
        )
        parsed = parse_power_report(interp.files["p.rpt"])
        assert parsed.toggle_rate == pytest.approx(0.25)
        assert parsed.total_mw > 0


class TestPowerMetric:
    def test_power_in_dse_objectives(self, cqm_design):
        sess = DseSession(
            design=cqm_design, part="XC7K70T",
            metrics=[MetricSpec.minimize("power"),
                     MetricSpec.maximize("frequency")],
            use_model=False, seed=4,
        )
        res = sess.explore(generations=3, population=8)
        assert all(p.metrics["power"] > 0 for p in res.pareto)
        # Power and frequency genuinely conflict: the front has >1 point.
        assert len(res.pareto) >= 1

    def test_power_grows_with_design_size(self, cqm_design):
        from repro.core.evaluate import PointEvaluator

        ev = PointEvaluator(
            source=cqm_design.source(), language=cqm_design.language,
            top=cqm_design.top, part="XC7K70T",
            metrics=[MetricSpec.minimize("power")],
        )
        small = ev.evaluate({"OP_TABLE_SIZE": 8, "PIPELINE": 2})
        # Same pipeline depth: larger op table burns more power at a similar
        # clock.
        big = ev.evaluate({"OP_TABLE_SIZE": 40, "PIPELINE": 2})
        assert big.metrics["power"] > small.metrics["power"]