"""Tests for ``repro.serve`` — queue, scheduler, fleet, and the server.

The integration class pins the PR's acceptance contract: two concurrent
jobs over one shared sharded store produce fronts byte-identical to the
same sessions run serially against private stores, with the second
job's tool-run count strictly lower because the first tenant's runs
answer from the shared fleet.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from tests._sanitize_support import lock_order_guard

from repro.serve import (
    AdaptiveAdmission,
    AdmissionSignals,
    DseServer,
    EvaluatorFleet,
    FairScheduler,
    FileJobQueue,
    FixedAdmission,
    JobCancelledError,
    JobSpec,
    JobState,
    SchedulerClosed,
    add_submit_listener,
    make_admission,
    remove_submit_listener,
)

@pytest.fixture(autouse=True)
def _lock_order_sanitizer():
    """Every serve test runs under the runtime lock-order sanitizer: no
    observed acquisition cycles, and every observed ordering must be an
    edge of the static S003 lock graph."""
    with lock_order_guard():
        yield


# ---------------------------------------------------------------------------
# FileJobQueue


class TestFileJobQueue:
    def test_submit_claim_finish_lifecycle(self, tmp_path):
        queue = FileJobQueue(tmp_path / "q")
        record = queue.submit(JobSpec(design="tirex", generations=3))
        assert record.state == JobState.QUEUED
        assert queue.depth() == 1

        claimed = queue.claim()
        assert claimed is not None and claimed.job_id == record.job_id
        assert claimed.state == JobState.RUNNING
        assert queue.depth() == 0
        assert queue.claim() is None  # nothing else queued

        finished = queue.finish(
            record.job_id, JobState.DONE, stats={"tool_runs": 7}
        )
        assert finished.state == JobState.DONE
        fetched = queue.get(record.job_id)
        assert fetched.state == JobState.DONE
        assert fetched.stats["tool_runs"] == 7
        assert fetched.spec.design == "tirex"

    def test_ids_are_dense_and_claims_are_fifo(self, tmp_path):
        queue = FileJobQueue(tmp_path / "q")
        ids = [queue.submit(JobSpec(design="tirex")).job_id for _ in range(3)]
        assert ids == ["job-000000", "job-000001", "job-000002"]
        assert [queue.claim().job_id for _ in range(3)] == ids

    def test_two_queues_never_claim_the_same_job(self, tmp_path):
        a = FileJobQueue(tmp_path / "q")
        b = FileJobQueue(tmp_path / "q")
        a.submit(JobSpec(design="tirex"))
        claims = [q.claim() for q in (a, b)]
        assert sum(c is not None for c in claims) == 1

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        queue = FileJobQueue(tmp_path / "q")
        record = queue.submit(JobSpec(design="tirex"))
        assert queue.cancel(record.job_id) == JobState.CANCELLED
        assert queue.get(record.job_id).state == JobState.CANCELLED
        assert queue.claim() is None

    def test_cancel_running_job_leaves_a_marker(self, tmp_path):
        queue = FileJobQueue(tmp_path / "q")
        record = queue.submit(JobSpec(design="tirex"))
        queue.claim()
        assert not queue.cancel_requested(record.job_id)
        assert queue.cancel(record.job_id) == JobState.RUNNING
        assert queue.cancel_requested(record.job_id)
        # finish clears the marker along with the running file
        queue.finish(record.job_id, JobState.CANCELLED)
        assert not queue.cancel_requested(record.job_id)

    def test_cancel_unknown_job(self, tmp_path):
        assert FileJobQueue(tmp_path / "q").cancel("job-999999") is None

    def test_counter_survives_a_crash_mid_publish(self, tmp_path, monkeypatch):
        """A crash inside the COUNTER read-modify-write window must leave
        either the old or the new value — never a truncated file that
        restarts ordinals and hands out a duplicate job id."""
        queue = FileJobQueue(tmp_path / "q")
        first = queue.submit(JobSpec(design="tirex")).job_id
        assert first == "job-000000"

        real_replace = os.replace
        state = {"crashed": False}

        def crashing_replace(src, dst, *args, **kwargs):
            if Path(dst).name == "COUNTER" and not state["crashed"]:
                state["crashed"] = True
                raise OSError("simulated crash mid-publish")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(os, "replace", crashing_replace)
        with pytest.raises(OSError):
            queue.submit(JobSpec(design="tirex"))
        assert state["crashed"]

        # The published COUNTER is intact (the first submit's value) ...
        assert int((tmp_path / "q" / "COUNTER").read_text()) == 1
        # ... so the next submit hands out the crashed ordinal exactly once.
        second = queue.submit(JobSpec(design="tirex")).job_id
        assert second == "job-000001"
        assert [r.job_id for r in queue.jobs()] == [first, second]

    def test_claim_many_is_fifo_over_one_scan(self, tmp_path):
        queue = FileJobQueue(tmp_path / "q")
        ids = [queue.submit(JobSpec(design="tirex")).job_id for _ in range(3)]
        claimed = queue.claim_many(2)
        assert [r.job_id for r in claimed] == ids[:2]
        assert all(r.state == JobState.RUNNING for r in claimed)
        # One directory listing served the whole pass.
        assert queue.last_scan_entries == 3
        assert queue.depth() == 1
        assert [r.job_id for r in queue.claim_many(5)] == ids[2:]

    def test_submit_listener_fires_until_removed(self, tmp_path):
        queue = FileJobQueue(tmp_path / "q")
        fired: list[int] = []
        listener = lambda: fired.append(1)  # noqa: E731
        assert queue.submit_stamp_ns() == 0
        add_submit_listener(tmp_path / "q", listener)
        try:
            queue.submit(JobSpec(design="tirex"))
            assert fired == [1]
            stamp = queue.submit_stamp_ns()
            assert stamp > 0
        finally:
            remove_submit_listener(tmp_path / "q", listener)
        queue.submit(JobSpec(design="tirex"))
        assert fired == [1]  # removed listeners stay silent
        assert queue.submit_stamp_ns() >= stamp  # but the stamp still bumps

    def test_jobs_lists_all_states_in_submission_order(self, tmp_path):
        queue = FileJobQueue(tmp_path / "q")
        first = queue.submit(JobSpec(design="tirex"))
        queue.submit(JobSpec(design="tirex"))
        queue.claim()
        queue.finish(first.job_id, JobState.FAILED, error="boom")
        records = queue.jobs()
        assert [r.job_id for r in records] == [first.job_id, "job-000001"]
        assert records[0].state == JobState.FAILED
        assert records[0].error == "boom"
        assert records[1].state == JobState.QUEUED


# ---------------------------------------------------------------------------
# FairScheduler


class TestFairScheduler:
    def test_round_robin_interleaves_two_jobs(self):
        """Queued work from two jobs alternates 1:1 at capacity 1."""
        with FairScheduler(capacity=1) as sched:
            sched.register_job("A", slots=1)
            sched.register_job("B", slots=1)
            order: list[str] = []
            release = threading.Event()
            blocker = sched.submit("A", lambda: release.wait(10))
            time.sleep(0.05)
            futures = []
            for i in range(4):
                futures.append(sched.submit("A", lambda: order.append("A")))
                futures.append(sched.submit("B", lambda: order.append("B")))
            release.set()
            blocker.result(10)
            for future in futures:
                future.result(10)
            assert order.count("A") == order.count("B") == 4
            assert all(a != b for a, b in zip(order, order[1:])), order

    def test_backpressure_pool_never_exceeds_capacity(self):
        with FairScheduler(capacity=2) as sched:
            sched.register_job("A", slots=4)
            sched.register_job("B", slots=4)
            gate = threading.Event()
            futures = [
                sched.submit(job, lambda: gate.wait(10))
                for job in ("A", "B")
                for _ in range(6)
            ]
            time.sleep(0.1)
            stats = sched.stats()
            assert stats["in_flight"] == 2
            assert stats["queue_depth"] == 10
            gate.set()
            for future in futures:
                future.result(10)
            assert sched.stats()["peak_in_flight"] <= 2

    def test_per_job_slots_cap_a_single_jobs_concurrency(self):
        with FairScheduler(capacity=4) as sched:
            sched.register_job("A", slots=1)
            gate = threading.Event()
            futures = [sched.submit("A", lambda: gate.wait(10)) for _ in range(4)]
            time.sleep(0.1)
            stats = sched.stats()
            assert stats["jobs"]["A"]["running"] == 1, "slots ignored"
            gate.set()
            for future in futures:
                future.result(10)

    def test_bounded_lane_blocks_the_producer(self):
        """max_pending is the backpressure felt by the session thread."""
        with FairScheduler(capacity=1, max_pending=2) as sched:
            sched.register_job("A", slots=1)
            gate = threading.Event()
            sched.submit("A", lambda: gate.wait(10))
            time.sleep(0.05)
            sched.submit("A", lambda: None)  # fills the lane bound
            unblocked_at = {}

            def producer():
                fut = sched.submit("A", lambda: "third")
                unblocked_at["t"] = time.monotonic()
                unblocked_at["fut"] = fut

            thread = threading.Thread(target=producer)
            start = time.monotonic()
            thread.start()
            time.sleep(0.2)
            assert "t" not in unblocked_at, "submit should have blocked"
            gate.set()
            thread.join(10)
            assert unblocked_at["t"] - start >= 0.15
            assert unblocked_at["fut"].result(10) == "third"

    def test_cancel_drops_queued_keeps_running(self):
        with FairScheduler(capacity=1) as sched:
            sched.register_job("A", slots=1)
            gate = threading.Event()
            running = sched.submit("A", lambda: (gate.wait(10), "ran")[1])
            time.sleep(0.05)
            queued = [sched.submit("A", lambda: "never") for _ in range(3)]
            assert sched.cancel_job("A") == 3
            gate.set()
            assert running.result(10) == "ran"
            for future in queued:
                with pytest.raises(JobCancelledError):
                    future.result(10)
            # Post-cancel submissions fail fast too.
            with pytest.raises(JobCancelledError):
                sched.submit("A", lambda: None).result(10)

    def test_drain_waits_for_accepted_work_and_rejects_new(self):
        sched = FairScheduler(capacity=2)
        sched.register_job("A", slots=2)
        done = []
        futures = [
            sched.submit("A", lambda i=i: done.append(i)) for i in range(5)
        ]
        assert sched.drain(10) is True
        assert len(done) == 5
        with pytest.raises(SchedulerClosed):
            sched.submit("A", lambda: None).result(10)
        for future in futures:
            future.result(0)
        sched.close()

    def test_results_return_in_request_order(self):
        with FairScheduler(capacity=4) as sched:
            sched.register_job("A", slots=4)
            futures = [sched.submit("A", lambda i=i: i * i) for i in range(8)]
            assert [f.result(10) for f in futures] == [i * i for i in range(8)]

    def test_slow_lane_does_not_break_the_fast_lanes_interleave(self):
        """Fairness under unequal request durations: a lane whose every
        request is slow still alternates 1:1 with a fast lane — round-robin
        rotates by *request*, so request duration cannot buy extra turns."""
        with FairScheduler(capacity=1) as sched:
            sched.register_job("slow", slots=1)
            sched.register_job("fast", slots=1)
            order: list[str] = []
            release = threading.Event()
            blocker = sched.submit("slow", lambda: release.wait(10))
            time.sleep(0.05)
            futures = [
                sched.submit(
                    "slow",
                    lambda: (time.sleep(0.04), order.append("slow"))[1],
                )
                for _ in range(4)
            ]
            futures += [
                sched.submit("fast", lambda: order.append("fast"))
                for _ in range(4)
            ]
            release.set()
            blocker.result(10)
            for future in futures:
                future.result(10)
            assert order.count("slow") == order.count("fast") == 4
            assert all(a != b for a, b in zip(order, order[1:])), order


# ---------------------------------------------------------------------------
# FairScheduler single-flight coalescing


class TestSingleFlightCoalescing:
    def test_identical_key_runs_once_and_resolves_every_future(self):
        with FairScheduler(capacity=1) as sched:
            sched.register_job("A", slots=1)
            sched.register_job("B", slots=1)
            runs: list[int] = []
            gate = threading.Event()

            def work():
                runs.append(1)
                gate.wait(10)
                return 42

            primary = sched.submit("A", work, key="point")
            time.sleep(0.05)  # the primary is in flight
            follower = sched.submit(
                "B", lambda: 99, key="point", transform=lambda v: v + 1
            )
            gate.set()
            assert primary.result(10) == 42
            assert follower.result(10) == 43  # shared result, own transform
            assert runs == [1], "the follower must not run its own fn"
            stats = sched.stats()
            assert stats["coalesced_hits"] == 1
            assert stats["jobs"]["B"]["coalesced"] == 1
            assert stats["jobs"]["A"]["coalesced"] == 0

    def test_distinct_keys_do_not_coalesce(self):
        with FairScheduler(capacity=2) as sched:
            sched.register_job("A", slots=2)
            sched.register_job("B", slots=2)
            a = sched.submit("A", lambda: "a", key="ka")
            b = sched.submit("B", lambda: "b", key="kb")
            assert (a.result(10), b.result(10)) == ("a", "b")
            assert sched.stats()["coalesced_hits"] == 0

    def test_cancelling_the_primary_promotes_the_follower(self):
        with FairScheduler(capacity=1) as sched:
            sched.register_job("A", slots=1)
            sched.register_job("B", slots=1)
            gate = threading.Event()
            blocker = sched.submit("A", lambda: gate.wait(10))
            time.sleep(0.05)
            ran: list[str] = []
            primary = sched.submit(
                "A", lambda: ran.append("A") or "from-A", key="point"
            )
            follower = sched.submit(
                "B", lambda: ran.append("B") or "from-B", key="point"
            )
            sched.cancel_job("A")
            gate.set()
            blocker.result(10)
            with pytest.raises(JobCancelledError):
                primary.result(10)
            # The follower is promoted to primary in its own lane and runs
            # its *own* fn — B never depends on the cancelled tenant.
            assert follower.result(10) == "from-B"
            assert ran == ["B"]


# ---------------------------------------------------------------------------
# Admission controllers


class TestAdmission:
    def test_fixed_is_the_constant_stagger(self):
        ctl = FixedAdmission(0.2)
        assert ctl.event_driven is False
        saturated = AdmissionSignals(
            utilization=1.0, warm_hits=0, fresh_runs=9, queue_depth=9
        )
        for _ in range(5):
            decision = ctl.decide(saturated)
            assert (decision.claims, decision.wait_s) == (1, 0.2)
        assert ctl.stats() == {
            "mode": "fixed", "decisions": 5, "claim_budget": 1
        }

    def test_adaptive_grows_additively_to_the_cap(self):
        ctl = AdaptiveAdmission(0.05, max_claim=4)
        assert ctl.event_driven is True
        warm = AdmissionSignals(
            utilization=0.2, warm_hits=8, fresh_runs=2, queue_depth=3
        )
        assert [ctl.decide(warm).claims for _ in range(6)] == [2, 3, 4, 4, 4, 4]

    def test_adaptive_backs_off_multiplicatively_and_floors_at_one(self):
        ctl = AdaptiveAdmission(0.05, max_claim=8)
        warm = AdmissionSignals(
            utilization=0.0, warm_hits=8, fresh_runs=0, queue_depth=0
        )
        for _ in range(7):
            ctl.decide(warm)
        assert ctl.claim_budget == 8
        hot = AdmissionSignals(
            utilization=0.9, warm_hits=8, fresh_runs=0, queue_depth=0
        )
        assert ctl.decide(hot).claims == 4
        assert ctl.decide(hot).claims == 2
        cold = AdmissionSignals(
            utilization=0.0, warm_hits=0, fresh_runs=6, queue_depth=0
        )
        assert ctl.decide(cold).claims == 1
        assert ctl.decide(cold).claims == 1  # floored: never below the stagger
        assert ctl.stats()["backoffs"] == 4

    def test_idle_windows_grow_toward_burst_drain(self):
        # No answers at all is not "cold": an idle pool should be ready to
        # drain a burst of submissions in one event-driven pass.
        ctl = AdaptiveAdmission(0.05, max_claim=3)
        idle = AdmissionSignals(
            utilization=0.0, warm_hits=0, fresh_runs=0, queue_depth=0
        )
        assert [ctl.decide(idle).claims for _ in range(3)] == [2, 3, 3]

    def test_factory_and_validation(self):
        assert make_admission("fixed", 0.1).name == "fixed"
        adaptive = make_admission("adaptive", 0.1, max_claim=5, backoff=0.25)
        assert (adaptive.max_claim, adaptive.backoff) == (5, 0.25)
        with pytest.raises(ValueError):
            make_admission("jittery", 0.1)
        with pytest.raises(ValueError):
            AdaptiveAdmission(0.05, backoff=1.5)
        with pytest.raises(ValueError):
            FixedAdmission(0.0)


# ---------------------------------------------------------------------------
# EvaluatorFleet + facade


class TestEvaluatorFleet:
    @staticmethod
    def _spec():
        from repro.core.parallel import EvaluatorSpec
        from repro.core.session import DseSession
        from repro.designs import get_design

        session = DseSession(
            get_design("cv32e40p-fifo"), use_model=False, pretrain_size=0, seed=5
        )
        return EvaluatorSpec.from_evaluator(
            session.evaluator, design_name="cv32e40p-fifo"
        )

    def test_cross_tenant_memo_second_job_pays_nothing(self, tmp_path):
        spec = self._spec()
        fleet = EvaluatorFleet(store_root=str(tmp_path / "store"), shards=4)
        with FairScheduler(capacity=2) as sched:
            sched.register_job("A", slots=2)
            sched.register_job("B", slots=2)
            bound_a = fleet.bind(sched, "A", spec)
            bound_b = fleet.bind(sched, "B", spec)
            points = [{"DEPTH": 4}, {"DEPTH": 8}, {"DEPTH": 16}]
            first = bound_a.submit_many(points).results(on_error="return")
            second = bound_b.submit_many(points).results(on_error="return")
            assert bound_a.tenant_stats()["tool_runs"] == 3
            assert bound_b.tenant_stats()["tool_runs"] == 0
            assert bound_b.tenant_stats()["cache_hit_rate"] == 1.0
            for mine, theirs in zip(first, second):
                assert mine.metrics == theirs.metrics
        fleet.close()

    def test_concurrent_identical_batches_pay_one_bill(self, tmp_path):
        """Two tenants submitting the same points *while* they are in
        flight pay exactly one tool-run bill between them: the scheduler
        single-flights by evaluation cache key, so the followers' futures
        resolve from the primary's result as coalesced cache answers."""
        import dataclasses

        from repro.observe import telemetry_session

        # ~0.2s of emulated latency per fresh run keeps the first
        # tenant's evaluations in flight while the second one submits.
        spec = dataclasses.replace(self._spec(), emulate_tool_latency=0.002)
        fleet = EvaluatorFleet(store_root=str(tmp_path / "store"), shards=4)
        points = [{"DEPTH": 4}, {"DEPTH": 8}]
        with telemetry_session() as tel, FairScheduler(capacity=4) as sched:
            sched.register_job("A", slots=4)
            sched.register_job("B", slots=4)
            bound_a = fleet.bind(sched, "A", spec)
            bound_b = fleet.bind(sched, "B", spec)
            batch_a = bound_a.submit_many(points)
            batch_b = bound_b.submit_many(points)
            first = batch_a.results(on_error="return")
            second = batch_b.results(on_error="return")
            for mine, theirs in zip(first, second):
                assert mine.metrics == theirs.metrics
            stats_a = bound_a.tenant_stats()
            stats_b = bound_b.tenant_stats()
            assert stats_a["tool_runs"] == len(points)
            assert stats_b["tool_runs"] == 0
            assert stats_b["coalesced_hits"] == len(points)
            assert stats_b["cache_hit_rate"] == 1.0
            assert sched.stats()["coalesced_hits"] == len(points)
            assert tel.counters.get("serve.coalesced_hits") == len(points)
        fleet.close()

        # The shared store holds each unique answer exactly once.
        from repro.cache import open_store

        assert len(open_store(tmp_path / "store")) == len(points)

    def test_same_spec_shares_one_member(self, tmp_path):
        spec = self._spec()
        fleet = EvaluatorFleet()
        with FairScheduler(capacity=1) as sched:
            sched.register_job("A", slots=1)
            sched.register_job("B", slots=1)
            a = fleet.bind(sched, "A", spec)
            b = fleet.bind(sched, "B", spec)
            assert a._member is b._member
            assert len(fleet.specs()) == 1
        fleet.close()


# ---------------------------------------------------------------------------
# DseServer integration (the PR acceptance contract)


def _serial_reference():
    from repro.core.session import DseSession
    from repro.designs import get_design

    session = DseSession(
        get_design("cv32e40p-fifo"), use_model=False, pretrain_size=0, seed=5
    )
    try:
        return session.explore(generations=2, population=6)
    finally:
        session.close()


def _front_rows(result_path: str) -> list[tuple]:
    payload = json.loads(Path(result_path).read_text(encoding="utf-8"))
    return sorted(tuple(sorted(row.items())) for row in payload["pareto"])


class TestDseServerIntegration:
    def test_two_overlapping_jobs_shared_store_equivalence(self, tmp_path):
        """Fronts identical to serial; second tenant strictly cheaper."""
        server = DseServer(
            tmp_path / "svc", capacity=2, shards=4, poll_interval_s=0.05
        )
        queue = FileJobQueue(tmp_path / "svc" / "queue")
        spec = JobSpec(
            design="cv32e40p-fifo",
            seed=5,
            generations=2,
            population=6,
            use_model=False,
        )
        first = queue.submit(spec)
        second = queue.submit(spec)
        stats = server.serve_forever(stop_after=2, max_idle_s=10.0)
        assert stats["jobs_done"] == 2
        assert stats["jobs_failed"] == 0

        reference = _serial_reference()
        reference_front = sorted(
            tuple(sorted(p.as_row().items())) for p in reference.pareto
        )
        job_a = queue.get(first.job_id)
        job_b = queue.get(second.job_id)
        assert job_a.state == JobState.DONE, job_a.error
        assert job_b.state == JobState.DONE, job_b.error
        assert _front_rows(job_a.result_path) == reference_front
        assert _front_rows(job_b.result_path) == reference_front

        # Cross-tenant economics: together the jobs pay exactly the serial
        # tool-run bill, and the later tenant pays strictly less than a
        # private-store run would have.
        paid = job_a.stats["tool_runs"] + job_b.stats["tool_runs"]
        assert paid == reference.tool_runs
        assert min(job_a.stats["tool_runs"], job_b.stats["tool_runs"]) < (
            reference.tool_runs
        )
        assert job_a.stats["cache_hits"] + job_b.stats["cache_hits"] > 0

        # The shared store holds every unique full-route answer once.
        from repro.cache import open_store

        store = open_store(tmp_path / "svc" / "store")
        assert len(store) == reference.tool_runs

    def test_adaptive_admission_same_fronts_same_bill(self, tmp_path):
        """Adaptive admission + coalescing change pacing and who pays —
        never the fronts, and never the combined tool-run bill."""
        server = DseServer(
            tmp_path / "svc",
            capacity=2,
            shards=4,
            poll_interval_s=0.05,
            admission="adaptive",
        )
        queue = FileJobQueue(tmp_path / "svc" / "queue")
        spec = JobSpec(
            design="cv32e40p-fifo",
            seed=5,
            generations=2,
            population=6,
            use_model=False,
        )
        first = queue.submit(spec)
        second = queue.submit(spec)
        stats = server.serve_forever(stop_after=2, max_idle_s=10.0)
        assert stats["jobs_done"] == 2
        assert stats["jobs_failed"] == 0
        assert stats["admission"]["mode"] == "adaptive"
        assert stats["admission"]["decisions"] > 0

        reference = _serial_reference()
        reference_front = sorted(
            tuple(sorted(p.as_row().items())) for p in reference.pareto
        )
        job_a = queue.get(first.job_id)
        job_b = queue.get(second.job_id)
        assert job_a.state == JobState.DONE, job_a.error
        assert job_b.state == JobState.DONE, job_b.error
        assert _front_rows(job_a.result_path) == reference_front
        assert _front_rows(job_b.result_path) == reference_front
        paid = job_a.stats["tool_runs"] + job_b.stats["tool_runs"]
        assert paid == reference.tool_runs

        from repro.cache import open_store

        assert len(open_store(tmp_path / "svc" / "store")) == reference.tool_runs

    def test_submit_wakes_the_idle_claim_loop(self, tmp_path):
        """Event-driven claiming: a submit landing mid-wait is claimed at
        once, not at the next poll tick (which is 5s away here)."""
        server = DseServer(
            tmp_path / "svc",
            capacity=1,
            poll_interval_s=5.0,
            admission="adaptive",
        )
        queue = FileJobQueue(tmp_path / "svc" / "queue")
        done: dict[str, dict] = {}

        def run():
            done["stats"] = server.serve_forever(stop_after=1, max_idle_s=30.0)

        thread = threading.Thread(target=run)
        thread.start()
        try:
            time.sleep(1.0)  # the first (empty) pass is over; loop is mid-wait
            submitted = time.monotonic()
            queue.submit(
                JobSpec(
                    design="cv32e40p-fifo",
                    seed=5,
                    generations=1,
                    population=4,
                    use_model=False,
                )
            )
            thread.join(30.0)
            elapsed = time.monotonic() - submitted
        finally:
            server.stop()
            thread.join(30.0)
        assert not thread.is_alive()
        assert done["stats"]["jobs_done"] == 1
        assert elapsed < 4.0, (
            f"submit->done took {elapsed:.2f}s with a 5s poll tick: the "
            "wake event did not short-circuit the wait"
        )

    def test_cancelled_queued_job_never_runs(self, tmp_path):
        server = DseServer(tmp_path / "svc", capacity=1, poll_interval_s=0.05)
        queue = FileJobQueue(tmp_path / "svc" / "queue")
        record = queue.submit(
            JobSpec(design="cv32e40p-fifo", generations=1, population=4)
        )
        queue.cancel(record.job_id)
        server.serve_forever(stop_after=0, max_idle_s=0.3)
        assert queue.get(record.job_id).state == JobState.CANCELLED
        assert not (tmp_path / "svc" / "results" / record.job_id).exists()

    def test_failed_job_reports_and_server_survives(self, tmp_path):
        server = DseServer(tmp_path / "svc", capacity=1, poll_interval_s=0.05)
        queue = FileJobQueue(tmp_path / "svc" / "queue")
        bad = queue.submit(JobSpec(design="no-such-design"))
        good = queue.submit(
            JobSpec(
                design="cv32e40p-fifo",
                seed=5,
                generations=1,
                population=4,
                use_model=False,
            )
        )
        stats = server.serve_forever(stop_after=2, max_idle_s=10.0)
        assert stats["jobs_failed"] == 1
        assert stats["jobs_done"] == 1
        failed = queue.get(bad.job_id)
        assert failed.state == JobState.FAILED
        assert "no-such-design" in (failed.error or "")
        assert queue.get(good.job_id).state == JobState.DONE
