"""Tests for the shared constant-expression AST and evaluator."""

import pytest

from repro.hdl import expr as E


class TestEvaluate:
    def test_arithmetic(self):
        e = E.BinOp("+", E.Num(2), E.BinOp("*", E.Num(3), E.Num(4)))
        assert E.evaluate(e) == 14

    def test_power(self):
        assert E.evaluate(E.BinOp("**", E.Num(2), E.Num(10))) == 1024

    def test_division_truncates_toward_zero(self):
        assert E.evaluate(E.BinOp("/", E.Num(-7), E.Num(2))) == -3

    def test_mod_and_rem(self):
        assert E.evaluate(E.BinOp("mod", E.Num(-7), E.Num(3))) == 2   # VHDL mod
        assert E.evaluate(E.BinOp("rem", E.Num(-7), E.Num(3))) == -1  # VHDL rem

    def test_shifts(self):
        assert E.evaluate(E.BinOp("<<", E.Num(1), E.Num(5))) == 32
        assert E.evaluate(E.BinOp(">>", E.Num(64), E.Num(3))) == 8

    def test_name_lookup_case_insensitive(self):
        e = E.BinOp("-", E.Name("Width"), E.Num(1))
        assert E.evaluate(e, {"WIDTH": 8}) == 7

    def test_unbound_name_raises(self):
        with pytest.raises(E.EvalError, match="unbound"):
            E.evaluate(E.Name("MISSING"))

    def test_unbound_name_error_names_identifier_and_expression(self):
        expr = E.BinOp("+", E.Name("MISSING"), E.Num(1))
        with pytest.raises(E.EvalError) as err:
            E.evaluate(expr, {"OTHER": 3})
        assert "'MISSING'" in str(err.value)
        assert expr.render() in str(err.value)

    def test_clog2_variants(self):
        for fn in ("$clog2", "clog2", "log2ceil"):
            assert E.evaluate(E.Call(fn, (E.Num(8),))) == 3
            assert E.evaluate(E.Call(fn, (E.Num(9),))) == 4

    def test_clog2_edge_cases(self):
        assert E.evaluate(E.Call("clog2", (E.Num(1),))) == 0
        assert E.evaluate(E.Call("clog2", (E.Num(2),))) == 1
        with pytest.raises(E.EvalError):
            E.evaluate(E.Call("clog2", (E.Num(0),)))

    def test_ternary(self):
        e = E.Cond(E.BinOp(">", E.Name("D"), E.Num(1)),
                   E.Call("clog2", (E.Name("D"),)), E.Num(1))
        assert E.evaluate(e, {"D": 16}) == 4
        assert E.evaluate(e, {"D": 1}) == 1

    def test_boolean_string_coercion(self):
        assert E.evaluate(E.StrLit("TRUE")) == 1
        assert E.evaluate(E.StrLit("false")) == 0
        with pytest.raises(E.EvalError):
            E.evaluate(E.StrLit("hello"))

    def test_unary_operators(self):
        assert E.evaluate(E.UnOp("-", E.Num(5))) == -5
        assert E.evaluate(E.UnOp("!", E.Num(0))) == 1
        assert E.evaluate(E.UnOp("~", E.Num(0))) == -1
        assert E.evaluate(E.UnOp("not", E.Num(3))) == 0

    def test_comparisons_both_dialect_spellings(self):
        assert E.evaluate(E.BinOp("=", E.Num(3), E.Num(3))) == 1
        assert E.evaluate(E.BinOp("==", E.Num(3), E.Num(3))) == 1
        assert E.evaluate(E.BinOp("/=", E.Num(3), E.Num(4))) == 1
        assert E.evaluate(E.BinOp("!=", E.Num(3), E.Num(3))) == 0

    def test_division_by_zero(self):
        with pytest.raises(E.EvalError, match="zero"):
            E.evaluate(E.BinOp("/", E.Num(1), E.Num(0)))

    def test_negative_exponent_rejected(self):
        with pytest.raises(E.EvalError):
            E.evaluate(E.BinOp("**", E.Num(2), E.Num(-1)))

    def test_oversized_shift_rejected_not_materialized(self):
        # 1 << (1 << 60) would be an exabyte-sized integer; the evaluator
        # must reject it instead of stalling the checker.
        huge = E.BinOp("<<", E.Num(1), E.Num(60))
        with pytest.raises(E.EvalError, match="folding bit limit"):
            E.evaluate(E.BinOp("<<", E.Num(1), huge))

    def test_oversized_power_rejected(self):
        with pytest.raises(E.EvalError, match="folding bit limit"):
            E.evaluate(E.BinOp("**", E.Num(2), E.Num(E.FOLD_BIT_LIMIT + 1)))

    def test_large_but_reasonable_results_still_fold(self):
        assert E.evaluate(E.BinOp("<<", E.Num(1), E.Num(4096))) == 1 << 4096
        assert E.evaluate(E.BinOp("**", E.Num(2), E.Num(4096))) == 2**4096

    def test_min_max_functions(self):
        assert E.evaluate(E.Call("maximum", (E.Num(3), E.Num(9)))) == 9
        assert E.evaluate(E.Call("min", (E.Num(3), E.Num(9)))) == 3

    def test_unknown_function_raises(self):
        with pytest.raises(E.EvalError, match="uninterpretable"):
            E.evaluate(E.Call("mystery", (E.Num(1),)))


class TestFreeNames:
    def test_collects_all_references(self):
        e = E.BinOp(
            "+",
            E.Call("clog2", (E.Name("DEPTH"),)),
            E.Cond(E.Name("EN"), E.Name("W"), E.Num(0)),
        )
        assert E.free_names(e) == {"DEPTH", "EN", "W"}

    def test_literals_have_none(self):
        assert E.free_names(E.Num(4)) == set()


class TestRender:
    def test_roundtrip_readable(self):
        e = E.BinOp("-", E.Name("WIDTH"), E.Num(1))
        assert e.render() == "(WIDTH - 1)"

    def test_call_render(self):
        e = E.Call("$clog2", (E.Name("DEPTH"),))
        assert e.render() == "$clog2(DEPTH)"
