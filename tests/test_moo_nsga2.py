"""Tests for the NSGA-II loop and quality indicators/baselines."""

import numpy as np
import pytest

from repro.moo import (
    NSGA2,
    IntegerProblem,
    Objective,
    Termination,
    hypervolume,
    random_search,
)
from repro.moo.baselines import exhaustive_search, pareto_of
from repro.moo.nds import non_dominated_mask


class BiObjective(IntegerProblem):
    """Discrete trade-off: f1 = x, f2 = (X_max - x) plus separable junk."""

    def __init__(self):
        super().__init__(
            [0, 0, 0], [30, 30, 30],
            [Objective.minimize("f1"), Objective.minimize("f2")],
        )
        self.calls = 0

    def evaluate(self, X):
        self.calls += X.shape[0]
        f1 = X[:, 0] + 0.3 * X[:, 2]
        f2 = (30 - X[:, 0]) + 0.3 * X[:, 1]
        return np.stack([f1, f2], axis=1).astype(float)


class TestNSGA2Loop:
    def test_converges_toward_true_front(self):
        p = BiObjective()
        res = NSGA2(pop_size=24).minimize(p, Termination.by_generations(30), seed=3)
        # True Pareto points have x1 = x2 = 0 (junk terms minimized).
        F = res.pareto.F
        # At least some archive Pareto points should have tiny junk penalty.
        slack = (F.sum(axis=1) - 30.0).min()
        assert slack < 2.0

    def test_archive_contains_everything(self):
        p = BiObjective()
        res = NSGA2(pop_size=16).minimize(p, Termination.by_generations(5), seed=0)
        assert len(res.archive) == res.evaluations == p.calls

    def test_pareto_is_nondominated(self):
        p = BiObjective()
        res = NSGA2(pop_size=16).minimize(p, Termination.by_generations(8), seed=0)
        assert non_dominated_mask(res.pareto.F).all()

    def test_duplicate_elimination_unique_archive(self):
        p = BiObjective()
        res = NSGA2(pop_size=16).minimize(p, Termination.by_generations(10), seed=1)
        assert np.unique(res.archive.X, axis=0).shape[0] == len(res.archive)

    def test_deterministic_runs(self):
        out = []
        for _ in range(2):
            p = BiObjective()
            res = NSGA2(pop_size=12).minimize(p, Termination.by_generations(6), seed=9)
            out.append(res.archive.X.tobytes())
        assert out[0] == out[1]

    def test_population_size_kept(self):
        p = BiObjective()
        res = NSGA2(pop_size=20).minimize(p, Termination.by_generations(4), seed=0)
        assert len(res.population) == 20

    def test_on_generation_callback(self):
        seen = []
        p = BiObjective()
        NSGA2(pop_size=12).minimize(
            p, Termination.by_generations(3), seed=0,
            on_generation=lambda g, pop: seen.append((g, len(pop))),
        )
        assert [g for g, _ in seen] == [1, 2, 3]

    def test_simulated_cost_deadline(self):
        p = BiObjective()
        term = Termination.by_soft_deadline(100.0, n_gen=50)
        res = NSGA2(pop_size=12).minimize(
            p, term, seed=0, simulated_cost=lambda n: 30.0
        )
        # 30 s per batch: initial + ~3 generations before 100 s expires.
        assert res.generations < 8

    def test_tiny_space_saturates_gracefully(self):
        class Tiny(IntegerProblem):
            def __init__(self):
                super().__init__([0], [3], [Objective.minimize("f")])

            def evaluate(self, X):
                return X.astype(float)

        res = NSGA2(pop_size=4).minimize(Tiny(), Termination.by_generations(5), seed=0)
        assert len(res.archive) <= 4
        assert res.pareto.X.tolist() == [[0]]

    def test_pop_size_guard(self):
        with pytest.raises(ValueError):
            NSGA2(pop_size=2).minimize(
                BiObjective(), Termination.by_generations(1)
            )

    def test_pareto_raw_units(self):
        class MaxProblem(IntegerProblem):
            def __init__(self):
                super().__init__([0], [10], [Objective.maximize("v"),
                                             Objective.minimize("c")])

            def evaluate(self, X):
                return np.stack([X[:, 0], X[:, 0] ** 2], axis=1).astype(float)

        p = MaxProblem()
        res = NSGA2(pop_size=6).minimize(p, Termination.by_generations(6), seed=0)
        raw = res.pareto_raw(p)
        assert raw[:, 0].max() <= 10  # back in raw (positive) units
        assert (raw[:, 0] >= 0).all()


class TestHypervolume:
    def test_2d_exact(self):
        F = np.array([[1.0, 2.0], [2.0, 1.0]])
        ref = np.array([3.0, 3.0])
        # Union of two boxes: 2*1 + 1*2 - 1*1 = 3... sweep: (3-1)*(3-2)+(3-2)*(2-1)=2+1=3
        assert hypervolume(F, ref) == pytest.approx(3.0)

    def test_dominated_points_ignored(self):
        F = np.array([[1.0, 1.0], [2.0, 2.0]])
        ref = np.array([3.0, 3.0])
        assert hypervolume(F, ref) == pytest.approx(4.0)

    def test_points_outside_ref_ignored(self):
        F = np.array([[4.0, 4.0]])
        assert hypervolume(F, np.array([3.0, 3.0])) == 0.0

    def test_1d(self):
        assert hypervolume(np.array([[2.0]]), np.array([5.0])) == pytest.approx(3.0)

    def test_3d_monte_carlo_close_to_exact(self):
        # Single point: exact box volume.
        F = np.array([[1.0, 1.0, 1.0]])
        ref = np.array([2.0, 2.0, 2.0])
        hv = hypervolume(F, ref, samples=50_000, seed=0)
        assert hv == pytest.approx(1.0, rel=0.05)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            hypervolume(np.array([[1.0, 2.0]]), np.array([1.0]))


class TestBaselines:
    def test_random_search_unique_budget(self):
        p = BiObjective()
        pop = random_search(p, 40, seed=0)
        assert len(pop) == 40
        assert np.unique(pop.X, axis=0).shape[0] == 40

    def test_random_search_respects_small_space(self):
        class Tiny(IntegerProblem):
            def __init__(self):
                super().__init__([0], [4], [Objective.minimize("f")])

            def evaluate(self, X):
                return X.astype(float)

        pop = random_search(Tiny(), 100, seed=0)
        assert len(pop) == 5

    def test_exhaustive_covers_space(self):
        class Tiny(IntegerProblem):
            def __init__(self):
                super().__init__([0, 0], [2, 1], [Objective.minimize("f")])

            def evaluate(self, X):
                return X.sum(axis=1, keepdims=True).astype(float)

        pop = exhaustive_search(Tiny())
        assert len(pop) == 6
        front = pareto_of(pop)
        assert front.X.tolist() == [[0, 0]]

    def test_exhaustive_limit_guard(self):
        p = BiObjective()
        with pytest.raises(ValueError, match="limit"):
            exhaustive_search(p, limit=10)

    def test_nsga2_beats_random_at_equal_budget(self):
        p1 = BiObjective()
        res = NSGA2(pop_size=20).minimize(p1, Termination.by_generations(25), seed=2)
        p2 = BiObjective()
        rs = random_search(p2, res.evaluations, seed=2)
        ref = np.array([45.0, 45.0])
        hv_ga = hypervolume(res.pareto.F, ref)
        hv_rs = hypervolume(pareto_of(rs).F, ref)
        assert hv_ga >= hv_rs
