"""Failure injection: malformed inputs and broken invariants across the stack.

Every subsystem gets fed inputs a hostile or careless user could supply;
the framework must fail *loudly and specifically* (typed exceptions with
actionable messages), never silently mis-evaluate a design point.
"""

import numpy as np
import pytest

from repro.core import DseSession, MetricSpec, ParameterSpace
from repro.core.evaluate import PointEvaluator
from repro.core.spaces import IntRange
from repro.designs import get_design
from repro.errors import (
    ElaborationError,
    FlowError,
    LexError,
    ParseError,
    ReproError,
    TclError,
    UnknownDeviceError,
)
from repro.flow import VivadoSim
from repro.hdl.frontend import parse_source
from repro.tcl import TclInterp


class TestHdlFailures:
    @pytest.mark.parametrize("src", [
        "entity broken is port (a : in std_logic;",   # unterminated port list
        "entity e is generic (N : );  end e;",        # missing type
        'entity e is port (v : in std_logic_vector(7 downto ); end e;',
    ])
    def test_vhdl_garbage_raises_parse_error(self, src):
        with pytest.raises((ParseError, LexError)):
            parse_source(src, "vhdl")

    @pytest.mark.parametrize("src", [
        "module m(input wire [7: d); endmodule",      # broken range
        "module m #(parameter = 3)(input wire c); endmodule",
        "module unclosed(input wire c);",
    ])
    def test_verilog_garbage_raises_parse_error(self, src):
        with pytest.raises((ParseError, LexError)):
            parse_source(src, "verilog")

    def test_vhdl_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            parse_source('entity e is generic (S : string := "oops', "vhdl")

    def test_all_framework_errors_share_base(self):
        """Callers can catch ReproError at the boundary."""
        import repro.errors as E

        for name in dir(E):
            obj = getattr(E, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj in (Exception,):
                    continue
                assert issubclass(obj, ReproError), name


class TestFlowFailures:
    def test_unknown_part(self):
        with pytest.raises(UnknownDeviceError, match="known parts"):
            VivadoSim(part="XC99NOPE")

    def test_capacity_overflow_message_names_resource(self, tirex_design):
        sim = VivadoSim(part="XC7A35T", seed=0)
        sim.read_hdl(tirex_design.source(), tirex_design.language)
        sim.create_clock(1.0)
        with pytest.raises(ReproError) as err:
            sim.run(tirex_design.top, {"NCLUSTER": 8, "INSTR_MEM_SIZE": 64})
        message = str(err.value)
        assert "BRAM" in message or "LUT" in message
        assert "XC7A35T" in message or "provides" in message

    def test_unknown_parameter_override(self, cqm_design):
        sim = VivadoSim(part="XC7K70T", seed=0)
        sim.read_hdl(cqm_design.source(), cqm_design.language)
        with pytest.raises(ElaborationError, match="no parameter"):
            sim.run(cqm_design.top, {"TURBO": 1})

    def test_bad_clock_period(self, k7_sim):
        with pytest.raises(FlowError):
            k7_sim.create_clock(-1.0)


class TestTclFailures:
    def test_deep_garbage_script(self, cqm_design):
        from repro.tcl import VivadoTclSession, bind_vivado_commands

        sim = VivadoSim(part="XC7K70T", seed=0)
        session = VivadoTclSession(sim=sim)
        interp = TclInterp()
        bind_vivado_commands(interp, session)
        with pytest.raises(TclError):
            interp.eval("synth_design")  # missing -top

    @pytest.mark.parametrize("script", [
        "set",                      # wrong arity — reads a missing var name
        "expr 1 +",                 # truncated expression
        'puts "unterminated',       # unbalanced quote
        "set x {unbalanced",        # unbalanced brace
        "frob_the_widgets now",     # unknown command
    ])
    def test_interpreter_rejects_malformed_scripts(self, script):
        with pytest.raises(TclError):
            TclInterp().eval(script)

    def test_error_carries_line_number(self):
        try:
            TclInterp().eval("set a 1\nbogus_command")
        except TclError as exc:
            assert "bogus_command" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected TclError")


class TestDseFailureContainment:
    def test_session_survives_partially_infeasible_space(self, tirex_design):
        """A space where many points overflow the small Artix-7 must not
        crash the exploration; infeasible points are penalized instead."""
        sess = DseSession(
            design=tirex_design, part="XC7A35T", use_model=False, seed=3
        )
        res = sess.explore(generations=4, population=10)
        assert res.stats["infeasible"] > 0
        assert len(res.pareto) >= 1
        # Penalized points never make the front.
        for p in res.pareto:
            assert p.metrics["LUT"] < 1e11

    def test_evaluator_with_impossible_period(self, cqm_design):
        """A 1 ps target period: WNS hugely negative but Fmax still finite
        and positive — Eq. (1) degrades gracefully."""
        ev = PointEvaluator(
            source=cqm_design.source(), language=cqm_design.language,
            top=cqm_design.top, target_period_ns=0.001,
        )
        point = ev.evaluate({})
        assert 0 < point.metrics["frequency"] < 1000

    def test_one_point_space(self, cqm_design):
        space = ParameterSpace([IntRange("OP_TABLE_SIZE", 16, 16)])
        sess = DseSession(
            design=cqm_design, space=space, part="XC7K70T",
            use_model=False, seed=0,
        )
        res = sess.explore(generations=2, population=4)
        assert res.archive_size == 1
        assert len(res.pareto) == 1

    def test_metric_name_typo_fails_fast(self, cqm_design):
        with pytest.raises(ValueError):
            DseSession(
                design=cqm_design,
                metrics=[MetricSpec.minimize("LUTS")],  # typo: LUTS
            )


class TestEstimationFailures:
    def test_control_model_never_estimates_from_thin_data(self):
        from repro.estimation import ControlModel, Dataset, Decision

        cm = ControlModel(
            dataset=Dataset(n_var=1, metric_names=("m",)),
            min_points_to_estimate=5,
        )
        cm.record(np.array([1.0]), np.array([1.0]))
        cm.record(np.array([2.0]), np.array([2.0]))
        # Two points: even a nearby (non-member) query must go to the tool.
        assert cm.decide(np.array([3.0])) == Decision.EVALUATE

    def test_nwm_rejects_shape_mismatch(self):
        from repro.estimation import NadarayaWatson

        with pytest.raises(ValueError):
            NadarayaWatson().fit(np.zeros((3, 1)), np.zeros((4, 1)))

    def test_dataset_rejects_mixed_dimensionality(self):
        from repro.estimation import Dataset

        ds = Dataset(n_var=2, metric_names=("m",))
        with pytest.raises(ValueError):
            ds.add([1.0], [1.0])


class TestBoxingFailures:
    def test_box_of_clockless_module_fails_with_guidance(self):
        from repro.boxing import build_box
        from repro.errors import NoClockPortError

        m = parse_source(
            "module dataflow(input wire a, output wire b); endmodule",
            "verilog",
        )[0]
        with pytest.raises(NoClockPortError, match="clock_port"):
            build_box(m, {})
