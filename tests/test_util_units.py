"""Tests for frequency/period conversions and Eq. (1)."""

import pytest

from repro.util.units import (
    fmax_from_wns,
    fmax_paper_eq1,
    format_mhz,
    mhz_from_ns,
    ns_from_mhz,
)


class TestConversions:
    def test_roundtrip(self):
        assert mhz_from_ns(ns_from_mhz(250.0)) == pytest.approx(250.0)

    def test_known_values(self):
        assert mhz_from_ns(5.0) == pytest.approx(200.0)
        assert ns_from_mhz(1000.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError):
            mhz_from_ns(bad)
        with pytest.raises(ValueError):
            ns_from_mhz(bad)


class TestFmaxFromWns:
    def test_violated_timing(self):
        # 1 ns target, WNS = -4 ns → critical path 5 ns → 200 MHz.
        assert fmax_from_wns(1.0, -4.0) == pytest.approx(200.0)

    def test_met_timing_with_margin(self):
        # 10 ns target, +2 ns slack → 8 ns path → 125 MHz achievable.
        assert fmax_from_wns(10.0, 2.0) == pytest.approx(125.0)

    def test_zero_slack_is_target(self):
        assert fmax_from_wns(4.0, 0.0) == pytest.approx(250.0)

    def test_impossible_slack_raises(self):
        with pytest.raises(ValueError):
            fmax_from_wns(1.0, 2.0)  # slack exceeding the period

    def test_paper_scenario_1ghz_target(self):
        """The paper targets 1 GHz 'to better verify the maximum theoretical
        frequency'; a Corundum-like WNS of -4.1 ns lands near 196 MHz."""
        fmax = fmax_from_wns(1.0, -4.1)
        assert 190 < fmax < 200


class TestVerbatimEq1:
    def test_documented_typo_negative_slack(self):
        """With negative slack the verbatim form approximates the corrected
        one only because |WNS| ≫ T/1000 — e.g. T=1 ns, WNS=-4 ns gives
        249.7 vs 200 MHz.  The divergence shows the published formula is a
        typographical slip."""
        corrected = fmax_from_wns(1.0, -4.0)
        verbatim = fmax_paper_eq1(1.0, -4.0)
        assert corrected == pytest.approx(200.0)
        assert verbatim == pytest.approx(1000.0 / 4.001)
        assert abs(verbatim - corrected) > 10

    def test_documented_typo_positive_slack(self):
        """With positive slack the verbatim denominator goes negative — the
        formula cannot express a met constraint, confirming the typo."""
        with pytest.raises(ValueError):
            fmax_paper_eq1(10.0, 2.0)


class TestFormat:
    def test_mhz(self):
        assert format_mhz(250.0) == "250.0 MHz"

    def test_ghz(self):
        assert format_mhz(1250.0) == "1.25 GHz"
