"""Tests for parallel batch evaluation."""

import pytest

from repro.core.evaluate import PointEvaluator
from repro.core.parallel import (
    EvaluationFailure,
    EvaluatorSpec,
    ParallelPointEvaluator,
    RemoteEvaluationError,
)
from repro.designs import get_design


def _spec(design_name="corundum-cqm", **kw):
    design = get_design(design_name)
    return EvaluatorSpec(
        source=design.source(),
        language=str(design.language),
        top=design.top,
        part=kw.pop("part", "XC7K70T"),
        seed=kw.pop("seed", 3),
        design_name=design_name,
        **kw,
    )


BATCH = [
    {"OP_TABLE_SIZE": 8, "PIPELINE": 2},
    {"OP_TABLE_SIZE": 16, "PIPELINE": 3},
    {"OP_TABLE_SIZE": 24, "PIPELINE": 4},
    {"OP_TABLE_SIZE": 32, "PIPELINE": 5},
]


class TestSpec:
    def test_roundtrip_from_evaluator(self):
        design = get_design("corundum-cqm")
        ev = PointEvaluator(
            source=design.source(), language=design.language, top=design.top,
            part="ZU3EG", seed=7,
        )
        spec = EvaluatorSpec.from_evaluator(ev, design_name="corundum-cqm")
        rebuilt = spec.build()
        assert rebuilt.part == "ZU3EG"
        assert rebuilt.module.name == design.top
        assert rebuilt.metric_names() == ev.metric_names()

    def test_spec_is_picklable(self):
        import pickle

        spec = _spec()
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestSerialPath:
    def test_serial_matches_direct_evaluator(self):
        spec = _spec()
        serial = ParallelPointEvaluator(spec=spec, workers=0)
        batch = serial.evaluate_many(BATCH)
        direct = spec.build()
        for params, point in zip(BATCH, batch):
            ref = direct.evaluate(params)
            assert point.metrics == ref.metrics

    def test_duplicates_dedupped(self):
        spec = _spec()
        serial = ParallelPointEvaluator(spec=spec, workers=0)
        twice = serial.evaluate_many([BATCH[0], BATCH[0]])
        assert twice[0].metrics == twice[1].metrics


class TestParallelPath:
    def test_parallel_equals_serial(self):
        spec = _spec()
        serial = ParallelPointEvaluator(spec=spec, workers=0).evaluate_many(BATCH)
        parallel = ParallelPointEvaluator(spec=spec, workers=2).evaluate_many(BATCH)
        for s, p in zip(serial, parallel):
            assert s.parameters == p.parameters
            assert s.metrics == p.metrics

    def test_parallel_order_preserved(self):
        spec = _spec()
        out = ParallelPointEvaluator(spec=spec, workers=2).evaluate_many(BATCH)
        assert [p.parameters["OP_TABLE_SIZE"] for p in out] == [8, 16, 24, 32]

    def test_parallel_vhdl_design(self):
        spec = _spec(
            design_name="neorv32",
            metrics=(("BRAM", "min"), ("frequency", "max")),
        )
        points = [
            {"MEM_INT_IMEM_SIZE": 2**13},
            {"MEM_INT_IMEM_SIZE": 2**14},
        ]
        out = ParallelPointEvaluator(spec=spec, workers=2).evaluate_many(points)
        assert out[0].metrics["BRAM"] < out[1].metrics["BRAM"]


class TestPersistentPool:
    """The pool must survive across batches: one initializer call per
    worker per evaluator lifetime, never one pool per batch."""

    def test_one_initializer_call_per_worker(self):
        with ParallelPointEvaluator(spec=_spec(), workers=2) as pool:
            pool.evaluate_many(BATCH[:2])
            first_pool = pool._pool
            assert first_pool is not None
            pool.evaluate_many(BATCH[2:])
            assert pool._pool is first_pool

            probes = pool.worker_probes()
            assert probes, "live pool must answer probes"
            pids = {pid for pid, _ in probes}
            assert len(pids) <= 2
            assert all(calls == 1 for _, calls in probes), (
                "worker initializer ran more than once per worker: "
                f"{probes}"
            )

    def test_pool_is_lazy_and_close_idempotent(self):
        pool = ParallelPointEvaluator(spec=_spec(), workers=2)
        assert pool._pool is None
        assert pool.worker_probes() == []
        pool.evaluate_many(BATCH[:1])
        assert pool._pool is not None
        pool.close()
        assert pool._pool is None
        pool.close()  # second close is a no-op
        # Memo survives close: replays need no pool at all.
        out = pool.evaluate_many(BATCH[:1])
        assert pool._pool is None
        assert out[0].source == "cache"

    def test_memo_skips_redispatch_across_batches(self):
        with ParallelPointEvaluator(spec=_spec(), workers=2) as pool:
            first = pool.evaluate_many(BATCH)
            assert pool.dispatched == len(BATCH)
            assert pool.memo_hits == 0
            again = pool.evaluate_many(BATCH)
            assert pool.dispatched == len(BATCH), "memoized points re-dispatched"
            assert pool.memo_hits == len(BATCH)
            for a, b in zip(first, again):
                assert a.metrics == b.metrics
                # Replays are priced exactly like the serial evaluator's
                # own result cache: free, and marked as such.
                assert b.source == "cache"
                assert b.simulated_seconds == 0.0

    def test_memo_key_ignores_param_order_and_case(self):
        with ParallelPointEvaluator(spec=_spec(), workers=0) as pool:
            pool.evaluate_many([{"OP_TABLE_SIZE": 8, "PIPELINE": 2}])
            out = pool.evaluate_many([{"pipeline": 2, "op_table_size": 8}])
            assert pool.dispatched == 1
            assert out[0].source == "cache"


_TIREX_OK = {"NCLUSTER": 1, "STACK_SIZE": 1, "INSTR_MEM_SIZE": 8, "DATA_MEM_SIZE": 8}
_TIREX_OVERFLOW = {"NCLUSTER": 8, "STACK_SIZE": 256, "INSTR_MEM_SIZE": 64, "DATA_MEM_SIZE": 64}


class TestFailurePropagation:
    def test_on_error_return_yields_failure_records(self):
        spec = _spec(design_name="tirex")
        with ParallelPointEvaluator(spec=spec, workers=2) as pool:
            out = pool.evaluate_many(
                [_TIREX_OK, _TIREX_OVERFLOW], on_error="return"
            )
        assert out[0].metrics["LUT"] > 0
        assert isinstance(out[1], EvaluationFailure)
        assert out[1].original_type == "UtilizationOverflowError"

    def test_on_error_raise_restores_original_type_name(self):
        spec = _spec(design_name="tirex")
        with ParallelPointEvaluator(spec=spec, workers=2) as pool:
            with pytest.raises(RemoteEvaluationError) as err:
                pool.evaluate_many([_TIREX_OVERFLOW])
        assert err.value.original_type == "UtilizationOverflowError"


class TestSpawnEquivalence:
    """Bitwise parity under the spawn start method (no inherited state):
    workers must rebuild the evaluator — including a built-in design's
    architectural model via ``design_name`` re-registration — and still
    reproduce the serial evaluator exactly."""

    # BATCH plus a duplicate of its first point, split across the batch:
    # the repeat must come back as a free cache hit in both paths.
    _WITH_DUP = [*BATCH, dict(BATCH[0])]

    def test_spawn_bitwise_equals_serial(self):
        serial = ParallelPointEvaluator(spec=_spec(), workers=0)
        ref = serial.evaluate_many(self._WITH_DUP)
        with ParallelPointEvaluator(
            spec=_spec(), workers=2, start_method="spawn"
        ) as pool:
            out = pool.evaluate_many(self._WITH_DUP)
        for s, p in zip(ref, out):
            assert s.parameters == p.parameters
            assert s.metrics == p.metrics
            assert s.source == p.source
            assert s.simulated_seconds == p.simulated_seconds
        assert out[-1].source == "cache"
        assert out[-1].simulated_seconds == 0.0

    def test_spawn_vhdl_builtin_design(self):
        spec = _spec(
            design_name="neorv32",
            metrics=(("BRAM", "min"), ("frequency", "max")),
        )
        points = [{"MEM_INT_IMEM_SIZE": 2**13}, {"MEM_INT_IMEM_SIZE": 2**14}]
        ref = ParallelPointEvaluator(spec=spec, workers=0).evaluate_many(points)
        with ParallelPointEvaluator(
            spec=spec, workers=2, start_method="spawn"
        ) as pool:
            out = pool.evaluate_many(points)
        for s, p in zip(ref, out):
            assert s.metrics == p.metrics


class TestSubmitMany:
    """Out-of-order scheduling: submit several batches, collect later."""

    def test_pipelined_batches_match_blocking(self):
        spec = _spec()
        ref = ParallelPointEvaluator(spec=spec, workers=0).evaluate_many(BATCH)
        with ParallelPointEvaluator(spec=spec, workers=2) as pool:
            pending = [pool.submit_many(BATCH[:2]), pool.submit_many(BATCH[2:])]
            outs = [r for p in pending for r in p.results()]
        for s, p in zip(ref, outs):
            assert s.parameters == p.parameters
            assert s.metrics == p.metrics

    def test_results_consumed_once(self):
        with ParallelPointEvaluator(spec=_spec(), workers=0) as pool:
            batch = pool.submit_many(BATCH[:1])
            batch.results()
            with pytest.raises(RuntimeError):
                batch.results()

    def test_overlapping_batches_dispatch_once(self):
        """A point already in flight from an earlier batch is never
        re-dispatched by a later one."""
        spec = _spec()
        with ParallelPointEvaluator(spec=spec, workers=2) as pool:
            first = pool.submit_many(BATCH)
            second = pool.submit_many([BATCH[0], BATCH[3]])
            assert pool.dispatched == len(BATCH)
            out_first = first.results()
            out_second = second.results()
        assert out_second[0].metrics == out_first[0].metrics
        assert out_second[1].metrics == out_first[3].metrics
        # The second batch's copies replay as cache-priced answers.
        assert all(p.source == "cache" for p in out_second)
        assert all(p.simulated_seconds == 0.0 for p in out_second)

    def test_done_reports_completion(self):
        with ParallelPointEvaluator(spec=_spec(), workers=0) as pool:
            batch = pool.submit_many(BATCH[:1])
            assert batch.done()  # serial path resolves eagerly
            batch.results()


class TestWorkerProbeFloor:
    def test_probe_count_floor_is_four(self):
        """Even a one-worker pool dispatches several probes (4 × workers,
        floored at 4)."""
        with ParallelPointEvaluator(spec=_spec(), workers=2) as pool:
            pool.evaluate_many(BATCH[:1])
            assert len(pool.worker_probes()) == max(4, 2 * 4)
            assert len(pool.worker_probes(samples=3)) == 3


class TestFailureReplayEconomics:
    def test_memoized_failure_replays_free_with_memo_origin(self):
        """Re-meeting a memoized failure charges zero seconds and leaves
        an ``origin="memo"`` ledger record."""
        from repro.observe import telemetry_session

        spec = _spec(design_name="tirex")
        with telemetry_session() as tel:
            with ParallelPointEvaluator(spec=spec, workers=2) as pool:
                first = pool.evaluate_many([_TIREX_OVERFLOW], on_error="return")
                assert isinstance(first[0], EvaluationFailure)
                assert first[0].simulated_seconds > 0.0
                replay = pool.evaluate_many([_TIREX_OVERFLOW], on_error="return")
            assert isinstance(replay[0], EvaluationFailure)
            assert replay[0].simulated_seconds == 0.0
            assert pool.memo_hits == 1
            record = tel.ledger.records[-1]
            assert record.origin == "memo"
            assert record.outcome == "failed"
            assert record.charge == 0.0
            assert record.error_type == "UtilizationOverflowError"


class TestStoreIntegration:
    def test_pool_consults_and_populates_the_store(self, tmp_path):
        from repro.cache import ResultStore

        spec = _spec()
        store = ResultStore(tmp_path / "store")
        with ParallelPointEvaluator(spec=spec, workers=2, store=store) as pool:
            ref = pool.evaluate_many(BATCH)
            assert pool.store_puts == len(BATCH)
            assert pool.store_hits == 0

        # A brand-new pool (fresh memo) replays everything from disk.
        reborn = ResultStore(tmp_path / "store")
        with ParallelPointEvaluator(spec=spec, workers=2, store=reborn) as pool:
            out = pool.evaluate_many(BATCH)
            assert pool.store_hits == len(BATCH)
            assert pool.dispatched == 0
        for s, p in zip(ref, out):
            assert s.metrics == p.metrics
            assert p.source == "cache"
            assert p.simulated_seconds == 0.0

    def test_stored_failures_replay_without_tool_time(self, tmp_path):
        from repro.cache import ResultStore

        spec = _spec(design_name="tirex")
        store = ResultStore(tmp_path / "store")
        with ParallelPointEvaluator(spec=spec, workers=0, store=store) as pool:
            first = pool.evaluate_many([_TIREX_OVERFLOW], on_error="return")
            assert first[0].simulated_seconds > 0.0

        reborn = ResultStore(tmp_path / "store")
        with ParallelPointEvaluator(spec=spec, workers=0, store=reborn) as pool:
            out = pool.evaluate_many([_TIREX_OVERFLOW], on_error="return")
            assert pool.store_hits == 1
            assert pool.dispatched == 0
        assert isinstance(out[0], EvaluationFailure)
        assert out[0].original_type == "UtilizationOverflowError"
        assert out[0].simulated_seconds == 0.0

    def test_incremental_spec_disables_the_store(self, tmp_path):
        from repro.cache import ResultStore

        spec = _spec(incremental=True)
        store = ResultStore(tmp_path / "store")
        with ParallelPointEvaluator(spec=spec, workers=0, store=store) as pool:
            pool.evaluate_many(BATCH[:2])
            assert pool.store_puts == 0
        assert len(store) == 0
