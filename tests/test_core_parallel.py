"""Tests for parallel batch evaluation."""

import pytest

from repro.core.evaluate import PointEvaluator
from repro.core.parallel import EvaluatorSpec, ParallelPointEvaluator
from repro.designs import get_design


def _spec(design_name="corundum-cqm", **kw):
    design = get_design(design_name)
    return EvaluatorSpec(
        source=design.source(),
        language=str(design.language),
        top=design.top,
        part=kw.pop("part", "XC7K70T"),
        seed=kw.pop("seed", 3),
        design_name=design_name,
        **kw,
    )


BATCH = [
    {"OP_TABLE_SIZE": 8, "PIPELINE": 2},
    {"OP_TABLE_SIZE": 16, "PIPELINE": 3},
    {"OP_TABLE_SIZE": 24, "PIPELINE": 4},
    {"OP_TABLE_SIZE": 32, "PIPELINE": 5},
]


class TestSpec:
    def test_roundtrip_from_evaluator(self):
        design = get_design("corundum-cqm")
        ev = PointEvaluator(
            source=design.source(), language=design.language, top=design.top,
            part="ZU3EG", seed=7,
        )
        spec = EvaluatorSpec.from_evaluator(ev, design_name="corundum-cqm")
        rebuilt = spec.build()
        assert rebuilt.part == "ZU3EG"
        assert rebuilt.module.name == design.top
        assert rebuilt.metric_names() == ev.metric_names()

    def test_spec_is_picklable(self):
        import pickle

        spec = _spec()
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestSerialPath:
    def test_serial_matches_direct_evaluator(self):
        spec = _spec()
        serial = ParallelPointEvaluator(spec=spec, workers=0)
        batch = serial.evaluate_many(BATCH)
        direct = spec.build()
        for params, point in zip(BATCH, batch):
            ref = direct.evaluate(params)
            assert point.metrics == ref.metrics

    def test_duplicates_dedupped(self):
        spec = _spec()
        serial = ParallelPointEvaluator(spec=spec, workers=0)
        twice = serial.evaluate_many([BATCH[0], BATCH[0]])
        assert twice[0].metrics == twice[1].metrics


class TestParallelPath:
    def test_parallel_equals_serial(self):
        spec = _spec()
        serial = ParallelPointEvaluator(spec=spec, workers=0).evaluate_many(BATCH)
        parallel = ParallelPointEvaluator(spec=spec, workers=2).evaluate_many(BATCH)
        for s, p in zip(serial, parallel):
            assert s.parameters == p.parameters
            assert s.metrics == p.metrics

    def test_parallel_order_preserved(self):
        spec = _spec()
        out = ParallelPointEvaluator(spec=spec, workers=2).evaluate_many(BATCH)
        assert [p.parameters["OP_TABLE_SIZE"] for p in out] == [8, 16, 24, 32]

    def test_parallel_vhdl_design(self):
        spec = _spec(
            design_name="neorv32",
            metrics=(("BRAM", "min"), ("frequency", "max")),
        )
        points = [
            {"MEM_INT_IMEM_SIZE": 2**13},
            {"MEM_INT_IMEM_SIZE": 2**14},
        ]
        out = ParallelPointEvaluator(spec=spec, workers=2).evaluate_many(points)
        assert out[0].metrics["BRAM"] < out[1].metrics["BRAM"]
