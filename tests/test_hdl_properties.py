"""Property-based tests (hypothesis) for the HDL frontend.

Strategy: generate random-but-valid interface declarations, render them as
VHDL and Verilog text, and check the parsers recover exactly the declared
structure — a parser/printer round-trip over the declaration subset.
"""

from __future__ import annotations

import keyword

from hypothesis import given, settings, strategies as st

from repro.hdl import expr as E
from repro.hdl.ast import Direction
from repro.hdl.verilog_parser import parse_verilog
from repro.hdl.vhdl_parser import parse_vhdl

_RESERVED = {
    # VHDL + Verilog keywords that must not be identifiers in either dialect
    "entity", "end", "port", "generic", "is", "in", "out", "inout", "buffer",
    "signal", "constant", "module", "endmodule", "input", "output", "wire",
    "reg", "logic", "parameter", "localparam", "begin", "function", "task",
    "integer", "natural", "positive", "boolean", "string", "bit", "downto",
    "to", "of", "architecture", "library", "use", "abs", "not", "and", "or",
    "mod", "rem", "xor", "nor", "nand", "xnor", "sll", "srl", "package",
    "import", "case", "generate", "if", "else", "for", "while", "int",
}


def _identifier():
    return (
        st.from_regex(r"[a-z][a-z0-9_]{0,11}", fullmatch=True)
        .filter(lambda s: s not in _RESERVED and not s.endswith("_") and "__" not in s)
        .filter(lambda s: not keyword.iskeyword(s))
    )


@st.composite
def interface(draw):
    """A random interface: unique param names/values, unique port names."""
    n_params = draw(st.integers(0, 4))
    n_ports = draw(st.integers(1, 6))
    names = draw(
        st.lists(
            _identifier(), min_size=n_params + n_ports + 1,
            max_size=n_params + n_ports + 1, unique=True,
        )
    )
    params = [(names[i], draw(st.integers(1, 4096))) for i in range(n_params)]
    ports = []
    for i in range(n_ports):
        name = names[n_params + i]
        direction = draw(st.sampled_from(["in", "out", "inout"]))
        width = draw(st.integers(1, 64))
        ports.append((name, direction, width))
    module_name = names[-1]
    return module_name, params, ports


def _render_vhdl(module_name, params, ports) -> str:
    lines = [f"entity {module_name} is"]
    if params:
        decls = ";\n    ".join(f"{n} : natural := {v}" for n, v in params)
        lines.append(f"  generic (\n    {decls}\n  );")
    pdecls = []
    for name, direction, width in ports:
        vdir = {"in": "in", "out": "out", "inout": "inout"}[direction]
        if width == 1:
            pdecls.append(f"{name} : {vdir} std_logic")
        else:
            pdecls.append(f"{name} : {vdir} std_logic_vector({width - 1} downto 0)")
    lines.append("  port (\n    " + ";\n    ".join(pdecls) + "\n  );")
    lines.append(f"end entity {module_name};")
    return "\n".join(lines)


def _render_verilog(module_name, params, ports) -> str:
    lines = [f"module {module_name}"]
    if params:
        decls = ",\n    ".join(f"parameter {n} = {v}" for n, v in params)
        lines.append(f"#(\n    {decls}\n)")
    pdecls = []
    for name, direction, width in ports:
        vdir = {"in": "input", "out": "output", "inout": "inout"}[direction]
        if width == 1:
            pdecls.append(f"{vdir} wire {name}")
        else:
            pdecls.append(f"{vdir} wire [{width - 1}:0] {name}")
    lines.append("(\n    " + ",\n    ".join(pdecls) + "\n);")
    lines.append("endmodule")
    return "\n".join(lines)


_DIR = {"in": Direction.IN, "out": Direction.OUT, "inout": Direction.INOUT}


@settings(max_examples=60, deadline=None)
@given(interface())
def test_vhdl_roundtrip(spec):
    module_name, params, ports = spec
    source = _render_vhdl(module_name, params, ports)
    module = parse_vhdl(source)[0]
    assert module.name == module_name
    assert [(p.name, p.default_value()) for p in module.parameters] == params
    got_ports = [
        (p.name, p.direction, p.width(module.default_environment()))
        for p in module.ports
    ]
    assert got_ports == [(n, _DIR[d], w) for n, d, w in ports]


@settings(max_examples=60, deadline=None)
@given(interface())
def test_verilog_roundtrip(spec):
    module_name, params, ports = spec
    source = _render_verilog(module_name, params, ports)
    module = parse_verilog(source)[0]
    assert module.name == module_name
    assert [(p.name, p.default_value()) for p in module.parameters] == params
    got_ports = [
        (p.name, p.direction, p.width(module.default_environment()))
        for p in module.ports
    ]
    assert got_ports == [(n, _DIR[d], w) for n, d, w in ports]


@settings(max_examples=40, deadline=None)
@given(
    st.integers(-4096, 4096),
    st.integers(-4096, 4096),
    st.integers(1, 12),
)
def test_expr_eval_matches_python(a, b, shift):
    """Spot-check operator semantics against Python ints."""
    assert E.evaluate(E.BinOp("+", E.Num(a), E.Num(b))) == a + b
    assert E.evaluate(E.BinOp("*", E.Num(a), E.Num(b))) == a * b
    assert E.evaluate(E.BinOp("<<", E.Num(abs(a)), E.Num(shift))) == abs(a) << shift
    if b != 0:
        assert E.evaluate(E.BinOp("/", E.Num(a), E.Num(b))) == int(a / b)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 2**20))
def test_clog2_property(n):
    """clog2(n) is the smallest k with 2^k >= n."""
    k = E.evaluate(E.Call("clog2", (E.Num(n),)))
    assert 2**k >= n
    assert k == 0 or 2 ** (k - 1) < n
