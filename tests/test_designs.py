"""Tests for the case-study design generators and their cost models."""

import pytest

from repro.designs import all_designs, get_design
from repro.flow import VivadoSim
from repro.hdl.frontend import parse_source
from repro.hdl.validate import lint_module, Severity
from repro.synth.elaborate import elaborate


class TestLibrary:
    def test_all_designs_instantiable(self):
        designs = all_designs()
        assert set(designs) == {
            "cv32e40p-fifo", "cv32e40p", "corundum-cqm", "neorv32", "tirex"
        }

    def test_get_by_name_and_top(self):
        assert get_design("tirex").top == "tirex_top"
        assert get_design("fifo_v3").name == "cv32e40p-fifo"

    def test_unknown_design(self):
        with pytest.raises(KeyError, match="built-ins"):
            get_design("mystery")

    def test_sources_parse_cleanly(self):
        for gen in all_designs().values():
            module = gen.module()
            assert module.name.lower() == gen.top.lower()
            errors = [
                f for f in lint_module(module) if f.severity == Severity.ERROR
            ]
            assert not errors, f"{gen.name}: {errors}"

    def test_every_explored_param_exists_in_module(self):
        for gen in all_designs().values():
            module = gen.module()
            declared = {p.name.lower() for p in module.free_parameters()}
            for info in gen.params:
                assert info.name.lower() in declared, (gen.name, info.name)

    def test_default_overrides_are_legal(self):
        for gen in all_designs().values():
            netlist = elaborate(gen.module(), gen.default_overrides())
            assert len(netlist) > 0


def _run(gen, part, params, seed=1):
    sim = VivadoSim(part=part, seed=seed, noise=False)
    sim.read_hdl(gen.source(), gen.language)
    sim.create_clock(1.0)
    return sim.run(gen.top, params)


class TestFifoModel:
    """cv32e40p FIFO — Section IV-A shapes."""

    def test_resources_monotone_in_depth(self, fifo_design):
        lut, ff = [], []
        for depth in (8, 64, 500):
            r = _run(fifo_design, "XC7K70T", {"DEPTH": depth})
            lut.append(r.metric("LUT"))
            ff.append(r.metric("FF"))
        assert lut == sorted(lut)

    def test_bram_step_at_distributed_threshold(self, fifo_design):
        small = _run(fifo_design, "XC7K70T", {"DEPTH": 16, "DATA_WIDTH": 32})
        large = _run(fifo_design, "XC7K70T", {"DEPTH": 256, "DATA_WIDTH": 32})
        assert small.metric("BRAM") == 0   # 512 bits: LUTRAM
        assert large.metric("BRAM") >= 1   # 8192 bits: block RAM

    def test_frequency_decreases_with_depth(self, fifo_design):
        fast = _run(fifo_design, "XC7K70T", {"DEPTH": 8})
        slow = _run(fifo_design, "XC7K70T", {"DEPTH": 500})
        assert fast.fmax_mhz > slow.fmax_mhz


class TestCorundumModel:
    """Corundum CQM — Section IV-B / Table I / Fig. 4 shapes."""

    def test_bram_constant_across_explored_knobs(self, cqm_design):
        brams = {
            _run(cqm_design, "XC7K70T",
                 {"OP_TABLE_SIZE": o, "QUEUE_COUNT": q, "PIPELINE": p}).metric("BRAM")
            for o, q, p in [(8, 4, 2), (35, 7, 5), (16, 5, 3)]
        }
        assert len(brams) == 1  # the paper: "constant in the number of BRAMs"

    def test_pipeline_raises_frequency_and_ff(self, cqm_design):
        p2 = _run(cqm_design, "XC7K70T", {"PIPELINE": 2})
        p5 = _run(cqm_design, "XC7K70T", {"PIPELINE": 5})
        assert p5.fmax_mhz > p2.fmax_mhz
        assert p5.metric("FF") > p2.metric("FF")

    def test_op_table_grows_area(self, cqm_design):
        small = _run(cqm_design, "XC7K70T", {"OP_TABLE_SIZE": 8})
        big = _run(cqm_design, "XC7K70T", {"OP_TABLE_SIZE": 35})
        assert big.metric("LUT") > small.metric("LUT")
        assert big.metric("FF") > small.metric("FF")

    def test_frequency_near_200mhz(self, cqm_design):
        """Paper: 'this module achieves a running frequency near 200 MHz'."""
        r = _run(cqm_design, "XC7K70T", {"OP_TABLE_SIZE": 16, "PIPELINE": 3})
        assert 140 < r.fmax_mhz < 260


class TestNeorvModel:
    """Neorv32 — Section IV-C / Fig. 5 shapes."""

    def test_bram_jump_at_2_15(self, neorv_design):
        def brams(exp):
            return _run(
                neorv_design, "XC7K70T",
                {"MEM_INT_IMEM_SIZE": 2**exp, "MEM_INT_DMEM_SIZE": 2**exp},
            ).metric("BRAM")

        b13, b14, b15 = brams(13), brams(14), brams(15)
        assert b13 < b14 < b15
        # The 2^14→2^15 step is the big one the paper highlights.
        assert (b15 - b14) > (b14 - b13)

    def test_other_metrics_nearly_unchanged(self, neorv_design):
        """'leaving almost unchanged the other metrics'."""
        r14 = _run(neorv_design, "XC7K70T",
                   {"MEM_INT_IMEM_SIZE": 2**14, "MEM_INT_DMEM_SIZE": 2**14})
        r15 = _run(neorv_design, "XC7K70T",
                   {"MEM_INT_IMEM_SIZE": 2**15, "MEM_INT_DMEM_SIZE": 2**15})
        assert r15.metric("LUT") == pytest.approx(r14.metric("LUT"), rel=0.05)
        assert r15.fmax_mhz == pytest.approx(r14.fmax_mhz, rel=0.10)


class TestTirexModel:
    """TiReX — Section IV-D / Figs. 6-7 / Table II shapes."""

    def test_ncluster_hurts_both_area_and_speed(self, tirex_design):
        one = _run(tirex_design, "XC7K70T", {"NCLUSTER": 1})
        four = _run(tirex_design, "XC7K70T", {"NCLUSTER": 4})
        assert four.metric("LUT") > one.metric("LUT")
        assert four.fmax_mhz < one.fmax_mhz

    def test_technology_gap(self, tirex_design):
        params = {"NCLUSTER": 1, "STACK_SIZE": 8,
                  "INSTR_MEM_SIZE": 8, "DATA_MEM_SIZE": 8}
        k7 = _run(tirex_design, "XC7K70T", params)
        zu = _run(tirex_design, "ZU3EG", params)
        # Paper: ~190 MHz vs ~550 MHz on near-identical configurations.
        assert 150 < k7.fmax_mhz < 240
        assert 420 < zu.fmax_mhz < 650
        assert zu.fmax_mhz / k7.fmax_mhz > 2.0

    def test_memories_drive_bram(self, tirex_design):
        small = _run(tirex_design, "XC7K70T",
                     {"INSTR_MEM_SIZE": 8, "DATA_MEM_SIZE": 8})
        big = _run(tirex_design, "XC7K70T",
                   {"INSTR_MEM_SIZE": 32, "DATA_MEM_SIZE": 32})
        assert big.metric("BRAM") > small.metric("BRAM")


class TestCv32e40pModel:
    """cv32e40p core-level model (the IP whose FIFO Section IV-A studies)."""

    def _gen(self):
        from repro.designs import cv32e40p

        return cv32e40p.generator()

    def test_base_footprint_anchor(self):
        """Public cv32e40p FPGA results: ~5-7k LUTs base configuration."""
        r = _run(self._gen(), "XC7K70T", {"FPU": 0, "PULP_XPULP": 0})
        assert 4000 < r.metric("LUT") < 8000
        assert 2000 < r.metric("FF") < 5000

    def test_fpu_adds_area_and_dsps_and_slows(self):
        gen = self._gen()
        base = _run(gen, "XC7K70T", {"FPU": 0})
        fpu = _run(gen, "XC7K70T", {"FPU": 1})
        assert fpu.metric("LUT") > 1.4 * base.metric("LUT")
        assert fpu.metric("DSP") > base.metric("DSP")
        assert fpu.fmax_mhz < base.fmax_mhz

    def test_xpulp_widens_datapath(self):
        gen = self._gen()
        base = _run(gen, "XC7K70T", {"PULP_XPULP": 0})
        xpulp = _run(gen, "XC7K70T", {"PULP_XPULP": 1})
        assert xpulp.metric("LUT") > base.metric("LUT")

    def test_counters_scale_linearly_in_ff(self):
        gen = self._gen()
        ffs = [
            _run(gen, "XC7K70T", {"NUM_MHPMCOUNTERS": n}).metric("FF")
            for n in (0, 10, 29)
        ]
        assert ffs[0] < ffs[1] < ffs[2]
        # Roughly 64 FF per counter:
        per_counter = (ffs[2] - ffs[0]) / 29
        assert 50 < per_counter < 80

    def test_registered_in_library(self):
        from repro.designs import all_designs

        assert "cv32e40p" in all_designs()

    def test_dse_over_core_knobs(self):
        from repro.core import DseSession, MetricSpec

        sess = DseSession(
            design=self._gen(), part="XC7K70T",
            metrics=[MetricSpec.minimize("LUT"),
                     MetricSpec.maximize("frequency")],
            use_model=False, seed=2,
        )
        res = sess.explore(generations=3, population=8)
        # FPU-less configurations dominate this 2-objective view.
        assert all(p.parameters["FPU"] == 0 for p in res.pareto)
