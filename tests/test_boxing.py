"""Tests for the boxing step (Listing 1 semantics)."""

import pytest

from repro.boxing import build_box
from repro.errors import NoClockPortError, ParameterOverrideError
from repro.flow import VivadoSim
from repro.hdl.frontend import parse_source


class TestVhdlBox:
    def test_matches_listing1_shape(self, neorv_design):
        box = build_box(neorv_design.module(), {"MEM_INT_IMEM_SIZE": 2**14})
        src = box.source
        assert "entity box is" in src
        assert "clk : in std_logic" in src
        assert 'attribute DONT_TOUCH of BOXED : label is "TRUE";' in src
        assert "BOXED: entity work.neorv32_top" in src
        assert "MEM_INT_IMEM_SIZE => 16384" in src

    def test_box_source_reparses(self, neorv_design):
        box = build_box(neorv_design.module(), {})
        m = parse_source(box.source, "vhdl")[0]
        assert m.name == "box"
        assert [p.name for p in m.ports] == ["clk"]

    def test_boolean_generics_render_as_vhdl(self, neorv_design):
        box = build_box(neorv_design.module(), {})
        assert "CPU_EXTENSION_RISCV_C => true" in box.source

    def test_clock_port_mapped(self, neorv_design):
        box = build_box(neorv_design.module(), {})
        assert "clk_i => clk" in box.source
        assert box.clock_port == "clk_i"

    def test_other_ports_tied_to_signals(self, neorv_design):
        box = build_box(neorv_design.module(), {})
        assert "signal s_gpio_o : std_logic_vector(31 downto 0);" in box.source
        assert "gpio_o => s_gpio_o" in box.source


class TestVerilogBox:
    def test_structure(self, cqm_design):
        box = build_box(cqm_design.module(), {"OP_TABLE_SIZE": 24})
        src = box.source
        assert '(* DONT_TOUCH = "TRUE" *)' in src
        assert ".OP_TABLE_SIZE(24)" in src
        assert ".clk(clk)" in src
        assert "cpl_queue_manager #(" in src

    def test_reparses(self, cqm_design):
        box = build_box(cqm_design.module(), {})
        m = parse_source(box.source, "verilog")[0]
        assert m.name == "box"
        assert len(m.ports) == 1

    def test_sv_module_box(self, fifo_design):
        box = build_box(fifo_design.module(), {"DEPTH": 64})
        assert ".DEPTH(64)" in box.source
        assert box.clock_port == "clk_i"


class TestOverrides:
    def test_unknown_parameter_rejected(self, cqm_design):
        with pytest.raises(ParameterOverrideError, match="GHOST"):
            build_box(cqm_design.module(), {"GHOST": 1})

    def test_localparam_rejected(self, cqm_design):
        with pytest.raises(ParameterOverrideError):
            build_box(cqm_design.module(), {"CL_OP_TABLE_SIZE": 3})

    def test_case_insensitive_canonicalization(self, cqm_design):
        box = build_box(cqm_design.module(), {"op_table_size": 20})
        assert box.overrides == {"OP_TABLE_SIZE": 20}


class TestClockSelection:
    def test_no_clock_raises(self):
        m = parse_source("entity e is port (d : in std_logic); end e;", "vhdl")[0]
        with pytest.raises(NoClockPortError):
            build_box(m, {})

    def test_explicit_clock(self):
        m = parse_source(
            "entity e is port (tick : in std_logic; d : in std_logic); end e;",
            "vhdl",
        )[0]
        box = build_box(m, {}, clock_port="tick")
        assert box.clock_port == "tick"

    def test_explicit_unknown_clock_raises(self, cqm_design):
        with pytest.raises(KeyError):
            build_box(cqm_design.module(), {}, clock_port="nope")


class TestBoxedFlow:
    def test_boxed_run_has_one_io(self, neorv_design):
        sim = VivadoSim(part="XC7K70T", seed=1)
        sim.read_hdl(neorv_design.source(), neorv_design.language)
        box = build_box(neorv_design.module(), {"MEM_INT_IMEM_SIZE": 2**13})
        box.install(sim)
        sim.create_clock(1.0)
        result = sim.run(box.top)
        assert result.metric("IO") == 1

    def test_box_ring_adds_interface_registers(self, neorv_design):
        sim_boxed = VivadoSim(part="XC7K70T", seed=1, noise=False)
        sim_boxed.read_hdl(neorv_design.source(), neorv_design.language)
        box = build_box(neorv_design.module(), {})
        box.install(sim_boxed)
        sim_boxed.create_clock(1.0)
        boxed = sim_boxed.run(box.top)

        sim_raw = VivadoSim(part="XC7K70T", seed=1, noise=False)
        sim_raw.read_hdl(neorv_design.source(), neorv_design.language)
        sim_raw.create_clock(1.0)
        raw = sim_raw.run(neorv_design.top, {})
        # 66 non-clock port bits land in the ring.
        assert boxed.metric("FF") > raw.metric("FF")

    def test_unique_box_names_for_distinct_points(self, cqm_design):
        a = build_box(cqm_design.module(), {"OP_TABLE_SIZE": 8}, box_name="box_a")
        b = build_box(cqm_design.module(), {"OP_TABLE_SIZE": 9}, box_name="box_b")
        assert a.top != b.top
        assert a.source != b.source
