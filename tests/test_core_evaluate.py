"""Tests for metrics extraction and the single-point evaluation flow."""

import pytest

from repro.core.evaluate import PointEvaluator
from repro.core.metrics import MetricSpec, default_metrics, metrics_from_reports
from repro.directives import DirectiveSet, SynthDirective
from repro.flow.vivado_sim import FlowStep
from repro.moo.problem import Sense


class TestMetricSpec:
    def test_frequency_and_resources_legal(self):
        MetricSpec.maximize("frequency")
        MetricSpec.minimize("LUT")
        MetricSpec.minimize("bram")

    def test_unknown_resource_rejected(self):
        with pytest.raises(ValueError):
            MetricSpec.minimize("GATES")

    def test_canonical_names(self):
        assert MetricSpec.minimize("lut").canonical_name() == "LUT"
        assert MetricSpec.maximize("Frequency").canonical_name() == "frequency"

    def test_default_metrics(self):
        specs = default_metrics()
        assert [s.canonical_name() for s in specs] == ["LUT", "frequency"]
        assert specs[1].sense == Sense.MAXIMIZE


class TestMetricsFromReports:
    def test_extraction(self):
        from repro.devices import ResourceVector, UtilizationReport
        from repro.flow.reports import render_timing_report, render_utilization_report

        util = render_utilization_report(
            UtilizationReport(
                used=ResourceVector.of(LUT=500, FF=700, BRAM=2),
                available=ResourceVector.of(LUT=41000, FF=82000, BRAM=135),
            ),
            "dut", "XC7K70T",
        )
        timing = render_timing_report(-4.0, 1.0, 5.0, ("a",), 3)
        out = metrics_from_reports(
            util, timing,
            [MetricSpec.minimize("LUT"), MetricSpec.minimize("BRAM"),
             MetricSpec.maximize("frequency")],
        )
        assert out["LUT"] == 500
        assert out["BRAM"] == 2
        assert out["frequency"] == pytest.approx(200.0)


class TestPointEvaluator:
    def _evaluator(self, design, **kw):
        return PointEvaluator(
            source=design.source(),
            language=design.language,
            top=design.top,
            part=kw.pop("part", "XC7K70T"),
            **kw,
        )

    def test_basic_evaluation(self, cqm_design):
        ev = self._evaluator(cqm_design)
        point = ev.evaluate({"OP_TABLE_SIZE": 16, "PIPELINE": 3})
        assert point.metrics["LUT"] > 0
        assert point.metrics["frequency"] > 50
        assert point.source == "tool"
        assert point.simulated_seconds > 0

    def test_unknown_top_raises(self, cqm_design):
        with pytest.raises(LookupError, match="not found"):
            PointEvaluator(
                source=cqm_design.source(),
                language=cqm_design.language,
                top="ghost",
            )

    def test_repeat_evaluation_cached(self, cqm_design):
        ev = self._evaluator(cqm_design)
        first = ev.evaluate({"OP_TABLE_SIZE": 20})
        second = ev.evaluate({"OP_TABLE_SIZE": 20})
        assert second.source == "cache"
        assert second.metrics == first.metrics
        assert second.simulated_seconds == 0.0

    def test_script_generated_per_point(self, cqm_design):
        ev = self._evaluator(cqm_design)
        ev.evaluate({"OP_TABLE_SIZE": 8})
        script_a = ev.last_script
        ev.evaluate({"OP_TABLE_SIZE": 9})
        script_b = ev.last_script
        assert script_a != script_b
        assert "synth_design" in script_a
        assert "report_utilization" in script_a

    def test_boxed_top_unique_per_point(self, cqm_design):
        ev = self._evaluator(cqm_design)
        assert ev._box_top({"A": 1}) != ev._box_top({"A": 2})
        assert ev._box_top({"a": 1}) == ev._box_top({"A": 1})

    def test_boxed_top_survives_32bit_hash_collision(self, cqm_design):
        # These two bindings collide on the low 32 bits of the stable
        # hash (found by brute force); a 32-bit box tag would silently
        # share one cached RunResult between two distinct design points.
        from repro.util.rng import stable_hash_seed

        a, b = {"DEPTH": 132581}, {"DEPTH": 171644}
        ha = stable_hash_seed(sorted((k.lower(), v) for k, v in a.items()))
        hb = stable_hash_seed(sorted((k.lower(), v) for k, v in b.items()))
        assert ha & 0xFFFFFFFF == hb & 0xFFFFFFFF, "collision pair went stale"
        ev = self._evaluator(cqm_design)
        assert ev._box_top(a) != ev._box_top(b)

    def test_synthesis_step_cheaper(self, cqm_design):
        impl = self._evaluator(cqm_design)
        synth = self._evaluator(cqm_design, step=FlowStep.SYNTHESIS)
        pi = impl.evaluate({"OP_TABLE_SIZE": 12})
        ps = synth.evaluate({"OP_TABLE_SIZE": 12})
        assert ps.simulated_seconds < pi.simulated_seconds

    def test_unboxed_passes_generics(self, cqm_design):
        ev = self._evaluator(cqm_design, boxed=False)
        point = ev.evaluate({"OP_TABLE_SIZE": 24})
        assert "-generic OP_TABLE_SIZE=24" in ev.last_script
        assert point.metrics["LUT"] > 0

    def test_directives_respected(self, cqm_design):
        base = self._evaluator(cqm_design)
        area = self._evaluator(
            cqm_design,
            directives=DirectiveSet(synth=SynthDirective.AREA_OPTIMIZED_HIGH),
        )
        pb = base.evaluate({"OP_TABLE_SIZE": 32})
        pa = area.evaluate({"OP_TABLE_SIZE": 32})
        assert pa.metrics["LUT"] < pb.metrics["LUT"]

    def test_custom_metrics(self, cqm_design):
        ev = self._evaluator(
            cqm_design,
            metrics=[MetricSpec.minimize("FF"), MetricSpec.minimize("BRAM")],
        )
        point = ev.evaluate({})
        assert set(point.metrics) == {"FF", "BRAM"}

    def test_vhdl_design_evaluates(self, neorv_design):
        ev = self._evaluator(neorv_design)
        point = ev.evaluate({"MEM_INT_IMEM_SIZE": 2**13})
        assert point.metrics["LUT"] > 1000

    def test_evaluate_many(self, cqm_design):
        ev = self._evaluator(cqm_design)
        points = ev.evaluate_many([{"OP_TABLE_SIZE": v} for v in (8, 10)])
        assert len(points) == 2
        assert points[0].parameters != points[1].parameters

    def test_reports_exposed(self, cqm_design):
        ev = self._evaluator(cqm_design)
        ev.evaluate({})
        assert "Utilization" in ev.last_reports["utilization"]
        assert "WNS" in ev.last_reports["timing"]
