"""Tier-1 smoke run of the perf-engine microbenchmark.

The benchmark harness (``benchmarks/perf_engine.py``) asserts the
engine's correctness contracts — bitwise-identical Pareto fronts and
cost accounting for the persistent pool, bitwise-identical final model
state for the incremental refit policy — independent of timing.  This
test runs it at smoke sizes so every tier-1 run exercises those
contracts; timings are recorded by the harness but never thresholded
here (one-core CI cannot show pool speedup).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from perf_engine import run_perf_engine  # noqa: E402


def test_perf_engine_smoke():
    payload = run_perf_engine(smoke=True)
    assert payload["smoke"] is True
    assert all(d["identical"] for d in payload["dse_pool"])
    assert payload["refit"]["identical"]
    # The smoke refit still exercises both policies end to end.
    assert payload["refit"]["incremental_refits"] < payload["refit"]["full_refits"]
    # Warm store: every smoke evaluation replays from the store (host
    # independent, so thresholded even at smoke sizes).
    warm = payload["warm_store"]
    assert warm["identical"]
    assert warm["tool_run_ratio"] >= 5.0
    # Out-of-order scheduling: identity always holds; the speedup bar is
    # only enforced at full benchmark sizes.
    assert payload["ooo"]["identical"]
    # Fidelity gate: the gate-off identity and the regret budget hold at
    # smoke sizes (both are deterministic); the >=2x reduction floor only
    # applies to the full benchmark, where the run is long enough for the
    # calibration warm-up to amortize.
    gate = payload["fidelity_gate"]
    assert gate["identical_off"]
    assert gate["hv_regret"] <= 0.01
    assert gate["skipped"] > 0, "smoke run too small for the gate to ever skip"
    assert gate["gated_simulated_s"] < gate["full_simulated_s"]
    # Serve throughput: fronts and the combined tool-run bill are
    # host-independent, so both hold at smoke sizes; the >=1.3x speedup
    # floor only applies to the full benchmark.
    serve = payload["serve"]
    assert serve["identical"]
    assert serve["combined_tool_runs"] == serve["serial_tool_runs"]
