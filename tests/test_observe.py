"""Unit tests for the telemetry layer (``repro.observe``)."""

import json

import pytest

from repro.observe import (
    Counters,
    GenerationStat,
    LedgerRecord,
    RunLedger,
    Telemetry,
    Tracer,
    current_telemetry,
    disable_telemetry,
    enable_telemetry,
    read_trace,
    render_summary,
    render_trace_summary,
    span,
    telemetry_session,
    validate_trace,
    write_trace,
)
from repro.observe.schema import validate_lines
from repro.observe.tracer import NULL_SPAN


class TestTracer:
    def test_nested_spans_build_paths(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            outer.charge(10.0)
            with tracer.span("inner") as inner:
                inner.charge(2.5)
        totals = tracer.as_dict()
        assert set(totals) == {"outer", "outer/inner"}
        assert totals["outer"]["count"] == 1
        assert totals["outer"]["sim_s"] == 10.0
        assert totals["outer/inner"]["sim_s"] == 2.5
        assert totals["outer"]["wall_s"] >= 0.0

    def test_repeated_spans_accumulate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("step") as sp:
                sp.charge(1.0)
        assert tracer.as_dict()["step"]["count"] == 3
        assert tracer.total_sim_s() == 3.0

    def test_merge_folds_worker_totals(self):
        parent, worker = Tracer(), Tracer()
        with parent.span("flow.synthesis") as sp:
            sp.charge(5.0)
        with worker.span("flow.synthesis") as sp:
            sp.charge(7.0)
        parent.merge(worker.drain())
        assert parent.as_dict()["flow.synthesis"]["count"] == 2
        assert parent.as_dict()["flow.synthesis"]["sim_s"] == 12.0
        assert worker.as_dict() == {}

    def test_span_exits_cleanly_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.as_dict()["boom"]["count"] == 1
        # The stack unwound: a new span is top-level again.
        with tracer.span("after"):
            pass
        assert "after" in tracer.as_dict()


class TestTelemetryState:
    def test_disabled_by_default_and_null_span(self):
        disable_telemetry()
        assert current_telemetry() is None
        assert span("anything") is NULL_SPAN
        with span("anything") as sp:
            sp.charge(99.0)  # swallowed by the no-op span

    def test_enable_disable_cycle(self):
        tel = enable_telemetry()
        assert current_telemetry() is tel
        assert span("x") is not NULL_SPAN
        disable_telemetry()
        assert current_telemetry() is None

    def test_session_restores_prior_state(self):
        disable_telemetry()
        with telemetry_session() as tel:
            assert current_telemetry() is tel
            with telemetry_session() as inner:
                assert current_telemetry() is inner
            assert current_telemetry() is tel
        assert current_telemetry() is None


class TestLedger:
    def test_append_assigns_contiguous_indexes(self):
        ledger = RunLedger()
        ledger.append(params={"A": 1}, outcome="tool", charge=3.0)
        ledger.append(params={"A": 2}, outcome="cache")
        assert [r.index for r in ledger] == [0, 1]
        assert ledger.total_charge() == 3.0
        assert ledger.counts()["tool"] == 1

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError):
            LedgerRecord(index=0, params={}, outcome="guessed")

    def test_jsonl_round_trip_identity(self, tmp_path):
        ledger = RunLedger()
        ledger.append(
            params={"DEPTH": 8}, outcome="tool",
            metrics={"LUT": 120.0, "frequency": 410.5},
            charge=123.4, wall_s=0.01,
        )
        ledger.append(
            params={"DEPTH": 9}, outcome="failed",
            charge=50.0, error_type="UtilizationOverflowError",
            origin="worker",
        )
        ledger.append(params={"DEPTH": 8}, outcome="cache", origin="memo")
        path = ledger.to_jsonl(tmp_path / "ledger.jsonl")
        back = RunLedger.from_jsonl(path)
        assert list(back) == list(ledger)

    def test_extend_from_reindexes_and_stamps_origin(self):
        worker = RunLedger()
        worker.append(params={"A": 1}, outcome="tool", charge=2.0)
        parent = RunLedger()
        parent.append(params={"B": 2}, outcome="estimate")
        parent.extend_from(worker.drain(), origin="worker")
        assert [r.index for r in parent] == [0, 1]
        assert parent.records[1].origin == "worker"
        assert len(worker) == 0


class TestCounters:
    def test_inc_add_merge_drain(self):
        c = Counters()
        c.inc("decision.cached")
        c.inc("decision.cached")
        c.add("budget.charged_s", 1.5)
        other = Counters()
        other.inc("decision.cached", by=3)
        c.merge(other.drain())
        assert c.get("decision.cached") == 5
        assert c.get("budget.charged_s") == 1.5
        assert len(other) == 0


class TestTraceFile:
    def _bundle(self) -> Telemetry:
        tel = Telemetry()
        with tel.tracer.span("flow.synthesis") as sp:
            sp.charge(100.0)
        tel.ledger.append(
            params={"DEPTH": 4}, outcome="tool",
            metrics={"LUT": 10.0}, charge=100.0,
        )
        tel.ledger.append(
            params={"DEPTH": 5}, outcome="drc",
            error_type="DrcViolationError",
        )
        tel.counters.inc("decision.evaluate")
        tel.note_generation(
            GenerationStat(
                generation=1, front_size=3, evaluations=12,
                hypervolume=0.5, budget_remaining_s=1000.0,
            )
        )
        return tel

    def test_round_trip_and_schema(self, tmp_path):
        tel = self._bundle()
        path = write_trace(tmp_path / "t.jsonl", tel, meta={"design": "fifo"})
        assert validate_trace(path) == []
        trace = read_trace(path)
        assert trace["meta"]["design"] == "fifo"
        assert list(trace["ledger"]) == list(tel.ledger)
        assert trace["spans"] == tel.tracer.as_dict()
        assert trace["counters"] == tel.counters.as_dict()
        assert trace["generations"] == tel.generations

    def test_summary_renders_from_bundle_and_trace(self, tmp_path):
        tel = self._bundle()
        live = render_summary(tel, meta={"design": "fifo"})
        path = write_trace(tmp_path / "t.jsonl", tel, meta={"design": "fifo"})
        offline = render_trace_summary(read_trace(path))
        assert live == offline
        assert "Run ledger" in live
        assert "flow.synthesis" in live

    def test_worker_delta_round_trip(self):
        worker = Telemetry()
        with worker.tracer.span("flow.synthesis") as sp:
            sp.charge(9.0)
        worker.ledger.append(params={"A": 1}, outcome="tool", charge=9.0)
        worker.counters.add("budget.charged_s", 9.0)
        delta = worker.drain_delta()
        # Deltas are shipped over pickle; JSON round-trip proves they are
        # plain data.
        delta = json.loads(json.dumps(delta))
        parent = Telemetry()
        parent.merge_delta(delta, origin="worker")
        assert parent.ledger.records[0].origin == "worker"
        assert parent.tracer.as_dict()["flow.synthesis"]["sim_s"] == 9.0
        assert parent.counters.get("budget.charged_s") == 9.0
        assert len(worker.ledger) == 0


class TestSchemaValidation:
    def _ok_lines(self):
        return [
            json.dumps({"kind": "meta", "version": 1}),
            json.dumps({
                "kind": "record", "index": 0, "params": {"A": 1},
                "outcome": "tool", "metrics": {"LUT": 1.0}, "charge": 5.0,
                "error_type": None, "wall_s": 0.0, "origin": "local",
            }),
        ]

    def test_valid_lines_pass(self):
        assert validate_lines(self._ok_lines()) == []

    def test_missing_meta_flagged(self):
        assert any("meta" in e for e in validate_lines(self._ok_lines()[1:]))

    def test_bad_outcome_flagged(self):
        lines = self._ok_lines()
        lines[1] = lines[1].replace('"tool"', '"guessed"')
        assert any("outcome" in e for e in validate_lines(lines))

    def test_index_gap_flagged(self):
        lines = self._ok_lines()
        lines.append(lines[1].replace('"index": 0', '"index": 2'))
        assert any("contiguous" in e for e in validate_lines(lines))

    def test_failed_record_requires_error_type(self):
        lines = self._ok_lines()
        lines[1] = json.dumps({
            "kind": "record", "index": 0, "params": {}, "outcome": "failed",
            "metrics": {}, "charge": 1.0, "error_type": None, "wall_s": 0.0,
            "origin": "local",
        })
        assert any("error_type" in e for e in validate_lines(lines))

    def test_cli_entry_point(self, tmp_path, capsys):
        from repro.observe.schema import main

        good = tmp_path / "good.jsonl"
        good.write_text("\n".join(self._ok_lines()) + "\n", encoding="utf-8")
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        assert main([str(bad)]) == 1
        assert main([]) == 2
