"""Shared lock-order sanitizer harness for the service-layer suites.

``lock_order_guard`` wraps one test: it records the runtime lock
acquisition DAG (threading locks + flocks created/taken inside the
``repro`` package), fails the test on any observed ordering cycle, and
cross-checks every observed edge against the static S003 lock graph —
the runtime acquisition order must be a *subgraph* of what the analyzer
predicts.  A mismatch means either a real ordering bug or a stale static
model; both deserve a red test.
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import lru_cache
from pathlib import Path
from typing import Iterator

from repro.analysis import collect_py_sources, static_lock_graph
from repro.analysis.sanitize import (
    LockOrderSanitizer,
    lock_sanitizer,
    runtime_static_mismatches,
)

SRC_BASE = Path(__file__).resolve().parents[1] / "src"


@lru_cache(maxsize=1)
def service_lock_graph():
    """The static S003 graph over the installed ``repro`` package."""
    return static_lock_graph(tuple(collect_py_sources()))


@contextmanager
def lock_order_guard() -> Iterator[LockOrderSanitizer]:
    with lock_sanitizer() as sanitizer:
        yield sanitizer
    cycles = sanitizer.cycles()
    assert cycles == [], f"runtime lock-order cycle observed: {cycles}"
    problems = runtime_static_mismatches(
        sanitizer, service_lock_graph(), SRC_BASE
    )
    assert problems == [], "\n".join(problems)
