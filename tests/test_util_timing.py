"""Tests for stopwatches and soft deadlines."""

import pytest

from repro.util.timing import SoftDeadline, Stopwatch


class TestStopwatch:
    def test_start_stop_accumulates(self):
        sw = Stopwatch()
        sw.start("a")
        elapsed = sw.stop("a")
        assert elapsed >= 0
        assert sw.total("a") == pytest.approx(elapsed)

    def test_stop_unstarted_raises(self):
        with pytest.raises(KeyError):
            Stopwatch().stop("nope")

    def test_add_simulated_time(self):
        sw = Stopwatch()
        sw.add("synth", 30.0)
        sw.add("synth", 12.5)
        assert sw.total("synth") == pytest.approx(42.5)

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            Stopwatch().add("x", -1.0)

    def test_context_manager(self):
        sw = Stopwatch()
        with sw.measure("block"):
            pass
        assert sw.total("block") >= 0
        assert "block" in sw.totals()

    def test_independent_splits(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.add("b", 2.0)
        assert sw.totals() == {"a": 1.0, "b": 2.0}


class TestSoftDeadline:
    def test_unbounded_never_expires(self):
        d = SoftDeadline(budget_s=None)
        d.charge(1e9)
        assert not d.expired()
        assert d.remaining() == float("inf")

    def test_virtual_charge_expires(self):
        d = SoftDeadline(budget_s=100.0)
        assert not d.expired()
        d.charge(99.0)
        assert not d.expired()
        d.charge(5.0)
        assert d.expired()

    def test_paper_four_hour_budget(self):
        """The cv32e40p experiment's 4-hour soft deadline, in simulated
        seconds: ~80 full runs at ~180 s each fits, 100 does not."""
        d = SoftDeadline(budget_s=4 * 3600.0)
        for _ in range(70):
            d.charge(180.0)
        assert not d.expired()  # 12,600 s of tool time: within budget
        for _ in range(30):
            d.charge(180.0)
        assert d.expired()      # 18,000 s: past the 14,400 s budget

    def test_restart_clears_charges(self):
        d = SoftDeadline(budget_s=10.0)
        d.charge(50.0)
        assert d.expired()
        d.restart()
        assert not d.expired()

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SoftDeadline(budget_s=1.0).charge(-0.1)
