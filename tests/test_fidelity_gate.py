"""The speculative promotion gate: unit behavior and DSE integration.

- :class:`PromotionGate` unit contracts: calibration warm-up, conformal
  band gating, the mandatory-promotion trickle, front maintenance, and
  determinism;
- gate-off identity: a session with ``fidelity_gate=False`` (and the
  CLI's ``--fidelity-gate off``) is bitwise identical to a session built
  before the feature existed;
- gated exploration: simulated seconds drop, every reported front point
  is full-fidelity truth, and speculative archive members are promoted
  on demand (their ``F`` rows patched) before the front is extracted;
- the CLI parses and threads the new flags.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cli import build_parser
from repro.core.session import DseSession
from repro.designs import get_design
from repro.estimation import PromotionGate
from repro.flow.vivado_sim import Fidelity, FlowStep


def _front_signature(result):
    return sorted(
        (tuple(sorted(p.parameters.items())), tuple(sorted(p.metrics.items())))
        for p in result.pareto
    )


class TestPromotionGateUnit:
    SIGNS = np.array([1.0, 1.0])  # two minimized metrics

    def _calibrated(self, risk=0.2, min_calibration=3, trickle_every=8):
        """A gate calibrated on a clean linear residual (+1 per metric)."""
        gate = PromotionGate(
            signs=self.SIGNS,
            risk=risk,
            min_calibration=min_calibration,
            trickle_every=trickle_every,
        )
        for i in range(6):
            x = np.array([float(i), float(2 * i)])
            low = np.array([10.0 + i, 20.0 + i])
            gate.observe(x, low, low + 1.0)
        return gate

    def test_validation(self):
        with pytest.raises(ValueError):
            PromotionGate(signs=self.SIGNS, risk=0.0)
        with pytest.raises(ValueError):
            PromotionGate(signs=self.SIGNS, risk=1.0)
        with pytest.raises(ValueError):
            PromotionGate(signs=self.SIGNS, min_calibration=0)
        with pytest.raises(ValueError):
            PromotionGate(signs=self.SIGNS, trickle_every=1)

    def test_warmup_always_promotes(self):
        gate = PromotionGate(signs=self.SIGNS, min_calibration=4)
        for i in range(4):
            decision = gate.assess(
                np.array([float(i), 0.0]), np.array([5.0, 5.0])
            )
            assert decision.promote and decision.reason == "calibration"
            gate.observe(
                np.array([float(i), 0.0]),
                np.array([5.0, 5.0]),
                np.array([6.0, 6.0]),
            )
        assert gate.promoted == 4
        assert gate.skipped == 0

    def test_dominated_point_is_skipped_frontier_is_promoted(self):
        gate = self._calibrated()
        # The calibrated front sits around (11..16, 21..26); a hopeless
        # probe far above it is dominated even optimistically.
        bad = gate.assess(np.array([1.5, 3.0]), np.array([100.0, 100.0]))
        assert not bad.promote and bad.reason == "dominated"
        assert bad.predicted_full_min is not None
        # A probe clearly better than the whole front must be promoted.
        good = gate.assess(np.array([2.5, 5.0]), np.array([0.0, 0.0]))
        assert good.promote and good.reason == "frontier"

    def test_trickle_forces_periodic_promotion(self):
        gate = self._calibrated(trickle_every=3)
        reasons = [
            gate.assess(np.array([1.0, 2.0]), np.array([100.0, 100.0])).reason
            for _ in range(6)
        ]
        assert reasons == [
            "dominated", "dominated", "trickle",
            "dominated", "dominated", "trickle",
        ]
        assert gate.trickled == 2

    def test_band_widens_with_lower_risk(self):
        """Lower risk -> wider conformal band (more conservative skips)."""
        def band(risk):
            gate = PromotionGate(signs=self.SIGNS, risk=risk, min_calibration=3)
            rng = np.random.default_rng(0)
            for i in range(12):
                x = np.array([float(i), float(i % 4)])
                low = np.array([10.0, 10.0]) + i * 0.1
                noise = rng.normal(0.0, 2.0, size=2)
                gate.observe(x, low, low + 1.0 + noise)
            return gate._band()

        wide, narrow = band(0.001), band(0.5)
        assert (wide >= narrow).all() and (wide > narrow).any()

    def test_wide_band_turns_marginal_skip_into_promotion(self):
        gate = self._calibrated(risk=0.2)
        x = np.array([3.3, 1.1])
        probe = np.array([100.0, 100.0])
        assert not gate.assess(x, probe).promote
        # Same calibration data, but a band wide enough to cover the gap
        # between the probe's optimistic corner and the front: promote.
        prediction = gate.predict_full_min(x, probe)
        margin = prediction - gate._front.min(axis=0) + 1.0
        gate._errors = [np.abs(margin) for _ in gate._errors]
        assert gate.assess(x, probe).promote

    def test_deterministic(self):
        a, b = self._calibrated(), self._calibrated()
        x, low = np.array([2.2, 4.1]), np.array([50.0, 12.0])
        da, db = a.assess(x, low), b.assess(x, low)
        assert da.promote == db.promote and da.reason == db.reason
        assert np.array_equal(da.predicted_full_min, db.predicted_full_min)

    def test_stats_shape(self):
        gate = self._calibrated()
        stats = gate.stats()
        assert stats["dataset_size"] == 6
        assert stats["front_size"] >= 1
        assert len(stats["band"]) == 2


def _explore(tmp_path=None, gate=None, **kw):
    kwargs = dict(
        design=get_design("corundum-cqm"),
        part="XC7K70T",
        use_model=False,
        seed=2021,
    )
    if gate is not None:
        kwargs.update(fidelity_gate=gate)
    kwargs.update(kw)
    session = DseSession(**kwargs)
    try:
        result = session.explore(generations=5, population=10, pretrain=False)
    finally:
        session.close()
    return session, result


class TestGateOffIdentity:
    def test_gate_off_bitwise_identical_to_no_gate_arguments(self):
        """The regression contract: ``fidelity_gate=False`` must be
        indistinguishable from the feature not existing."""
        _, plain = _explore()                 # no gate arguments at all
        _, off = _explore(gate=False, gate_risk=0.3, gate_trickle_every=5)
        assert _front_signature(plain) == _front_signature(off)
        assert plain.simulated_seconds == off.simulated_seconds
        assert plain.evaluations == off.evaluations
        assert plain.tool_runs == off.tool_runs

    def test_gate_requires_implementation_step(self):
        with pytest.raises(ValueError, match="IMPLEMENTATION"):
            DseSession(
                design=get_design("corundum-cqm"),
                step=FlowStep.SYNTHESIS,
                fidelity_gate=True,
            )

    def test_gate_rejects_full_route_probe(self):
        with pytest.raises(ValueError, match="lower rung"):
            DseSession(
                design=get_design("corundum-cqm"),
                fidelity_gate=True,
                gate_fidelity="full-route",
            )


class TestGatedExploration:
    def test_gated_run_saves_seconds_and_reports_full_fidelity(self):
        _, ungated = _explore(gate=False)
        session, gated = _explore(gate=True)
        assert gated.simulated_seconds < ungated.simulated_seconds
        stats = gated.stats
        assert stats["gate_skipped"] > 0
        assert stats["gate_promoted"] > 0
        # Promotion-on-demand drained every speculative front member.
        assert stats["gate_pending_speculative"] == (
            len(session.fitness._speculative)
        )
        # Nothing speculative reaches the reported front: every front
        # binding was answered by a real full-route run.
        full_bindings = {
            tuple(sorted(p.parameters.items()))
            for p in session.fitness.history
            if p.source in ("tool", "cache") and p.fidelity == "full-route"
        }
        for p in gated.pareto:
            assert tuple(sorted(p.parameters.items())) in full_bindings

    def test_promote_archive_patches_archive_rows(self):
        session, result = _explore(gate=True)
        archive = result.raw.archive
        signs = session.fitness.promotion_gate.signs
        names = session.evaluator.metric_names()
        # After promotion, every non-dominated archive row equals a
        # full-fidelity history entry's minimized metrics.
        from repro.moo.nds import non_dominated_mask

        by_binding = {}
        for p in session.fitness.history:
            if p.fidelity == "full-route" and p.source in ("tool", "cache"):
                y = np.array([p.metrics[n] for n in names])
                by_binding[tuple(sorted(p.parameters.items()))] = signs * y
        mask = non_dominated_mask(archive.F)
        for i in np.flatnonzero(mask):
            binding = tuple(
                sorted(session.fitness.space.decode(archive.X[i]).items())
            )
            expected = by_binding.get(binding)
            assert expected is not None
            assert np.array_equal(archive.F[i], expected)

    def test_promote_archive_idempotent(self):
        session, result = _explore(gate=True)
        before = session.fitness.simulated_seconds
        assert session.fitness.promote_archive(result.raw.archive) == 0
        assert session.fitness.simulated_seconds == before


class TestCliFlags:
    def test_defaults_off(self):
        args = build_parser().parse_args(
            ["dse", "--design", "corundum-cqm"]
        )
        assert args.fidelity_gate == "off"
        assert args.gate_risk == 0.05

    def test_parses_on_with_risk(self):
        args = build_parser().parse_args(
            ["dse", "--design", "corundum-cqm",
             "--fidelity-gate", "on", "--gate-risk", "0.2"]
        )
        assert args.fidelity_gate == "on"
        assert args.gate_risk == 0.2

    def test_rejects_out_of_range_risk(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["dse", "--design", "corundum-cqm", "--gate-risk", "1.5"]
            )

    def test_threads_into_session(self):
        import repro.core.cli as cli_mod

        captured = {}
        real = cli_mod.DseSession

        class Spy:
            def __new__(cls, *a, **kw):
                captured.update(kw)
                return real(*a, **kw)

        cli_mod.DseSession = Spy
        try:
            args = build_parser().parse_args(
                ["dse", "--design", "corundum-cqm",
                 "--fidelity-gate", "on", "--gate-risk", "0.1"]
            )
            session = cli_mod._make_session(args, need_space=True)
            session.close()
        finally:
            cli_mod.DseSession = real
        assert captured["fidelity_gate"] is True
        assert captured["gate_risk"] == 0.1
        assert session.fitness.fidelity_gate_enabled

    def test_gate_probe_runs_use_synth_estimate(self):
        session, gated = _explore(gate=True)
        runs = session.evaluator.sim.fidelity_runs
        assert runs[str(Fidelity.SYNTH_ESTIMATE)] > 0
        assert runs[str(Fidelity.FULL_ROUTE)] > 0
        assert runs[str(Fidelity.PLACED_ESTIMATE)] == 0
