"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.core import DseSession, MetricSpec, ParameterSpace
from repro.designs import get_design
from repro.moo.nds import dominates_matrix


class TestEndToEndDse:
    def test_corundum_full_pipeline_shape(self):
        """Parse → box → TCL → VEDA → NSGA-II, checking the paper's Table I
        qualitative structure."""
        design = get_design("corundum-cqm")
        metrics = [
            MetricSpec.minimize("LUT"), MetricSpec.minimize("FF"),
            MetricSpec.minimize("BRAM"), MetricSpec.maximize("frequency"),
        ]
        sess = DseSession(
            design=design, part="XC7K70T", metrics=metrics,
            use_model=False, seed=11,
        )
        res = sess.explore(generations=8, population=16)
        assert len(res.pareto) >= 3
        brams = {p.metrics["BRAM"] for p in res.pareto}
        assert len(brams) == 1                      # BRAM column constant
        freqs = [p.metrics["frequency"] for p in res.pareto]
        assert all(120 < f < 260 for f in freqs)    # near 200 MHz

    def test_pareto_set_is_mutually_nondominated(self):
        design = get_design("corundum-cqm")
        sess = DseSession(design=design, part="XC7K70T", use_model=False, seed=4)
        res = sess.explore(generations=4, population=10)
        # Re-verify non-domination in minimized space from the raw metrics.
        F = np.array([
            [p.metrics["LUT"], -p.metrics["frequency"]] for p in res.pareto
        ])
        assert not dominates_matrix(F).any()

    def test_tirex_cross_device_campaign(self):
        design = get_design("tirex")
        outcomes = {}
        for part in ("XC7K70T", "ZU3EG"):
            sess = DseSession(
                design=design, part=part, use_model=False, seed=11
            )
            res = sess.explore(generations=4, population=10)
            best_freq = max(p.metrics["frequency"] for p in res.pareto)
            outcomes[part] = best_freq
            # NCLUSTER=1 dominates, as in Table II.
            assert all(p.parameters["NCLUSTER"] == 1 for p in res.pareto)
        assert outcomes["ZU3EG"] > 2.0 * outcomes["XC7K70T"]

    def test_approximation_reduces_tool_time(self):
        """The headline value proposition: same exploration budget, fewer
        (simulated) tool hours with the model enabled."""
        design = get_design("cv32e40p-fifo")
        space = ParameterSpace.from_design(design, names=["DEPTH"])

        def run(use_model):
            sess = DseSession(
                design=design, space=space, part="XC7K70T",
                use_model=use_model, pretrain_size=30, seed=11,
            )
            res = sess.explore(generations=6, population=12)
            return res

        direct = run(False)
        approx = run(True)
        # The model run answers many queries without the tool.
        assert approx.tool_runs < direct.tool_runs + 30
        assert approx.stats.get("estimated", 0) > 0


class TestDeterminism:
    def test_identical_sessions_identical_results(self):
        design = get_design("corundum-cqm")

        def run():
            sess = DseSession(
                design=design, part="XC7K70T", use_model=False, seed=21
            )
            res = sess.explore(generations=3, population=8)
            return [
                (tuple(sorted(p.parameters.items())),
                 tuple(sorted(p.metrics.items())))
                for p in res.pareto
            ]

        assert run() == run()

    def test_seed_changes_trajectory(self):
        design = get_design("corundum-cqm")

        def run(seed):
            sess = DseSession(
                design=design, part="XC7K70T", use_model=False, seed=seed
            )
            res = sess.explore(generations=3, population=8)
            return res.raw.archive.X.tobytes()

        assert run(1) != run(2)

    def test_model_pipeline_deterministic(self):
        design = get_design("cv32e40p-fifo")
        space = ParameterSpace.from_design(design, names=["DEPTH"])

        def run():
            sess = DseSession(
                design=design, space=space, part="XC7K70T",
                use_model=True, pretrain_size=15, seed=9,
            )
            res = sess.explore(generations=3, population=8)
            return (res.tool_runs, res.evaluations,
                    tuple(s for s, _ in res.mse_trace))

        assert run() == run()


class TestIncrementalFlowIntegration:
    def test_incremental_session_saves_time(self):
        design = get_design("corundum-cqm")

        def total_seconds(incremental):
            sess = DseSession(
                design=design, part="XC7K70T", use_model=False,
                incremental=incremental, seed=13,
            )
            sess.explore(generations=3, population=8)
            return sess.fitness.simulated_seconds

        base = total_seconds(False)
        incr = total_seconds(True)
        assert incr < base
