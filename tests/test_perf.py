"""Tests for the static performance model and Roofline extension."""

import numpy as np
import pytest

from repro.core import DseSession, MetricSpec
from repro.core.evaluate import PointEvaluator
from repro.designs import get_design
from repro.perf import (
    RooflinePoint,
    StaticThroughputModel,
    build_roofline,
    performance_model_for,
    register_performance_model,
    render_roofline,
    unregister_performance_model,
)


class TestStaticThroughputModel:
    def test_basic_rate(self):
        m = StaticThroughputModel(items_per_cycle=lambda p: 2.0)
        # 2 items/cycle at 100 MHz = 200e6 items/s.
        assert m.throughput({}, 100.0) == pytest.approx(2e8)

    def test_parameter_dependence(self):
        m = StaticThroughputModel(items_per_cycle=lambda p: p["N"])
        assert m.throughput({"N": 4}, 50.0) == 2 * m.throughput({"N": 2}, 50.0)

    def test_startup_amortization(self):
        no_fill = StaticThroughputModel(items_per_cycle=lambda p: 1.0)
        with_fill = StaticThroughputModel(
            items_per_cycle=lambda p: 1.0, startup_cycles=100, batch=100
        )
        assert with_fill.throughput({}, 100.0) < no_fill.throughput({}, 100.0)
        # Amortization vanishes for huge batches.
        big_batch = StaticThroughputModel(
            items_per_cycle=lambda p: 1.0, startup_cycles=100, batch=10**7
        )
        assert big_batch.throughput({}, 100.0) == pytest.approx(1e8, rel=1e-3)

    def test_invalid_inputs(self):
        m = StaticThroughputModel(items_per_cycle=lambda p: 1.0)
        with pytest.raises(ValueError):
            m.throughput({}, 0.0)
        bad = StaticThroughputModel(items_per_cycle=lambda p: -1.0)
        with pytest.raises(ValueError):
            bad.throughput({}, 100.0)


class TestRegistry:
    def test_register_resolve_unregister(self):
        m = StaticThroughputModel(items_per_cycle=lambda p: 1.0)
        register_performance_model("my_mod", m)
        try:
            assert performance_model_for("MY_MOD") is m
        finally:
            assert unregister_performance_model("my_mod")
        assert performance_model_for("my_mod") is None

    def test_case_studies_register_models(self):
        get_design("tirex")
        get_design("corundum-cqm")
        assert performance_model_for("tirex_top") is not None
        assert performance_model_for("cpl_queue_manager") is not None


class TestPerformanceMetric:
    def test_evaluator_fills_performance(self):
        design = get_design("tirex")
        ev = PointEvaluator(
            source=design.source(), language=design.language, top=design.top,
            part="ZU3EG",
            metrics=[MetricSpec.minimize("LUT"),
                     MetricSpec.maximize("performance")],
            seed=2,
        )
        one = ev.evaluate({"NCLUSTER": 1})
        two = ev.evaluate({"NCLUSTER": 2})
        assert one.metrics["performance"] > 0
        # Two clusters at a somewhat lower clock still beat one cluster.
        assert two.metrics["performance"] > one.metrics["performance"]

    def test_missing_model_raises(self):
        src = "module nomodel(input wire clk); endmodule"
        ev = PointEvaluator(
            source=src, language="verilog", top="nomodel",
            metrics=[MetricSpec.maximize("performance")],
        )
        with pytest.raises(LookupError, match="performance model"):
            ev.evaluate({})

    def test_perf_objective_changes_tirex_front(self):
        """With throughput as an objective, NCluster > 1 joins the front —
        the 'improved DSE' the paper's future work anticipates."""
        design = get_design("tirex")
        sess = DseSession(
            design=design, part="ZU3EG",
            metrics=[MetricSpec.minimize("LUT"),
                     MetricSpec.maximize("performance")],
            use_model=False, seed=6,
        )
        res = sess.explore(generations=6, population=12)
        nclusters = {p.parameters["NCLUSTER"] for p in res.pareto}
        assert any(n > 1 for n in nclusters), nclusters


class TestRoofline:
    def _mapped(self, part="ZU3EG"):
        from repro.devices import get_device
        from repro.synth import synthesize

        design = get_design("tirex")
        return synthesize(design.module(), get_device(part), {"NCLUSTER": 2})

    def test_ceilings_positive(self):
        synth = self._mapped()
        rp = build_roofline(synth.mapped, fmax_mhz=400.0, operational_intensity=1.0)
        assert rp.peak_compute_gops > 0
        assert rp.peak_bandwidth_gbs > 0
        assert rp.attainable_gops <= rp.peak_compute_gops

    def test_memory_vs_compute_bound(self):
        synth = self._mapped()
        low = build_roofline(synth.mapped, 400.0, operational_intensity=1e-3)
        high = build_roofline(synth.mapped, 400.0, operational_intensity=1e3)
        assert low.memory_bound()
        assert not high.memory_bound()
        assert low.attainable_gops < high.attainable_gops

    def test_attainable_formula(self):
        rp = RooflinePoint(
            peak_compute_gops=10.0, peak_bandwidth_gbs=2.0,
            operational_intensity=3.0, attainable_gops=min(10.0, 3.0 * 2.0),
        )
        assert rp.ridge_point() == pytest.approx(5.0)
        assert rp.memory_bound()

    def test_frequency_scales_ceilings(self):
        synth = self._mapped()
        slow = build_roofline(synth.mapped, 200.0, 1.0)
        fast = build_roofline(synth.mapped, 400.0, 1.0)
        assert fast.peak_compute_gops == pytest.approx(2 * slow.peak_compute_gops)
        assert fast.peak_bandwidth_gbs == pytest.approx(2 * slow.peak_bandwidth_gbs)

    def test_render(self):
        synth = self._mapped()
        rp = build_roofline(synth.mapped, 400.0, 0.5, achieved_gops=0.1)
        text = render_roofline(rp)
        assert "Roofline" in text
        assert "*" in text and "o" in text
        assert len(text.splitlines()) >= 10

    def test_invalid_args(self):
        synth = self._mapped()
        with pytest.raises(ValueError):
            build_roofline(synth.mapped, 0.0, 1.0)
        with pytest.raises(ValueError):
            build_roofline(synth.mapped, 100.0, 0.0)
