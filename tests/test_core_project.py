"""Tests for project save/resume."""

import numpy as np
import pytest

from repro.core import DseSession, MetricSpec, ParameterSpace
from repro.core.project import load_project, save_project
from repro.designs import get_design
from repro.errors import ReproError


def _session(tmp_path=None, pretrain=12):
    design = get_design("cv32e40p-fifo")
    space = ParameterSpace.from_design(design, names=["DEPTH"])
    return DseSession(
        design=design, space=space, part="XC7K70T",
        metrics=[MetricSpec.minimize("LUT"), MetricSpec.maximize("frequency")],
        use_model=True, pretrain_size=pretrain, seed=4,
    )


class TestSaveLoad:
    def test_roundtrip_configuration(self, tmp_path):
        session = _session()
        session.fitness.pretrain()
        path = save_project(session, tmp_path / "proj")
        assert path.exists()

        loaded = load_project(tmp_path / "proj")
        assert loaded.evaluator.part == session.evaluator.part
        assert loaded.evaluator.module.name == "fifo_v3"
        assert loaded.space.names() == ["DEPTH"]
        assert loaded.evaluator.metric_names() == session.evaluator.metric_names()

    def test_dataset_restored_without_tool_runs(self, tmp_path):
        session = _session()
        session.fitness.pretrain()
        n_points = len(session.fitness.control.dataset)
        save_project(session, tmp_path / "proj")

        loaded = load_project(tmp_path / "proj")
        assert len(loaded.fitness.control.dataset) == n_points
        # Resume costs zero tool runs.
        assert loaded.fitness.tool_runs() == 0
        assert loaded.fitness.control.model.fitted
        assert loaded.fitness.control.threshold > 0

    def test_restored_dataset_values_match(self, tmp_path):
        session = _session()
        session.fitness.pretrain()
        X_orig = session.fitness.control.dataset.X()
        Y_orig = session.fitness.control.dataset.Y()
        save_project(session, tmp_path / "proj")
        loaded = load_project(tmp_path / "proj")
        X_new = loaded.fitness.control.dataset.X()
        Y_new = loaded.fitness.control.dataset.Y()
        # Same point set (row order may differ): compare as sorted rows.
        assert np.array_equal(np.sort(X_orig, axis=0), np.sort(X_new, axis=0))
        assert np.allclose(np.sort(Y_orig, axis=0), np.sort(Y_new, axis=0))

    def test_resumed_exploration_continues(self, tmp_path):
        session = _session(pretrain=15)
        session.fitness.pretrain()
        save_project(session, tmp_path / "proj")

        loaded = load_project(tmp_path / "proj")
        result = loaded.explore(generations=3, population=8, pretrain=False)
        assert result.evaluations > 0
        # Many queries answered from the restored dataset/model.
        assert loaded.fitness.tool_runs() < result.evaluations

    def test_pow2_space_roundtrip(self, tmp_path):
        design = get_design("neorv32")
        session = DseSession(design=design, part="XC7K70T", use_model=False, seed=1)
        save_project(session, tmp_path / "p2")
        loaded = load_project(tmp_path / "p2")
        dim = loaded.space.dimension("MEM_INT_IMEM_SIZE")
        assert dim.decode(13) == 8192

    def test_checkpoints_persisted(self, tmp_path):
        design = get_design("corundum-cqm")
        session = DseSession(
            design=design, part="XC7K70T", use_model=False,
            incremental=True, seed=2,
        )
        session.evaluate_points([{"OP_TABLE_SIZE": 12}])
        assert len(session.evaluator.sim.checkpoints) > 0
        save_project(session, tmp_path / "ck")
        loaded = load_project(tmp_path / "ck")
        assert len(loaded.evaluator.sim.checkpoints) == len(
            session.evaluator.sim.checkpoints
        )

    def test_bad_version_rejected(self, tmp_path):
        session = _session()
        save_project(session, tmp_path / "v")
        import json

        p = tmp_path / "v" / "project.json"
        payload = json.loads(p.read_text())
        payload["version"] = 99
        p.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="version"):
            load_project(tmp_path / "v")
