"""Cross-process correctness regressions for the result store.

Each class pins one of the service-blocking bugs fixed alongside
``repro.serve`` (all three would fail on the pre-fix store):

- ``clear()`` left *other* processes permanently stale: their per-segment
  offsets exceeded the recreated segments' sizes, so ``refresh()`` never
  re-read anything and their index kept serving deleted records.
- a ``get()`` hit on a low-rank probe record never refreshed, so a
  full-route record appended by another process was ignored forever.
- ``refresh()`` silently swallowed corrupt JSONL lines, and foreign
  ``seg-*.jsonl`` filenames crashed segment rotation with ``ValueError``.

Plus the offline compaction pass those fixes make safe: rewriting
segments to index winners only, under the generation stamp, so compacted
stores stay readable from every process.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from tests._sanitize_support import lock_order_guard

from repro.cache import FULL_RANK, KIND_POINT, ResultStore


@pytest.fixture(autouse=True)
def _lock_order_sanitizer():
    """Record lock/flock ordering in every test and cross-check it
    against the static S003 graph (runtime must be a subgraph)."""
    with lock_order_guard():
        yield

_ENV = {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"}


def _run_child(snippet: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", snippet, *args],
        cwd="/root/repo",
        env=_ENV,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


_CLEAR_AND_REWRITE = """
import sys
from repro.cache import ResultStore, KIND_POINT

store = ResultStore(sys.argv[1])
store.clear()
store.put("fresh", KIND_POINT, {"v": "after-clear"})
print(len(store))
"""

_APPEND_FULL_RANK = """
import sys
from repro.cache import ResultStore, KIND_POINT, FULL_RANK

store = ResultStore(sys.argv[1])
store.put(sys.argv[2], KIND_POINT, {"fidelity": "full"}, rank=FULL_RANK)
"""


class TestClearStalenessAcrossProcesses:
    def test_reader_recovers_after_another_process_clears(self, tmp_path):
        """The generation stamp forces a full re-read after clear().

        The reader indexes several fat records (so its offsets point deep
        into the segment), then a *different process* clears the store
        and writes one small record.  The reader's offsets now exceed the
        recreated segment's size; without the generation check its next
        refresh reads nothing and it keeps serving the deleted records.
        """
        root = str(tmp_path / "store")
        writer = ResultStore(root)
        for i in range(5):
            writer.put(f"old-{i}", KIND_POINT, {"pad": "x" * 200, "i": i})

        reader = ResultStore(root)
        reader.refresh()
        assert len(reader) == 5
        assert reader.get("old-0") is not None

        assert _run_child(_CLEAR_AND_REWRITE, root).strip() == "1"

        reader.refresh()
        assert reader.get("old-0") is None, "deleted record still served"
        fresh = reader.get("fresh")
        assert fresh is not None and fresh.payload["v"] == "after-clear"
        assert len(reader) == 1

    def test_generation_is_stamped_and_visible(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.stats().generation == 0
        store.put("k", KIND_POINT, {})
        store.clear()
        assert store.stats().generation == 1
        store.compact()
        assert store.stats().generation == 2

    def test_same_instance_clear_does_not_self_invalidate(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("a", KIND_POINT, {})
        store.clear()
        store.put("b", KIND_POINT, {})
        assert store.get("b") is not None
        assert len(store) == 1


class TestProbeSupersessionAcrossProcesses:
    def test_low_rank_hit_refreshes_and_adopts_full_route(self, tmp_path):
        """A probe-rank hit must look for a newer full-rank record.

        The reader indexes a rank-0 probe; another process then appends
        the full-route record for the same key.  Pre-fix, ``get()``
        answered from the stale index hit and the full record was
        ignored indefinitely — violating the "higher rank supersedes"
        contract for every process but the writer.
        """
        root = str(tmp_path / "store")
        writer = ResultStore(root)
        key = "contested-key"
        writer.put(key, KIND_POINT, {"fidelity": "probe"}, rank=0)

        reader = ResultStore(root)
        probe = reader.get(key)
        assert probe is not None and probe.rank == 0

        _run_child(_APPEND_FULL_RANK, root, key)

        record = reader.get(key)
        assert record is not None
        assert record.rank == FULL_RANK, "stale probe served over full-route"
        assert record.payload["fidelity"] == "full"

    def test_full_rank_hit_does_not_trigger_refresh(self, tmp_path):
        """Full-rank hits stay O(1): nothing can supersede them."""
        store = ResultStore(tmp_path / "store")
        store.put("k", KIND_POINT, {}, rank=FULL_RANK)
        store.get("k")
        # A second instance's appends must stay invisible until a miss or
        # an explicit refresh — the hit path must not have scanned disk.
        other = ResultStore(store.root)
        other.put("k2", KIND_POINT, {})
        assert store.get("k").rank == FULL_RANK
        assert "k2" not in store._index


class TestDefensiveReads:
    def test_corrupt_lines_are_skipped_and_counted(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("good-1", KIND_POINT, {"i": 1})
        store.put("good-2", KIND_POINT, {"i": 2})
        segment = store._segment_paths()[0]
        with segment.open("a", encoding="utf-8") as fh:
            fh.write("{this is not json\n")
            fh.write('{"key": 1, "kind": 2, "payload": "not-a-mapping"}\n')
            fh.write('{"no_key": true}\n')

        fresh = ResultStore(store.root)
        fresh.refresh()
        assert sorted(fresh.keys()) == ["good-1", "good-2"]
        assert fresh.corrupt_lines == 3
        assert fresh.stats().corrupt_lines == 3

    def test_foreign_segment_names_are_ignored(self, tmp_path):
        """``seg-zzz.jsonl`` crashed ``_active_segment`` (int("zzz"))."""
        store = ResultStore(tmp_path / "store")
        store.put("k1", KIND_POINT, {})
        # Foreign files that *sort after* real segments are the killer:
        # rotation parsed the last sorted name's ordinal.
        foreign = store._segments_dir / "seg-zzz.jsonl"
        foreign.write_text('{"key": "ghost", "kind": "point", "payload": {}}\n')
        (store._segments_dir / "seg-1.jsonl.bak").write_text("junk\n")

        fresh = ResultStore(store.root)
        fresh.refresh()
        assert fresh.keys() == ["k1"], "foreign file leaked into the index"
        # Rotation still works: this would raise ValueError pre-fix.
        assert fresh.put("k2", KIND_POINT, {}) is True
        assert len(fresh) == 2


class TestCompaction:
    def test_round_trip_preserves_the_index_exactly(self, tmp_path):
        """compact() rewrites segments; the index must be identical."""
        store = ResultStore(tmp_path / "store", segment_max_bytes=256)
        for i in range(10):
            key = f"key-{i}"
            store.put(key, KIND_POINT, {"fidelity": "probe", "i": i}, rank=0)
            store.put(key, KIND_POINT, {"fidelity": "full", "i": i})
        before = {
            r.key: (r.kind, r.rank, dict(r.payload)) for r in store.records()
        }
        stats_before = store.stats()
        assert stats_before.duplicates == 10  # superseded probes on disk

        result = store.compact()
        assert result.records_before == 20
        assert result.records_after == 10
        assert result.bytes_after < result.bytes_before

        after = {
            r.key: (r.kind, r.rank, dict(r.payload)) for r in store.records()
        }
        assert after == before
        stats_after = store.stats()
        assert stats_after.duplicates == 0
        assert stats_after.unique_keys == 10

    def test_other_processes_reset_cleanly_after_compact(self, tmp_path):
        root = str(tmp_path / "store")
        writer = ResultStore(root)
        for i in range(6):
            writer.put(f"k-{i}", KIND_POINT, {"pad": "y" * 100}, rank=0)
            writer.put(f"k-{i}", KIND_POINT, {"pad": "y" * 100})
        reader = ResultStore(root)
        reader.refresh()
        assert len(reader) == 6

        _run_child(
            "import sys\nfrom repro.cache import ResultStore\n"
            "print(ResultStore(sys.argv[1]).compact().records_after)",
            root,
        )

        reader.refresh()
        assert len(reader) == 6
        assert all(r.rank == FULL_RANK for r in reader.records())

    def test_compact_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = store.compact()
        assert result.records_before == result.records_after == 0
        assert store.put("k", KIND_POINT, {}) is True
