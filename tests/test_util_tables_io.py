"""Tests for table rendering and session IO."""

import pytest

from repro.util.io import load_csv, load_json, save_csv, save_json
from repro.util.tables import render_kv, render_series, render_table


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(("A", "Bee"), [("x", 1), ("long", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = render_table(("A",), [(1,)], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(("A", "B"), [(1,)])

    def test_float_formatting(self):
        text = render_table(("v",), [(0.000123,), (1234.5,), (3.14159,)])
        assert "0.000123" in text
        assert "1234" in text or "1235" in text
        assert "3.14" in text

    def test_render_kv(self):
        text = render_kv({"runs": 10, "wns": -3.5}, title="Summary")
        assert "runs" in text and "-3.5" in text

    def test_render_series_validates_lengths(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], {"s": [1]})

    def test_render_series_shape(self):
        text = render_series("samples", [10, 20], {"mse": [0.1, 0.05]})
        assert "samples" in text and "mse" in text
        assert len(text.splitlines()) == 4


class TestSessionIo:
    def test_json_roundtrip(self, tmp_path):
        payload = {"pareto": [{"LUT": 10, "frequency": 200.5}], "n": 3}
        path = save_json(tmp_path / "out" / "session.json", payload)
        assert load_json(path) == payload

    def test_json_numpy_coercion(self, tmp_path):
        import numpy as np

        payload = {"v": np.int64(3), "arr": np.array([1.0, 2.0])}
        path = save_json(tmp_path / "s.json", payload)
        loaded = load_json(path)
        assert loaded["v"] == 3
        assert loaded["arr"] == [1.0, 2.0]

    def test_csv_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = save_csv(tmp_path / "rows.csv", ["a", "b"], rows)
        loaded = load_csv(path)
        assert loaded == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_csv_missing_fields_blank(self, tmp_path):
        path = save_csv(tmp_path / "r.csv", ["a", "b"], [{"a": 1}])
        assert load_csv(path)[0]["b"] == ""
