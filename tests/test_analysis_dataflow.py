"""Tests for the parameter dataflow engine's analysis layer.

Three claims carry the subsystem:

1. the gate's static layer rejects definitely-infeasible points with
   *zero* elaboration calls (the ``decision.*`` counters prove it);
2. the static layer never changes a feasibility verdict — with it forced
   off, Pareto fronts are bitwise identical;
3. the D-series lint rules and ``prune_space`` surface dead parameters
   and statically-empty subranges without false positives on the bundled
   designs.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.checker import DesignRuleChecker
from repro.analysis.dataflow_rules import (
    PruneReport,
    StaticSpaceAnalysis,
    prune_space,
)
from repro.analysis.findings import Severity
from repro.analysis.gate import PreflightGate
from repro.analysis.registry import RuleConfig
from repro.core.cli import main
from repro.core.evaluate import PointEvaluator
from repro.core.fitness import ApproximateFitness, DseProblem
from repro.core.session import DseSession
from repro.core.spaces import IntRange, ParameterSpace
from repro.designs import all_designs, get_design
from repro.hdl.frontend import parse_source
from repro.observe import telemetry_session

NULLABLE_SV = """
module nullable #(parameter W = 4) (
  input  logic clk,
  input  logic [W-1:0] d,
  output logic [W-2:0] q
);
endmodule
"""
# W=1 elaborates q to [-1:0] (P001); every W>=2 is feasible.

NULLABLE_ALWAYS_SV = """
module nullable_always #(parameter W = 1) (
  input  logic clk,
  input  logic [W-2:0] q
);
endmodule
"""
# With the space pinned to W=1 the whole box is statically null.

DEAD_SV = """
module deadwidget #(
    parameter WIDTH = 8,
    parameter SPARE = 3
)(
    input  logic clk,
    input  logic [WIDTH-1:0] d,
    output logic [WIDTH-1:0] q
);
    always_ff @(posedge clk) q <= d;
endmodule
"""
# SPARE flows nowhere: no port range, generate, child generic, or body use.

GENFALSE_SV = """
module genfalse #(
    parameter MODE = 0,
    parameter W = 8
)(
    input  logic clk,
    input  logic [W-1:0] d,
    output logic [W-1:0] q
);
    if (MODE > 5) begin : gen_x
        buf_unit u (.clk(clk));
    end
    always_ff @(posedge clk) q <= d;
endmodule
"""

NATURAL_VHDL = """
entity natgen is
  generic (
    DEPTH : natural := 4;
    WIDTH : natural := 8
  );
  port (
    clk : in bit;
    q   : out bit_vector(WIDTH - 1 downto 0)
  );
end entity;
"""


def nullable_module():
    return parse_source(NULLABLE_SV, "systemverilog")[0]


def nullable_space():
    return ParameterSpace([IntRange("W", 1, 16)])


def make_fitness(**kw):
    return ApproximateFitness(
        evaluator=PointEvaluator(
            source=NULLABLE_SV, language="systemverilog", top="nullable"
        ),
        space=nullable_space(),
        use_model=False,
        pretrain_size=0,
        seed=3,
        **kw,
    )


# ---------------------------------------------------------------------------
# the gate's static layer: zero-elaboration rejections
# ---------------------------------------------------------------------------


class TestGateStaticLayer:
    def test_static_reject_without_elaboration(self):
        gate = PreflightGate(nullable_module(), space=nullable_space())
        with telemetry_session() as tel:
            findings = gate.errors({"W": 1})
            assert findings
            assert all(f.code == "D002" for f in findings)
            assert all(f.severity == Severity.ERROR for f in findings)
            # The rejection was proved by interval analysis: the point was
            # never elaborated.
            assert tel.counters.get("decision.static_reject") == 1
            assert tel.counters.get("decision.drc_elaboration") == 0
            # A feasible point still takes the full per-point check.
            assert gate.is_feasible({"W": 8})
            assert tel.counters.get("decision.drc_elaboration") == 1
        assert gate.stats()["drc_static_rejections"] == 1

    def test_bundled_design_static_reject_zero_elaboration(self):
        """Acceptance case: on a bundled design, a statically-infeasible
        point is rejected with zero elaboration calls."""
        design = get_design("corundum-cqm")
        module = design.module()
        # OP_TABLE_SIZE=1 makes CL_OP_TABLE_SIZE = $clog2(1) = 0, so the
        # op-tag ports elaborate to [-1:0]; the canonical space starts at
        # 8, this one deliberately reaches down to the null point.
        space = ParameterSpace([IntRange("OP_TABLE_SIZE", 1, 40)])
        gate = PreflightGate(module, space=space)
        with telemetry_session() as tel:
            assert not gate.is_feasible({"OP_TABLE_SIZE": 1})
            assert tel.counters.get("decision.static_reject") == 1
            assert tel.counters.get("decision.drc_elaboration") == 0
        # The full checker agrees with the static verdict.
        result = DesignRuleChecker().check_point(
            module, {"OP_TABLE_SIZE": 1}, space=space
        )
        assert result.errors()
        assert gate.is_feasible({"OP_TABLE_SIZE": 16})

    def test_whole_space_static_rejection(self):
        module = parse_source(NULLABLE_ALWAYS_SV, "systemverilog")[0]
        gate = PreflightGate(module, space=ParameterSpace([IntRange("W", 1, 1)]))
        with telemetry_session() as tel:
            findings = gate.errors({"W": 1})
            assert findings and findings[0].code == "D002"
            assert "statically infeasible over the declared space" in str(findings[0])
            assert tel.counters.get("decision.drc_elaboration") == 0

    def test_nonstock_config_disables_static_layer(self):
        """Disabling a backing rule invalidates the static proofs, so the
        gate falls back to per-point checking — same verdicts, no static
        short-circuit."""
        config = RuleConfig(disabled=frozenset({"P001"}))
        gate = PreflightGate(nullable_module(), space=nullable_space(), config=config)
        with telemetry_session() as tel:
            gate.errors({"W": 1})
            assert tel.counters.get("decision.static_reject") == 0
            assert tel.counters.get("decision.drc_elaboration") == 1
        assert "drc_static_rejections" not in gate.stats()

    def test_no_space_gate_has_no_static_layer(self):
        gate = PreflightGate(nullable_module())
        assert not gate.static_infeasible_mask(np.array([[1]])).any()
        gate.errors({"W": 1})
        assert "drc_static_rejections" not in gate.stats()

    def test_static_rejections_memoized(self):
        gate = PreflightGate(nullable_module(), space=nullable_space())
        with telemetry_session() as tel:
            for _ in range(3):
                gate.errors({"W": 1})
            assert tel.counters.get("decision.static_reject") == 1
        assert gate.stats()["drc_checks"] == 1


# ---------------------------------------------------------------------------
# the vectorized constraint path
# ---------------------------------------------------------------------------


class TestVectorizedMask:
    def test_feasible_mask_short_circuits_static_rows(self):
        fitness = make_fitness()
        problem = DseProblem(fitness)
        # Encoded rows clip exactly like ParameterSpace.decode: 0 -> 1
        # (infeasible), 99 -> 16 (feasible).
        X = np.array([[1], [8], [0], [16], [99]])
        with telemetry_session() as tel:
            mask = problem.feasible_mask(X)
            assert mask.tolist() == [False, True, False, True, True]
            assert tel.counters.get("decision.static_mask_reject") == 2
            assert tel.counters.get("decision.drc_elaboration") == 2
        # Statically-rejected rows never reached the per-point memo;
        # 99 decoded to the already-checked 16.
        assert fitness.gate.stats()["drc_checks"] == 2
        fitness.close()

    def test_gate_mask_matches_pointwise_verdicts(self):
        gate = PreflightGate(nullable_module(), space=nullable_space())
        X = np.arange(1, 17).reshape(-1, 1)
        mask = gate.static_infeasible_mask(X)
        for i, row in enumerate(X):
            if mask[i]:
                assert not gate.is_feasible({"W": int(row[0])})


# ---------------------------------------------------------------------------
# soundness: the static verdict agrees with per-point elaboration
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def _agreement_gates(name: str):
    if name == "nullable":
        module, space = nullable_module(), nullable_space()
    elif name == "corundum-custom":
        module = get_design("corundum-cqm").module()
        space = ParameterSpace([IntRange("OP_TABLE_SIZE", 1, 40)])
    else:
        design = get_design(name)
        module = design.module()
        space = ParameterSpace.from_design(design)
    gate_on = PreflightGate(module, space=space)
    gate_off = PreflightGate(module, space=space)
    gate_off._static_ready = True  # force the per-point path
    return space, gate_on, gate_off


@pytest.mark.parametrize(
    "name", sorted(all_designs()) + ["nullable", "corundum-custom"]
)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_static_verdict_agrees_with_elaboration(name, data):
    """For random points of every bundled design (plus the fixtures with
    known infeasible subranges), the gate with the static layer gives the
    same verdict as the gate without it."""
    space, gate_on, gate_off = _agreement_gates(name)
    encoded = np.array(
        [data.draw(st.integers(d.low, d.high), label=d.name) for d in space]
    )
    params = space.decode(encoded)
    assert gate_on.is_feasible(params) == gate_off.is_feasible(params)


@given(w=st.integers(-3, 20))
@settings(max_examples=30, deadline=None)
def test_nullable_static_exactness(w):
    """On the nullable fixture the static layer is not just sound but
    exact: inside the space it decides every point by itself."""
    analysis = StaticSpaceAnalysis(nullable_module(), nullable_space())
    verdict = analysis.reject_findings({"W": w})
    errors = DesignRuleChecker().check_point(
        nullable_module(), {"W": w}, space=nullable_space()
    ).errors()
    if verdict is not None:
        assert errors  # soundness: a static reject is a checker reject
    if 1 <= w <= 16:
        assert (verdict is not None) == bool(errors)


# ---------------------------------------------------------------------------
# Pareto fronts are identical with the static layer forced off
# ---------------------------------------------------------------------------


class TestBehaviourNeutrality:
    def _run(self, disable_static: bool):
        sess = DseSession(
            source=NULLABLE_SV,
            language="systemverilog",
            top="nullable",
            space=nullable_space(),
            use_model=False,
            pretrain_size=0,
            seed=7,
        )
        if disable_static:
            sess.fitness.gate._static_ready = True  # leave _static = None
        try:
            res = sess.explore(generations=4, population=8)
            front = sorted(
                (
                    tuple(sorted(p.parameters.items())),
                    tuple(sorted(p.metrics.items())),
                )
                for p in res.pareto
            )
            history = [
                (tuple(sorted(p.parameters.items())), p.source)
                for p in sess.fitness.history
            ]
            return front, history
        finally:
            sess.close()

    def test_pareto_front_bitwise_identical(self):
        with_static = self._run(disable_static=False)
        without_static = self._run(disable_static=True)
        assert with_static == without_static


# ---------------------------------------------------------------------------
# the D-series lint rules
# ---------------------------------------------------------------------------


class TestDataflowRules:
    def test_d001_dead_parameter(self):
        module = parse_source(DEAD_SV, "systemverilog")[0]
        result = DesignRuleChecker().check_dataflow(
            module, sources=((DEAD_SV, "systemverilog"),)
        )
        [finding] = [f for f in result if f.code == "D001"]
        assert "SPARE" in finding.message
        assert finding.severity == Severity.WARNING

    def test_d001_needs_a_body_scan(self):
        module = parse_source(DEAD_SV, "systemverilog")[0]
        result = DesignRuleChecker().check_dataflow(module)
        assert "D001" not in result.codes()

    def test_d001_skips_registered_models(self):
        """Architectural models consume parameters the RTL scan cannot
        see, so liveness verdicts do not apply to them."""
        from repro.synth.elaborate import _MODELS, register_model

        module = parse_source(DEAD_SV, "systemverilog")[0]
        register_model("deadwidget", lambda env: None)
        try:
            result = DesignRuleChecker().check_dataflow(
                module, sources=((DEAD_SV, "systemverilog"),)
            )
            assert "D001" not in result.codes()
        finally:
            _MODELS.pop("deadwidget", None)

    def test_d002_reports_infeasible_run(self):
        result = DesignRuleChecker().check_dataflow(
            nullable_module(),
            space=nullable_space(),
            sources=((NULLABLE_SV, "systemverilog"),),
        )
        [finding] = [f for f in result if f.code == "D002"]
        assert finding.severity == Severity.WARNING  # advisory at lint time
        assert "values 1" in finding.message
        assert "null range" in finding.message

    def test_d003_degenerate_generate_arm(self):
        module = parse_source(GENFALSE_SV, "systemverilog")[0]
        space = ParameterSpace([IntRange("MODE", 0, 3), IntRange("W", 2, 8)])
        result = DesignRuleChecker().check_dataflow(
            module, space=space, sources=((GENFALSE_SV, "systemverilog"),)
        )
        [finding] = [f for f in result if f.code == "D003"]
        assert "(MODE > 5)" in finding.message

    def test_d003_silent_when_arm_is_reachable(self):
        module = parse_source(GENFALSE_SV, "systemverilog")[0]
        space = ParameterSpace([IntRange("MODE", 0, 8), IntRange("W", 2, 8)])
        result = DesignRuleChecker().check_dataflow(
            module, space=space, sources=((GENFALSE_SV, "systemverilog"),)
        )
        assert "D003" not in result.codes()

    def test_d004_statically_empty_dimension(self):
        module = parse_source(NATURAL_VHDL, "vhdl")[0]
        space = ParameterSpace(
            [IntRange("DEPTH", -4, -1), IntRange("WIDTH", 2, 8)]
        )
        result = DesignRuleChecker().check_dataflow(
            module, space=space, sources=((NATURAL_VHDL, "vhdl"),)
        )
        [finding] = [f for f in result if f.code == "D004"]
        assert finding.severity == Severity.ERROR
        assert "DEPTH" in finding.message
        assert "natural" in finding.message
        # The empty dimension is D004's finding, not a D002 run.
        assert "D002" not in result.codes()

    def test_d004_whole_space(self):
        module = parse_source(NULLABLE_ALWAYS_SV, "systemverilog")[0]
        result = DesignRuleChecker().check_dataflow(
            module,
            space=ParameterSpace([IntRange("W", 1, 1)]),
            sources=((NULLABLE_ALWAYS_SV, "systemverilog"),),
        )
        [finding] = [f for f in result if f.code == "D004"]
        assert "every point of the declared space" in finding.message

    def test_check_design_merges_dataflow_stage(self):
        module = parse_source(DEAD_SV, "systemverilog")[0]
        space = ParameterSpace([IntRange("WIDTH", 2, 8), IntRange("SPARE", 0, 3)])
        result = DesignRuleChecker().check_design(
            module, space=space, sources=((DEAD_SV, "systemverilog"),)
        )
        assert "D001" in result.codes()

    def test_bundled_designs_stay_clean(self):
        """The D rules add no findings on any bundled design at its
        canonical space (the CI self-lint relies on this)."""
        for name in sorted(all_designs()):
            design = get_design(name)
            result = DesignRuleChecker().check_dataflow(
                design.module(),
                space=ParameterSpace.from_design(design),
                sources=((design.source(), str(design.language)),),
            )
            assert not result.findings, f"{name}: {[str(f) for f in result]}"


# ---------------------------------------------------------------------------
# static space pruning
# ---------------------------------------------------------------------------


class TestPruneSpace:
    def test_tightens_infeasible_range_end(self):
        report = prune_space(
            nullable_module(),
            nullable_space(),
            sources=((NULLABLE_SV, "systemverilog"),),
        )
        assert report.changed
        assert report.tightened == (("W", 1, 16, 2, 16),)
        assert report.space.dimensions[0].low == 2
        assert "tightened W [1..16] -> [2..16]" in report.render()

    def test_drops_dead_dimension(self):
        module = parse_source(DEAD_SV, "systemverilog")[0]
        space = ParameterSpace([IntRange("WIDTH", 2, 8), IntRange("SPARE", 0, 3)])
        report = prune_space(module, space, sources=((DEAD_SV, "systemverilog"),))
        assert report.dropped == ("SPARE",)
        assert [d.name for d in report.space] == ["WIDTH"]
        assert "dead dimension 'SPARE'" in report.render()

    def test_keeps_at_least_one_dimension(self):
        module = parse_source(DEAD_SV, "systemverilog")[0]
        space = ParameterSpace([IntRange("SPARE", 0, 3)])
        report = prune_space(module, space, sources=((DEAD_SV, "systemverilog"),))
        assert not report.dropped
        assert len(list(report.space)) == 1

    def test_unchanged_space_is_reused(self):
        module = parse_source(DEAD_SV, "systemverilog")[0]
        space = ParameterSpace([IntRange("WIDTH", 2, 8)])
        report = prune_space(module, space, sources=((DEAD_SV, "systemverilog"),))
        assert not report.changed
        assert report.space is space
        assert "space unchanged" in report.render()

    def test_fully_infeasible_dim_left_for_d004(self):
        module = parse_source(NATURAL_VHDL, "vhdl")[0]
        space = ParameterSpace(
            [IntRange("DEPTH", -4, -1), IntRange("WIDTH", 2, 8)]
        )
        report = prune_space(module, space, sources=((NATURAL_VHDL, "vhdl"),))
        assert not report.changed
        assert any("no statically feasible" in note for note in report.notes)

    def test_report_is_frozen(self):
        report = PruneReport(space=nullable_space())
        with pytest.raises(AttributeError):
            report.dropped = ("X",)

    def test_bundled_designs_unchanged(self):
        for name in sorted(all_designs()):
            design = get_design(name)
            report = prune_space(
                design.module(),
                ParameterSpace.from_design(design),
                sources=((design.source(), str(design.language)),),
            )
            assert not report.changed, f"{name}: {report.render()}"


# ---------------------------------------------------------------------------
# session + CLI integration
# ---------------------------------------------------------------------------


class TestSessionAndCli:
    def test_apply_static_pruning_rebuilds_fitness(self):
        sess = DseSession(
            source=NULLABLE_SV,
            language="systemverilog",
            top="nullable",
            space=nullable_space(),
            use_model=False,
            pretrain_size=0,
            seed=3,
        )
        old_fitness = sess.fitness
        try:
            report = sess.apply_static_pruning()
            assert report.changed
            assert sess.space.dimensions[0].low == 2
            assert sess.fitness is not old_fitness
            assert sess.fitness.space is sess.space
            res = sess.explore(generations=2, population=6)
            assert all(p.parameters["W"] >= 2 for p in res.pareto)
        finally:
            sess.close()

    def test_cli_prune_space_flag(self, capsys, tmp_path):
        src = tmp_path / "nullable.sv"
        src.write_text(NULLABLE_SV, encoding="utf-8")
        rc = main([
            "dse", "--source", str(src), "--top", "nullable",
            "--param", "W:1:16", "--generations", "2", "--population", "6",
            "--no-model", "--seed", "3", "--prune-space",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tightened W [1..16] -> [2..16]" in out
        assert "Non-dominated set" in out
