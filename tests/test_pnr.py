"""Tests for placement, routing, STA, checkpoints, and the impl driver."""

import numpy as np
import pytest

from repro.devices import get_device
from repro.directives import ImplDirective
from repro.errors import TimingAnalysisError, UtilizationOverflowError, CheckpointError
from repro.netlist import Block, Netlist
from repro.pnr import (
    Checkpoint,
    CheckpointStore,
    analyze_timing,
    implement,
    place,
    route,
)
from repro.pnr.implementation import estimate_impl_seconds
from repro.pnr.timing import block_internal_delay_ns
from repro.synth.mapper import map_to_device


def chain_netlist(levels_a=3, registered=True) -> Netlist:
    n = Netlist(top="chain")
    n.add_block(Block(name="a", logic_terms=200, ff_bits=40, levels=levels_a,
                      registered_output=False))
    n.add_block(Block(name="b", logic_terms=100, ff_bits=80, levels=2,
                      registered_output=registered))
    n.add_block(Block(name="c", logic_terms=50, ff_bits=30, levels=1))
    n.connect("a", "b", width=16, combinational=True)
    n.connect("b", "c", width=16, combinational=not registered)
    n.set_ports(8, 8)
    return n


def mapped(netlist=None, part="XC7K70T"):
    return map_to_device(netlist or chain_netlist(), get_device(part))


class TestPlacer:
    def test_deterministic_under_seed(self):
        d = mapped()
        p1 = place(d, seed=5)
        p2 = place(d, seed=5)
        assert p1.coords == p2.coords

    def test_different_seeds_differ(self):
        d = mapped()
        assert place(d, seed=1).coords != place(d, seed=2).coords

    def test_coords_inside_grid(self):
        d = mapped()
        p = place(d, seed=0)
        for x, y in p.coords.values():
            assert 0 <= x <= d.device.grid_cols
            assert 0 <= y <= d.device.grid_rows

    def test_connected_blocks_near(self):
        """Annealing should pull connected blocks together vs random spread."""
        d = mapped()
        p = place(d, effort=2.0, seed=0)
        dist_ab = p.distance("a", "b")
        assert dist_ab < (d.device.grid_cols + d.device.grid_rows) / 2

    def test_warm_start_short_schedule(self):
        d = mapped()
        cold = place(d, seed=0)
        warm = place(d, seed=0, initial=cold.coords)
        assert warm.iterations < cold.iterations
        assert warm.seeded_from_checkpoint

    def test_overflow_lut(self):
        n = Netlist(top="huge")
        n.add_block(Block(name="x", logic_terms=10**7))
        d = map_to_device(n, get_device("XC7K70T"))
        with pytest.raises(UtilizationOverflowError) as err:
            place(d)
        assert err.value.resource == "LUT"

    def test_pin_overflow_without_box(self):
        """The motivating case for boxing: unboxed wide interfaces overflow
        the package pins at implementation."""
        n = Netlist(top="wide")
        n.add_block(Block(name="x", logic_terms=10))
        n.set_ports(500, 200)
        d = map_to_device(n, get_device("XC7K70T"), boxed=False)
        with pytest.raises(UtilizationOverflowError) as err:
            place(d)
        assert err.value.resource == "IO"


class TestRouter:
    def test_delays_for_all_nets(self):
        d = mapped()
        r = route(d, place(d, seed=0))
        assert set(r.net_delays_ns) == {("a", "b"), ("b", "c")}
        assert all(v > 0 for v in r.net_delays_ns.values())

    def test_congestion_grows_with_fill(self):
        small = mapped()
        big_netlist = chain_netlist()
        big_netlist.replace_block("a", logic_terms=30000)
        big = mapped(big_netlist)
        r_small = route(small, place(small, seed=0))
        r_big = route(big, place(big, seed=0))
        assert r_big.detour_factor > r_small.detour_factor

    def test_faster_process_faster_nets(self):
        d28 = mapped(part="XC7K70T")
        d16 = mapped(part="ZU3EG")
        r28 = route(d28, place(d28, seed=0))
        r16 = route(d16, place(d16, seed=0))
        assert r16.delay("a", "b") < r28.delay("a", "b")


class TestTiming:
    def test_block_internal_delay_components(self):
        dev = get_device("XC7K70T")
        plain = Block(name="p", levels=2)
        with_mem = Block(name="m", levels=2, through_memory=True)
        assert block_internal_delay_ns(with_mem, dev) > block_internal_delay_ns(
            plain, dev
        )

    def test_wns_sign_convention(self):
        d = mapped()
        r = route(d, place(d, seed=0))
        tight = analyze_timing(d.netlist, d.device, r, target_period_ns=0.5)
        loose = analyze_timing(d.netlist, d.device, r, target_period_ns=100.0)
        assert tight.wns_ns < 0 and not tight.met()
        assert loose.wns_ns > 0 and loose.met()
        # Same critical delay either way:
        assert tight.critical_delay_ns == pytest.approx(loose.critical_delay_ns)

    def test_critical_path_is_comb_chain(self):
        d = mapped()
        r = route(d, place(d, seed=0))
        t = analyze_timing(d.netlist, d.device, r, target_period_ns=1.0)
        assert t.critical_path == ("a", "b")

    def test_registered_launch_excluded(self):
        """A registered-output launch block contributes no logic depth."""
        n = Netlist(top="t")
        n.add_block(Block(name="deep", logic_terms=10, levels=30))  # registered
        n.add_block(Block(name="shallow", logic_terms=10, levels=1))
        n.connect("deep", "shallow", combinational=True)
        d = map_to_device(n, get_device("XC7K70T"))
        r = route(d, place(d, seed=0))
        t = analyze_timing(n, d.device, r, target_period_ns=1.0)
        # deep's 30 levels dominate only via its own internal arc
        assert t.critical_path == ("deep",)

    def test_delay_bias_scales(self):
        d = mapped()
        r = route(d, place(d, seed=0))
        base = analyze_timing(d.netlist, d.device, r, 1.0, delay_bias=1.0)
        biased = analyze_timing(d.netlist, d.device, r, 1.0, delay_bias=1.1)
        assert biased.critical_delay_ns == pytest.approx(
            base.critical_delay_ns * 1.1
        )

    def test_bad_period_rejected(self):
        d = mapped()
        r = route(d, place(d, seed=0))
        with pytest.raises(TimingAnalysisError):
            analyze_timing(d.netlist, d.device, r, target_period_ns=0.0)


class TestCheckpoints:
    def test_lookup_hit_and_miss(self):
        store = CheckpointStore()
        n = chain_netlist()
        d = mapped(n)
        p = place(d, seed=0)
        store.save(Checkpoint.from_run(n, p))
        assert store.lookup(n) is not None
        other = Netlist(top="other")
        other.add_block(Block(name="z"))
        assert store.lookup(other) is None
        assert store.hits == 1 and store.misses == 1

    def test_structure_match_across_parameterizations(self):
        """Same topology, different sizes → checkpoint still matches."""
        store = CheckpointStore()
        n1 = chain_netlist()
        store.save(Checkpoint.from_run(n1, place(mapped(n1), seed=0)))
        n2 = chain_netlist()
        n2.replace_block("a", logic_terms=999)
        ckpt = store.lookup(n2)
        assert ckpt is not None
        assert not ckpt.matches_content(n2)

    def test_lru_eviction(self):
        store = CheckpointStore(capacity=2)
        for i in range(3):
            n = Netlist(top=f"t{i}")
            n.add_block(Block(name="a"))
            coords = {"a": (1.0, 1.0)}
            store.save(
                Checkpoint(
                    structure_fingerprint=n.structure_fingerprint(),
                    content_fingerprint=n.content_fingerprint(),
                    coords=coords,
                    block_summary={"a": 1},
                )
            )
        assert len(store) == 2

    def test_persistence_roundtrip(self, tmp_path):
        store = CheckpointStore()
        n = chain_netlist()
        store.save(Checkpoint.from_run(n, place(mapped(n), seed=0)))
        path = store.write(tmp_path / "ckpts.json")
        loaded = CheckpointStore.read(path)
        assert loaded.lookup(n) is not None

    def test_corrupt_archive_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            CheckpointStore.read(path)

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "bad2.json"
        path.write_text('[{"structure_fingerprint": 1}]')
        with pytest.raises(CheckpointError, match="malformed"):
            CheckpointStore.read(path)


class TestImplementation:
    def test_full_flow(self):
        res = implement(mapped(), target_period_ns=1.0, seed=3)
        assert res.timing.wns_ns < 1.0
        assert res.simulated_seconds > 0
        assert not res.used_checkpoint

    def test_incremental_flow_reuses(self):
        store = CheckpointStore()
        d = mapped()
        first = implement(d, 1.0, seed=3, checkpoints=store)
        second = implement(d, 1.0, seed=3, checkpoints=store)
        assert not first.used_checkpoint
        assert second.used_checkpoint
        assert second.simulated_seconds < first.simulated_seconds

    def test_directive_effort_tradeoff(self):
        d = mapped()
        fast = implement(d, 1.0, directive=ImplDirective.RUNTIME_OPTIMIZED, seed=3)
        explore = implement(d, 1.0, directive=ImplDirective.EXPLORE, seed=3)
        assert fast.simulated_seconds < explore.simulated_seconds
        assert explore.timing.critical_delay_ns < fast.timing.critical_delay_ns

    def test_runtime_estimator_guards(self):
        with pytest.raises(ValueError):
            estimate_impl_seconds(100, ImplDirective.DEFAULT, -0.1)
