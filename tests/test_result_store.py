"""Tests for the persistent cross-run result store (repro.cache).

Covers the three layers on their own terms — content-addressed keys, the
bounded in-memory LRU, and the on-disk JSONL store (including two real
processes appending concurrently) — plus the CI-grade equivalence
contract: a warm store changes tool-run counts, never answers.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cache import (
    FLOW_VERSION,
    KIND_POINT,
    LruCache,
    ResultStore,
    identity_key,
    point_key,
    run_identity,
)
from repro.designs import get_design


def _identity(**kw):
    defaults = dict(
        source="module m(input wire c); endmodule",
        top="m",
        part="XC7K70T",
        step="FlowStep.IMPLEMENTATION",
        synth_directive="Default",
        impl_directive="Default",
        target_period_ns=1.0,
        seed=3,
        metrics=(("LUT", "min"), ("frequency", "max")),
    )
    defaults.update(kw)
    return run_identity(**defaults)


class TestKeys:
    def test_point_key_ignores_param_order_and_case(self):
        identity = _identity()
        a = point_key(identity, {"DEPTH": 8, "WIDTH": 16})
        b = point_key(identity, {"width": 16, "depth": 8})
        assert a == b

    def test_point_key_separates_bindings(self):
        identity = _identity()
        assert point_key(identity, {"DEPTH": 8}) != point_key(identity, {"DEPTH": 9})

    def test_identity_covers_the_full_run_configuration(self):
        base = identity_key(_identity())
        for change in (
            dict(source="module m2(input wire c); endmodule"),
            dict(seed=4),
            dict(part="ZU3EG"),
            dict(target_period_ns=2.0),
            dict(impl_directive="Explore"),
            dict(metrics=(("LUT", "min"),)),
            dict(boxed=False),
            dict(language="vhdl"),
        ):
            assert identity_key(_identity(**change)) != base, change

    def test_flow_version_bump_invalidates_everything(self):
        old = identity_key(_identity(flow_version="veda-2"))
        assert identity_key(_identity(flow_version=FLOW_VERSION)) != old


class TestLruCache:
    def test_capacity_bound_and_eviction_order(self):
        lru = LruCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)  # evicts "a", the least recently used
        assert len(lru) == 2
        assert lru.evictions == 1
        assert lru.get("a") is None
        assert lru.get("b") == 2

    def test_get_refreshes_recency(self):
        lru = LruCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # "b" is now the eviction candidate
        lru.put("c", 3)
        assert lru.get("a") == 1
        assert lru.get("b") is None

    def test_unbounded_never_evicts(self):
        lru = LruCache(None)
        for i in range(1000):
            lru.put(i, i)
        assert len(lru) == 1000
        assert lru.evictions == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LruCache(0)


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = point_key(_identity(), {"DEPTH": 8})
        assert store.put(key, KIND_POINT, {"metrics": {"LUT": 42.0}}) is True
        record = store.get(key)
        assert record is not None
        assert record.kind == KIND_POINT
        assert record.payload["metrics"]["LUT"] == 42.0

    def test_duplicate_put_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = point_key(_identity(), {"DEPTH": 8})
        assert store.put(key, KIND_POINT, {"v": 1}) is True
        assert store.put(key, KIND_POINT, {"v": 2}) is False
        assert store.get(key).payload == {"v": 1}  # first writer wins
        assert store.stats().skipped_puts == 1

    def test_floats_roundtrip_bitwise(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        value = 123.456789012345e-7
        store.put("k", KIND_POINT, {"f": value})
        reader = ResultStore(tmp_path / "store")
        assert reader.get("k").payload["f"] == value

    def test_second_instance_sees_appends(self, tmp_path):
        writer = ResultStore(tmp_path / "store")
        reader = ResultStore(tmp_path / "store")
        writer.put("k1", KIND_POINT, {"v": 1})
        # The reader was opened before the append: the lookup miss
        # triggers a tail refresh that folds it in.
        assert reader.get("k1") is not None
        assert reader.hits == 1

    def test_segment_rotation(self, tmp_path):
        store = ResultStore(tmp_path / "store", segment_max_bytes=200)
        for i in range(20):
            store.put(f"key-{i:04d}", KIND_POINT, {"i": i})
        stats = store.stats()
        assert stats.segments > 1
        assert stats.unique_keys == 20
        # A fresh instance reassembles the index across all segments.
        assert len(ResultStore(tmp_path / "store")) == 20

    def test_clear_and_export(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for i in range(5):
            store.put(f"key-{i}", KIND_POINT, {"i": i})
        out = store.export(tmp_path / "export.jsonl")
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert {l["key"] for l in lines} == {f"key-{i}" for i in range(5)}
        assert store.clear() == 5
        assert len(store) == 0
        assert store.get("key-0") is None


_WRITER_SNIPPET = """
import sys
from repro.cache import ResultStore, KIND_POINT

root, start, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = ResultStore(root)
written = 0
for i in range(start, start + count):
    if store.put(f"key-{i:05d}", KIND_POINT, {"i": i}):
        written += 1
print(written)
"""


class TestConcurrentWriters:
    def test_two_processes_no_lost_or_duplicated_records(self, tmp_path):
        """Two real processes race on an overlapping key range.

        Every key must land exactly once in the index (first writer
        wins), and no append may be lost: the union of both ranges is
        fully present afterwards.
        """
        root = str(tmp_path / "store")
        # Ranges [0, 60) and [40, 100) — 20 contested keys in the middle.
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SNIPPET, root, str(start), "60"],
                stdout=subprocess.PIPE,
                cwd="/root/repo",
                env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            )
            for start in (0, 40)
        ]
        outs = [p.communicate(timeout=120)[0] for p in procs]
        assert all(p.returncode == 0 for p in procs)

        store = ResultStore(root)
        assert sorted(store.keys()) == [f"key-{i:05d}" for i in range(100)]
        for record in store.records():
            assert record.payload["i"] == int(record.key.split("-")[1])
        # Successful put() calls across both writers cover each key at
        # most once: the flock + tail-refresh recheck resolves races.
        total_written = sum(int(o) for o in outs)
        assert total_written == 100


class TestWarmStoreEquivalence:
    """CI-grade contract: the store changes pricing, never answers."""

    def test_warm_session_replays_everything_identically(self, tmp_path):
        from repro.core.session import DseSession

        def explore(store):
            s = DseSession(
                design=get_design("cv32e40p-fifo"),
                part="XC7K70T",
                use_model=False,
                seed=5,
                result_store=store,
            )
            try:
                return s.explore(generations=2, population=6), s
            finally:
                s.close()

        store_dir = tmp_path / "store"
        reference, _ = explore(None)
        cold, _ = explore(store_dir)
        warm, warm_session = explore(store_dir)

        def front(result):
            return sorted(
                (tuple(sorted(p.parameters.items())),
                 tuple(sorted(p.metrics.items())))
                for p in result.pareto
            )

        assert front(cold) == front(reference)
        assert front(warm) == front(reference)
        assert cold.evaluations == warm.evaluations == reference.evaluations
        # The warm run never touched the tool.
        assert cold.tool_runs > 0
        assert warm.tool_runs == 0
