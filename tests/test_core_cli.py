"""Tests for the command-line interface."""

import pytest

from repro.core.cli import build_parser, main


class TestParser:
    def test_metric_parsing(self):
        args = build_parser().parse_args(
            ["dse", "--design", "tirex", "--metric", "LUT:min",
             "--metric", "frequency:max"]
        )
        assert [m.canonical_name() for m in args.metrics] == ["LUT", "frequency"]

    def test_param_dim_parsing(self):
        args = build_parser().parse_args(
            ["dse", "--source", "x.v", "--top", "m",
             "--param", "W:4:32", "--param", "MEM:3:6:pow2"]
        )
        assert args.dims[0].name == "W"
        assert args.dims[1].decode(4) == 16

    def test_assignment_parsing(self):
        args = build_parser().parse_args(
            ["eval", "--design", "neorv32", "--set", "MEM_INT_IMEM_SIZE=0x2000"]
        )
        assert dict(args.assignments)["MEM_INT_IMEM_SIZE"] == 0x2000


class TestCommands:
    def test_list_designs(self, capsys):
        assert main(["list-designs"]) == 0
        out = capsys.readouterr().out
        for name in ("corundum-cqm", "cv32e40p-fifo", "neorv32", "tirex"):
            assert name in out

    def test_list_parts(self, capsys):
        assert main(["list-parts"]) == 0
        out = capsys.readouterr().out
        assert "XC7K70TFBV676-1" in out
        assert "XCZU3EG-SBVA484-1" in out

    def test_eval_command(self, capsys):
        rc = main([
            "eval", "--design", "corundum-cqm",
            "--set", "OP_TABLE_SIZE=16", "--set", "PIPELINE=3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OP_TABLE_SIZE=16" in out
        assert "Utilization" in out
        assert "WNS" in out

    def test_dse_command(self, capsys, tmp_path):
        rc = main([
            "dse", "--design", "corundum-cqm", "--generations", "2",
            "--population", "8", "--no-model", "--seed", "3",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Non-dominated set" in out
        assert "tool-hours" in out
        assert (tmp_path / "dse.json").exists()

    def test_dse_with_raw_source(self, capsys, tmp_path):
        src = tmp_path / "m.v"
        src.write_text(
            "module m #(parameter W = 8)"
            "(input wire clk, input wire [W-1:0] d, output reg [W-1:0] q);"
            " endmodule"
        )
        rc = main([
            "dse", "--source", str(src), "--top", "m",
            "--param", "W:4:16", "--generations", "2", "--population", "6",
            "--no-model",
        ])
        assert rc == 0
        assert "Non-dominated set" in capsys.readouterr().out

    def test_dse_raw_source_needs_params(self, tmp_path):
        src = tmp_path / "m.v"
        src.write_text("module m(input wire clk); endmodule")
        with pytest.raises(SystemExit, match="--param"):
            main(["dse", "--source", str(src), "--top", "m"])

    def test_source_without_top_exits(self):
        with pytest.raises(SystemExit):
            main(["eval", "--source", "whatever.v"])

    def test_hierarchy_command(self, capsys, tmp_path):
        src = tmp_path / "soc.v"
        src.write_text(
            "module soc(input wire clk); cpu u_cpu(.clk(clk)); endmodule\n"
            "module cpu(input wire clk); endmodule\n"
        )
        assert main(["hierarchy", str(src)]) == 0
        out = capsys.readouterr().out
        assert "soc" in out and "u_cpu: cpu" in out

    def test_hierarchy_explicit_root(self, capsys, tmp_path):
        src = tmp_path / "soc.v"
        src.write_text(
            "module soc(input wire clk); cpu u_cpu(.clk(clk)); endmodule\n"
            "module cpu(input wire clk); endmodule\n"
        )
        assert main(["hierarchy", str(src), "--root", "cpu"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines()[0] == "cpu"

    def test_dse_workers_flag(self, capsys, tmp_path):
        """--workers fans population evaluation over the persistent pool
        and must reproduce the serial run bit for bit."""
        common = [
            "dse", "--design", "corundum-cqm", "--generations", "2",
            "--population", "8", "--no-model", "--seed", "3",
        ]
        assert main(common + ["--out", str(tmp_path / "serial")]) == 0
        serial_out = capsys.readouterr().out
        assert main(
            common + ["--workers", "2", "--out", str(tmp_path / "pool")]
        ) == 0
        pool_out = capsys.readouterr().out
        assert "Non-dominated set" in pool_out

        def sans_paths(text):
            return [ln for ln in text.splitlines() if str(tmp_path) not in ln]

        assert sans_paths(pool_out) == sans_paths(serial_out)

        from repro.util.io import load_json

        serial = load_json(tmp_path / "serial" / "dse.json")
        pool = load_json(tmp_path / "pool" / "dse.json")
        assert serial["pareto"] == pool["pareto"]
        assert serial["evaluations"] == pool["evaluations"]

    def test_dse_refit_flags_parse(self):
        args = build_parser().parse_args(
            ["dse", "--design", "tirex", "--workers", "4",
             "--refit-every", "8", "--refit-gamma-drift", "0.05"]
        )
        assert args.workers == 4
        assert args.refit_every == 8
        assert args.refit_gamma_drift == 0.05

    def test_dse_mosa_algorithm(self, capsys):
        rc = main([
            "dse", "--design", "corundum-cqm", "--generations", "2",
            "--population", "6", "--no-model", "--algorithm", "mosa",
        ])
        assert rc == 0
        assert "Non-dominated set" in capsys.readouterr().out

    def test_dse_auto_algorithm_reports_choice(self, capsys):
        rc = main([
            "dse", "--design", "neorv32", "--no-model", "--algorithm", "auto",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "algorithm choice:" in out
        # Neorv32's canonical space has 25 points: enumerated.
        assert "exhaustive" in out

    def test_flow_error_returns_1(self, capsys):
        rc = main([
            "eval", "--design", "tirex", "--part", "XC7A35T",
            "--set", "NCLUSTER=8", "--set", "INSTR_MEM_SIZE=64",
            "--set", "DATA_MEM_SIZE=64",
        ])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_grid(self, capsys):
        rc = main([
            "sweep", "--design", "corundum-cqm",
            "--grid", "OP_TABLE_SIZE=8,16", "--grid", "PIPELINE=2,4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Sweep: 4 configurations" in out
        assert "Pareto subset" in out

    def test_sweep_csv_export(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        rc = main([
            "sweep", "--design", "corundum-cqm",
            "--grid", "OP_TABLE_SIZE=8,24", "--csv", str(csv_path),
        ])
        assert rc == 0
        assert csv_path.exists()

    def test_sweep_requires_grid(self):
        with pytest.raises(SystemExit, match="--grid"):
            main(["sweep", "--design", "corundum-cqm"])

    def test_sweep_bad_grid_format(self):
        with pytest.raises(SystemExit, match="NAME=V1"):
            main(["sweep", "--design", "corundum-cqm", "--grid", "OPS"])


class TestTelemetryCli:
    def test_explore_alias(self, capsys):
        rc = main([
            "explore", "--design", "cv32e40p-fifo", "--generations", "1",
            "--population", "6", "--pretrain", "4",
        ])
        assert rc == 0
        assert "Non-dominated set" in capsys.readouterr().out

    def test_dse_trace_writes_valid_jsonl_and_summary(self, capsys, tmp_path):
        from repro.observe import current_telemetry, read_trace, validate_trace

        trace = tmp_path / "trace.jsonl"
        rc = main([
            "dse", "--design", "cv32e40p-fifo", "--generations", "2",
            "--population", "6", "--pretrain", "6", "--seed", "2",
            "--trace", str(trace),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Run ledger" in out
        assert "trace written" in out
        # Telemetry is torn down after the run.
        assert current_telemetry() is None
        assert validate_trace(trace) == []
        parsed = read_trace(trace)
        assert parsed["meta"]["command"] == "dse"
        assert len(parsed["ledger"]) > 0
        assert parsed["generations"]

    def test_sweep_trace(self, capsys, tmp_path):
        from repro.observe import validate_trace

        trace = tmp_path / "sweep.jsonl"
        rc = main([
            "sweep", "--design", "corundum-cqm",
            "--grid", "OP_TABLE_SIZE=8,16", "--trace", str(trace),
        ])
        assert rc == 0
        assert validate_trace(trace) == []

    def test_stats_command_renders_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "dse", "--design", "cv32e40p-fifo", "--generations", "1",
            "--population", "6", "--pretrain", "4", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Run ledger" in out
        assert "Spans" in out


class TestResultStoreCli:
    def test_sweep_warm_store_replays(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        args = [
            "sweep", "--design", "corundum-cqm",
            "--grid", "OP_TABLE_SIZE=8,16", "--result-store", store,
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        # Same table rows, but the warm run answers from the store.
        assert "tool" in cold
        assert "cache" in warm

    def test_cache_stats_and_export(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        main([
            "sweep", "--design", "corundum-cqm",
            "--grid", "OP_TABLE_SIZE=8,16", "--result-store", store,
        ])
        capsys.readouterr()

        assert main(["cache", "stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "unique_keys" in out
        assert "kind:point" in out

        export = tmp_path / "dump.jsonl"
        assert main(["cache", "export", "--store", store,
                     "--out", str(export)]) == 0
        assert export.exists()
        assert len(export.read_text().splitlines()) == 2

    def test_cache_clear(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        main([
            "sweep", "--design", "corundum-cqm",
            "--grid", "OP_TABLE_SIZE=8", "--result-store", store,
        ])
        capsys.readouterr()
        assert main(["cache", "clear", "--store", store]) == 0
        assert "1" in capsys.readouterr().out

    def test_dse_accepts_result_store(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        rc = main([
            "dse", "--design", "corundum-cqm", "--generations", "1",
            "--population", "6", "--no-model", "--seed", "3",
            "--result-store", store,
        ])
        assert rc == 0
        from repro.cache import ResultStore

        assert len(ResultStore(store)) > 0
