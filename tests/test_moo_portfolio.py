"""Tests for MOSA and the algorithm-choice portfolio extension."""

import numpy as np
import pytest

from repro.estimation.dataset import Dataset
from repro.moo import IntegerProblem, Objective, Termination
from repro.moo.mosa import MOSA
from repro.moo.nds import non_dominated_mask
from repro.moo.portfolio import (
    dataset_ruggedness,
    pareto_of_merged,
    probe_and_choose,
    recommend_algorithm,
)


class Smooth2D(IntegerProblem):
    """A smooth bi-objective trade-off over two variables."""

    def __init__(self, high=60):
        super().__init__(
            [0, 0], [high, high],
            [Objective.minimize("f1"), Objective.minimize("f2")],
        )

    def evaluate(self, X):
        f1 = X[:, 0].astype(float)
        f2 = (self.highs[0] - X[:, 0]) + 0.5 * X[:, 1]
        return np.stack([f1, f2], axis=1)


class TestMosa:
    def test_respects_budget(self):
        res = MOSA().minimize(Smooth2D(), Termination(n_eval=80), seed=0)
        assert 80 <= res.evaluations <= 82  # restart bookkeeping may add one

    def test_pareto_is_nondominated(self):
        res = MOSA().minimize(Smooth2D(), Termination(n_eval=100), seed=1)
        assert non_dominated_mask(res.pareto.F).all()

    def test_deterministic(self):
        a = MOSA().minimize(Smooth2D(), Termination(n_eval=60), seed=3)
        b = MOSA().minimize(Smooth2D(), Termination(n_eval=60), seed=3)
        assert np.array_equal(a.archive.X, b.archive.X)

    def test_walker_accepts_moves(self):
        res = MOSA().minimize(Smooth2D(), Termination(n_eval=120), seed=0)
        assert res.accepted > 10

    def test_finds_extremes_on_smooth_front(self):
        res = MOSA().minimize(Smooth2D(), Termination(n_eval=300), seed=2)
        f1_values = res.pareto.F[:, 0]
        # The f1-minimal corner (x0=0) should be discovered.
        assert f1_values.min() <= 3

    def test_temperature_cools(self):
        res = MOSA(initial_temperature=0.5, cooling=0.99).minimize(
            Smooth2D(), Termination(n_eval=100), seed=0
        )
        assert res.temperature_final < 0.5


class TestRuggedness:
    def _dataset(self, fn, n=30, seed=0):
        rng = np.random.default_rng(seed)
        ds = Dataset(n_var=2, metric_names=("m",))
        for _ in range(n):
            x = rng.integers(0, 100, 2)
            ds.add(x.astype(float), np.array([fn(x)]))
        return ds

    def test_smooth_low_rugged_high(self):
        smooth = self._dataset(lambda x: float(x.sum()))
        rng = np.random.default_rng(9)
        rugged = self._dataset(lambda x: float(rng.uniform(0, 100)))
        assert dataset_ruggedness(smooth) < dataset_ruggedness(rugged)

    def test_tiny_dataset_assumed_rugged(self):
        ds = Dataset(n_var=1, metric_names=("m",))
        ds.add([1.0], [1.0])
        assert dataset_ruggedness(ds) == 1.0


class TestRecommendation:
    def test_tiny_space_exhaustive(self):
        class Tiny(IntegerProblem):
            def __init__(self):
                super().__init__([0, 0], [7, 7], [Objective.minimize("f")])

            def evaluate(self, X):
                return X.sum(axis=1, keepdims=True).astype(float)

        choice = recommend_algorithm(Tiny())
        assert choice.name == "exhaustive"

    def test_smooth_low_dim_gets_mosa(self):
        problem = Smooth2D(high=1000)
        ds = Dataset(n_var=2, metric_names=("f1", "f2"))
        rng = np.random.default_rng(0)
        for _ in range(30):
            x = rng.integers(0, 1000, 2).astype(float)
            ds.add(x, np.array([x[0], 1000 - x[0] + 0.5 * x[1]]))
        choice = recommend_algorithm(problem, ds)
        assert choice.name == "mosa"
        assert "smooth" in choice.reason

    def test_no_dataset_defaults_to_nsga2(self):
        choice = recommend_algorithm(Smooth2D(high=1000))
        assert choice.name == "nsga2"

    def test_high_dim_gets_nsga2(self):
        class HighDim(IntegerProblem):
            def __init__(self):
                super().__init__([0] * 6, [50] * 6,
                                 [Objective.minimize("f")])

            def evaluate(self, X):
                return X.sum(axis=1, keepdims=True).astype(float)

        assert recommend_algorithm(HighDim()).name == "nsga2"


class TestProbeAndChoose:
    def test_probe_scores_all_candidates(self):
        choice, merged, scores = probe_and_choose(
            Smooth2D(), probe_budget=40, seed=1
        )
        assert set(scores) == {"nsga2", "mosa", "random"}
        assert choice.name in scores
        assert len(merged) >= 3 * 40 * 0.8  # probes pooled

    def test_merged_front_extractable(self):
        _, merged, _ = probe_and_choose(Smooth2D(), probe_budget=30, seed=1)
        front = pareto_of_merged(merged)
        assert len(front) >= 1
        assert non_dominated_mask(front.F).all()

    def test_winner_beats_random_usually(self):
        choice, _, scores = probe_and_choose(Smooth2D(), probe_budget=60, seed=4)
        assert scores[choice.name] >= scores["random"]
