"""Tests for elaboration, optimization, technology mapping, and the driver."""

import pytest

from repro.devices import ResourceKind, get_device
from repro.directives import SynthDirective
from repro.errors import ElaborationError, MappingError
from repro.hdl.frontend import parse_source
from repro.netlist import Block, Netlist
from repro.synth import (
    elaborate,
    map_to_device,
    optimize,
    register_model,
    registered_models,
    synthesize,
    unregister_model,
)
from repro.synth.elaborate import resolve_environment
from repro.synth.mapper import BRAM_TILE_BITS, DISTRIBUTED_RAM_LIMIT, map_block
from repro.synth.synthesis import estimate_synth_seconds

SV = """
module widget #(
    parameter DEPTH = 16,
    parameter WIDTH = 8,
    localparam ADDR = $clog2(DEPTH)
)(
    input wire clk,
    input wire [WIDTH-1:0] d,
    output reg [WIDTH-1:0] q
);
endmodule
"""


def widget():
    return parse_source(SV, "verilog")[0]


class TestResolveEnvironment:
    def test_defaults_plus_overrides(self):
        env = resolve_environment(widget(), {"DEPTH": 64})
        assert env["DEPTH"] == 64
        assert env["WIDTH"] == 8

    def test_localparam_rederived(self):
        env = resolve_environment(widget(), {"DEPTH": 256})
        assert env["ADDR"] == 8

    def test_unknown_override_rejected(self):
        with pytest.raises(ElaborationError, match="no parameter"):
            resolve_environment(widget(), {"GHOST": 1})

    def test_localparam_override_rejected(self):
        with pytest.raises(ElaborationError, match="local"):
            resolve_environment(widget(), {"ADDR": 3})

    def test_bool_coerced(self):
        m = parse_source(
            "module m #(parameter EN = 0)(input wire clk); endmodule", "verilog"
        )[0]
        assert resolve_environment(m, {"EN": True})["EN"] == 1

    def test_non_integer_rejected(self):
        with pytest.raises(ElaborationError, match="integer"):
            resolve_environment(widget(), {"DEPTH": 3.5})


class TestHeuristicElaboration:
    def test_produces_nonempty_netlist(self):
        n = elaborate(widget())
        assert len(n) >= 2
        assert n.totals()["ff_bits"] > 0

    def test_monotone_in_memory_hint(self):
        small = elaborate(widget(), {"DEPTH": 16}).totals()["mem_bits"]
        large = elaborate(widget(), {"DEPTH": 512}).totals()["mem_bits"]
        assert large > small

    def test_ports_recorded(self):
        n = elaborate(widget())
        assert n.ports.inputs == 1 + 8
        assert n.ports.outputs == 8


class TestModelRegistry:
    def test_registered_model_takes_priority(self):
        def tiny(module, env):
            n = Netlist(top=module.name)
            n.add_block(Block(name="only", logic_terms=env["DEPTH"], ff_bits=1))
            return n

        register_model("widget", tiny)
        try:
            n = elaborate(widget(), {"DEPTH": 33})
            assert [b.name for b in n.blocks()] == ["only"]
            assert n.block("only").logic_terms == 33
            assert "widget" in registered_models()
        finally:
            assert unregister_model("widget")

    def test_empty_model_netlist_rejected(self):
        register_model("widget", lambda m, e: Netlist(top=m.name))
        try:
            with pytest.raises(ElaborationError, match="empty"):
                elaborate(widget())
        finally:
            assert unregister_model("widget")


class TestOptimizer:
    def _netlist(self):
        n = Netlist(top="t")
        n.add_block(Block(name="big", logic_terms=1000, ff_bits=10, levels=5,
                          registered_output=False))
        n.add_block(Block(name="small", logic_terms=8, ff_bits=10, levels=1))
        n.connect("big", "small", combinational=True)
        return n

    def test_default_is_identity(self):
        n = self._netlist()
        assert optimize(n, SynthDirective.DEFAULT) is n

    def test_area_directive_shrinks_luts(self):
        n = self._netlist()
        out = optimize(n, SynthDirective.AREA_OPTIMIZED_HIGH)
        assert out.block("big").logic_terms < 1000
        assert out.block("small").logic_terms == 8  # below sharing threshold

    def test_area_directive_costs_levels(self):
        out = optimize(self._netlist(), SynthDirective.AREA_OPTIMIZED_HIGH)
        # sharing adds a level OR effort trims one; net effect within ±1
        assert abs(out.block("big").levels - 5) <= 1

    def test_perf_directive_grows_luts_trims_levels(self):
        out = optimize(self._netlist(), SynthDirective.PERFORMANCE_OPTIMIZED)
        assert out.block("big").logic_terms > 1000
        assert out.block("big").levels < 5

    def test_structure_preserved(self):
        n = self._netlist()
        out = optimize(n, SynthDirective.AREA_OPTIMIZED_HIGH)
        assert out.structure_fingerprint() == n.structure_fingerprint()


class TestMapper:
    def test_small_memory_stays_distributed(self):
        b = Block(name="m", mem_bits=DISTRIBUTED_RAM_LIMIT, mem_width=8)
        res = map_block(b)
        assert res.get("BRAM") == 0
        assert res.get("LUT") > 0

    def test_large_memory_uses_bram_capacity_rule(self):
        b = Block(name="m", mem_bits=3 * BRAM_TILE_BITS, mem_width=32)
        assert map_block(b).get("BRAM") == 3

    def test_wide_shallow_memory_width_rule(self):
        # 2048 bits but 144 wide: width forces 2 tiles despite tiny capacity.
        b = Block(name="m", mem_bits=2048, mem_width=144)
        assert map_block(b).get("BRAM") == 2

    def test_carry_mapping(self):
        b = Block(name="c", carry_bits=9)
        res = map_block(b)
        assert res.get("CARRY") == 3  # ceil(9/4)
        assert res.get("LUT") == 9    # one LUT per carry bit

    def test_boxed_io_is_one(self):
        n = Netlist(top="t")
        n.add_block(Block(name="a", logic_terms=4))
        n.set_ports(100, 200)
        mapped = map_to_device(n, get_device("XC7K70T"), boxed=True)
        assert mapped.total.get("IO") == 1

    def test_unboxed_io_counts_port_bits(self):
        n = Netlist(top="t")
        n.add_block(Block(name="a", logic_terms=4))
        n.set_ports(100, 200)
        mapped = map_to_device(n, get_device("XC7K70T"), boxed=False)
        assert mapped.total.get("IO") == 300

    def test_missing_resource_class_raises(self):
        # Build a fake device without DSP and map a multiplier onto it.
        from repro.devices import Device, ResourceVector

        dev = Device(
            part="FAKE-NO-DSP",
            family="Fake",
            process="28nm",
            speed_grade=1,
            resources=ResourceVector.of(LUT=1000, FF=1000, IO=10, BUFG=4),
            grid_cols=8,
            grid_rows=8,
        )
        n = Netlist(top="t")
        n.add_block(Block(name="mul", mul_ops=2))
        with pytest.raises(MappingError, match="DSP"):
            map_to_device(n, dev)


class TestSynthesisDriver:
    def test_runtime_model_monotone_in_cells(self):
        small = estimate_synth_seconds(100, SynthDirective.DEFAULT)
        large = estimate_synth_seconds(10000, SynthDirective.DEFAULT)
        assert large > small

    def test_runtime_directive_factor(self):
        fast = estimate_synth_seconds(5000, SynthDirective.RUNTIME_OPTIMIZED)
        slow = estimate_synth_seconds(5000, SynthDirective.AREA_OPTIMIZED_HIGH)
        assert fast < slow

    def test_incremental_saves_time(self):
        full = estimate_synth_seconds(5000, SynthDirective.DEFAULT, 0.0)
        warm = estimate_synth_seconds(5000, SynthDirective.DEFAULT, 1.0)
        assert warm < full
        assert warm >= full * 0.25  # floor: reuse never free

    def test_bad_reuse_fraction(self):
        with pytest.raises(ValueError):
            estimate_synth_seconds(100, SynthDirective.DEFAULT, 1.5)

    def test_full_synthesis(self):
        res = synthesize(widget(), get_device("XC7K70T"), {"DEPTH": 32})
        assert res.mapped.total.get("LUT") > 0
        assert res.simulated_seconds > 0

    def test_incremental_reference(self):
        first = synthesize(widget(), get_device("XC7K70T"), {"DEPTH": 32})
        second = synthesize(
            widget(), get_device("XC7K70T"), {"DEPTH": 33}, reference=first.netlist
        )
        assert second.incremental_reuse > 0
        assert second.simulated_seconds < first.simulated_seconds
