"""Tests for SPEA2."""

import numpy as np
import pytest

from repro.moo import IntegerProblem, Objective, Termination, hypervolume
from repro.moo.nds import non_dominated_mask
from repro.moo.spea2 import SPEA2, spea2_fitness, _truncate_archive


class BiObjective(IntegerProblem):
    def __init__(self):
        super().__init__(
            [0, 0, 0], [30, 30, 30],
            [Objective.minimize("f1"), Objective.minimize("f2")],
        )

    def evaluate(self, X):
        f1 = X[:, 0] + 0.3 * X[:, 2]
        f2 = (30 - X[:, 0]) + 0.3 * X[:, 1]
        return np.stack([f1, f2], axis=1).astype(float)


class TestFitnessAssignment:
    def test_nondominated_below_one(self):
        F = np.array([[1.0, 4.0], [2.0, 3.0], [4.0, 1.0],   # front
                      [3.0, 5.0], [5.0, 5.0]])              # dominated
        fit = spea2_fitness(F)
        assert (fit[:3] < 1.0).all()
        assert (fit[3:] >= 1.0).all()

    def test_more_dominated_higher_fitness(self):
        F = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        fit = spea2_fitness(F)
        # The doubly-dominated point scores worse than the singly-dominated.
        assert fit[2] > fit[1] > fit[0]

    def test_empty(self):
        assert spea2_fitness(np.empty((0, 2))).size == 0


class TestTruncation:
    def test_no_truncation_needed(self):
        F = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert _truncate_archive(F, 5).tolist() == [0, 1]

    def test_removes_most_crowded(self):
        # Three nearly-coincident points plus two spread ones; truncating to
        # 4 must drop one of the clustered points.
        F = np.array([
            [0.0, 10.0], [10.0, 0.0],
            [5.0, 5.0], [5.05, 5.0], [5.0, 5.05],
        ])
        kept = set(_truncate_archive(F, 4).tolist())
        assert {0, 1} <= kept
        assert len(kept & {2, 3, 4}) == 2

    def test_result_size_exact(self):
        rng = np.random.default_rng(0)
        F = rng.random((20, 2))
        assert _truncate_archive(F, 7).size == 7


class TestSpea2Loop:
    def test_respects_budget_and_returns_front(self):
        res = SPEA2(pop_size=16, archive_size=16).minimize(
            BiObjective(), Termination(n_eval=200), seed=1
        )
        assert res.evaluations >= 200
        assert non_dominated_mask(res.pareto.F).all()
        assert len(res.external) <= 16

    def test_deterministic(self):
        a = SPEA2(pop_size=12).minimize(BiObjective(), Termination(n_eval=100), seed=5)
        b = SPEA2(pop_size=12).minimize(BiObjective(), Termination(n_eval=100), seed=5)
        assert np.array_equal(a.archive.X, b.archive.X)

    def test_competitive_with_nsga2(self):
        from repro.moo import NSGA2

        budget = 300
        spea = SPEA2(pop_size=20, archive_size=20).minimize(
            BiObjective(), Termination(n_eval=budget), seed=3
        )
        nsga = NSGA2(pop_size=20).minimize(
            BiObjective(), Termination(n_eval=budget), seed=3
        )
        ref = np.array([45.0, 45.0])
        hv_spea = hypervolume(spea.pareto.F, ref)
        hv_nsga = hypervolume(nsga.pareto.F, ref)
        assert hv_spea > 0.85 * hv_nsga

    def test_portfolio_integration(self):
        from repro.moo.portfolio import probe_and_choose

        choice, merged, scores = probe_and_choose(
            BiObjective(), probe_budget=40,
            candidates=("nsga2", "spea2", "random"), seed=2,
        )
        assert "spea2" in scores
        assert choice.name != "random"
