"""Tests for the Verilog / SystemVerilog module parser."""

import pytest

from repro.errors import ParseError
from repro.hdl.ast import Direction, HdlLanguage
from repro.hdl.verilog_parser import parse_verilog


class TestAnsiStyle:
    def test_typed_and_untyped_parameters(self):
        src = """
        module m #(
            parameter WIDTH = 8,
            parameter int DEPTH = 16,
            parameter logic [3:0] MODE = 4'b0010,
            localparam ADDR = $clog2(DEPTH)
        )(input wire clk);
        endmodule
        """
        m = parse_verilog(src)[0]
        names = [(p.name, p.local) for p in m.parameters]
        assert names == [("WIDTH", False), ("DEPTH", False), ("MODE", False),
                         ("ADDR", True)]
        env = m.default_environment()
        assert env["ADDR"] == 4
        assert env["MODE"] == 2

    def test_direction_and_type_inheritance(self):
        src = """
        module m (
            input wire [7:0] a, b,
            output reg [7:0] q,
            r,
            inout tri pad
        );
        endmodule
        """
        m = parse_verilog(src)[0]
        assert m.port("b").direction == Direction.IN
        assert m.port("b").width() == 8
        assert m.port("r").direction == Direction.OUT
        assert m.port("r").width() == 8
        assert m.port("pad").direction == Direction.INOUT

    def test_sv_logic_ports(self):
        src = """
        module m (
            input  logic         clk_i,
            input  logic [31:0]  data_i,
            output logic [31:0]  data_o
        );
        endmodule
        """
        m = parse_verilog(src, HdlLanguage.SYSTEMVERILOG)[0]
        assert m.port("data_i").ptype.base == "logic"
        assert m.port("data_o").width() == 32

    def test_width_expressions_with_parameters(self):
        src = """
        module m #(parameter W = 16)(
            input wire [W-1:0] d,
            output wire [2*W-1:0] q
        );
        endmodule
        """
        m = parse_verilog(src)[0]
        env = m.default_environment()
        assert m.port("d").width(env) == 16
        assert m.port("q").width(env) == 32

    def test_empty_port_list(self):
        m = parse_verilog("module m(); endmodule")[0]
        assert m.ports == ()

    def test_no_port_list(self):
        m = parse_verilog("module m; endmodule")[0]
        assert m.name == "m"

    def test_endmodule_label(self):
        m = parse_verilog("module m(input wire c); endmodule : m")[0]
        assert m.name == "m"


class TestNonAnsiStyle:
    def test_body_declarations(self):
        src = """
        module adder(a, b, cin, sum, cout);
          parameter WIDTH = 4;
          input [WIDTH-1:0] a, b;
          input cin;
          output [WIDTH-1:0] sum;
          output cout;
          assign {cout, sum} = a + b + cin;
        endmodule
        """
        m = parse_verilog(src)[0]
        env = m.default_environment()
        assert m.port("a").width(env) == 4
        assert m.port("cout").direction == Direction.OUT
        assert len(m.ports) == 5

    def test_undeclared_header_name_backfilled(self):
        src = """
        module m(x, y);
          input x;
        endmodule
        """
        m = parse_verilog(src)[0]
        assert m.port("y").direction == Direction.IN
        assert m.port("y").width() == 1

    def test_nested_scopes_do_not_leak_parameters(self):
        src = """
        module m(input wire clk);
          parameter TOP_LEVEL = 1;
          function automatic integer f;
            input integer x;
            parameter HIDDEN = 99;
            begin f = x; end
          endfunction
        endmodule
        """
        m = parse_verilog(src)[0]
        names = [p.name for p in m.parameters]
        assert "TOP_LEVEL" in names
        assert "HIDDEN" not in names


class TestSystemVerilogExtras:
    def test_package_import_recorded(self):
        src = """
        import cv32e40p_pkg::*;
        module core (input logic clk_i);
        endmodule
        """
        m = parse_verilog(src, HdlLanguage.SYSTEMVERILOG)[0]
        assert "cv32e40p_pkg::*" in m.use_clauses

    def test_header_scoped_import(self):
        src = """
        module core import rv_pkg::XLEN; (input logic clk_i);
        endmodule
        """
        m = parse_verilog(src, HdlLanguage.SYSTEMVERILOG)[0]
        assert "rv_pkg::XLEN" in m.use_clauses

    def test_package_body_skipped(self):
        src = """
        package p;
          localparam X = 1;
        endpackage
        module after_p(input wire c); endmodule
        """
        assert [m.name for m in parse_verilog(src)] == ["after_p"]

    def test_parameter_default_with_ternary(self):
        src = """
        module m #(
          parameter D = 8,
          parameter A = (D > 1) ? $clog2(D) : 1
        )(input wire clk);
        endmodule
        """
        env = parse_verilog(src)[0].default_environment()
        assert env["A"] == 3

    def test_concatenation_default_folds(self):
        src = """
        module m #(parameter P = {8{1'b0}})(input wire clk);
        endmodule
        """
        # Not integer-meaningful; must parse without error and fold benignly.
        assert parse_verilog(src)[0].parameter("P").default_value() == 0


class TestMultiModule:
    def test_several_modules(self):
        src = """
        module a(input wire c); endmodule
        module b(input wire c); endmodule
        """
        assert [m.name for m in parse_verilog(src)] == ["a", "b"]

    def test_unterminated_module_raises(self):
        with pytest.raises(ParseError, match="endmodule"):
            parse_verilog("module broken(input wire c);")

    def test_bodies_with_instances_skipped(self):
        src = """
        module top(input wire clk);
          sub u_sub (.clk(clk), .q());
          always @(posedge clk) begin : named_block
          end
        endmodule
        module sub(input wire clk, output wire q); endmodule
        """
        mods = parse_verilog(src)
        assert [m.name for m in mods] == ["top", "sub"]
