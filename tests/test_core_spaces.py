"""Tests for parameter spaces and encodings."""

import numpy as np
import pytest

from repro.core.spaces import (
    BoolParam,
    IntRange,
    ParameterSpace,
    PowerOfTwoRange,
)
from repro.errors import InvalidSpaceError


class TestDimensions:
    def test_int_range_identity(self):
        d = IntRange("N", 4, 10)
        assert d.decode(7) == 7
        assert d.encode(7) == 7
        assert d.cardinality() == 7
        assert d.values() == list(range(4, 11))

    def test_inverted_bounds(self):
        with pytest.raises(InvalidSpaceError):
            IntRange("N", 10, 4)

    def test_pow2_decode_encode(self):
        d = PowerOfTwoRange("MEM", 12, 16)
        assert d.decode(13) == 8192
        assert d.encode(8192) == 13
        assert d.values() == [4096, 8192, 16384, 32768, 65536]

    def test_pow2_rejects_non_power(self):
        d = PowerOfTwoRange("MEM", 0, 4)
        with pytest.raises(InvalidSpaceError):
            d.encode(3)

    def test_pow2_over_values(self):
        d = PowerOfTwoRange.over_values("MEM", 8, 64)
        assert (d.low, d.high) == (3, 6)
        with pytest.raises(InvalidSpaceError):
            PowerOfTwoRange.over_values("MEM", 7, 64)

    def test_pow2_negative_exponent(self):
        with pytest.raises(InvalidSpaceError):
            PowerOfTwoRange("X", -1, 4)

    def test_bool_param(self):
        d = BoolParam("EN")
        assert d.values() == [0, 1]

    def test_pow2_over_values_below_one(self):
        with pytest.raises(InvalidSpaceError, match="below 1"):
            PowerOfTwoRange.over_values("MEM", 0, 64)
        with pytest.raises(InvalidSpaceError, match="below 1"):
            PowerOfTwoRange.over_values("MEM", -8, 64)

    def test_round_trip_validated_at_boundaries(self):
        for d in (IntRange("N", -4, 10), PowerOfTwoRange("MEM", 0, 6), BoolParam("EN")):
            d.validate_round_trip()

    def test_broken_codec_rejected(self):
        class Lossy(IntRange):
            def decode(self, encoded):
                return int(encoded) // 2 * 2  # not injective

        with pytest.raises(InvalidSpaceError, match="round-trip"):
            ParameterSpace([Lossy("N", 1, 9)])


class TestParameterSpace:
    def _space(self):
        return ParameterSpace([
            IntRange("OPS", 8, 40),
            PowerOfTwoRange("MEM", 3, 6),
            BoolParam("EN"),
        ])

    def test_cardinality_product(self):
        assert self._space().cardinality() == 33 * 4 * 2

    def test_decode_roundtrip(self):
        space = self._space()
        params = space.decode([16, 4, 1])
        assert params == {"OPS": 16, "MEM": 16, "EN": 1}
        assert space.encode(params).tolist() == [16, 4, 1]

    def test_decode_clips_out_of_bounds(self):
        space = self._space()
        assert space.decode([100, 0, 5]) == {"OPS": 40, "MEM": 8, "EN": 1}

    def test_encode_missing_dimension(self):
        with pytest.raises(InvalidSpaceError, match="missing"):
            self._space().encode({"OPS": 10})

    def test_encode_case_insensitive(self):
        space = self._space()
        v = space.encode({"ops": 9, "mem": 8, "en": 0})
        assert v.tolist() == [9, 3, 0]

    def test_duplicate_names_rejected(self):
        with pytest.raises(InvalidSpaceError, match="duplicate"):
            ParameterSpace([IntRange("A", 0, 1), IntRange("a", 0, 1)])

    def test_empty_rejected(self):
        with pytest.raises(InvalidSpaceError):
            ParameterSpace([])

    def test_wrong_vector_length(self):
        with pytest.raises(InvalidSpaceError):
            self._space().decode([1, 2])

    def test_bounds_arrays(self):
        space = self._space()
        assert space.lows().tolist() == [8, 3, 0]
        assert space.highs().tolist() == [40, 6, 1]

    def test_decode_many(self):
        space = self._space()
        out = space.decode_many(np.array([[8, 3, 0], [40, 6, 1]]))
        assert out[0]["MEM"] == 8 and out[1]["MEM"] == 64


class TestFromDesign:
    def test_tirex_space(self, tirex_design):
        space = ParameterSpace.from_design(tirex_design)
        assert space.names() == [
            "NCLUSTER", "STACK_SIZE", "INSTR_MEM_SIZE", "DATA_MEM_SIZE"
        ]
        assert isinstance(space.dimension("NCLUSTER"), PowerOfTwoRange)
        assert space.decode(space.lows())["NCLUSTER"] == 1

    def test_fifo_space_bool_dimension(self, fifo_design):
        space = ParameterSpace.from_design(fifo_design)
        assert isinstance(space.dimension("FALL_THROUGH"), BoolParam)
        # Paper: "The parameter range comprised 500 possible values".
        assert space.dimension("DEPTH").cardinality() == 500

    def test_restricted_names(self, fifo_design):
        space = ParameterSpace.from_design(fifo_design, names=["DEPTH"])
        assert space.names() == ["DEPTH"]
