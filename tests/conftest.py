"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.designs import corundum_cqm, fifo_sv, neorv32, tirex
from repro.flow import VivadoSim


@pytest.fixture(scope="session")
def fifo_design():
    return fifo_sv.generator()


@pytest.fixture(scope="session")
def cqm_design():
    return corundum_cqm.generator()


@pytest.fixture(scope="session")
def neorv_design():
    return neorv32.generator()


@pytest.fixture(scope="session")
def tirex_design():
    return tirex.generator()


@pytest.fixture()
def k7_sim():
    """Fresh simulated-Vivado session on the paper's Kintex-7 part."""
    return VivadoSim(part="XC7K70T", seed=11)


@pytest.fixture()
def loaded_cqm_sim(cqm_design):
    sim = VivadoSim(part="XC7K70T", seed=11)
    sim.read_hdl(cqm_design.source(), cqm_design.language)
    sim.create_clock(1.0)
    return sim
