"""Tests for the mini-TCL interpreter, command bindings, and frames."""

import pytest

from repro.directives import DirectiveSet, SynthDirective
from repro.errors import TclError
from repro.flow import FlowStep, VivadoSim
from repro.hdl.ast import HdlLanguage
from repro.tcl import (
    TclInterp,
    VivadoTclSession,
    bind_vivado_commands,
    render_evaluation_script,
)


class TestInterpreterBasics:
    def test_set_and_substitute(self):
        i = TclInterp()
        assert i.eval("set x 5; return $x") == "5"

    def test_braced_var(self):
        i = TclInterp()
        i.eval("set long_name hi")
        assert i.eval("return ${long_name}") == "hi"

    def test_unset(self):
        i = TclInterp()
        i.eval("set x 1; unset x")
        with pytest.raises(TclError, match="no such variable"):
            i.eval("return $x")

    def test_command_substitution(self):
        i = TclInterp()
        assert i.eval("set y [expr 2 + 3]; return $y") == "5"

    def test_nested_command_substitution(self):
        i = TclInterp()
        assert i.eval("return [expr [expr 1 + 1] * 3]") == "6"

    def test_quotes_allow_spaces_and_substitution(self):
        i = TclInterp()
        i.eval('set name world; set msg "hello $name"')
        assert i.vars["msg"] == "hello world"

    def test_braces_are_verbatim(self):
        i = TclInterp()
        i.eval("set x {no $substitution here}")
        assert i.vars["x"] == "no $substitution here"

    def test_comments_and_blank_lines(self):
        i = TclInterp()
        out = i.eval("# a comment\n\nset x 1\nreturn $x")
        assert out == "1"

    def test_line_continuation(self):
        i = TclInterp()
        assert i.eval("set x \\\n42; return $x") == "42"

    def test_semicolons_split(self):
        i = TclInterp()
        assert i.eval("set a 1; set b 2; expr $a + $b") == "3"

    def test_puts_captured(self):
        i = TclInterp()
        i.eval('puts "hello"')
        assert i.stdout == ["hello"]

    def test_unknown_command(self):
        with pytest.raises(TclError, match="invalid command name"):
            TclInterp().eval("launch_rockets now")

    def test_lindex_and_string(self):
        i = TclInterp()
        assert i.eval("lindex {a b c} 1") == "b"
        assert i.eval("string toupper abc") == "ABC"
        assert i.eval("string length abcd") == "4"


class TestExpr:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1 + 2 * 3", "7"),
            ("(1 + 2) * 3", "9"),
            ("2 ** 10", "1024"),
            ("7 / 2", "3.5"),
            ("8 / 2", "4"),
            ("7 % 3", "1"),
            ("1 << 4", "16"),
            ("5 > 3", "1"),
            ("5 <= 3", "0"),
            ("1 && 0", "0"),
            ("1 || 0", "1"),
            ("-3 + 5", "2"),
        ],
    )
    def test_values(self, text, expected):
        assert TclInterp().eval(f"expr {text}") == expected

    def test_malformed(self):
        with pytest.raises(TclError):
            TclInterp().eval("expr 1 +")

    def test_unbalanced_parens(self):
        with pytest.raises(TclError, match="parens"):
            TclInterp().eval("expr (1 + 2")


class TestVivadoCommands:
    def _session(self, design):
        sim = VivadoSim(part="XC7K70T", seed=2)
        session = VivadoTclSession(sim=sim)
        session.stage_source("dut.v", design.source(), design.language)
        interp = TclInterp()
        bind_vivado_commands(interp, session)
        return interp, session

    def test_full_flow_writes_reports(self, cqm_design):
        interp, session = self._session(cqm_design)
        interp.eval(
            "read_verilog dut.v\n"
            "create_clock -period 1.0\n"
            "synth_design -top cpl_queue_manager -generic OP_TABLE_SIZE=24\n"
            "place_design\nroute_design\n"
            "report_utilization -file u.rpt\n"
            "report_timing -file t.rpt\nexit"
        )
        assert "u.rpt" in interp.files and "t.rpt" in interp.files
        assert session.exited
        assert session.generics == {"OP_TABLE_SIZE": 24}
        assert session.step == FlowStep.IMPLEMENTATION

    def test_synthesis_only_flow(self, cqm_design):
        interp, session = self._session(cqm_design)
        interp.eval(
            "read_verilog dut.v\ncreate_clock -period 2.0\n"
            "synth_design -top cpl_queue_manager\n"
            "report_utilization -file u.rpt"
        )
        assert session.step == FlowStep.SYNTHESIS
        assert session.result is not None
        assert session.result.step == FlowStep.SYNTHESIS

    def test_result_lazy_and_cached(self, cqm_design):
        interp, session = self._session(cqm_design)
        interp.eval("read_verilog dut.v\nsynth_design -top cpl_queue_manager")
        assert session.result is None  # not yet evaluated
        interp.eval("report_utilization -file a.rpt")
        first = session.result
        interp.eval("report_timing -file b.rpt")
        assert session.result is first  # one evaluation serves both reports

    def test_missing_source_raises(self, cqm_design):
        interp, _ = self._session(cqm_design)
        with pytest.raises(TclError, match="no such file or staged key"):
            interp.eval("read_verilog /does/not/exist.v")

    def test_report_without_synth_raises(self, cqm_design):
        interp, _ = self._session(cqm_design)
        with pytest.raises(TclError, match="no synth_design"):
            interp.eval("report_timing -file t.rpt")

    def test_bad_directive_rejected(self, cqm_design):
        interp, _ = self._session(cqm_design)
        with pytest.raises(TclError, match="unknown synthesis directive"):
            interp.eval(
                "read_verilog dut.v\n"
                "synth_design -top cpl_queue_manager -directive TurboMode"
            )

    def test_directive_accepted(self, cqm_design):
        interp, session = self._session(cqm_design)
        interp.eval(
            "read_verilog dut.v\n"
            "synth_design -top cpl_queue_manager -directive AreaOptimized_high"
        )
        assert session.synth_directive == SynthDirective.AREA_OPTIMIZED_HIGH

    def test_bad_generic_format(self, cqm_design):
        interp, _ = self._session(cqm_design)
        with pytest.raises(TclError, match="NAME=VALUE"):
            interp.eval(
                "read_verilog dut.v\nsynth_design -top x -generic NOVALUE"
            )

    def test_write_checkpoint(self, cqm_design):
        interp, _ = self._session(cqm_design)
        interp.eval(
            "read_verilog dut.v\nsynth_design -top cpl_queue_manager\n"
            "write_checkpoint -force out.dcp"
        )
        assert "out.dcp" in interp.files


class TestFrames:
    def test_rendered_script_is_valid_tcl(self, cqm_design):
        sim = VivadoSim(part="XC7K70T", seed=2)
        session = VivadoTclSession(sim=sim)
        session.stage_source("dut.v", cqm_design.source(), cqm_design.language)
        interp = TclInterp()
        bind_vivado_commands(interp, session)
        script = render_evaluation_script(
            sources=[("dut.v", HdlLanguage.VERILOG)],
            top=cqm_design.top,
            part="XC7K70T",
            target_period_ns=1.0,
            directives=DirectiveSet(synth=SynthDirective.RUNTIME_OPTIMIZED),
        )
        interp.eval(script)
        assert "utilization.rpt" in interp.files
        assert session.synth_directive == SynthDirective.RUNTIME_OPTIMIZED

    def test_synthesis_step_frame_has_no_impl(self):
        script = render_evaluation_script(
            sources=[("a.vhd", HdlLanguage.VHDL)],
            top="e",
            part="XC7K70T",
            target_period_ns=2.0,
            step=FlowStep.SYNTHESIS,
        )
        assert "place_design" not in script
        assert "read_vhdl a.vhd" in script

    def test_sv_read_command(self):
        script = render_evaluation_script(
            sources=[("p.sv", HdlLanguage.SYSTEMVERILOG)],
            top="m",
            part="X",
            target_period_ns=1.0,
        )
        assert "read_verilog -sv p.sv" in script


class TestCheckpointCommands:
    def _session(self, design):
        sim = VivadoSim(part="XC7K70T", seed=2, incremental_impl=True)
        session = VivadoTclSession(sim=sim)
        session.stage_source("dut.v", design.source(), design.language)
        interp = TclInterp()
        bind_vivado_commands(interp, session)
        return interp, session

    def test_write_checkpoint_carries_placement(self, cqm_design):
        interp, session = self._session(cqm_design)
        interp.eval(
            "read_verilog dut.v\nsynth_design -top cpl_queue_manager\n"
            "place_design\nroute_design\nreport_timing -file t.rpt\n"
            "write_checkpoint run1.dcp"
        )
        import json

        payload = json.loads(interp.files["run1.dcp"])
        assert payload["design"] == "cpl_queue_manager"
        assert payload["checkpoints"], "placement archive must not be empty"

    def test_open_checkpoint_restores_archive(self, cqm_design):
        interp, session = self._session(cqm_design)
        interp.eval(
            "read_verilog dut.v\nsynth_design -top cpl_queue_manager\n"
            "place_design\nroute_design\nreport_timing -file t.rpt\n"
            "write_checkpoint run1.dcp"
        )
        dcp_text = interp.files["run1.dcp"]

        interp2, session2 = self._session(cqm_design)
        interp2.files["run1.dcp"] = dcp_text
        interp2.eval("open_checkpoint run1.dcp")
        assert len(session2.sim.checkpoints) == len(session.sim.checkpoints)
        assert session2.sim.incremental_impl

    def test_open_checkpoint_missing_path(self, cqm_design):
        interp, _ = self._session(cqm_design)
        with pytest.raises(TclError, match="no such checkpoint"):
            interp.eval("open_checkpoint /nope/never.dcp")

    def test_open_checkpoint_malformed(self, cqm_design):
        interp, _ = self._session(cqm_design)
        interp.files["bad.dcp"] = "{definitely not a checkpoint"
        with pytest.raises(TclError, match="malformed"):
            interp.eval("open_checkpoint bad.dcp")
