"""Runtime lock-order sanitizer tests: recording, cycles, cross-check."""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from repro.analysis import collect_py_sources, static_lock_graph
from repro.analysis.sanitize import (
    LockOrderSanitizer,
    SanitizerError,
    lock_sanitizer,
    runtime_static_mismatches,
)
from repro.cache.store import ResultStore

TESTS_DIR = Path(__file__).resolve().parent
SRC_BASE = TESTS_DIR.parent / "src"


class TestRecording:
    def test_nested_acquisition_records_an_edge(self):
        with lock_sanitizer(scope_root=TESTS_DIR) as san:
            outer = threading.Lock()
            inner = threading.Lock()
            with outer:
                with inner:
                    pass
        assert len(san.nodes) == 2
        assert len(san.edges) == 1
        ((held, acquired),) = san.edges
        assert held[0].endswith("test_sanitize.py")
        assert held[1] < acquired[1]  # outer created before inner
        assert san.cycles() == []

    def test_out_of_scope_locks_untouched(self):
        with lock_sanitizer(scope_root=TESTS_DIR / "nonexistent") as san:
            lock = threading.Lock()
            with lock:
                pass
        assert san.nodes == {}
        assert type(lock).__name__ != "_TracedLock"

    def test_opposite_orders_are_a_cycle(self):
        with lock_sanitizer(scope_root=TESTS_DIR) as san:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        cycles = san.cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) == 2

    def test_same_creation_site_does_not_self_edge(self):
        with lock_sanitizer(scope_root=TESTS_DIR) as san:
            locks = [threading.Lock() for _ in range(2)]
            with locks[0]:
                with locks[1]:
                    pass
        assert len(san.nodes) == 1
        assert san.edges == {}

    def test_edges_are_per_thread(self):
        with lock_sanitizer(scope_root=TESTS_DIR) as san:
            outer = threading.Lock()
            inner = threading.Lock()

            def worker():
                with inner:
                    pass

            with outer:
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        # The worker held nothing: no ordering edge across threads.
        assert san.edges == {}

    def test_rlock_reentrancy_tracked(self):
        with lock_sanitizer(scope_root=TESTS_DIR) as san:
            lock = threading.RLock()
            with lock:
                with lock:
                    pass
        assert len(san.nodes) == 1
        assert san.edges == {}
        assert san.cycles() == []


class TestBlockingCalls:
    def test_sleep_while_holding_is_recorded(self):
        with lock_sanitizer(scope_root=TESTS_DIR) as san:
            lock = threading.Lock()
            with lock:
                time.sleep(0.001)
        assert len(san.blocking_calls) == 1
        event = san.blocking_calls[0]
        assert len(event.held) == 1
        assert event.site[0].endswith("test_sanitize.py")

    def test_sleep_without_locks_is_fine(self):
        with lock_sanitizer(scope_root=TESTS_DIR) as san:
            time.sleep(0.001)
        assert san.blocking_calls == []

    def test_fail_on_blocking_raises(self):
        with pytest.raises(SanitizerError):
            with lock_sanitizer(scope_root=TESTS_DIR, fail_on_blocking=True):
                lock = threading.Lock()
                with lock:
                    time.sleep(0.001)


class TestFlock:
    def test_store_flock_sites_recorded(self, tmp_path):
        key = "ab" * 32
        with lock_sanitizer() as san:  # default scope: the repro package
            store = ResultStore(tmp_path / "store")
            store.put(key, "flow", {"v": 1})
            assert store.get(key) is not None
        assert any(kind == "flock" for kind in san.nodes.values())
        flock_sites = [
            site for site, kind in san.nodes.items() if kind == "flock"
        ]
        assert all(site[0].endswith("store.py") for site in flock_sites)
        assert san.cycles() == []

    def test_flock_releases_by_descriptor(self, tmp_path):
        # The LOCK_UN call site differs from the LOCK_EX site; after a
        # put, nothing may be left held (a leak would manufacture edges
        # between every later acquisition).
        with lock_sanitizer() as san:
            store = ResultStore(tmp_path / "store")
            store.put("cd" * 32, "flow", {"v": 1})
            lock = threading.Lock()  # out of scope (created here) — inert
            assert san._held() == []


class TestCrossCheck:
    def test_store_traffic_matches_static_graph(self, tmp_path):
        graph = static_lock_graph(collect_py_sources())
        with lock_sanitizer() as san:
            store = ResultStore(tmp_path / "store")
            store.put("ef" * 32, "flow", {"v": 1})
            store.clear()
        assert runtime_static_mismatches(san, graph, SRC_BASE) == []

    def test_unknown_lock_is_reported(self):
        graph = static_lock_graph(collect_py_sources())
        with lock_sanitizer(scope_root=TESTS_DIR) as san:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
        problems = runtime_static_mismatches(san, graph, SRC_BASE)
        assert problems
        assert all("unknown to the static graph" in p for p in problems)


class TestLifecycle:
    def test_uninstall_restores_primitives(self):
        orig_lock = threading.Lock
        orig_sleep = time.sleep
        with lock_sanitizer(scope_root=TESTS_DIR):
            assert threading.Lock is not orig_lock
            assert time.sleep is not orig_sleep
        assert threading.Lock is orig_lock
        assert time.sleep is orig_sleep

    def test_nested_installs_rejected(self):
        with lock_sanitizer(scope_root=TESTS_DIR):
            second = LockOrderSanitizer(scope_root=TESTS_DIR)
            with pytest.raises(RuntimeError):
                second.install()

    def test_uninstall_is_idempotent(self):
        sanitizer = LockOrderSanitizer(scope_root=TESTS_DIR)
        sanitizer.install()
        sanitizer.uninstall()
        sanitizer.uninstall()
        # And a fresh install works again afterwards.
        with lock_sanitizer(scope_root=TESTS_DIR):
            pass

    def test_traced_locks_survive_uninstall(self):
        with lock_sanitizer(scope_root=TESTS_DIR):
            lock = threading.Lock()
        with lock:  # still usable (and still recording, harmlessly)
            assert lock.locked()
        assert not lock.locked()
