"""Tests for the sweep helpers (exact-set design automation)."""

import pytest

from repro.core import MetricSpec
from repro.core.evaluate import PointEvaluator
from repro.core.sweep import SweepResult, grid, run_sweep, zip_points
from repro.designs import get_design


class TestPointBuilders:
    def test_grid_cartesian(self):
        pts = grid(A=[1, 2], B=[10, 20])
        assert len(pts) == 4
        assert {"A": 2, "B": 10} in pts

    def test_grid_preserves_order(self):
        pts = grid(A=[1, 2], B=[10])
        assert pts == [{"A": 1, "B": 10}, {"A": 2, "B": 10}]

    def test_grid_empty(self):
        assert grid() == []

    def test_zip_points(self):
        pts = zip_points(A=[1, 2, 3], B=[10, 20, 30])
        assert pts == [
            {"A": 1, "B": 10}, {"A": 2, "B": 20}, {"A": 3, "B": 30}
        ]

    def test_zip_length_mismatch(self):
        with pytest.raises(ValueError, match="equal-length"):
            zip_points(A=[1], B=[1, 2])


def _evaluator(design, metrics=None):
    return PointEvaluator(
        source=design.source(), language=design.language, top=design.top,
        part="XC7K70T", seed=5,
        metrics=metrics or [
            MetricSpec.minimize("LUT"), MetricSpec.maximize("frequency")
        ],
    )


class TestRunSweep:
    def test_serial_sweep(self, cqm_design):
        ev = _evaluator(cqm_design)
        points = grid(OP_TABLE_SIZE=[8, 16], PIPELINE=[2, 4])
        result = run_sweep(ev, points)
        assert len(result) == 4
        assert result.total_simulated_seconds() > 0

    def test_table_and_csv(self, cqm_design, tmp_path):
        ev = _evaluator(cqm_design)
        result = run_sweep(ev, grid(OP_TABLE_SIZE=[8, 24]))
        text = result.to_table(title="sweep")
        assert "OP_TABLE_SIZE" in text and "LUT" in text
        path = result.save_csv(tmp_path / "sweep.csv")
        assert path.exists()

    def test_best_respects_sense(self, cqm_design):
        ev = _evaluator(cqm_design)
        result = run_sweep(ev, grid(OP_TABLE_SIZE=[8, 40], PIPELINE=[2]))
        best_lut = result.best("LUT")
        assert best_lut.parameters["OP_TABLE_SIZE"] == 8  # min LUT
        best_freq = result.best("frequency")
        assert best_freq.metrics["frequency"] == max(
            p.metrics["frequency"] for p in result.points
        )

    def test_pareto_subset(self, cqm_design):
        ev = _evaluator(cqm_design)
        result = run_sweep(
            ev, grid(OP_TABLE_SIZE=[8, 16, 32], PIPELINE=[2, 3, 4])
        )
        front = result.pareto()
        assert 1 <= len(front) <= len(result)
        # Every dominated point must be beaten by someone on the front.
        for p in result.points:
            if p in front:
                continue
            assert any(
                f.metrics["LUT"] <= p.metrics["LUT"]
                and f.metrics["frequency"] >= p.metrics["frequency"]
                and (
                    f.metrics["LUT"] < p.metrics["LUT"]
                    or f.metrics["frequency"] > p.metrics["frequency"]
                )
                for f in front
            )

    def test_parallel_sweep_matches_serial(self, cqm_design):
        points = grid(OP_TABLE_SIZE=[8, 16, 24], PIPELINE=[3])
        serial = run_sweep(_evaluator(cqm_design), points)
        parallel = run_sweep(
            _evaluator(cqm_design), points, workers=2,
            design_name="corundum-cqm",
        )
        for a, b in zip(serial.points, parallel.points):
            assert a.metrics == b.metrics

    def test_empty_sweep(self, cqm_design):
        result = run_sweep(_evaluator(cqm_design), [])
        assert len(result) == 0
        assert result.pareto() == []
        with pytest.raises(ValueError):
            result.save_csv("nowhere.csv")
