"""Tests for the device catalog, resource vectors, timing models."""

import pytest

from repro.devices import (
    Device,
    ResourceKind,
    ResourceVector,
    UtilizationReport,
    get_device,
    list_devices,
    register_device,
    timing_model_for,
)
from repro.errors import UnknownDeviceError


class TestResourceVector:
    def test_zero_entries_dropped(self):
        v = ResourceVector.of(LUT=0, FF=5)
        assert ResourceKind.LUT not in v.counts
        assert v.get("FF") == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector.of(LUT=-1)

    def test_addition(self):
        a = ResourceVector.of(LUT=10, FF=5)
        b = ResourceVector.of(LUT=3, BRAM=2)
        c = a + b
        assert (c.get("LUT"), c.get("FF"), c.get("BRAM")) == (13, 5, 2)

    def test_scaled_rounds(self):
        v = ResourceVector.of(LUT=10).scaled(0.25)
        assert v.get("LUT") == 2  # round(2.5) banker's → 2

    def test_dominates_capacity(self):
        need = ResourceVector.of(LUT=100, BRAM=5)
        cap = ResourceVector.of(LUT=50, BRAM=10)
        assert need.dominates_capacity(cap) == [ResourceKind.LUT]

    def test_iteration_in_report_order(self):
        v = ResourceVector.of(DSP=1, LUT=2, FF=3)
        kinds = [k for k, _ in v]
        assert kinds == [ResourceKind.LUT, ResourceKind.FF, ResourceKind.DSP]

    def test_total_cells(self):
        assert ResourceVector.of(LUT=7, FF=3).total_cells() == 10


class TestUtilizationReport:
    def test_percent(self):
        rep = UtilizationReport(
            used=ResourceVector.of(LUT=410),
            available=ResourceVector.of(LUT=41000, BRAM=135),
        )
        assert rep.percent("LUT") == pytest.approx(1.0)

    def test_device_dependent_reporting(self):
        """URAM 'not always available ... reported only if present'."""
        rep = UtilizationReport(
            used=ResourceVector.of(LUT=1),
            available=ResourceVector.of(LUT=100),  # no URAM on this device
        )
        assert ResourceKind.URAM not in rep.reported_kinds()
        with pytest.raises(KeyError):
            rep.percent("URAM")

    def test_overflows(self):
        rep = UtilizationReport(
            used=ResourceVector.of(BRAM=200),
            available=ResourceVector.of(BRAM=135, LUT=41000),
        )
        assert rep.overflows() == [ResourceKind.BRAM]


class TestCatalog:
    def test_paper_parts_present(self):
        k7 = get_device("XC7K70T")
        zu = get_device("ZU3EG")
        # Figures quoted in the paper's Section IV-D:
        assert k7.resources.get("LUT") == 41000
        assert k7.resources.get("FF") == 82000
        assert zu.resources.get("LUT") == 70560
        assert zu.resources.get("FF") == 141120

    def test_alias_and_case_insensitive(self):
        assert get_device("xc7k70tfbv676-1").part == "XC7K70TFBV676-1"
        assert get_device("kintex7-70t").part == "XC7K70TFBV676-1"

    def test_unknown_raises_with_catalog(self):
        with pytest.raises(UnknownDeviceError, match="known parts"):
            get_device("XC9KNOPE")

    def test_process_nodes(self):
        assert get_device("XC7K70T").process == "28nm"
        assert get_device("ZU3EG").process == "16nm"

    def test_list_devices_unique_sorted(self):
        parts = [d.part for d in list_devices()]
        assert parts == sorted(parts)
        assert len(parts) == len(set(parts))

    def test_register_collision_rejected(self):
        existing = get_device("ZU3EG")
        clone = Device(
            part="TOTALLY-NEW",
            family=existing.family,
            process="16nm",
            speed_grade=1,
            resources=existing.resources,
            grid_cols=10,
            grid_rows=10,
            aliases=("ZU3EG",),  # collides with existing alias
        )
        with pytest.raises(ValueError, match="collision"):
            register_device(clone)


class TestTimingModels:
    def test_process_ordering(self):
        """Newer process → uniformly faster primitives."""
        t28 = timing_model_for("28nm")
        t16 = timing_model_for("16nm")
        for attr in ("lut_delay_ns", "net_delay_ns", "ff_setup_ns",
                     "ff_clk_to_q_ns", "bram_access_ns", "dsp_delay_ns"):
            assert getattr(t16, attr) < getattr(t28, attr)

    def test_technology_gap_matches_paper(self):
        """The paper observes ~550 vs ~190 MHz for near-identical configs —
        a ~2.9x gap; the per-stage models must support a 2.4-3.4x ratio."""
        t28 = timing_model_for("28nm")
        t16 = timing_model_for("16nm")

        def path(t):  # 5 LUT levels + FF overheads + one BRAM access
            return (
                5 * (t.lut_delay_ns + 0.55 * t.net_delay_ns)
                + t.min_register_period_ns()
                + t.bram_access_ns
            )

        ratio = path(t28) / path(t16)
        assert 2.2 < ratio < 3.6

    def test_unknown_process(self):
        with pytest.raises(KeyError, match="known"):
            timing_model_for("7nm")

    def test_logic_path_delay(self):
        t = timing_model_for("28nm")
        assert t.logic_path_delay_ns(0, 0) == 0.0
        assert t.logic_path_delay_ns(2, 1) == pytest.approx(
            2 * t.lut_delay_ns + t.net_delay_ns
        )
        with pytest.raises(ValueError):
            t.logic_path_delay_ns(-1, 0)
