"""Tests for sampling, crossover, mutation, dedup, termination."""

import numpy as np
import pytest

from repro.errors import InvalidSpaceError, TerminationError
from repro.moo import (
    GaussianIntegerMutation,
    IntegerProblem,
    IntegerRandomSampling,
    IntegerSBX,
    Objective,
    Termination,
)
from repro.moo.dedup import drop_duplicates, unique_against
from repro.util.timing import SoftDeadline


class Quadratic(IntegerProblem):
    def __init__(self, lows=(0, 0), highs=(100, 100)):
        super().__init__(lows, highs, [Objective.minimize("f")])

    def evaluate(self, X):
        return (X**2).sum(axis=1, keepdims=True).astype(float)


class TestProblemValidation:
    def test_inverted_bounds(self):
        with pytest.raises(InvalidSpaceError, match="inverted"):
            Quadratic(lows=(5,), highs=(4,))

    def test_no_objectives(self):
        with pytest.raises(InvalidSpaceError):
            IntegerProblem([0], [1], [])

    def test_cardinality(self):
        assert Quadratic(lows=(0, 0), highs=(4, 9)).cardinality() == 50

    def test_minimized_flips_max_columns(self):
        p = IntegerProblem(
            [0], [1], [Objective.maximize("a"), Objective.minimize("b")]
        )
        F = np.array([[10.0, 3.0]])
        assert p.minimized(F).tolist() == [[-10.0, 3.0]]
        assert p.raw_from_minimized(p.minimized(F)).tolist() == F.tolist()


class TestSampling:
    def test_within_bounds(self):
        p = Quadratic()
        X = IntegerRandomSampling()(p, 50, 0).X
        assert X.min() >= 0 and X.max() <= 100

    def test_unique_rows(self):
        p = Quadratic()
        X = IntegerRandomSampling(unique=True)(p, 80, 0).X
        assert np.unique(X, axis=0).shape[0] == 80

    def test_small_space_enumerates(self):
        p = Quadratic(lows=(0, 0), highs=(1, 1))
        X = IntegerRandomSampling(unique=True)(p, 10, 0).X
        assert X.shape[0] == 4  # whole space

    def test_deterministic(self):
        p = Quadratic()
        a = IntegerRandomSampling()(p, 10, 7).X
        b = IntegerRandomSampling()(p, 10, 7).X
        assert np.array_equal(a, b)


class TestSBX:
    def test_children_in_bounds_and_integer(self):
        p = Quadratic()
        rng = np.random.default_rng(0)
        A = rng.integers(0, 101, (30, 2))
        B = rng.integers(0, 101, (30, 2))
        c1, c2 = IntegerSBX()(p, A, B, 0)
        for C in (c1, c2):
            assert C.dtype == np.int64
            assert C.min() >= 0 and C.max() <= 100

    def test_high_eta_children_near_parents(self):
        p = Quadratic()
        A = np.full((200, 2), 20)
        B = np.full((200, 2), 30)
        c1, _ = IntegerSBX(eta=30.0, prob_crossover=1.0)(p, A, B, 0)
        # With eta=30 children hug the parent interval
        assert np.abs(c1 - 25).mean() < 10

    def test_skip_probability_copies_parents(self):
        p = Quadratic()
        A = np.full((50, 2), 10)
        B = np.full((50, 2), 90)
        c1, c2 = IntegerSBX(prob_crossover=0.0)(p, A, B, 0)
        assert np.array_equal(np.sort(np.stack([c1, c2]), axis=0),
                              np.sort(np.stack([A, B]), axis=0))

    def test_shape_mismatch(self):
        p = Quadratic()
        with pytest.raises(ValueError):
            IntegerSBX()(p, np.zeros((2, 2)), np.zeros((3, 2)), 0)

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            IntegerSBX(eta=0)


class TestMutation:
    def test_stays_in_bounds(self):
        p = Quadratic()
        X = np.full((100, 2), 100)
        out = GaussianIntegerMutation(prob_mean=1.0, prob_sigma=0.0)(p, X, 0)
        assert out.max() <= 100 and out.min() >= 0

    def test_mutated_genes_move(self):
        p = Quadratic()
        X = np.full((100, 2), 50)
        out = GaussianIntegerMutation(prob_mean=1.0, prob_sigma=0.0)(p, X, 0)
        assert (out != 50).any()

    def test_zero_probability_identity(self):
        p = Quadratic()
        X = np.full((20, 2), 50)
        out = GaussianIntegerMutation(prob_mean=0.0, prob_sigma=0.0)(p, X, 0)
        assert np.array_equal(out, X)

    def test_paper_mean_half_activation(self):
        """prob ~ N(0.5, σ): about half of the genes mutate."""
        p = Quadratic()
        X = np.full((2000, 2), 50)
        out = GaussianIntegerMutation(prob_mean=0.5, prob_sigma=0.15)(p, X, 1)
        frac = (out != 50).mean()
        assert 0.30 < frac < 0.70

    def test_input_not_mutated_in_place(self):
        p = Quadratic()
        X = np.full((10, 2), 50)
        GaussianIntegerMutation(prob_mean=1.0)(p, X, 0)
        assert (X == 50).all()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GaussianIntegerMutation(prob_mean=1.5)
        with pytest.raises(ValueError):
            GaussianIntegerMutation(step_scale=0.0)


class TestDedup:
    def test_drop_duplicates_keeps_first(self):
        X = np.array([[1, 2], [3, 4], [1, 2], [5, 6]])
        assert drop_duplicates(X).tolist() == [0, 1, 3]

    def test_unique_against_reference(self):
        X = np.array([[1, 2], [3, 4], [1, 2], [7, 8]])
        ref = np.array([[3, 4]])
        assert unique_against(X, ref).tolist() == [0, 3]

    def test_unique_against_empty_reference(self):
        X = np.array([[1, 2], [1, 2]])
        assert unique_against(X, np.empty((0, 2))).tolist() == [0]


class TestTermination:
    def test_generation_budget(self):
        t = Termination.by_generations(3)
        for _ in range(3):
            assert not t.should_stop()
            t.note_generation()
        assert t.should_stop()

    def test_evaluation_budget(self):
        t = Termination(n_eval=10)
        t.note_evaluations(9)
        assert not t.should_stop()
        t.note_evaluations(1)
        assert t.should_stop()

    def test_soft_deadline_charging(self):
        t = Termination.by_soft_deadline(100.0)
        t.charge(50.0)
        assert not t.should_stop()
        t.charge(60.0)
        assert t.should_stop()

    def test_any_budget_fires(self):
        t = Termination(n_gen=100, deadline=SoftDeadline(budget_s=1.0))
        t.charge(2.0)
        assert t.should_stop()

    def test_invalid_config(self):
        with pytest.raises(TerminationError):
            Termination(n_gen=0)
