"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import (
    as_generator,
    choice_without_replacement,
    integer_sample,
    spawn_child,
    stable_hash_seed,
)


class TestAsGenerator:
    def test_int_seed_reproducible(self):
        a = as_generator(42).integers(0, 1000, 10)
        b = as_generator(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestStableHashSeed:
    def test_deterministic_across_calls(self):
        v = {"part": "XC7K70T", "params": [("DEPTH", 8)]}
        assert stable_hash_seed(v) == stable_hash_seed(v)

    def test_different_inputs_differ(self):
        assert stable_hash_seed(("a", 1)) != stable_hash_seed(("a", 2))

    def test_int_float_canonicalized(self):
        assert stable_hash_seed(1) == stable_hash_seed(1.0)

    def test_dict_order_insensitive(self):
        assert stable_hash_seed({"a": 1, "b": 2}) == stable_hash_seed({"b": 2, "a": 1})

    def test_nesting_matters(self):
        assert stable_hash_seed([1, [2, 3]]) != stable_hash_seed([[1, 2], 3])

    def test_range_is_63_bit(self):
        for v in ("x", 0, (1, 2, 3), {"k": [1.5]}):
            s = stable_hash_seed(v)
            assert 0 <= s < 2**63


class TestSpawnChild:
    def test_children_with_different_tags_differ(self):
        parent = np.random.default_rng(7)
        a = spawn_child(parent, "placer")
        parent2 = np.random.default_rng(7)
        b = spawn_child(parent2, "router")
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_same_tag_same_state_reproduces(self):
        a = spawn_child(np.random.default_rng(7), "x").integers(0, 10**9)
        b = spawn_child(np.random.default_rng(7), "x").integers(0, 10**9)
        assert a == b


class TestIntegerSample:
    def test_bounds_inclusive(self):
        rng = as_generator(0)
        X = integer_sample(rng, [0, 5], [1, 5], 200)
        assert X.shape == (200, 2)
        assert set(np.unique(X[:, 0])) <= {0, 1}
        assert np.all(X[:, 1] == 5)

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError, match="inverted"):
            integer_sample(as_generator(0), [5], [4], 1)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            integer_sample(as_generator(0), [0, 1], [2], 1)


class TestChoiceWithoutReplacement:
    def test_distinct_results(self):
        out = choice_without_replacement(as_generator(3), range(10), 5)
        assert len(out) == len(set(out)) == 5

    def test_overdraw_raises(self):
        with pytest.raises(ValueError):
            choice_without_replacement(as_generator(3), range(3), 4)
