"""Tests for report rendering/parsing round trips."""

import pytest

from repro.devices import ResourceVector, UtilizationReport
from repro.errors import FlowError
from repro.flow.reports import (
    parse_timing_report,
    parse_utilization_report,
    render_timing_report,
    render_utilization_report,
)


def sample_report() -> UtilizationReport:
    return UtilizationReport(
        used=ResourceVector.of(LUT=1234, FF=567, BRAM=8, IO=1, BUFG=1),
        available=ResourceVector.of(
            LUT=41000, FF=82000, BRAM=135, DSP=240, IO=300, BUFG=32
        ),
    )


class TestUtilizationRoundtrip:
    def test_roundtrip_preserves_counts(self):
        text = render_utilization_report(sample_report(), "dut", "XC7K70T")
        parsed = parse_utilization_report(text)
        assert parsed.used.get("LUT") == 1234
        assert parsed.used.get("FF") == 567
        assert parsed.used.get("BRAM") == 8
        assert parsed.available.get("DSP") == 240

    def test_zero_rows_present_for_available_kinds(self):
        text = render_utilization_report(sample_report(), "dut", "XC7K70T")
        assert "| DSP" in text  # available but unused → still a row

    def test_absent_kinds_not_rendered(self):
        text = render_utilization_report(sample_report(), "dut", "XC7K70T")
        assert "URAM" not in text

    def test_header_contains_design_and_part(self):
        text = render_utilization_report(sample_report(), "my_design", "PARTX")
        assert "my_design" in text and "PARTX" in text

    def test_parse_garbage_raises(self):
        with pytest.raises(FlowError, match="no utilization rows"):
            parse_utilization_report("nothing useful here")

    def test_unknown_site_rows_tolerated(self):
        text = render_utilization_report(sample_report(), "d", "p")
        text += "\n| WEIRD | 3 | 10 | 30.00 |"
        parsed = parse_utilization_report(text)
        assert parsed.used.get("LUT") == 1234


class TestTimingRoundtrip:
    def test_roundtrip(self):
        text = render_timing_report(
            wns_ns=-4.123,
            target_period_ns=1.0,
            critical_delay_ns=5.123,
            critical_path=("u_a", "u_b"),
            arcs_analyzed=17,
        )
        parsed = parse_timing_report(text)
        assert parsed["wns_ns"] == pytest.approx(-4.123)
        assert parsed["requirement_ns"] == pytest.approx(1.0)
        assert parsed["data_path_ns"] == pytest.approx(5.123)
        assert parsed["status"] == "VIOLATED"
        assert parsed["paths"] == 17
        assert parsed["critical_path"] == ("u_a", "u_b")

    def test_met_status(self):
        text = render_timing_report(0.5, 5.0, 4.5, ("x",), 1)
        assert parse_timing_report(text)["status"] == "MET"

    def test_missing_fields_raise(self):
        with pytest.raises(FlowError, match="missing fields"):
            parse_timing_report("Status       : MET")
