"""Tests for ASCII scatter plotting."""

import pytest

from repro.core.point import EvaluatedPoint
from repro.util.plots import Series, pareto_plot, scatter_plot


class TestSeries:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            Series("s", (1.0,), (1.0, 2.0))

    def test_multi_char_mark_rejected(self):
        with pytest.raises(ValueError, match="mark"):
            Series("s", (1.0,), (1.0,), mark="**")


class TestScatter:
    def test_marks_present(self):
        text = scatter_plot(
            [Series("a", (0.0, 10.0), (0.0, 5.0), mark="*")],
            width=20, height=8,
        )
        grid = "".join(l for l in text.splitlines() if l.count("|") == 2)
        assert grid.count("*") == 2

    def test_extremes_at_corners(self):
        text = scatter_plot(
            [Series("a", (0.0, 10.0), (0.0, 10.0), mark="x")],
            width=21, height=9,
        )
        rows = [l for l in text.splitlines() if l.strip().startswith("|") or "|" in l]
        grid_rows = [l.split("|")[1] for l in rows if l.count("|") == 2]
        assert grid_rows[0].rstrip().endswith("x")   # top-right: max x, max y
        assert grid_rows[-1].lstrip().startswith("x")  # bottom-left

    def test_axis_annotations(self):
        text = scatter_plot(
            [Series("a", (2.0, 8.0), (1.0, 3.0))],
            x_label="LUT", y_label="MHz", title="front",
        )
        assert "front" in text
        assert "x: LUT" in text and "y: MHz" in text
        assert "8" in text and "3" in text

    def test_degenerate_single_point(self):
        text = scatter_plot([Series("a", (5.0,), (5.0,))], width=10, height=5)
        grid = "".join(l for l in text.splitlines() if l.count("|") == 2)
        assert grid.count("*") == 1

    def test_empty(self):
        assert "(no data)" in scatter_plot([], title="t")

    def test_multiple_series_legend(self):
        text = scatter_plot([
            Series("k7", (1.0,), (1.0,), mark="k"),
            Series("zu", (2.0,), (2.0,), mark="z"),
        ])
        assert "k k7" in text and "z zu" in text


class TestParetoPlot:
    def test_from_evaluated_points(self):
        points = [
            EvaluatedPoint(parameters={"P": i},
                           metrics={"LUT": 100.0 + i, "frequency": 200.0 - i})
            for i in range(5)
        ]
        text = pareto_plot(points, "LUT", "frequency", title="Fig.4")
        assert "Fig.4" in text
        grid = "".join(l for l in text.splitlines() if l.count("|") == 2)
        assert grid.count("o") == 5
