"""Tests for RTL hierarchy extraction."""

import pytest

from repro.errors import HdlError
from repro.hdl.hierarchy import build_hierarchy, extract_instances

VERILOG = """
module top(input wire clk);
  wire [7:0] bus;
  sub u_sub0 (.clk(clk), .d(bus));
  sub u_sub1 (.clk(clk), .d(bus));
  fifo #(.DEPTH(16)) u_fifo (.clk_i(clk));
  always @(posedge clk) begin
    // not_an_instance(foo);  -- inside comment
  end
  assign bus = 8'h00;
endmodule

module sub(input wire clk, input wire [7:0] d);
  leaf u_leaf (.clk(clk));
endmodule

module fifo #(parameter DEPTH = 8)(input wire clk_i);
endmodule

module leaf(input wire clk);
endmodule
"""

VHDL = """
entity top is port (clk : in std_logic); end top;
architecture rtl of top is
  component legacy_comp is port (clk : in std_logic); end component;
  signal s : std_logic;
begin
  U0: entity work.child port map (clk => clk);
  U1: entity work.child(fast) port map (clk => clk);
  U2: legacy_comp port map (clk => clk);
  P0: process(clk) begin end process;
end architecture rtl;

entity child is port (clk : in std_logic); end child;
architecture rtl of child is
begin
end architecture rtl;
"""


class TestVerilogExtraction:
    def test_all_instances_found(self):
        instances = extract_instances(VERILOG, "verilog")
        pairs = {(i.parent, i.label, i.target) for i in instances}
        assert ("top", "u_sub0", "sub") in pairs
        assert ("top", "u_sub1", "sub") in pairs
        assert ("top", "u_fifo", "fifo") in pairs
        assert ("sub", "u_leaf", "leaf") in pairs

    def test_no_false_positives(self):
        instances = extract_instances(VERILOG, "verilog")
        targets = {i.target for i in instances}
        assert "assign" not in targets
        assert "always" not in targets
        assert "not_an_instance" not in targets

    def test_parameterized_instance(self):
        instances = extract_instances(VERILOG, "verilog")
        fifo = [i for i in instances if i.label == "u_fifo"]
        assert fifo and fifo[0].target == "fifo"


class TestVhdlExtraction:
    def test_entity_instantiations(self):
        instances = extract_instances(VHDL, "vhdl")
        pairs = {(i.parent, i.label, i.target) for i in instances}
        assert ("top", "U0", "child") in pairs
        assert ("top", "U1", "child") in pairs  # with architecture spec

    def test_component_instantiation(self):
        instances = extract_instances(VHDL, "vhdl")
        pairs = {(i.label, i.target) for i in instances}
        assert ("U2", "legacy_comp") in pairs

    def test_process_not_an_instance(self):
        instances = extract_instances(VHDL, "vhdl")
        assert all(i.label != "P0" for i in instances)


class TestHierarchy:
    def test_top_candidates(self):
        h = build_hierarchy([(VERILOG, "verilog")])
        assert h.top_candidates() == ["top"]

    def test_children(self):
        h = build_hierarchy([(VERILOG, "verilog")])
        kids = h.children("top")
        assert ("u_sub0", "sub") in kids and ("u_fifo", "fifo") in kids

    def test_subtree(self):
        h = build_hierarchy([(VERILOG, "verilog")])
        assert h.subtree("sub") == {"sub", "leaf"}
        assert h.subtree("top") == {"top", "sub", "fifo", "leaf"}

    def test_known_modules_included_as_nodes(self):
        h = build_hierarchy([(VERILOG, "verilog")], known_modules=["island"])
        assert "island" in h.modules()
        assert "island" in h.top_candidates()

    def test_render_tree(self):
        h = build_hierarchy([(VERILOG, "verilog")])
        text = h.render("top")
        assert text.splitlines()[0] == "top"
        assert "u_sub0: sub" in text
        assert "u_leaf: leaf" in text

    def test_recursion_detected(self):
        recursive = """
        module a(input wire clk); b u_b(.clk(clk)); endmodule
        module b(input wire clk); a u_a(.clk(clk)); endmodule
        """
        with pytest.raises(HdlError, match="recursive"):
            build_hierarchy([(recursive, "verilog")])

    def test_mixed_language_hierarchy(self):
        mixed_verilog = """
        module mixed_top(input wire clk);
          child u_vhdl_child (.clk(clk));
        endmodule
        """
        h = build_hierarchy([(mixed_verilog, "verilog"), (VHDL, "vhdl")])
        assert "mixed_top" in h.top_candidates()
        assert ("u_vhdl_child", "child") in h.children("mixed_top")
