"""The multi-fidelity flow ladder: fidelity levels, charges, and ledger honesty.

Covers the tentpole contracts of the staged evaluation ladder:

- the three rungs (``synth-estimate`` → ``placed-estimate`` →
  ``full-route``) run the stages they claim, tag their results, and
  charge only for what they executed;
- the full-route rung is byte-identical to the pre-ladder flow;
- TCL scripts that ``place_design`` without ``route_design`` produce a
  placed-estimate result;
- the per-record ledger charges sum *exactly* to the tool session's
  ``simulated_seconds`` across every cache-hit × stage-skip × fidelity
  combination (the honest-accounting property), and the serial-fallback
  latency emulation sleeps in proportion to the stages actually run.
"""

from __future__ import annotations

import dataclasses
import itertools

import pytest

from repro.core.evaluate import PointEvaluator
from repro.flow import FlowStep, VivadoSim
from repro.flow.vivado_sim import Fidelity
from repro.observe import telemetry_session


def _fresh_sim(cqm_design, seed=11):
    sim = VivadoSim(part="XC7K70T", seed=seed)
    sim.read_hdl(cqm_design.source(), cqm_design.language)
    sim.create_clock(1.0)
    return sim


class TestFidelityLadder:
    def test_rungs_run_their_stages_and_charge_accordingly(self, cqm_design):
        params = {"OP_TABLE_SIZE": 16}
        costs = {}
        for fid in Fidelity:
            sim = _fresh_sim(cqm_design)
            r = sim.run(cqm_design.top, params, fidelity=fid)
            assert r.fidelity is fid
            assert sim.last_run_fidelity is fid
            assert sim.fidelity_runs[str(fid)] == 1
            costs[fid] = sim.simulated_seconds
            if fid is Fidelity.FULL_ROUTE:
                assert sim.last_run_stages == ("synthesis", "implementation")
            elif fid is Fidelity.PLACED_ESTIMATE:
                assert sim.last_run_stages == ("synthesis", "placement")
            elif fid is Fidelity.SYNTH_ESTIMATE:
                assert sim.last_run_stages == ("synthesis",)
            else:
                assert sim.last_run_stages == ("static-estimate",)
        # The ladder is a ladder: each rung is strictly cheaper than the
        # one above it, and the analytical rung is free.
        assert costs[Fidelity.STATIC_ESTIMATE] == 0.0
        assert costs[Fidelity.SYNTH_ESTIMATE] < costs[Fidelity.PLACED_ESTIMATE]
        assert costs[Fidelity.PLACED_ESTIMATE] < costs[Fidelity.FULL_ROUTE]

    def test_full_route_rung_is_byte_identical_to_default(self, cqm_design):
        params = {"OP_TABLE_SIZE": 12}
        default = _fresh_sim(cqm_design).run(cqm_design.top, params)
        explicit = _fresh_sim(cqm_design).run(
            cqm_design.top, params, fidelity=Fidelity.FULL_ROUTE
        )
        assert default == explicit
        assert default.fidelity is Fidelity.FULL_ROUTE

    def test_lower_rungs_share_the_synth_stage_cache(self, cqm_design):
        """A probe then a promotion costs exactly the ungated full price."""
        params = {"OP_TABLE_SIZE": 20}
        full_cost = _fresh_sim(cqm_design).run(cqm_design.top, params).simulated_seconds

        sim = _fresh_sim(cqm_design)
        sim.run(cqm_design.top, params, fidelity=Fidelity.SYNTH_ESTIMATE)
        probe_cost = sim.simulated_seconds
        sim.run(cqm_design.top, params, fidelity=Fidelity.FULL_ROUTE)
        assert sim.synth_stage_hits == 1
        assert sim.simulated_seconds == full_cost
        assert probe_cost > 0.0

    def test_placed_estimate_is_optimistic_about_timing(self, cqm_design):
        """Optimistic routing: the placed estimate never reports a slower
        clock than the fully routed design."""
        params = {"OP_TABLE_SIZE": 24}
        placed = _fresh_sim(cqm_design).run(
            cqm_design.top, params, fidelity=Fidelity.PLACED_ESTIMATE
        )
        full = _fresh_sim(cqm_design).run(cqm_design.top, params)
        assert placed.fmax_mhz >= full.fmax_mhz * 0.95

    def test_placed_estimate_never_touches_impl_stage_cache(self, cqm_design):
        params = {"OP_TABLE_SIZE": 28}
        sim = _fresh_sim(cqm_design)
        sim.run(cqm_design.top, params, fidelity=Fidelity.PLACED_ESTIMATE)
        # The subsequent full run must do its own implementation work.
        sim.run(cqm_design.top, params, fidelity=Fidelity.FULL_ROUTE)
        assert sim.impl_stage_hits == 0

    def test_run_cache_keyed_per_fidelity(self, cqm_design):
        params = {"OP_TABLE_SIZE": 16}
        sim = _fresh_sim(cqm_design)
        probe = sim.run(cqm_design.top, params, fidelity=Fidelity.SYNTH_ESTIMATE)
        full = sim.run(cqm_design.top, params)
        assert not full.from_cache  # different rung, not a cache answer
        replay = sim.run(cqm_design.top, params, fidelity=Fidelity.SYNTH_ESTIMATE)
        assert replay == dataclasses.replace(probe, from_cache=True)

    def test_synthesis_step_ignores_fidelity(self, cqm_design):
        sim = VivadoSim(part="XC7K70T", seed=11)
        sim.read_hdl(cqm_design.source(), cqm_design.language)
        sim.create_clock(1.0)
        r = sim.run(
            cqm_design.top,
            {"OP_TABLE_SIZE": 16},
            step=FlowStep.SYNTHESIS,
            fidelity=Fidelity.FULL_ROUTE,
        )
        assert r.fidelity is Fidelity.SYNTH_ESTIMATE


class TestTclPlaceOnly:
    def test_place_without_route_yields_placed_estimate(self, cqm_design):
        """A TCL script that places but never routes is a placed-estimate."""
        from repro.tcl.commands import VivadoTclSession, bind_vivado_commands
        from repro.tcl.interp import TclInterp

        sim = _fresh_sim(cqm_design)
        session = VivadoTclSession(sim=sim)
        interp = TclInterp()
        bind_vivado_commands(interp, session)
        session.stage_source("dut.v", cqm_design.source(), cqm_design.language)
        interp.eval(
            "read_verilog dut.v\n"
            f"synth_design -top {cqm_design.top} -part XC7K70T "
            "-generic OP_TABLE_SIZE=16\n"
            "place_design\n"
            "report_utilization\n"
        )
        result = session.ensure_result()
        assert result.fidelity is Fidelity.PLACED_ESTIMATE
        assert sim.last_run_stages == ("synthesis", "placement")

    def test_place_and_route_still_full_fidelity(self, cqm_design):
        from repro.tcl.commands import VivadoTclSession, bind_vivado_commands
        from repro.tcl.interp import TclInterp

        sim = _fresh_sim(cqm_design)
        session = VivadoTclSession(sim=sim)
        interp = TclInterp()
        bind_vivado_commands(interp, session)
        session.stage_source("dut.v", cqm_design.source(), cqm_design.language)
        interp.eval(
            "read_verilog dut.v\n"
            f"synth_design -top {cqm_design.top} -part XC7K70T "
            "-generic OP_TABLE_SIZE=16\n"
            "place_design\n"
            "route_design\n"
        )
        result = session.ensure_result()
        assert result.fidelity is Fidelity.FULL_ROUTE


class TestLedgerChargeProperty:
    """Satellite: per-record ledger charges sum to ``sim.simulated_seconds``
    for every cache-hit × stage-skip × fidelity combination."""

    # Each schedule is a sequence of (parameter value, fidelity) runs;
    # repeats exercise run-cache hits, shared values across fidelities
    # exercise stage skips, and the mix covers all three rungs.
    SCHEDULES = [
        # pure full-route with a cache hit
        [(16, None), (16, None), (20, None)],
        # probe then promote (synth stage skip), then replay both
        [(16, Fidelity.SYNTH_ESTIMATE), (16, None),
         (16, Fidelity.SYNTH_ESTIMATE), (16, None)],
        # placed-estimate ladder walk with repeats
        [(16, Fidelity.PLACED_ESTIMATE), (16, Fidelity.PLACED_ESTIMATE),
         (16, None), (20, Fidelity.PLACED_ESTIMATE)],
        # all three rungs over two bindings, shuffled
        [(16, Fidelity.SYNTH_ESTIMATE), (20, Fidelity.PLACED_ESTIMATE),
         (16, Fidelity.PLACED_ESTIMATE), (20, None), (16, None),
         (20, Fidelity.SYNTH_ESTIMATE)],
    ]

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_charges_sum_exactly(self, cqm_design, schedule):
        evaluator = PointEvaluator(
            source=cqm_design.source(),
            language=str(cqm_design.language),
            top=cqm_design.top,
            part="XC7K70T",
            seed=17,
        )
        with telemetry_session() as tel:
            for value, fid in schedule:
                evaluator.evaluate({"OP_TABLE_SIZE": value}, fidelity=fid)
            assert tel.ledger.total_charge() == evaluator.sim.simulated_seconds
            # Every record carries a valid fidelity tag.
            breakdown = tel.ledger.fidelity_breakdown()
            assert "untagged" not in breakdown
            # Per-fidelity grouping re-associates the float sum, so the
            # breakdown total is only approximately the ledger total; the
            # *exact* equality above is the honest-accounting contract.
            assert sum(c for _, c in breakdown.values()) == pytest.approx(
                evaluator.sim.simulated_seconds
            )

    def test_fidelity_breakdown_matches_run_counts(self, cqm_design):
        evaluator = PointEvaluator(
            source=cqm_design.source(),
            language=str(cqm_design.language),
            top=cqm_design.top,
            part="XC7K70T",
            seed=17,
        )
        with telemetry_session() as tel:
            for value, fid in itertools.product(
                (12, 16), (Fidelity.SYNTH_ESTIMATE, Fidelity.PLACED_ESTIMATE, None)
            ):
                evaluator.evaluate({"OP_TABLE_SIZE": value}, fidelity=fid)
            breakdown = tel.ledger.fidelity_breakdown()
        assert breakdown[str(Fidelity.SYNTH_ESTIMATE)][0] == 2
        assert breakdown[str(Fidelity.PLACED_ESTIMATE)][0] == 2
        assert breakdown[str(Fidelity.FULL_ROUTE)][0] == 2


class TestSerialLatencyEmulation:
    """Satellite: emulated tool latency scales with executed stages on the
    serial fallback path, exactly as it does in pool workers."""

    def test_serial_fallback_sleeps_proportionally(self, cqm_design, monkeypatch):
        import repro.core.parallel as parallel_mod
        from repro.core.parallel import EvaluatorSpec, ParallelPointEvaluator

        sleeps: list[float] = []
        monkeypatch.setattr(
            parallel_mod.time, "sleep", lambda s: sleeps.append(s)
        )
        evaluator = PointEvaluator(
            source=cqm_design.source(),
            language=str(cqm_design.language),
            top=cqm_design.top,
            part="XC7K70T",
            seed=3,
        )
        spec = dataclasses.replace(
            EvaluatorSpec.from_evaluator(evaluator, design_name=None),
            emulate_tool_latency=0.5,
        )
        with ParallelPointEvaluator(spec=spec, workers=0) as pool:
            first = pool.evaluate_many([{"OP_TABLE_SIZE": 16}])[0]
            assert sleeps == [first.simulated_seconds * 0.5]
            # A memo replay is a cache answer: no new sleep.
            pool.evaluate_many([{"OP_TABLE_SIZE": 16}])
            assert len(sleeps) == 1
            # A second fresh binding sleeps for its own (different) cost.
            second = pool.evaluate_many([{"OP_TABLE_SIZE": 24}])[0]
            assert sleeps[1] == second.simulated_seconds * 0.5
