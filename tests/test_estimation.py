"""Tests for the estimation substrate: kernels, dataset, NWM, LOO-CV,
similarity, and the control model."""

import numpy as np
import pytest

from repro.errors import BandwidthSelectionError, EmptyDatasetError
from repro.estimation import (
    ControlModel,
    Dataset,
    Decision,
    NadarayaWatson,
    adaptive_threshold,
    gaussian_kernel,
    loo_bandwidth,
    loo_mse,
    similarity_phi,
)
from repro.estimation.kernels import epanechnikov_kernel, squared_distances


class TestKernels:
    def test_gaussian_peak_at_zero(self):
        k = gaussian_kernel(np.array([0.0]), h=1.0)
        assert k[0] == pytest.approx(1.0 / np.sqrt(2 * np.pi))

    def test_gaussian_decreasing(self):
        d = np.array([0.0, 1.0, 4.0, 9.0])
        k = gaussian_kernel(d, h=1.0)
        assert (np.diff(k) < 0).all()

    def test_bandwidth_widens_kernel(self):
        d = np.array([4.0])
        assert gaussian_kernel(d, h=2.0) > gaussian_kernel(d, h=1.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            gaussian_kernel(np.array([1.0]), h=0.0)

    def test_epanechnikov_compact_support(self):
        k = epanechnikov_kernel(np.array([0.5, 2.0]), h=1.0)
        assert k[0] > 0 and k[1] == 0.0

    def test_squared_distances(self):
        X = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = squared_distances(np.array([0.0, 0.0]), X)
        assert d.tolist() == [0.0, 25.0]


class TestDataset:
    def test_add_and_lookup(self):
        ds = Dataset(n_var=2, metric_names=("LUT", "frequency"))
        assert ds.add([1, 2], [100.0, 250.0])
        assert ds.contains([1, 2])
        assert ds.lookup([1, 2]).tolist() == [100.0, 250.0]

    def test_duplicate_add_is_noop(self):
        ds = Dataset(n_var=1, metric_names=("m",))
        assert ds.add([5], [1.0])
        assert not ds.add([5], [2.0])
        assert ds.lookup([5]).tolist() == [1.0]

    def test_shape_validation(self):
        ds = Dataset(n_var=2, metric_names=("m",))
        with pytest.raises(ValueError):
            ds.add([1], [1.0])
        with pytest.raises(ValueError):
            ds.add([1, 2], [1.0, 2.0])

    def test_empty_queries_raise(self):
        ds = Dataset(n_var=1, metric_names=("m",))
        with pytest.raises(EmptyDatasetError):
            ds.X()
        with pytest.raises(EmptyDatasetError):
            ds.nearest_distance([1])

    def test_nearest_distance_orders(self):
        ds = Dataset(n_var=1, metric_names=("m",))
        for v in (0, 10, 25):
            ds.add([v], [0.0])
        assert ds.nearest_distance([9], n=1) == pytest.approx(1.0)
        assert ds.nearest_distance([9], n=2) == pytest.approx(9.0)
        assert ds.nearest_distance([9], n=3) == pytest.approx(16.0)

    def test_pairwise_nearest(self):
        ds = Dataset(n_var=1, metric_names=("m",))
        for v in (0, 1, 10):
            ds.add([v], [0.0])
        nn = ds.pairwise_nearest_distances()
        assert sorted(nn.tolist()) == [1.0, 1.0, 9.0]


class TestNadarayaWatson:
    def test_interpolates_smooth_function(self):
        rng = np.random.default_rng(0)
        X = np.linspace(0, 10, 40).reshape(-1, 1)
        Y = (np.sin(X) + 3).reshape(-1, 1)
        model = NadarayaWatson(bandwidth=0.5).fit(X, Y)
        x = np.array([5.3])
        assert model.predict(x)[0] == pytest.approx(np.sin(5.3) + 3, abs=0.1)

    def test_exact_at_training_point_small_h(self):
        X = np.array([[0.0], [5.0], [10.0]])
        Y = np.array([[1.0], [2.0], [3.0]])
        model = NadarayaWatson(bandwidth=0.05).fit(X, Y)
        assert model.predict(np.array([5.0]))[0] == pytest.approx(2.0, abs=1e-6)

    def test_huge_bandwidth_approaches_mean(self):
        X = np.array([[0.0], [10.0]])
        Y = np.array([[0.0], [10.0]])
        model = NadarayaWatson(bandwidth=1e6).fit(X, Y)
        assert model.predict(np.array([0.0]))[0] == pytest.approx(5.0, abs=0.01)

    def test_underflow_falls_back_to_nearest(self):
        X = np.array([[0.0], [1000.0]])
        Y = np.array([[1.0], [2.0]])
        model = NadarayaWatson(bandwidth=1e-3).fit(X, Y)
        assert model.predict(np.array([990.0]))[0] == pytest.approx(2.0)

    def test_multi_output_shares_weights(self):
        X = np.array([[0.0], [10.0]])
        Y = np.array([[0.0, 100.0], [10.0, 0.0]])
        model = NadarayaWatson(bandwidth=5.0).fit(X, Y)
        y = model.predict(np.array([5.0]))
        assert y[0] == pytest.approx(5.0, abs=0.5)
        assert y[1] == pytest.approx(50.0, abs=5.0)

    def test_unfitted_raises(self):
        with pytest.raises(EmptyDatasetError):
            NadarayaWatson().predict(np.array([1.0]))

    def test_constant_column_normalization(self):
        X = np.array([[0.0], [1.0]])
        Y = np.array([[7.0], [7.0]])
        model = NadarayaWatson(bandwidth=1.0).fit(X, Y)
        assert model.predict(np.array([0.5]))[0] == pytest.approx(7.0)


class TestLooCv:
    def _data(self, n=30, noise=0.0, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 10, (n, 1))
        Y = np.sin(X) + noise * rng.standard_normal((n, 1))
        return X, (Y - Y.min()) / (Y.max() - Y.min())

    def test_selects_reasonable_bandwidth(self):
        X, Y = self._data()
        h, mse = loo_bandwidth(X, Y)
        assert 0.01 < h < 10
        assert mse < 0.05

    def test_needs_two_points(self):
        with pytest.raises(BandwidthSelectionError):
            loo_mse(np.array([[1.0]]), np.array([[1.0]]), 1.0)

    def test_loo_mse_finite_and_positive(self):
        X, Y = self._data(noise=0.1)
        assert 0 <= loo_mse(X, Y, 0.5) < 1.0

    def test_oversmoothing_hurts(self):
        X, Y = self._data()
        assert loo_mse(X, Y, 100.0) > loo_mse(X, Y, 0.5)

    def test_explicit_grid(self):
        X, Y = self._data()
        h, _ = loo_bandwidth(X, Y, grid=np.array([0.5]))
        assert h == 0.5


class TestSimilarity:
    def _dataset(self):
        ds = Dataset(n_var=2, metric_names=("m",))
        ds.add([0, 0], [0.0])
        ds.add([4, 0], [0.0])
        ds.add([8, 0], [0.0])
        return ds

    def test_phi_is_rms_distance(self):
        ds = self._dataset()
        # nearest to (1,0) is (0,0): euclid 1, m=2 → phi = 1/sqrt(2)
        assert similarity_phi([1, 0], ds) == pytest.approx(1 / np.sqrt(2))

    def test_adaptive_threshold_is_mean_nn(self):
        ds = self._dataset()
        # nearest-neighbour distances: 4, 4, 4 → phi = 4/sqrt(2)
        assert adaptive_threshold(ds) == pytest.approx(4 / np.sqrt(2))

    def test_threshold_empty_dataset(self):
        ds = Dataset(n_var=2, metric_names=("m",))
        assert adaptive_threshold(ds) == 0.0
        ds.add([1, 1], [0.0])
        assert adaptive_threshold(ds) == 0.0  # single point: no pairs


class TestControlModel:
    def _control(self, points=None):
        ds = Dataset(n_var=1, metric_names=("LUT", "frequency"))
        cm = ControlModel(dataset=ds, min_points_to_estimate=3)
        for x, y in points or []:
            cm.record(np.array([x], dtype=float), np.array(y, dtype=float))
        return cm

    def test_three_cases(self):
        cm = self._control([(0, [10, 100]), (10, [20, 90]), (20, [30, 80]),
                            (30, [40, 70])])
        assert cm.decide(np.array([10.0])) == Decision.CACHED
        # (11) is within Γ (mean nn distance = 10) of the dataset.
        assert cm.decide(np.array([11.0])) == Decision.ESTIMATE
        # (1000) is far outside.
        assert cm.decide(np.array([1000.0])) == Decision.EVALUATE

    def test_no_estimates_before_minimum(self):
        cm = self._control([(0, [1, 1]), (10, [2, 2])])
        assert cm.decide(np.array([1.0])) == Decision.EVALUATE

    def test_record_updates_threshold_and_bandwidth(self):
        cm = self._control([(0, [1, 1]), (100, [2, 2])])
        gamma_before = cm.threshold
        cm.record(np.array([50.0]), np.array([1.5, 1.5]))
        assert cm.threshold != gamma_before
        assert cm.model.fitted

    def test_estimate_close_to_truth_on_smooth_surface(self):
        pts = [(x, [x * 2.0, 300 - x]) for x in range(0, 100, 5)]
        cm = self._control(pts)
        est = cm.estimate(np.array([52.0]))
        assert est[0] == pytest.approx(104.0, rel=0.1)
        assert est[1] == pytest.approx(248.0, rel=0.1)

    def test_cached_requires_membership(self):
        cm = self._control([(0, [1, 1])])
        with pytest.raises(KeyError):
            cm.cached(np.array([5.0]))

    def test_counters(self):
        cm = self._control([(0, [1, 1])])
        cm.note(Decision.ESTIMATE)
        cm.note(Decision.ESTIMATE)
        cm.note(Decision.EVALUATE)
        stats = cm.stats()
        assert stats["estimated"] == 2 and stats["evaluated"] == 1

    def test_pretrain_bulk_load(self):
        cm = self._control()
        X = np.arange(10).reshape(-1, 1).astype(float)
        Y = np.stack([X[:, 0] * 2, 100 - X[:, 0]], axis=1)
        cm.pretrain(X, Y)
        assert len(cm.dataset) == 10
        assert cm.model.fitted
        assert cm.threshold > 0

    def test_degenerate_identical_points_survive(self):
        ds = Dataset(n_var=1, metric_names=("m",))
        cm = ControlModel(dataset=ds)
        cm.record(np.array([1.0]), np.array([5.0]))
        cm.record(np.array([1.0]), np.array([6.0]))  # duplicate: no-op
        assert len(ds) == 1
