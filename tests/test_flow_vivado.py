"""Tests for the VivadoSim facade (VEDA)."""

import dataclasses

import pytest

from repro.devices import ResourceKind
from repro.directives import DirectiveSet, ImplDirective, SynthDirective
from repro.errors import FlowError, ModuleNotFoundInSource
from repro.flow import FlowStep, VivadoSim


class TestProjectCommands:
    def test_set_part(self, k7_sim):
        dev = k7_sim.set_part("ZU3EG")
        assert dev.family == "Zynq UltraScale+"

    def test_create_clock_validates(self, k7_sim):
        with pytest.raises(FlowError):
            k7_sim.create_clock(0.0)

    def test_read_hdl_returns_names(self, k7_sim):
        names = k7_sim.read_hdl("module a(input wire c); endmodule", "verilog")
        assert names == ["a"]

    def test_unknown_top(self, k7_sim):
        with pytest.raises(ModuleNotFoundInSource):
            k7_sim.find_top("ghost")

    def test_read_file(self, tmp_path):
        path = tmp_path / "m.v"
        path.write_text("module filemod(input wire c); endmodule")
        sim = VivadoSim()
        assert sim.read_file(str(path)) == ["filemod"]


class TestRunSemantics:
    def test_deterministic_rerun(self, cqm_design):
        results = []
        for _ in range(2):
            sim = VivadoSim(part="XC7K70T", seed=9)
            sim.read_hdl(cqm_design.source(), cqm_design.language)
            sim.create_clock(1.0)
            r = sim.run(cqm_design.top, {"OP_TABLE_SIZE": 16})
            results.append((r.fmax_mhz, r.metric("LUT"), r.metric("FF")))
        assert results[0] == results[1]

    def test_cache_answers_with_explicit_flag(self, loaded_cqm_sim):
        r1 = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 12})
        runs_after_first = loaded_cqm_sim.runs
        r2 = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 12})
        # The cache answer is the archived result, explicitly flagged —
        # everything but the flag is identical to the first run.
        assert not r1.from_cache
        assert r2.from_cache
        assert loaded_cqm_sim.last_run_cached
        assert r2 == dataclasses.replace(r1, from_cache=True)
        assert loaded_cqm_sim.runs == runs_after_first
        assert loaded_cqm_sim.last_run_seconds == 0.0

    def test_different_params_different_cache_entries(self, loaded_cqm_sim):
        r1 = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 12})
        r2 = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 13})
        assert r1 is not r2

    def test_seed_changes_qor(self, cqm_design):
        fmaxes = set()
        for seed in (1, 2, 3):
            sim = VivadoSim(part="XC7K70T", seed=seed)
            sim.read_hdl(cqm_design.source(), cqm_design.language)
            sim.create_clock(1.0)
            fmaxes.add(sim.run(cqm_design.top, {}).fmax_mhz)
        assert len(fmaxes) > 1

    def test_noise_disabled_is_pure_model(self, cqm_design):
        vals = set()
        for seed in (1, 2):
            sim = VivadoSim(part="XC7K70T", seed=seed, noise=False)
            sim.read_hdl(cqm_design.source(), cqm_design.language)
            sim.create_clock(1.0)
            vals.add(round(sim.run(cqm_design.top, {}).metric("LUT")))
        assert len(vals) == 1

    def test_synthesis_step_faster_than_impl(self, loaded_cqm_sim):
        rs = loaded_cqm_sim.run(
            "cpl_queue_manager", {"OP_TABLE_SIZE": 20}, step=FlowStep.SYNTHESIS
        )
        ri = loaded_cqm_sim.run(
            "cpl_queue_manager", {"OP_TABLE_SIZE": 20}, step=FlowStep.IMPLEMENTATION
        )
        assert rs.simulated_seconds < ri.simulated_seconds

    def test_simulated_time_accounted(self, loaded_cqm_sim):
        before = loaded_cqm_sim.simulated_seconds
        r = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 30})
        assert loaded_cqm_sim.simulated_seconds == pytest.approx(
            before + r.simulated_seconds
        )

    def test_report_text_consistent_with_metrics(self, loaded_cqm_sim):
        from repro.flow.reports import parse_timing_report, parse_utilization_report

        r = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 10})
        parsed_u = parse_utilization_report(r.utilization_report_text)
        parsed_t = parse_timing_report(r.timing_report_text)
        assert parsed_u.used.get("LUT") == r.metric("LUT")
        assert parsed_t["wns_ns"] == pytest.approx(r.wns_ns, abs=1e-3)

    def test_metric_accessor(self, loaded_cqm_sim):
        r = loaded_cqm_sim.run("cpl_queue_manager", {})
        assert r.metric("frequency") == r.fmax_mhz
        assert r.metric("lut") >= 0
        with pytest.raises(ValueError):
            r.metric("bogus")


class TestDirectiveEffects:
    def test_area_directive_saves_luts(self, cqm_design):
        def run_with(synth_dir):
            sim = VivadoSim(part="XC7K70T", seed=4, noise=False)
            sim.read_hdl(cqm_design.source(), cqm_design.language)
            sim.create_clock(1.0)
            return sim.run(
                cqm_design.top,
                {"OP_TABLE_SIZE": 32},
                directives=DirectiveSet(synth=synth_dir),
            )

        default = run_with(SynthDirective.DEFAULT)
        area = run_with(SynthDirective.AREA_OPTIMIZED_HIGH)
        assert area.metric("LUT") < default.metric("LUT")

    def test_explore_directive_improves_timing(self, cqm_design):
        def run_with(impl_dir):
            sim = VivadoSim(part="XC7K70T", seed=4, noise=False)
            sim.read_hdl(cqm_design.source(), cqm_design.language)
            sim.create_clock(1.0)
            return sim.run(
                cqm_design.top, {}, directives=DirectiveSet(impl=impl_dir)
            )

        default = run_with(ImplDirective.DEFAULT)
        explore = run_with(ImplDirective.EXPLORE)
        assert explore.fmax_mhz > default.fmax_mhz
        assert explore.simulated_seconds > default.simulated_seconds


class TestTechnologyImpact:
    def test_same_design_faster_on_16nm(self, tirex_design):
        def run_on(part):
            sim = VivadoSim(part=part, seed=4, noise=False)
            sim.read_hdl(tirex_design.source(), tirex_design.language)
            sim.create_clock(1.0)
            return sim.run(tirex_design.top, {"NCLUSTER": 1})

        k7 = run_on("XC7K70T")
        zu = run_on("ZU3EG")
        # The paper's headline observation: ~550 vs ~190 MHz.
        assert zu.fmax_mhz > 2.0 * k7.fmax_mhz

    def test_utilization_overflow_raises(self, tirex_design):
        sim = VivadoSim(part="XC7A35T", seed=0)
        sim.read_hdl(tirex_design.source(), tirex_design.language)
        sim.create_clock(1.0)
        with pytest.raises(Exception) as err:
            sim.run(
                tirex_design.top,
                {"NCLUSTER": 8, "INSTR_MEM_SIZE": 64, "DATA_MEM_SIZE": 64},
            )
        assert "BRAM" in str(err.value) or "LUT" in str(err.value)

    def test_failed_run_charges_partial_cost(self, tirex_design):
        """A run the tool rejects still spent the completed steps' time."""
        sim = VivadoSim(part="XC7A35T", seed=0)
        sim.read_hdl(tirex_design.source(), tirex_design.language)
        sim.create_clock(1.0)
        with pytest.raises(FlowError):
            sim.run(tirex_design.top, {"NCLUSTER": 8})
        assert sim.failed_runs == 1
        assert sim.last_run_seconds > 0.0
        assert sim.simulated_seconds == sim.last_run_seconds
        assert not sim.last_run_cached

    def test_failed_run_does_not_commit_warm_start_netlist(self, tirex_design):
        """Incremental synthesis must not warm-start from a failed point."""
        sim = VivadoSim(part="XC7A35T", seed=0, incremental_synth=True)
        sim.read_hdl(tirex_design.source(), tirex_design.language)
        sim.create_clock(1.0)
        with pytest.raises(FlowError):
            sim.run(tirex_design.top, {"NCLUSTER": 8})
        assert sim._last_synth_netlist is None

        # The next (feasible) run sees no reference — identical to a run
        # on a fresh session.
        r = sim.run(tirex_design.top, {"NCLUSTER": 1})
        assert sim._last_synth_netlist is not None

        fresh = VivadoSim(part="XC7A35T", seed=0)
        fresh.read_hdl(tirex_design.source(), tirex_design.language)
        fresh.create_clock(1.0)
        expected = fresh.run(tirex_design.top, {"NCLUSTER": 1})
        assert r.fmax_mhz == expected.fmax_mhz
        assert r.metric("LUT") == expected.metric("LUT")


class TestStageCaches:
    """Synthesis/implementation stage reuse across directive and period."""

    def test_impl_directive_change_reuses_synth_stage(
        self, loaded_cqm_sim, cqm_design
    ):
        sim = loaded_cqm_sim
        params = {"OP_TABLE_SIZE": 14}
        sim.run("cpl_queue_manager", params)
        assert sim.last_run_stages == ("synthesis", "implementation")
        directives = DirectiveSet.parse("Default", "Explore")
        r2 = sim.run("cpl_queue_manager", params, directives=directives)
        # Only the implementation stage ran — and only it was charged:
        # a fresh session running the same directive pays synthesis too.
        assert sim.last_run_stages == ("implementation",)
        assert sim.synth_stage_hits == 1
        fresh = VivadoSim(part="XC7K70T", seed=11)
        fresh.read_hdl(cqm_design.source(), cqm_design.language)
        fresh.create_clock(1.0)
        full = fresh.run("cpl_queue_manager", params, directives=directives)
        assert 0.0 < r2.simulated_seconds < full.simulated_seconds
        # The reused synthesis changes pricing only — never the answer.
        assert r2.fmax_mhz == full.fmax_mhz
        assert r2.metric("LUT") == full.metric("LUT")

    def test_period_change_reuses_both_stages(self, loaded_cqm_sim):
        sim = loaded_cqm_sim
        params = {"OP_TABLE_SIZE": 18}
        r1 = sim.run("cpl_queue_manager", params)
        sim.create_clock(2.0)
        r2 = sim.run("cpl_queue_manager", params)
        # A clock-constraint change re-derives timing from the cached
        # implemented design: no stage executes, nothing is charged.
        assert sim.last_run_stages == ()
        assert sim.synth_stage_hits == 1
        assert sim.impl_stage_hits == 1
        assert r2.simulated_seconds == 0.0
        # The pre-noise critical delay is period-independent, so the WNS
        # shifts by exactly the period delta.
        assert r2.wns_ns == pytest.approx(r1.wns_ns + 1.0, abs=1e-9)

    def test_stage_cache_bitwise_equals_fresh_session(self, cqm_design):
        params = {"OP_TABLE_SIZE": 18}
        warm = VivadoSim(part="XC7K70T", seed=11)
        warm.read_hdl(cqm_design.source(), cqm_design.language)
        warm.create_clock(1.0)
        warm.run(cqm_design.top, params)
        warm.create_clock(2.0)
        via_cache = warm.run(cqm_design.top, params)

        fresh = VivadoSim(part="XC7K70T", seed=11)
        fresh.read_hdl(cqm_design.source(), cqm_design.language)
        fresh.create_clock(2.0)
        direct = fresh.run(cqm_design.top, params)

        assert via_cache.fmax_mhz == direct.fmax_mhz
        assert via_cache.wns_ns == direct.wns_ns
        assert via_cache.metric("LUT") == direct.metric("LUT")
        assert via_cache.metric("FF") == direct.metric("FF")

    def test_stage_caching_disabled_for_incremental(self, cqm_design):
        sim = VivadoSim(part="XC7K70T", seed=11, incremental_synth=True)
        sim.read_hdl(cqm_design.source(), cqm_design.language)
        sim.create_clock(1.0)
        params = {"OP_TABLE_SIZE": 14}
        sim.run(cqm_design.top, params)
        sim.run(
            cqm_design.top, params,
            directives=DirectiveSet.parse("Default", "Explore"),
        )
        # Incremental outputs are order-dependent: both stages re-ran.
        assert sim.synth_stage_hits == 0
        assert sim.last_run_stages == ("synthesis", "implementation")

    def test_failed_run_does_not_seed_stage_caches(self, tirex_design):
        sim = VivadoSim(part="XC7A35T", seed=0)
        sim.read_hdl(tirex_design.source(), tirex_design.language)
        sim.create_clock(1.0)
        params = {"NCLUSTER": 8}
        with pytest.raises(FlowError):
            sim.run(tirex_design.top, params)
        first_charge = sim.last_run_seconds
        first_stages = sim.last_run_stages
        assert "synthesis" in first_stages
        # Retrying the failing point re-runs (and re-charges) the full
        # flow: a failed run must not seed later runs with its artifacts.
        with pytest.raises(FlowError):
            sim.run(tirex_design.top, params)
        assert sim.synth_stage_hits == 0
        assert sim.last_run_stages == first_stages
        assert sim.last_run_seconds == first_charge


class TestRunCacheBound:
    def test_capacity_bounds_all_caches(self, cqm_design):
        sim = VivadoSim(part="XC7K70T", seed=1, cache_capacity=4)
        sim.read_hdl(cqm_design.source(), cqm_design.language)
        sim.create_clock(1.0)
        for v in range(8, 20):
            sim.run(cqm_design.top, {"OP_TABLE_SIZE": v}, step=FlowStep.SYNTHESIS)
        # A long sweep no longer holds every RunResult alive.
        assert len(sim._cache) <= 4
        assert len(sim._synth_cache) <= 4
        assert sim._cache.evictions > 0

    def test_eviction_means_rerun_hot_entry_stays(self, cqm_design):
        sim = VivadoSim(part="XC7K70T", seed=1, cache_capacity=2)
        sim.read_hdl(cqm_design.source(), cqm_design.language)
        sim.create_clock(1.0)
        for v in (8, 9, 10):
            sim.run(cqm_design.top, {"OP_TABLE_SIZE": v}, step=FlowStep.SYNTHESIS)
        # Oldest entry evicted: repeating it is a fresh (charged) run...
        r_old = sim.run(
            cqm_design.top, {"OP_TABLE_SIZE": 8}, step=FlowStep.SYNTHESIS
        )
        assert not r_old.from_cache
        # ...while the hot tail still answers from the cache.
        r_hot = sim.run(
            cqm_design.top, {"OP_TABLE_SIZE": 8}, step=FlowStep.SYNTHESIS
        )
        assert r_hot.from_cache

    def test_unbounded_capacity_never_evicts(self, cqm_design):
        sim = VivadoSim(part="XC7K70T", seed=1, cache_capacity=None)
        sim.read_hdl(cqm_design.source(), cqm_design.language)
        sim.create_clock(1.0)
        for v in range(8, 20):
            sim.run(cqm_design.top, {"OP_TABLE_SIZE": v}, step=FlowStep.SYNTHESIS)
        assert len(sim._cache) == 12
        assert sim._cache.evictions == 0
