"""Tests for the VivadoSim facade (VEDA)."""

import dataclasses

import pytest

from repro.devices import ResourceKind
from repro.directives import DirectiveSet, ImplDirective, SynthDirective
from repro.errors import FlowError, ModuleNotFoundInSource
from repro.flow import FlowStep, VivadoSim


class TestProjectCommands:
    def test_set_part(self, k7_sim):
        dev = k7_sim.set_part("ZU3EG")
        assert dev.family == "Zynq UltraScale+"

    def test_create_clock_validates(self, k7_sim):
        with pytest.raises(FlowError):
            k7_sim.create_clock(0.0)

    def test_read_hdl_returns_names(self, k7_sim):
        names = k7_sim.read_hdl("module a(input wire c); endmodule", "verilog")
        assert names == ["a"]

    def test_unknown_top(self, k7_sim):
        with pytest.raises(ModuleNotFoundInSource):
            k7_sim.find_top("ghost")

    def test_read_file(self, tmp_path):
        path = tmp_path / "m.v"
        path.write_text("module filemod(input wire c); endmodule")
        sim = VivadoSim()
        assert sim.read_file(str(path)) == ["filemod"]


class TestRunSemantics:
    def test_deterministic_rerun(self, cqm_design):
        results = []
        for _ in range(2):
            sim = VivadoSim(part="XC7K70T", seed=9)
            sim.read_hdl(cqm_design.source(), cqm_design.language)
            sim.create_clock(1.0)
            r = sim.run(cqm_design.top, {"OP_TABLE_SIZE": 16})
            results.append((r.fmax_mhz, r.metric("LUT"), r.metric("FF")))
        assert results[0] == results[1]

    def test_cache_answers_with_explicit_flag(self, loaded_cqm_sim):
        r1 = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 12})
        runs_after_first = loaded_cqm_sim.runs
        r2 = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 12})
        # The cache answer is the archived result, explicitly flagged —
        # everything but the flag is identical to the first run.
        assert not r1.from_cache
        assert r2.from_cache
        assert loaded_cqm_sim.last_run_cached
        assert r2 == dataclasses.replace(r1, from_cache=True)
        assert loaded_cqm_sim.runs == runs_after_first
        assert loaded_cqm_sim.last_run_seconds == 0.0

    def test_different_params_different_cache_entries(self, loaded_cqm_sim):
        r1 = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 12})
        r2 = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 13})
        assert r1 is not r2

    def test_seed_changes_qor(self, cqm_design):
        fmaxes = set()
        for seed in (1, 2, 3):
            sim = VivadoSim(part="XC7K70T", seed=seed)
            sim.read_hdl(cqm_design.source(), cqm_design.language)
            sim.create_clock(1.0)
            fmaxes.add(sim.run(cqm_design.top, {}).fmax_mhz)
        assert len(fmaxes) > 1

    def test_noise_disabled_is_pure_model(self, cqm_design):
        vals = set()
        for seed in (1, 2):
            sim = VivadoSim(part="XC7K70T", seed=seed, noise=False)
            sim.read_hdl(cqm_design.source(), cqm_design.language)
            sim.create_clock(1.0)
            vals.add(round(sim.run(cqm_design.top, {}).metric("LUT")))
        assert len(vals) == 1

    def test_synthesis_step_faster_than_impl(self, loaded_cqm_sim):
        rs = loaded_cqm_sim.run(
            "cpl_queue_manager", {"OP_TABLE_SIZE": 20}, step=FlowStep.SYNTHESIS
        )
        ri = loaded_cqm_sim.run(
            "cpl_queue_manager", {"OP_TABLE_SIZE": 20}, step=FlowStep.IMPLEMENTATION
        )
        assert rs.simulated_seconds < ri.simulated_seconds

    def test_simulated_time_accounted(self, loaded_cqm_sim):
        before = loaded_cqm_sim.simulated_seconds
        r = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 30})
        assert loaded_cqm_sim.simulated_seconds == pytest.approx(
            before + r.simulated_seconds
        )

    def test_report_text_consistent_with_metrics(self, loaded_cqm_sim):
        from repro.flow.reports import parse_timing_report, parse_utilization_report

        r = loaded_cqm_sim.run("cpl_queue_manager", {"OP_TABLE_SIZE": 10})
        parsed_u = parse_utilization_report(r.utilization_report_text)
        parsed_t = parse_timing_report(r.timing_report_text)
        assert parsed_u.used.get("LUT") == r.metric("LUT")
        assert parsed_t["wns_ns"] == pytest.approx(r.wns_ns, abs=1e-3)

    def test_metric_accessor(self, loaded_cqm_sim):
        r = loaded_cqm_sim.run("cpl_queue_manager", {})
        assert r.metric("frequency") == r.fmax_mhz
        assert r.metric("lut") >= 0
        with pytest.raises(ValueError):
            r.metric("bogus")


class TestDirectiveEffects:
    def test_area_directive_saves_luts(self, cqm_design):
        def run_with(synth_dir):
            sim = VivadoSim(part="XC7K70T", seed=4, noise=False)
            sim.read_hdl(cqm_design.source(), cqm_design.language)
            sim.create_clock(1.0)
            return sim.run(
                cqm_design.top,
                {"OP_TABLE_SIZE": 32},
                directives=DirectiveSet(synth=synth_dir),
            )

        default = run_with(SynthDirective.DEFAULT)
        area = run_with(SynthDirective.AREA_OPTIMIZED_HIGH)
        assert area.metric("LUT") < default.metric("LUT")

    def test_explore_directive_improves_timing(self, cqm_design):
        def run_with(impl_dir):
            sim = VivadoSim(part="XC7K70T", seed=4, noise=False)
            sim.read_hdl(cqm_design.source(), cqm_design.language)
            sim.create_clock(1.0)
            return sim.run(
                cqm_design.top, {}, directives=DirectiveSet(impl=impl_dir)
            )

        default = run_with(ImplDirective.DEFAULT)
        explore = run_with(ImplDirective.EXPLORE)
        assert explore.fmax_mhz > default.fmax_mhz
        assert explore.simulated_seconds > default.simulated_seconds


class TestTechnologyImpact:
    def test_same_design_faster_on_16nm(self, tirex_design):
        def run_on(part):
            sim = VivadoSim(part=part, seed=4, noise=False)
            sim.read_hdl(tirex_design.source(), tirex_design.language)
            sim.create_clock(1.0)
            return sim.run(tirex_design.top, {"NCLUSTER": 1})

        k7 = run_on("XC7K70T")
        zu = run_on("ZU3EG")
        # The paper's headline observation: ~550 vs ~190 MHz.
        assert zu.fmax_mhz > 2.0 * k7.fmax_mhz

    def test_utilization_overflow_raises(self, tirex_design):
        sim = VivadoSim(part="XC7A35T", seed=0)
        sim.read_hdl(tirex_design.source(), tirex_design.language)
        sim.create_clock(1.0)
        with pytest.raises(Exception) as err:
            sim.run(
                tirex_design.top,
                {"NCLUSTER": 8, "INSTR_MEM_SIZE": 64, "DATA_MEM_SIZE": 64},
            )
        assert "BRAM" in str(err.value) or "LUT" in str(err.value)

    def test_failed_run_charges_partial_cost(self, tirex_design):
        """A run the tool rejects still spent the completed steps' time."""
        sim = VivadoSim(part="XC7A35T", seed=0)
        sim.read_hdl(tirex_design.source(), tirex_design.language)
        sim.create_clock(1.0)
        with pytest.raises(FlowError):
            sim.run(tirex_design.top, {"NCLUSTER": 8})
        assert sim.failed_runs == 1
        assert sim.last_run_seconds > 0.0
        assert sim.simulated_seconds == sim.last_run_seconds
        assert not sim.last_run_cached

    def test_failed_run_does_not_commit_warm_start_netlist(self, tirex_design):
        """Incremental synthesis must not warm-start from a failed point."""
        sim = VivadoSim(part="XC7A35T", seed=0, incremental_synth=True)
        sim.read_hdl(tirex_design.source(), tirex_design.language)
        sim.create_clock(1.0)
        with pytest.raises(FlowError):
            sim.run(tirex_design.top, {"NCLUSTER": 8})
        assert sim._last_synth_netlist is None

        # The next (feasible) run sees no reference — identical to a run
        # on a fresh session.
        r = sim.run(tirex_design.top, {"NCLUSTER": 1})
        assert sim._last_synth_netlist is not None

        fresh = VivadoSim(part="XC7A35T", seed=0)
        fresh.read_hdl(tirex_design.source(), tirex_design.language)
        fresh.create_clock(1.0)
        expected = fresh.run(tirex_design.top, {"NCLUSTER": 1})
        assert r.fmax_mhz == expected.fmax_mhz
        assert r.metric("LUT") == expected.metric("LUT")
