"""Tests for the dual-dialect lexer."""

import pytest

from repro.errors import LexError
from repro.hdl.lexer import Lexer, TokenKind, VERILOG_LEX, VHDL_LEX


def vhdl_tokens(src):
    return Lexer(src, VHDL_LEX).tokens()


def vlog_tokens(src):
    return Lexer(src, VERILOG_LEX).tokens()


class TestVhdlLexing:
    def test_line_comment_skipped(self):
        toks = vhdl_tokens("a -- comment here\nb")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_block_comment_vhdl2008(self):
        toks = vhdl_tokens("a /* c */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_based_literal_hex(self):
        toks = vhdl_tokens('16#FF#')
        assert toks[0].kind == TokenKind.NUMBER
        assert toks[0].value == 255

    def test_based_literal_binary_with_underscores(self):
        toks = vhdl_tokens("2#1010_0001#")
        assert toks[0].value == 0b10100001

    def test_underscored_decimal(self):
        toks = vhdl_tokens("1_000_000")
        assert toks[0].value == 1000000

    def test_char_literal(self):
        toks = vhdl_tokens("'0'")
        assert toks[0].kind == TokenKind.CHAR
        assert toks[0].text == "0"

    def test_string_with_doubled_quote(self):
        toks = vhdl_tokens('"he said ""hi"""')
        assert toks[0].kind == TokenKind.STRING
        assert toks[0].text == 'he said "hi"'

    def test_extended_identifier(self):
        toks = vhdl_tokens("\\weird name\\")
        assert toks[0].kind == TokenKind.IDENT
        assert toks[0].text == "weird name"

    def test_multichar_operators(self):
        toks = vhdl_tokens("a => b := c ** 2")
        ops = [t.text for t in toks if t.kind == TokenKind.OP]
        assert ops == ["=>", ":=", "**"]

    def test_position_tracking(self):
        toks = vhdl_tokens("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError, match="unterminated string"):
            vhdl_tokens('"open')

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError, match="block comment"):
            vhdl_tokens("/* never closed")

    def test_eof_always_appended(self):
        assert vhdl_tokens("")[-1].kind == TokenKind.EOF


class TestVerilogLexing:
    def test_line_and_block_comments(self):
        toks = vlog_tokens("a // x\n/* y */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_sized_hex_literal(self):
        toks = vlog_tokens("8'hFF")
        assert toks[0].value == 255

    def test_sized_binary_with_x(self):
        toks = vlog_tokens("4'b1x0z")
        assert toks[0].value == 0b1000  # x/z read as 0

    def test_unbased_unsized(self):
        toks = vlog_tokens("'0 '1")
        assert [t.value for t in toks[:-1]] == [0, 1]

    def test_signed_literal(self):
        toks = vlog_tokens("8'sd200")
        assert toks[0].value == 200

    def test_attribute_instance_skipped(self):
        toks = vlog_tokens('(* keep = "true" *) wire x;')
        assert toks[0].text == "wire"

    def test_backtick_directive_skipped(self):
        toks = vlog_tokens("`timescale 1ns/1ps\nmodule")
        assert toks[0].text == "module"

    def test_escaped_identifier(self):
        toks = vlog_tokens("\\bus[0] next")
        assert toks[0].text == "bus[0]"
        assert toks[1].text == "next"

    def test_dollar_ident(self):
        toks = vlog_tokens("$clog2(DEPTH)")
        assert toks[0].is_op("$")
        assert toks[1].text == "clog2"

    def test_three_char_shift(self):
        toks = vlog_tokens("a <<< 2")
        assert toks[1].text == "<<<"

    def test_unknown_char_is_lenient_op(self):
        toks = vlog_tokens("a ° b")  # degree sign: not alnum, not in op table
        assert toks[1].kind == TokenKind.OP

    def test_string_escape(self):
        toks = vlog_tokens(r'"a\"b"')
        assert toks[0].text == 'a"b'


class TestTokenHelpers:
    def test_is_ident_case_insensitive(self):
        tok = vhdl_tokens("ENTITY")[0]
        assert tok.is_ident("entity")
        assert not tok.is_ident("module")

    def test_is_op(self):
        tok = vhdl_tokens("(")[0]
        assert tok.is_op("(", ")")
        assert not tok.is_op(";")
