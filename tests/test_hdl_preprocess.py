"""Tests for the Verilog preprocessor."""

import pytest

from repro.hdl.preprocess import PreprocessorError, preprocess_verilog
from repro.hdl.verilog_parser import parse_verilog


class TestDefine:
    def test_object_macro_expansion(self):
        src = "`define WIDTH 8\nmodule m(input wire [`WIDTH-1:0] d); endmodule"
        out = preprocess_verilog(src)
        assert "[8-1:0]" in out
        assert "`define" not in out

    def test_function_macro(self):
        src = (
            "`define MAX(a, b) ((a) > (b) ? (a) : (b))\n"
            "localparam M = `MAX(3, 5);"
        )
        out = preprocess_verilog(src)
        assert "((3) > (5) ? (3) : (5))" in out

    def test_nested_macros(self):
        src = (
            "`define BASE 4\n"
            "`define DOUBLE (`BASE * 2)\n"
            "wire [`DOUBLE:0] w;"
        )
        out = preprocess_verilog(src)
        assert "(4 * 2)" in out

    def test_recursive_macro_detected(self):
        src = "`define LOOP `LOOP\nwire w = `LOOP;"
        with pytest.raises(PreprocessorError, match="too deep"):
            preprocess_verilog(src)

    def test_undef(self):
        src = "`define X 1\n`undef X\nwire w = `X;"
        with pytest.raises(PreprocessorError, match="undefined macro"):
            preprocess_verilog(src)

    def test_cli_defines_seeded(self):
        out = preprocess_verilog("wire [`W:0] w;", defines={"W": "15"})
        assert "[15:0]" in out

    def test_wrong_arity(self):
        src = "`define F(a, b) a+b\nwire w = `F(1);"
        with pytest.raises(PreprocessorError, match="args"):
            preprocess_verilog(src)

    def test_continuation_lines(self):
        src = "`define LONG 1 + \\\n  2\nlocalparam L = `LONG;"
        out = preprocess_verilog(src)
        normalized = " ".join(out.split())
        assert "localparam L = 1 + 2;" in normalized


class TestConditionals:
    def test_ifdef_taken(self):
        src = "`define FPGA\n`ifdef FPGA\nwire a;\n`else\nwire b;\n`endif"
        out = preprocess_verilog(src)
        assert "wire a;" in out and "wire b;" not in out

    def test_ifdef_not_taken(self):
        src = "`ifdef FPGA\nwire a;\n`else\nwire b;\n`endif"
        out = preprocess_verilog(src)
        assert "wire b;" in out and "wire a;" not in out

    def test_ifndef(self):
        src = "`ifndef SIM\nwire synth_only;\n`endif"
        assert "synth_only" in preprocess_verilog(src)

    def test_elsif_chain(self):
        src = (
            "`define MODE_B\n"
            "`ifdef MODE_A\nwire a;\n"
            "`elsif MODE_B\nwire b;\n"
            "`else\nwire c;\n`endif"
        )
        out = preprocess_verilog(src)
        assert "wire b;" in out
        assert "wire a;" not in out and "wire c;" not in out

    def test_nested_conditionals(self):
        src = (
            "`define OUTER\n"
            "`ifdef OUTER\n"
            "`ifdef INNER\nwire both;\n`else\nwire outer_only;\n`endif\n"
            "`endif"
        )
        out = preprocess_verilog(src)
        assert "outer_only" in out and "both" not in out

    def test_inactive_region_defines_skipped(self):
        src = "`ifdef NOPE\n`define X 1\n`endif\n`ifdef X\nwire x;\n`endif"
        assert "wire x;" not in preprocess_verilog(src)

    def test_unbalanced_endif(self):
        with pytest.raises(PreprocessorError, match="`endif"):
            preprocess_verilog("`endif")

    def test_unterminated_ifdef(self):
        with pytest.raises(PreprocessorError, match="unterminated"):
            preprocess_verilog("`ifdef X\nwire w;")


class TestInclude:
    def test_virtual_include(self):
        header = "`define DATA_W 32\n"
        src = '`include "defs.vh"\nmodule m(input wire [`DATA_W-1:0] d); endmodule'
        out = preprocess_verilog(src, include_files={"defs.vh": header})
        assert "[32-1:0]" in out

    def test_disk_include(self, tmp_path):
        (tmp_path / "hdr.vh").write_text("`define K 7\n")
        src = '`include "hdr.vh"\nwire [`K:0] w;'
        out = preprocess_verilog(src, include_dirs=(str(tmp_path),))
        assert "[7:0]" in out

    def test_missing_include(self):
        with pytest.raises(PreprocessorError, match="cannot resolve"):
            preprocess_verilog('`include "ghost.vh"')

    def test_circular_include(self):
        files = {
            "a.vh": '`include "b.vh"',
            "b.vh": '`include "a.vh"',
        }
        with pytest.raises(PreprocessorError, match="circular"):
            preprocess_verilog('`include "a.vh"', include_files=files)


class TestIntegrationWithParser:
    def test_macro_driven_interface_parses(self):
        src = """
`define AXIS_W 64
`define REG(name, width) output reg [width-1:0] name

module stream #(
    parameter KEEP_W = `AXIS_W / 8
)(
    input  wire clk,
    input  wire [`AXIS_W-1:0] tdata,
    `REG(captured, `AXIS_W)
);
endmodule
"""
        clean = preprocess_verilog(src)
        module = parse_verilog(clean)[0]
        env = module.default_environment()
        assert env["KEEP_W"] == 8
        assert module.port("tdata").width(env) == 64
        assert module.port("captured").width(env) == 64

    def test_directives_in_comments_ignored(self):
        src = "// `define GHOST 1\nwire w;\n"
        out = preprocess_verilog(src)
        assert "GHOST" not in out or "`define GHOST" in out  # untouched comment

    def test_timescale_passthrough(self):
        out = preprocess_verilog("`timescale 1ns/1ps\nwire w;")
        assert "`timescale 1ns/1ps" in out
