"""S-series concurrency/atomicity rules: fixtures, self-analysis, reverts.

Every rule gets a positive (flagging) and a negative (clean) synthetic
fixture; the self-analysis tests pin the repo's own service layer clean at
HEAD; the revert tests undo each of the three PR 8 store correctness fixes
textually and assert the analyzer reports the corresponding S-finding —
the rules would have caught those bugs before review did.
"""

from __future__ import annotations

import json

from repro.analysis import (
    SEEDED_LOCK_ORDER,
    DesignRuleChecker,
    collect_py_sources,
    static_lock_graph,
)
from repro.core.cli import main


def check(*sources: tuple[str, str]):
    """Run the CONCURRENCY stage over synthetic ``(path, text)`` pairs."""
    return list(DesignRuleChecker().check_python(list(sources)).findings)


def codes(findings) -> list[str]:
    return [f.code for f in findings]


# --------------------------------------------------------------------------
# S001: blocking calls on the event loop / in poll loops
# --------------------------------------------------------------------------


class TestS001:
    def test_blocking_call_in_async_def_flagged(self):
        src = (
            "import time\n"
            "\n"
            "async def poll():\n"
            "    time.sleep(0.1)\n"
        )
        findings = check(("app/loop.py", src))
        assert codes(findings) == ["S001"]
        assert findings[0].line == 4
        assert "time.sleep" in findings[0].message

    def test_blocking_call_reached_through_helper(self):
        src = (
            "import subprocess\n"
            "\n"
            "def run_tool():\n"
            "    subprocess.run(['true'])\n"
            "\n"
            "async def drive():\n"
            "    run_tool()\n"
        )
        findings = check(("app/loop.py", src))
        assert codes(findings) == ["S001"]
        assert "reached from" in findings[0].message

    def test_async_sleep_and_executor_offload_clean(self):
        src = (
            "import asyncio\n"
            "import time\n"
            "\n"
            "async def poll(loop):\n"
            "    await asyncio.sleep(0.1)\n"
            "    await loop.run_in_executor(None, time.sleep, 0.1)\n"
        )
        assert check(("app/loop.py", src)) == []

    def test_poll_loop_sleep_with_owned_event_flagged(self):
        src = (
            "import threading\n"
            "import time\n"
            "\n"
            "class Worker:\n"
            "    def __init__(self):\n"
            "        self._stop = threading.Event()\n"
            "\n"
            "    def run(self):\n"
            "        while not self._stop.is_set():\n"
            "            time.sleep(0.5)\n"
        )
        findings = check(("app/worker.py", src))
        assert codes(findings) == ["S001"]
        assert "self._stop.wait" in findings[0].message

    def test_poll_loop_event_wait_clean(self):
        src = (
            "import threading\n"
            "\n"
            "class Worker:\n"
            "    def __init__(self):\n"
            "        self._stop = threading.Event()\n"
            "\n"
            "    def run(self):\n"
            "        while not self._stop.is_set():\n"
            "            self._stop.wait(0.5)\n"
        )
        assert check(("app/worker.py", src)) == []


# --------------------------------------------------------------------------
# S002: lock/flock acquired outside with / try-finally
# --------------------------------------------------------------------------

_S002_BASE = (
    "import threading\n"
    "\n"
    "class Box:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.n = 0\n"
    "\n"
)


class TestS002:
    def test_bare_acquire_release_flagged(self):
        src = _S002_BASE + (
            "    def bump(self):\n"
            "        self._lock.acquire()\n"
            "        self.n += 1\n"
            "        self._lock.release()\n"
        )
        findings = check(("app/box.py", src))
        assert codes(findings) == ["S002"]
        assert "self._lock" in findings[0].message

    def test_try_finally_release_clean(self):
        src = _S002_BASE + (
            "    def bump(self):\n"
            "        self._lock.acquire()\n"
            "        try:\n"
            "            self.n += 1\n"
            "        finally:\n"
            "            self._lock.release()\n"
        )
        assert check(("app/box.py", src)) == []

    def test_with_statement_clean(self):
        src = _S002_BASE + (
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
        )
        assert check(("app/box.py", src)) == []

    def test_bare_flock_flagged(self):
        src = (
            "import fcntl\n"
            "\n"
            "class Q:\n"
            "    def touch(self, fh):\n"
            "        fcntl.flock(fh, fcntl.LOCK_EX)\n"
            "        fh.write('x')\n"
            "        fcntl.flock(fh, fcntl.LOCK_UN)\n"
        )
        findings = check(("app/q.py", src))
        assert "S002" in codes(findings)

    def test_flock_in_try_finally_clean(self):
        src = (
            "import fcntl\n"
            "\n"
            "class Q:\n"
            "    def touch(self, fh):\n"
            "        fcntl.flock(fh, fcntl.LOCK_EX)\n"
            "        try:\n"
            "            fh.write('x')\n"
            "        finally:\n"
            "            fcntl.flock(fh, fcntl.LOCK_UN)\n"
        )
        assert "S002" not in codes(check(("app/q.py", src)))


# --------------------------------------------------------------------------
# S003: lock-order cycles
# --------------------------------------------------------------------------

_S003_HEAD = (
    "import threading\n"
    "\n"
    "class Pair:\n"
    "    def __init__(self):\n"
    "        self._a = threading.Lock()\n"
    "        self._b = threading.Lock()\n"
    "\n"
    "    def fwd(self):\n"
    "        with self._a:\n"
    "            with self._b:\n"
    "                pass\n"
)


class TestS003:
    def test_opposite_orders_flagged(self):
        src = _S003_HEAD + (
            "\n"
            "    def rev(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                pass\n"
        )
        findings = check(("app/pair.py", src))
        assert codes(findings) == ["S003"]
        assert "Pair._a" in findings[0].message
        assert "Pair._b" in findings[0].message

    def test_consistent_order_clean(self):
        assert check(("app/pair.py", _S003_HEAD)) == []

    def test_interprocedural_order_builds_edges(self):
        src = _S003_HEAD + (
            "\n"
            "    def outer(self):\n"
            "        with self._b:\n"
            "            self.helper()\n"
            "\n"
            "    def helper(self):\n"
            "        with self._a:\n"
            "            pass\n"
        )
        findings = check(("app/pair.py", src))
        assert codes(findings) == ["S003"]

    def test_synthetic_lock_graph_shape(self):
        graph = static_lock_graph([("app/pair.py", _S003_HEAD)])
        assert set(graph.nodes) == {
            "app/pair.py::Pair._a",
            "app/pair.py::Pair._b",
        }
        assert graph.has_edge("app/pair.py::Pair._a", "app/pair.py::Pair._b")
        assert graph.cycles() == []


# --------------------------------------------------------------------------
# S004: unguarded shared read-modify-write
# --------------------------------------------------------------------------

_S004_HEAD = (
    "import threading\n"
    "\n"
    "class Stats:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.done = 0\n"
    "\n"
    "    def start(self):\n"
    "        t = threading.Thread(target=self._work)\n"
    "        t.start()\n"
    "\n"
    "    def snapshot(self):\n"
    "        with self._lock:\n"
    "            return self.done\n"
    "\n"
)

#: Same class, but the snapshot read skips the lock the writer holds.
_S004_HEAD_LOCKLESS_READ = _S004_HEAD.replace(
    "    def snapshot(self):\n"
    "        with self._lock:\n"
    "            return self.done\n",
    "    def snapshot(self):\n"
    "        return self.done\n",
)


class TestS004:
    def test_unguarded_increment_flagged(self):
        src = _S004_HEAD_LOCKLESS_READ + (
            "    def _work(self):\n"
            "        self.done += 1\n"
        )
        findings = check(("app/stats.py", src))
        # Only the write side is reported: with no writer lock there is no
        # coherence protocol for the lockless read to bypass.
        assert codes(findings) == ["S004"]
        assert "read-modify-write" in findings[0].message
        assert "self.done" in findings[0].message

    def test_lock_guarded_increment_clean(self):
        src = _S004_HEAD + (
            "    def _work(self):\n"
            "        with self._lock:\n"
            "            self.done += 1\n"
        )
        assert check(("app/stats.py", src)) == []

    def test_lockless_read_with_locked_writers_flagged(self):
        src = _S004_HEAD_LOCKLESS_READ + (
            "    def _work(self):\n"
            "        with self._lock:\n"
            "            self.done += 1\n"
        )
        findings = check(("app/stats.py", src))
        assert codes(findings) == ["S004"]
        assert "unguarded read" in findings[0].message
        assert "snapshot" in findings[0].message

    def test_single_role_attribute_clean(self):
        # Only the worker thread touches the attribute: no interleaving.
        src = (
            "import threading\n"
            "\n"
            "class Stats:\n"
            "    def __init__(self):\n"
            "        self.done = 0\n"
            "\n"
            "    def start(self):\n"
            "        t = threading.Thread(target=self._work)\n"
            "        t.start()\n"
            "\n"
            "    def _work(self):\n"
            "        self.done += 1\n"
        )
        assert check(("app/stats.py", src)) == []

    def test_threadless_class_clean(self):
        src = (
            "class Tally:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            "\n"
            "    def bump(self):\n"
            "        self.n += 1\n"
        )
        assert check(("app/tally.py", src)) == []


# --------------------------------------------------------------------------
# S005: non-atomic publish / unguarded reads in multi-process classes
# --------------------------------------------------------------------------

_S005_ATOMIC = (
    "import os\n"
    "\n"
    "class Store:\n"
    "    def __init__(self, root):\n"
    "        self._path = root / 'MANIFEST'\n"
    "\n"
    "    def good(self, data):\n"
    "        tmp = self._path.with_suffix('.tmp')\n"
    "        tmp.write_text(data)\n"
    "        os.replace(tmp, self._path)\n"
)


class TestS005:
    def test_inplace_rewrite_flagged(self):
        src = _S005_ATOMIC + (
            "\n"
            "    def publish(self, data):\n"
            "        self._path.write_text(data)\n"
        )
        findings = check(("app/store.py", src))
        assert codes(findings) == ["S005"]
        assert "os.replace" in findings[0].message
        assert "publish" in findings[0].message

    def test_tmp_plus_replace_clean(self):
        assert check(("app/store.py", _S005_ATOMIC)) == []

    def test_unguarded_json_loads_flagged(self):
        src = _S005_ATOMIC + (
            "\n"
            "    def load(self):\n"
            "        import json\n"
            "        return json.loads(self._path.read_text())\n"
        )
        findings = check(("app/store.py", src))
        assert codes(findings) == ["S005"]
        assert "json.loads" in findings[0].message

    def test_guarded_json_loads_clean(self):
        src = _S005_ATOMIC + (
            "\n"
            "    def load(self):\n"
            "        import json\n"
            "        try:\n"
            "            return json.loads(self._path.read_text())\n"
            "        except (OSError, json.JSONDecodeError):\n"
            "            return None\n"
        )
        assert check(("app/store.py", src)) == []

    def test_caller_owned_export_path_clean(self):
        src = _S005_ATOMIC + (
            "\n"
            "    def export(self, path):\n"
            "        path.write_text('dump')\n"
        )
        assert check(("app/store.py", src)) == []

    def test_rank_blind_revalidation_flagged(self):
        src = _S005_ATOMIC + (
            "\n"
            "    def get(self, key):\n"
            "        limit = FULL_RANK\n"
            "        hit = self._index.get(key)\n"
            "        if hit is None:\n"
            "            self.refresh()\n"
            "            hit = self._index.get(key)\n"
            "        return hit\n"
            "\n"
            "    def refresh(self):\n"
            "        pass\n"
        )
        findings = check(("app/store.py", src))
        assert codes(findings) == ["S005"]
        assert "rank" in findings[0].message

    def test_rank_aware_revalidation_clean(self):
        src = _S005_ATOMIC + (
            "\n"
            "    def get(self, key, FULL_RANK=2):\n"
            "        hit = self._index.get(key)\n"
            "        if hit is None or hit.rank < FULL_RANK:\n"
            "            self.refresh()\n"
            "            hit = self._index.get(key)\n"
            "        return hit\n"
            "\n"
            "    def refresh(self):\n"
            "        pass\n"
        )
        assert check(("app/store.py", src)) == []

    def test_single_process_class_unchecked(self):
        # No flock / os.replace evidence: not a multi-process class.
        src = (
            "class Scratch:\n"
            "    def __init__(self, root):\n"
            "        self._path = root / 'notes.txt'\n"
            "\n"
            "    def publish(self, data):\n"
            "        self._path.write_text(data)\n"
        )
        assert check(("app/scratch.py", src)) == []


# --------------------------------------------------------------------------
# S006: fire-and-forget tasks
# --------------------------------------------------------------------------


class TestS006:
    def test_bare_create_task_flagged(self):
        src = (
            "import asyncio\n"
            "\n"
            "class Runner:\n"
            "    async def kick(self):\n"
            "        asyncio.create_task(self.job())\n"
            "\n"
            "    async def job(self):\n"
            "        pass\n"
        )
        findings = check(("app/run.py", src))
        assert codes(findings) == ["S006"]
        assert findings[0].severity.value == "warning"

    def test_retained_task_clean(self):
        src = (
            "import asyncio\n"
            "\n"
            "class Runner:\n"
            "    async def kick(self):\n"
            "        self._task = asyncio.create_task(self.job())\n"
            "        await self._task\n"
            "\n"
            "    async def job(self):\n"
            "        pass\n"
        )
        assert check(("app/run.py", src)) == []


# --------------------------------------------------------------------------
# registry integration: disable / baseline / severity come for free
# --------------------------------------------------------------------------


class TestRegistryIntegration:
    BAD = (
        "import time\n"
        "\n"
        "async def poll():\n"
        "    time.sleep(0.1)\n"
    )

    def test_disable_silences_rule(self):
        from repro.analysis import RuleConfig

        checker = DesignRuleChecker(RuleConfig(disabled=frozenset({"S001"})))
        result = checker.check_python([("app/loop.py", self.BAD)])
        assert list(result.findings) == []

    def test_fingerprint_is_line_independent(self):
        first = check(("app/loop.py", self.BAD))[0]
        second = check(("app/loop.py", "# shifted\n" + self.BAD))[0]
        assert first.fingerprint() == second.fingerprint()


# --------------------------------------------------------------------------
# self-analysis: the service layer is clean at HEAD
# --------------------------------------------------------------------------


class TestSelfAnalysis:
    def test_service_layer_clean(self):
        findings = list(
            DesignRuleChecker().check_python(collect_py_sources()).findings
        )
        assert findings == [], [str(f) for f in findings]

    def test_lock_graph_knows_the_service_locks(self):
        graph = static_lock_graph(collect_py_sources())
        for symbol in (
            "repro/serve/fleet.py::EvaluatorFleet._lock",
            "repro/serve/fleet.py::EvaluatorFleet._member_locks[]",
            "repro/cache/store.py::ResultStore.<flock>",
            "repro/serve/queue.py::FileJobQueue.<flock>",
            "repro/serve/server.py::DseServer._counters_lock",
        ):
            assert symbol in graph.nodes, symbol
        assert graph.cycles() == []

    def test_seeded_order_is_in_the_graph(self):
        graph = static_lock_graph(collect_py_sources())
        for held, acquired, _why in SEEDED_LOCK_ORDER:
            assert graph.has_edge(held, acquired), (held, acquired)

    def test_node_at_maps_definition_sites_back(self):
        graph = static_lock_graph(collect_py_sources())
        for node in graph.nodes.values():
            for line in node.lines:
                assert graph.node_at(node.path, line) == node.symbol

    def test_cli_lint_self_is_clean_and_strict(self, capsys):
        assert main(["lint", "--self", "--strict"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_lint_self_sarif_uses_py_paths(self, capsys):
        assert main(["lint", "--self", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rules = payload["runs"][0]["tool"]["driver"]["rules"]
        assert any(r["id"].startswith("S0") for r in rules)


# --------------------------------------------------------------------------
# revert detection: each PR 8 store fix maps to an S-finding
# --------------------------------------------------------------------------


def _patched_sources(
    old: str, new: str, target: str = "repro/cache/store.py"
) -> list[tuple[str, str]]:
    """The self-source set with one textual regression applied to *target*."""
    out: list[tuple[str, str]] = []
    patched = False
    for path, text in collect_py_sources():
        if path == target:
            assert old in text, f"revert anchor missing: {old!r}"
            text = text.replace(old, new, 1)
            patched = True
        out.append((path, text))
    assert patched
    return out


class TestRevertDetection:
    def _findings(
        self, old: str, new: str, target: str = "repro/cache/store.py"
    ):
        return list(
            DesignRuleChecker()
            .check_python(_patched_sources(old, new, target))
            .findings
        )

    def test_reverting_generation_stamp_is_caught(self):
        # PR 8 fix 1: clear() bumps the MANIFEST generation stamp (whose
        # rewrite goes through os.replace).  Without it the destructive
        # unlink publishes nothing atomically — S005 flags the unlink.
        findings = self._findings(
            "self._generation = self._bump_generation()",
            "pass  # regression: no generation bump",
        )
        assert any(
            f.code == "S005"
            and f.module == "repro/cache/store.py"
            and "unlink" in f.message
            and "clear" in f.message
            for f in findings
        ), [str(f) for f in findings]

    def test_reverting_probe_refresh_is_caught(self):
        # PR 8 fix 2: get() refreshes before serving a below-full-rank hit.
        findings = self._findings(
            "if record is None or record.rank < FULL_RANK:",
            "if record is None:",
        )
        assert any(
            f.code == "S005"
            and f.module == "repro/cache/store.py"
            and "rank" in f.message
            for f in findings
        ), [str(f) for f in findings]

    def test_reverting_corrupt_line_guard_is_caught(self):
        # PR 8 fix 3: refresh() tolerates (and counts) corrupt JSONL lines.
        findings = self._findings(
            "except (json.JSONDecodeError, KeyError, TypeError, ValueError):",
            "except KeyError:",
        )
        assert any(
            f.code == "S005"
            and f.module == "repro/cache/store.py"
            and "json.loads" in f.message
            and "refresh" in f.message
            for f in findings
        ), [str(f) for f in findings]

    def test_reverting_stats_counter_lock_is_caught(self):
        # PR 10 fix: DseServer.stats() reads the terminal-state counters
        # under _counters_lock.  The pre-fix shape — lockless reads of
        # counters every job-runner thread increments under the lock —
        # trips the S004 read variant.
        findings = self._findings(
            "        with self._counters_lock:\n"
            "            done = self.jobs_done\n"
            "            failed = self.jobs_failed\n"
            "            cancelled = self.jobs_cancelled\n",
            "        done = self.jobs_done\n"
            "        failed = self.jobs_failed\n"
            "        cancelled = self.jobs_cancelled\n",
            target="repro/serve/server.py",
        )
        assert any(
            f.code == "S004"
            and f.module == "repro/serve/server.py"
            and "unguarded read" in f.message
            and "stats" in f.message
            for f in findings
        ), [str(f) for f in findings]
