"""Property-based tests (hypothesis) for the MOO core data structures."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.moo.crowding import crowding_distance
from repro.moo.nds import dominates_matrix, fast_non_dominated_sort, non_dominated_mask


def objective_matrices(max_n=24, max_m=4):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_n), st.integers(1, max_m)),
        elements=st.floats(
            min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
        ),
    )


@settings(max_examples=80, deadline=None)
@given(objective_matrices())
def test_domination_is_irreflexive_and_asymmetric(F):
    D = dominates_matrix(F)
    assert not np.diag(D).any()
    assert not (D & D.T).any()


@settings(max_examples=60, deadline=None)
@given(objective_matrices())
def test_fronts_partition_population(F):
    fronts = fast_non_dominated_sort(F)
    joined = np.sort(np.concatenate(fronts))
    assert joined.tolist() == list(range(F.shape[0]))


@settings(max_examples=60, deadline=None)
@given(objective_matrices())
def test_front_members_mutually_nondominated(F):
    for front in fast_non_dominated_sort(F):
        sub = dominates_matrix(F[front])
        assert not sub.any()


@settings(max_examples=60, deadline=None)
@given(objective_matrices())
def test_later_fronts_dominated_by_earlier(F):
    fronts = fast_non_dominated_sort(F)
    D = dominates_matrix(F)
    for i in range(1, len(fronts)):
        for j in fronts[i]:
            # Every point past front 0 is dominated by someone in an
            # earlier front.
            earlier = np.concatenate(fronts[:i])
            assert D[earlier, j].any()


@settings(max_examples=60, deadline=None)
@given(objective_matrices())
def test_mask_equals_first_front(F):
    mask = non_dominated_mask(F)
    fronts = fast_non_dominated_sort(F)
    assert np.sort(np.nonzero(mask)[0]).tolist() == np.sort(fronts[0]).tolist()


@settings(max_examples=60, deadline=None)
@given(objective_matrices(max_n=16, max_m=3))
def test_crowding_nonnegative_with_infinite_boundaries(F):
    d = crowding_distance(F)
    assert (d >= 0).all()
    if F.shape[0] > 2:
        # Per objective, *some* row achieving each extreme must be infinite
        # (with duplicated extremes only one representative gets inf).
        for j in range(F.shape[1]):
            lo_rows = F[:, j] == F[:, j].min()
            hi_rows = F[:, j] == F[:, j].max()
            assert np.isinf(d[lo_rows]).any()
            assert np.isinf(d[hi_rows]).any()


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 24), st.integers(1, 4)),
        # Integral grid: with arbitrary floats a subnormal (e.g. 5e-324)
        # times a scale < 1 underflows to 0.0, turning distinct values
        # equal and flipping strict domination.
        elements=st.integers(-50, 50).map(float),
    ),
    st.floats(min_value=0.1, max_value=10),
)
def test_domination_invariant_under_positive_scaling(F, scale):
    assert (dominates_matrix(F) == dominates_matrix(F * scale)).all()


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 20), st.integers(1, 4)),
        # Integral grid so translation cannot flip comparisons via rounding.
        elements=st.integers(-50, 50).map(float),
    )
)
def test_domination_invariant_under_translation(F):
    assert (dominates_matrix(F) == dominates_matrix(F + 13.5)).all()
