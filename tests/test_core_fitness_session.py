"""Tests for the approximate fitness function and the DSE session."""

import numpy as np
import pytest

from repro.core import DseSession, MetricSpec
from repro.core.evaluate import PointEvaluator
from repro.core.fitness import ApproximateFitness, DseProblem
from repro.core.spaces import IntRange, ParameterSpace
from repro.estimation import Decision


def _fitness(design, use_model=True, pretrain=20, names=None, **kw):
    from repro.core.spaces import ParameterSpace

    space = ParameterSpace.from_design(design, names=names)
    ev = PointEvaluator(
        source=design.source(), language=design.language, top=design.top,
        part="XC7K70T", seed=3, **kw,
    )
    return ApproximateFitness(
        evaluator=ev, space=space, use_model=use_model,
        pretrain_size=pretrain, seed=3,
    )


class TestApproximateFitness:
    def test_pretrain_builds_dataset(self, fifo_design):
        f = _fitness(fifo_design, names=["DEPTH"])
        n = f.pretrain()
        assert n == 20
        assert len(f.control.dataset) == 20
        assert f.control.model.fitted
        assert f.control.threshold > 0

    def test_model_reduces_tool_runs(self, fifo_design):
        f = _fitness(fifo_design, names=["DEPTH"], pretrain=30)
        f.pretrain()
        rng = np.random.default_rng(0)
        X = rng.integers(4, 504, size=(60, 1))
        f.evaluate_encoded(X)
        stats = f.stats()
        assert stats["estimated"] > 0
        # Tool runs must be well below total queries.
        assert stats["tool_runs"] < 30 + 60

    def test_direct_mode_always_tools(self, fifo_design):
        f = _fitness(fifo_design, use_model=False, names=["DEPTH"])
        X = np.array([[8], [16], [32]])
        F = f.evaluate_encoded(X)
        assert F.shape == (3, 2)
        assert f.tool_runs() == 3

    def test_estimates_close_to_truth(self, fifo_design):
        """NWM answers should be near the real tool answers."""
        f = _fitness(fifo_design, names=["DEPTH"], pretrain=60)
        f.pretrain()
        probe = np.array([[250]])
        decision = f.control.decide(probe[0].astype(float))
        if decision == Decision.ESTIMATE:
            est = f.control.estimate(probe[0].astype(float))
            truth = f.evaluator.evaluate({"DEPTH": 250})
            truth_vec = [truth.metrics[m] for m in f.evaluator.metric_names()]
            for e, t in zip(est, truth_vec):
                assert e == pytest.approx(t, rel=0.35)

    def test_cached_decision_for_known_point(self, fifo_design):
        f = _fitness(fifo_design, names=["DEPTH"], pretrain=10)
        f.pretrain()
        known = f.control.dataset.X()[0]
        F1 = f.evaluate_encoded(known.reshape(1, -1).astype(np.int64))
        assert f.control.counts[Decision.CACHED] == 1
        assert np.allclose(F1[0], f.control.dataset.Y()[0])

    def test_mse_trace_recorded(self, fifo_design):
        f = _fitness(fifo_design, names=["DEPTH"], pretrain=15)
        f.pretrain()
        assert len(f.mse_trace) > 5
        sizes = [s for s, _ in f.mse_trace]
        assert sizes == sorted(sizes)

    def test_infeasible_points_penalized(self, tirex_design):
        f = _fitness(tirex_design, use_model=False)
        # NCLUSTER=8 (enc 3) with 64K-entry memories: BRAM overflow on K7.
        X = np.array([[3, 8, 6, 6]])
        F = f.evaluate_encoded(X)
        assert f.infeasible == 1
        assert F[0, 0] >= 1e11  # LUT (minimize) penalty
        assert F[0, 1] == 0.0   # frequency (maximize) penalty

    def test_problem_wraps_fitness(self, fifo_design):
        f = _fitness(fifo_design, use_model=False, names=["DEPTH"])
        p = DseProblem(f)
        assert p.n_var == 1
        assert p.n_obj == 2
        F = p.evaluate(np.array([[16]]))
        assert F.shape == (1, 2)


class TestDseSession:
    def test_evaluate_points_mode(self, cqm_design):
        sess = DseSession(design=cqm_design, part="XC7K70T", seed=1)
        points = sess.evaluate_points(
            [{"OP_TABLE_SIZE": 8}, {"OP_TABLE_SIZE": 16}]
        )
        assert len(points) == 2
        assert points[0].metrics["LUT"] != points[1].metrics["LUT"]

    def test_explore_returns_nondominated(self, cqm_design):
        sess = DseSession(
            design=cqm_design, part="XC7K70T", use_model=False, seed=5
        )
        res = sess.explore(generations=4, population=8)
        assert len(res.pareto) >= 1
        assert res.tool_runs == res.evaluations
        # Pareto metric dicts carry raw units (positive frequency).
        for p in res.pareto:
            assert p.metrics["frequency"] > 0

    def test_explore_with_model_fewer_tool_runs(self, fifo_design):
        space = ParameterSpace.from_design(fifo_design, names=["DEPTH"])
        sess = DseSession(
            design=fifo_design, space=space, part="XC7K70T",
            use_model=True, pretrain_size=25, seed=5,
        )
        res = sess.explore(generations=5, population=10)
        assert res.tool_runs < res.evaluations + 25

    def test_soft_deadline_limits_generations(self, cqm_design):
        sess = DseSession(
            design=cqm_design, part="XC7K70T", use_model=False, seed=5
        )
        # ~175 simulated seconds per run: a 2,000 s budget stops quickly.
        res = sess.explore(generations=50, population=8, soft_deadline_s=2000)
        assert res.generations < 10

    def test_result_persistence(self, cqm_design, tmp_path):
        sess = DseSession(
            design=cqm_design, part="XC7K70T", use_model=False, seed=5
        )
        res = sess.explore(generations=2, population=8)
        path = res.save(tmp_path, name="run1")
        assert path.exists()
        assert (tmp_path / "run1_pareto.csv").exists()
        from repro.util.io import load_json

        payload = load_json(path)
        assert payload["evaluations"] == res.evaluations
        assert len(payload["pareto"]) == len(res.pareto)

    def test_raw_source_session_requires_space(self):
        with pytest.raises(ValueError, match="ParameterSpace"):
            DseSession(
                source="module m(input wire clk); endmodule",
                language="verilog",
                top="m",
            )

    def test_raw_source_session(self):
        sess = DseSession(
            source="module m #(parameter W = 8)(input wire clk, input wire [W-1:0] d, output reg [W-1:0] q); endmodule",
            language="verilog",
            top="m",
            space=ParameterSpace([IntRange("W", 4, 32)]),
            use_model=False,
            seed=2,
        )
        res = sess.explore(generations=2, population=6)
        assert res.evaluations > 0

    def test_explore_workers_bitwise_equals_serial(self, cqm_design):
        """workers=2 fans generations over the persistent pool; the Pareto
        front, evaluation counts, and simulated cost accounting must be
        bitwise identical to the serial run."""
        def run(workers):
            with DseSession(
                design=cqm_design, part="XC7K70T", use_model=False,
                seed=5, workers=workers,
            ) as sess:
                res = sess.explore(generations=3, population=8)
                seconds = sess.fitness.simulated_seconds
            return res, seconds

        serial, serial_s = run(0)
        pooled, pooled_s = run(2)
        assert serial.evaluations == pooled.evaluations
        assert serial_s == pooled_s
        ref = sorted(
            (tuple(sorted(p.parameters.items())), tuple(sorted(p.metrics.items())))
            for p in serial.pareto
        )
        got = sorted(
            (tuple(sorted(p.parameters.items())), tuple(sorted(p.metrics.items())))
            for p in pooled.pareto
        )
        assert ref == got

    def test_explore_workers_override_and_pool_reuse(self, cqm_design):
        """explore(workers=...) overrides the session default, and the
        pool persists across explore() calls on the same session."""
        with DseSession(
            design=cqm_design, part="XC7K70T", use_model=False, seed=5
        ) as sess:
            sess.explore(generations=2, population=8, workers=2)
            pool = sess.fitness._parallel
            assert pool is not None and pool._pool is not None
            sess.explore(generations=2, population=8)
            assert sess.fitness._parallel is pool, "pool must survive explores"
        assert pool._pool is None, "session close must shut the pool down"

    def test_incremental_evaluator_stays_serial(self, cqm_design):
        """Incremental flows warm-start from checkpoints, so parallel
        fan-out would change QoR; the fitness must refuse to fan out."""
        with DseSession(
            design=cqm_design, part="XC7K70T", use_model=False,
            incremental=True, seed=5, workers=2,
        ) as sess:
            assert not sess.fitness._use_parallel()
            res = sess.explore(generations=2, population=8)
            assert res.evaluations > 0
            assert sess.fitness._parallel is None

    def test_custom_metrics_flow_through(self, cqm_design):
        metrics = [
            MetricSpec.minimize("LUT"), MetricSpec.minimize("FF"),
            MetricSpec.minimize("BRAM"), MetricSpec.maximize("frequency"),
        ]
        sess = DseSession(
            design=cqm_design, part="XC7K70T", metrics=metrics,
            use_model=False, seed=7,
        )
        res = sess.explore(generations=3, population=8)
        assert set(res.pareto[0].metrics) == {"LUT", "FF", "BRAM", "frequency"}
