"""Netlist static analysis: N-series rules, loop/truncation telemetry,
the ``lint --netlist`` CLI stage, and the rung-0 static estimator.

Covers the tentpole contracts of the netlist analysis layer:

- ``Netlist.combinational_loops`` returns *every* simple cycle and the
  elaboration check reports the full set, not just the first;
- ``timing_arcs`` truncation is never silent (flag + telemetry counter);
- each N-rule fires on a hand-built netlist exhibiting its defect and
  every bundled design is N-clean at its default binding;
- ``dovado-repro lint --netlist`` renders N findings through text / JSON
  / SARIF, honors baselines, and produces CI exit codes;
- the static estimator is *sound*: utilization lower bounds never exceed
  the routed utilization and the Fmax upper bound never falls below the
  routed Fmax, across sampled points of every bundled design;
- the estimator's features feed the promotion gate as priors, and the
  pre-flight gate's netlist stage rejects structurally broken points.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import DesignRuleChecker
from repro.analysis.gate import PreflightGate
from repro.analysis.netlist_rules import achievable_lut_depth, fanout_threshold
from repro.analysis.registry import RuleContext, Stage
from repro.core.cli import main
from repro.core.evaluate import PointEvaluator
from repro.core.spaces import ParameterSpace
from repro.designs import all_designs
from repro.devices import Device, ResourceKind, get_device
from repro.errors import ElaborationError, FlowError, ReproError
from repro.estimation import PromotionGate
from repro.flow.vivado_sim import Fidelity
from repro.netlist import Block, Netlist
from repro.netlist.static_estimate import static_estimate, static_estimate_point
from repro.observe import telemetry_session

K7 = get_device("XC7K70T")


def netlist_codes(netlist, device: Device | None = None, period: float | None = None):
    """Run the NETLIST rule stage directly over a hand-built netlist."""
    ctx = RuleContext(netlist=netlist, device=device, target_period_ns=period)
    checker = DesignRuleChecker()
    return [f.code for f in checker._run_stage(Stage.NETLIST, ctx)]


def comb_block(name: str, **kw) -> Block:
    kw.setdefault("logic_terms", 4)
    kw.setdefault("levels", 1)
    kw.setdefault("registered_output", False)
    return Block(name=name, **kw)


def two_loop_netlist() -> Netlist:
    n = Netlist(top="t")
    for name in "abcd":
        n.add_block(comb_block(name))
    n.connect("a", "b", combinational=True)
    n.connect("b", "a", combinational=True)
    n.connect("c", "d", combinational=True)
    n.connect("d", "c", combinational=True)
    return n


class TestCombinationalLoops:
    def test_every_simple_cycle_enumerated(self):
        loops = two_loop_netlist().combinational_loops()
        assert loops == [("a", "b"), ("c", "d")]

    def test_check_reports_full_set(self):
        with pytest.raises(ElaborationError) as err:
            two_loop_netlist().check_no_combinational_loops()
        message = str(err.value)
        assert "combinational loops (2)" in message
        assert "a -> b -> a" in message and "c -> d -> c" in message

    def test_single_loop_keeps_singular_label(self):
        n = Netlist(top="t")
        n.add_block(comb_block("a"))
        n.add_block(comb_block("b"))
        n.connect("a", "b", combinational=True)
        n.connect("b", "a", combinational=True)
        with pytest.raises(ElaborationError, match="combinational loop: "):
            n.check_no_combinational_loops()

    def test_acyclic_netlist_passes(self):
        n = Netlist(top="t")
        n.add_block(comb_block("a"))
        n.add_block(Block(name="b", ff_bits=4))
        n.connect("a", "b", combinational=True)
        n.check_no_combinational_loops()
        assert n.combinational_loops() == []


class TestTimingArcTruncation:
    def _wide_netlist(self) -> Netlist:
        n = Netlist(top="t")
        n.add_block(comb_block("src"))
        for i in range(8):
            n.add_block(comb_block(f"mid{i}"))
            n.connect("src", f"mid{i}", combinational=True)
        return n

    def test_truncation_sets_flag_and_counter(self):
        n = self._wide_netlist()
        with telemetry_session() as tel:
            arcs = n.timing_arcs(max_arcs=3)
            assert len(arcs) == 3
            assert n.timing_arcs_truncated is True
            assert tel.counters.as_dict()["netlist.timing_arcs_truncated"] == 1

    def test_full_enumeration_resets_flag(self):
        n = self._wide_netlist()
        n.timing_arcs(max_arcs=3)
        assert n.timing_arcs_truncated is True
        with telemetry_session() as tel:
            n.timing_arcs()
            assert n.timing_arcs_truncated is False
            assert "netlist.timing_arcs_truncated" not in tel.counters.as_dict()


class TestNetlistRules:
    def test_n001_one_finding_per_loop(self):
        codes = netlist_codes(two_loop_netlist())
        assert codes.count("N001") == 2

    def test_n002_undriven_consumer_without_top_inputs(self):
        n = Netlist(top="t")
        n.add_block(Block(name="sink", ff_bits=8))
        n.add_block(Block(name="feeder", logic_terms=2))
        n.connect("feeder", "sink", combinational=True)
        # feeder consumes logic but nothing drives it and no top inputs exist
        assert "N002" in netlist_codes(n)
        n.set_ports(inputs=4, outputs=4)
        assert "N002" not in netlist_codes(n)

    def test_n003_deduplicates_collisions(self):
        n = Netlist(top="t")
        n.add_block(comb_block("a"))
        n.add_block(Block(name="b", ff_bits=2))
        n.connect("a", "b")
        n.connect("a", "b")
        n.connect("a", "b")
        assert n.duplicate_connections == [("a", "b"), ("a", "b")]
        assert netlist_codes(n).count("N003") == 1

    def test_n004_device_derived_threshold(self):
        assert fanout_threshold(K7) == max(256, K7.capacity(ResourceKind.LUT) // 100)
        n = Netlist(top="t")
        n.add_block(Block(name="hub", ff_bits=4))
        n.add_block(Block(name="sink", ff_bits=4))
        n.connect("hub", "sink", width=fanout_threshold(K7) + 1)
        assert "N004" in netlist_codes(n, device=K7)
        # A load between the deviceless floor and the K7 threshold fires
        # only when no device scales the threshold up.
        mid = Netlist(top="t")
        mid.add_block(Block(name="hub", ff_bits=4))
        mid.add_block(Block(name="sink", ff_bits=4))
        mid.connect("hub", "sink", width=300)
        assert "N004" in netlist_codes(mid)
        assert "N004" not in netlist_codes(mid, device=K7)

    def test_n005_deep_path_beyond_achievable_depth(self):
        budget = achievable_lut_depth(K7, 10.0)
        assert budget > 0
        n = Netlist(top="t")
        n.add_block(Block(name="launch", ff_bits=4, levels=1))
        n.add_block(comb_block("deep", levels=budget + 1))
        n.add_block(Block(name="capture", ff_bits=4))
        n.connect("launch", "deep", combinational=True)
        n.connect("deep", "capture", combinational=True)
        assert "N005" in netlist_codes(n, device=K7, period=10.0)
        # Silent without a device: the threshold would not be reproducible.
        assert "N005" not in netlist_codes(n)
        # A generous period absorbs the depth.
        assert "N005" not in netlist_codes(n, device=K7, period=1000.0)

    def test_n006_disconnected_island(self):
        n = Netlist(top="t")
        for name in ("a", "b", "lone"):
            n.add_block(Block(name=name, ff_bits=2))
        n.connect("a", "b")
        codes = netlist_codes(n)
        assert "N006" in codes and codes.count("N006") == 1

    def test_n007_width_beyond_consumable(self):
        n = Netlist(top="t")
        n.add_block(Block(name="wide", ff_bits=4))
        n.add_block(Block(name="narrow", logic_terms=1))
        n.connect("wide", "narrow", width=64)
        assert "N007" in netlist_codes(n)

    def test_bundled_designs_clean_at_defaults(self):
        checker = DesignRuleChecker()
        for name, gen in all_designs().items():
            result = checker.check_netlist(
                gen.module(), {}, device=K7, target_period_ns=10.0
            )
            assert not result.findings, f"{name}: {[str(f) for f in result.findings]}"


class TestLintNetlistCli:
    def test_default_point_self_lint_clean(self, capsys):
        for name in all_designs():
            code = main([
                "lint", "--design", name, "--netlist", "--default-point",
                "--strict",
            ])
            assert code == 0, capsys.readouterr().out

    def test_boundary_sweep_warns_text(self, capsys):
        # tirex at full unroll exceeds the XC7K70T fanout threshold (N004).
        code = main(["lint", "--design", "tirex", "--netlist", "--strict"])
        out = capsys.readouterr().out
        assert code == 1
        assert "N004" in out and "warning" in out

    def test_warnings_exit_zero_without_strict(self, capsys):
        assert main(["lint", "--design", "tirex", "--netlist"]) == 0
        assert "N004" in capsys.readouterr().out

    def test_json_render(self, capsys):
        main(["lint", "--design", "tirex", "--netlist", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        codes = {f["code"] for f in payload["findings"]}
        assert "N004" in codes

    def test_sarif_render(self, capsys):
        main(["lint", "--design", "tirex", "--netlist", "--format", "sarif"])
        sarif = json.loads(capsys.readouterr().out)
        driver = sarif["runs"][0]["tool"]["driver"]
        rule_ids = {r["id"] for r in driver["rules"]}
        assert {f"N00{i}" for i in range(1, 8)} <= rule_ids
        results = sarif["runs"][0]["results"]
        assert any(r["ruleId"] == "N004" for r in results)

    def test_baseline_suppresses_known_findings(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main([
            "lint", "--design", "tirex", "--netlist",
            "--baseline", baseline, "--update-baseline",
        ]) == 0
        capsys.readouterr()
        code = main([
            "lint", "--design", "tirex", "--netlist",
            "--baseline", baseline, "--strict",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "N004" not in out

    def test_disable_silences_netlist_rule(self):
        assert main([
            "lint", "--design", "tirex", "--netlist", "--strict",
            "--disable", "N004",
        ]) == 0


def _evaluator(gen, period_ns: float = 10.0) -> PointEvaluator:
    return PointEvaluator(
        source=gen.source(),
        language=str(gen.language),
        top=gen.top,
        part="XC7K70T",
        target_period_ns=period_ns,
        seed=11,
    )


class TestStaticEstimateSoundness:
    def test_bounds_hold_across_designs_and_points(self):
        """The acceptance property: static bounds are sound for every
        bundled design across sampled points of its space."""
        rng = np.random.default_rng(7)
        for name, gen in all_designs().items():
            space = ParameterSpace.from_design(gen)
            evaluator = _evaluator(gen)
            rows = np.column_stack([
                rng.integers(lo, hi + 1, size=3)
                for lo, hi in zip(space.lows(), space.highs())
            ])
            points = [space.decode(row) for row in rows]
            points.append({})  # the default binding
            compared = 0
            for params in points:
                est = static_estimate_point(
                    gen.module(), K7, params, noise_floor=0.9
                )
                try:
                    full = evaluator.evaluate(params)
                except ReproError:
                    continue  # point infeasible on this part: nothing to bound
                compared += 1
                assert est.fmax_ub_mhz >= full.metrics["frequency"], (
                    f"{name}@{params}: Fmax UB below routed Fmax"
                )
                assert est.utilization_lb.get(ResourceKind.LUT) <= (
                    full.metrics["LUT"]
                ), f"{name}@{params}: LUT LB above routed count"
            assert compared >= 1, f"{name}: no feasible sampled point"

    def test_delay_bias_must_be_positive(self):
        gen = all_designs()["cv32e40p-fifo"]
        from repro.synth.elaborate import elaborate

        netlist = elaborate(gen.module(), {})
        with pytest.raises(FlowError, match="non-positive delay bias"):
            static_estimate(netlist, K7, delay_bias=0.0)

    def test_features_are_finite_and_ordered(self):
        gen = all_designs()["tirex"]
        est = static_estimate_point(gen.module(), K7, {})
        features = est.features()
        assert len(features) == 4
        assert all(np.isfinite(features))
        assert features[0] == float(est.utilization_lb.get(ResourceKind.LUT))
        assert features[2] == est.delay_lb_ns


class TestStaticEstimateRung:
    def test_rung_charges_zero_and_tags_fidelity(self, cqm_design):
        evaluator = _evaluator(cqm_design, period_ns=1.0)
        point = evaluator.evaluate(
            {"OP_TABLE_SIZE": 16}, fidelity=Fidelity.STATIC_ESTIMATE
        )
        assert point.fidelity == "static-estimate"
        assert point.simulated_seconds == 0.0
        assert evaluator.sim.fidelity_runs["static-estimate"] == 1
        assert evaluator.sim.synth_stage_hits == 0

    def test_rung_bounds_the_full_run(self, cqm_design):
        params = {"OP_TABLE_SIZE": 24}
        probe = _evaluator(cqm_design, period_ns=1.0).evaluate(
            params, fidelity=Fidelity.STATIC_ESTIMATE
        )
        full = _evaluator(cqm_design, period_ns=1.0).evaluate(params)
        assert probe.metrics["frequency"] >= full.metrics["frequency"]
        assert probe.metrics["LUT"] <= full.metrics["LUT"]


class TestGateStaticPriors:
    def test_priors_extend_model_input(self):
        gate = PromotionGate(signs=np.array([1.0]), min_calibration=2)
        rng = np.random.default_rng(3)
        for _ in range(4):
            x = rng.uniform(size=2)
            priors = rng.uniform(size=4)
            low = np.array([rng.uniform()])
            gate.assess(x, low, priors)
            gate.observe(x, low, low + 0.1, priors)
        prediction = gate.predict_full_min(
            rng.uniform(size=2), np.array([0.5]), rng.uniform(size=4)
        )
        assert prediction is not None and np.isfinite(prediction).all()

    def test_fitness_priors_require_fidelity_gate(self, fifo_design):
        from repro.core.session import DseSession

        with pytest.raises(ValueError, match="gate_static_priors"):
            DseSession(design=fifo_design, gate_static_priors=True)

    def test_gated_session_with_priors_runs(self, fifo_design):
        from repro.core.session import DseSession

        with DseSession(
            design=fifo_design,
            use_model=False,
            target_period_ns=10.0,
            fidelity_gate=True,
            gate_fidelity="static-estimate",
            gate_static_priors=True,
            gate_min_calibration=2,
        ) as session:
            result = session.explore(generations=2, population=6, pretrain=False)
        assert result.stats["gate_promoted"] >= 2
        assert result.stats["runs:static-estimate"] >= 1
        # Static probes are free: only promoted full routes charge seconds.
        assert result.simulated_seconds > 0.0


class TestPreflightNetlistStage:
    def _gate(self, fifo_design, **kw) -> PreflightGate:
        return PreflightGate(fifo_design.module(), **kw)

    def test_stage_off_by_default_never_elaborates(self, fifo_design, monkeypatch):
        gate = self._gate(fifo_design)

        def boom(*a, **kw):  # pragma: no cover - must not run
            raise AssertionError("netlist stage ran while disabled")

        monkeypatch.setattr(gate.checker, "check_netlist", boom)
        assert gate.is_feasible({"DEPTH": 8})
        assert "drc_netlist_rejections" not in gate.stats()

    def test_stage_rejects_structural_errors(self, fifo_design, monkeypatch):
        from repro.analysis.findings import CheckResult, Finding, Severity

        gate = self._gate(fifo_design, netlist_stage=True)
        broken = CheckResult((
            Finding(severity=Severity.ERROR, code="N001",
                    message="combinational loop: a -> b -> a", module="t"),
        ))
        monkeypatch.setattr(
            gate.checker, "check_netlist", lambda *a, **kw: broken
        )
        with telemetry_session() as tel:
            assert not gate.is_feasible({"DEPTH": 8})
            assert tel.counters.as_dict()["decision.netlist_reject"] == 1
        assert gate.stats()["drc_netlist_rejections"] == 1

    def test_clean_design_is_neutral(self, fifo_design):
        on = self._gate(fifo_design, netlist_stage=True)
        off = self._gate(fifo_design)
        for params in ({"DEPTH": 8}, {"DEPTH": 16, "DATA_WIDTH": 32}):
            assert on.errors(params) == off.errors(params)
        assert on.stats()["drc_netlist_rejections"] == 0

    def test_elaboration_failure_is_not_absorbed(self, fifo_design, monkeypatch):
        gate = self._gate(fifo_design, netlist_stage=True)

        def raise_elab(*a, **kw):
            raise ElaborationError("synthetic failure")

        monkeypatch.setattr(gate.checker, "check_netlist", raise_elab)
        # The netlist stage must not turn a tool-level diagnostic into a
        # silent free rejection; the point stays feasible here.
        assert gate.is_feasible({"DEPTH": 8})


class TestSessionNeutrality:
    def test_netlist_stage_neutral_on_clean_design(self, fifo_design):
        from repro.core.session import DseSession

        def front(**kw):
            with DseSession(
                design=fifo_design, use_model=False,
                target_period_ns=10.0, **kw,
            ) as session:
                result = session.explore(
                    generations=2, population=6, pretrain=False
                )
            rows = sorted(
                tuple(sorted(p.parameters.items()))
                + tuple(sorted(p.metrics.items()))
                for p in result.pareto
            )
            return rows, result.simulated_seconds, result.tool_runs

        assert front() == front(drc_netlist=True)
