"""Tests for the block-level netlist."""

import pytest

from repro.errors import ElaborationError
from repro.netlist import Block, Net, Netlist


def simple_netlist() -> Netlist:
    n = Netlist(top="t")
    n.add_block(Block(name="a", logic_terms=10, ff_bits=4, levels=2,
                      registered_output=False))
    n.add_block(Block(name="b", logic_terms=5, ff_bits=8, levels=1))
    n.connect("a", "b", width=8, combinational=True)
    return n


class TestBlocks:
    def test_negative_quantities_rejected(self):
        with pytest.raises(ValueError):
            Block(name="x", logic_terms=-1)

    def test_zero_mem_width_rejected(self):
        with pytest.raises(ValueError):
            Block(name="x", mem_width=0)

    def test_approximate_cells(self):
        b = Block(name="x", logic_terms=10, ff_bits=5, carry_bits=4)
        assert b.approximate_cells() == 19

    def test_net_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Net(src="a", dst="a")

    def test_net_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Net(src="a", dst="b", width=0)


class TestNetlistConstruction:
    def test_duplicate_block_rejected(self):
        n = Netlist(top="t")
        n.add_block(Block(name="a"))
        with pytest.raises(ElaborationError, match="duplicate"):
            n.add_block(Block(name="a"))

    def test_net_to_unknown_block_rejected(self):
        n = Netlist(top="t")
        n.add_block(Block(name="a"))
        with pytest.raises(ElaborationError, match="unknown block"):
            n.connect("a", "ghost")

    def test_totals(self):
        n = simple_netlist()
        totals = n.totals()
        assert totals["logic_terms"] == 15
        assert totals["ff_bits"] == 12

    def test_replace_block(self):
        n = simple_netlist()
        n.replace_block("a", levels=7)
        assert n.block("a").levels == 7
        assert len(n.nets()) == 1  # nets preserved

    def test_contains_and_len(self):
        n = simple_netlist()
        assert "a" in n and "ghost" not in n
        assert len(n) == 2


class TestCombinationalLoops:
    def test_loop_detected(self):
        n = Netlist(top="t")
        for name in ("a", "b"):
            n.add_block(Block(name=name, registered_output=False))
        n.connect("a", "b", combinational=True)
        n.connect("b", "a", combinational=True)
        with pytest.raises(ElaborationError, match="combinational loop"):
            n.check_no_combinational_loops()

    def test_registered_feedback_is_fine(self):
        n = simple_netlist()
        n.connect("b", "a", width=2)  # registered feedback
        n.check_no_combinational_loops()


class TestTimingArcs:
    def test_single_block_arcs_always_present(self):
        n = simple_netlist()
        arcs = n.timing_arcs()
        singles = [a for a in arcs if len(a.blocks) == 1]
        assert {a.blocks[0] for a in singles} == {"a", "b"}

    def test_comb_chain_extends(self):
        n = simple_netlist()
        arcs = n.timing_arcs()
        assert any(a.blocks == ("a", "b") for a in arcs)

    def test_registered_source_cuts_extension(self):
        n = Netlist(top="t")
        n.add_block(Block(name="a"))                        # registered out
        n.add_block(Block(name="b", registered_output=False))
        n.add_block(Block(name="c"))
        n.connect("a", "b", combinational=True)
        n.connect("b", "c", combinational=True)
        arcs = {a.blocks for a in n.timing_arcs()}
        # Path a->b->c exists (launch register in a feeds through comb b),
        # but nothing extends past c (registered) and none start mid-chain
        # except b's own arcs.
        assert ("a", "b", "c") in arcs
        assert not any(len(a) > 1 and a[0] == "c" for a in arcs)

    def test_non_combinational_net_cuts(self):
        n = Netlist(top="t")
        n.add_block(Block(name="a", registered_output=False))
        n.add_block(Block(name="b"))
        n.connect("a", "b", width=4)  # registered crossing
        arcs = {a.blocks for a in n.timing_arcs()}
        assert ("a", "b") not in arcs

    def test_max_arcs_cap(self):
        n = simple_netlist()
        assert len(n.timing_arcs(max_arcs=1)) == 1


class TestFingerprints:
    def test_structure_ignores_sizes(self):
        a = simple_netlist()
        b = simple_netlist()
        b.replace_block("a", logic_terms=999)
        assert a.structure_fingerprint() == b.structure_fingerprint()
        assert a.content_fingerprint() != b.content_fingerprint()

    def test_structure_sees_topology(self):
        a = simple_netlist()
        b = simple_netlist()
        b.connect("b", "a", width=1)
        assert a.structure_fingerprint() != b.structure_fingerprint()

    def test_content_identity(self):
        assert (
            simple_netlist().content_fingerprint()
            == simple_netlist().content_fingerprint()
        )

    def test_similarity(self):
        a = simple_netlist()
        b = simple_netlist()
        assert a.similarity_to(b) == pytest.approx(1.0)
        b.replace_block("a", logic_terms=999)
        sim = a.similarity_to(b)
        assert 0.0 < sim < 1.0  # block b unchanged, block a changed
