"""Tests for the incremental distance cache and the refit policy.

The cache maintains the pairwise squared-distance matrix and the
nearest-neighbour distances with O(n·d) work per append; these tests pin
it against the from-scratch Gram-matrix rebuild (``_pairwise_sq_dists``)
and brute force, over randomized insert sequences (hypothesis) and the
growth boundary where the backing buffers double.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.estimation import ControlModel, Dataset, DistanceCache, RefitPolicy
from repro.estimation.cross_validation import _pairwise_sq_dists


def _brute_sq_dists(X: np.ndarray) -> np.ndarray:
    diff = X[:, None, :] - X[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)


class TestDistanceCache:
    @given(
        n_var=st.integers(1, 5),
        n_points=st.integers(1, 40),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_appends_match_rebuild(self, n_var, n_points, seed):
        rng = np.random.default_rng(seed)
        # Integer-ish coordinates with occasional exact duplicates, like
        # real DSE parameter vectors.
        X = rng.integers(0, 16, size=(n_points, n_var)).astype(float)

        cache = DistanceCache(n_var=n_var, initial_capacity=2)
        for x in X:
            cache.append(x)

        rebuilt = _pairwise_sq_dists(X)
        assert np.allclose(cache.matrix(), rebuilt, atol=1e-12)
        assert np.allclose(cache.matrix(), _brute_sq_dists(X), atol=1e-12)
        assert np.array_equal(cache.points(), X)

        if n_points >= 2:
            masked = _brute_sq_dists(X).astype(float)
            np.fill_diagonal(masked, np.inf)
            assert np.allclose(
                cache.nearest_sq_dists(), masked.min(axis=1), atol=1e-12
            )

    def test_growth_boundary(self):
        cache = DistanceCache(n_var=2, initial_capacity=1)
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0], [1.0, 1.0]])
        for p in pts:  # crosses capacity 1 -> 2 -> 4
            cache.append(p)
        assert cache.matrix()[0, 1] == 25.0
        assert np.allclose(cache.matrix(), _brute_sq_dists(pts))

    def test_singleton_nearest_is_inf(self):
        cache = DistanceCache(n_var=3)
        cache.append(np.zeros(3))
        assert np.isinf(cache.nearest_sq_dists()[0])

    def test_dataset_nearest_distances_use_cache(self):
        ds = Dataset(n_var=2, metric_names=("LUT",))
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 1.0]])
        for i, p in enumerate(pts):
            ds.add(p, np.array([float(i)]))
        nd = ds.pairwise_nearest_distances()
        assert nd == pytest.approx([1.0, np.sqrt(9 + 9), 1.0])


def _control(policy: RefitPolicy) -> ControlModel:
    return ControlModel(
        dataset=Dataset(n_var=3, metric_names=("LUT", "frequency")),
        refit_policy=policy,
    )


def _feed(control: ControlModel, n: int, seed: int = 11) -> None:
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 32, size=(n, 3)).astype(float)
    Y = np.stack([X.sum(axis=1), 100.0 - X[:, 0]], axis=1)
    for x, y in zip(X, Y):
        control.record(x, y)


class TestRefitPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RefitPolicy(every=-1)
        with pytest.raises(ValueError):
            RefitPolicy(every=4, gamma_drift=0.0)

    def test_every_one_scans_per_insert(self):
        control = _control(RefitPolicy(every=1))
        _feed(control, 20)
        # First insert cannot scan (n < 2): 19 scans for 20 inserts.
        assert control.refits == 19

    def test_periodic_policy_scans_less_and_refit_aligns(self):
        exact = _control(RefitPolicy(every=1))
        lazy = _control(RefitPolicy(every=8))
        _feed(exact, 30)
        _feed(lazy, 30)
        assert 0 < lazy.refits < exact.refits
        # An exact refit is a pure function of the dataset: after one, the
        # lazy model is bitwise equal to the per-insert reference.
        lazy.refit()
        assert lazy.model.bandwidth == exact.model.bandwidth
        assert lazy.threshold == exact.threshold
        assert lazy.last_loo_mse == exact.last_loo_mse
        probe = np.array([3.5, 7.5, 1.5])
        assert (lazy.model.predict(probe) == exact.model.predict(probe)).all()

    def test_gamma_drift_triggers_between_periods(self):
        periodic = _control(RefitPolicy(every=0))
        drifty = _control(RefitPolicy(every=0, gamma_drift=0.05))
        # every=0: no periodic scans at all, so any scan after the first
        # explicit refit comes from the drift trigger.
        _feed(periodic, 8)
        _feed(drifty, 8)
        periodic.refit()
        drifty.refit()
        base_p, base_d = periodic.refits, drifty.refits
        _feed(periodic, 40, seed=99)
        _feed(drifty, 40, seed=99)
        assert periodic.refits == base_p
        assert drifty.refits > base_d

    def test_degenerate_dataset_keeps_bandwidth(self):
        control = _control(RefitPolicy(every=1))
        before = control.model.bandwidth
        # Duplicate inserts are dropped by the dataset, so no scan can run
        # and the bandwidth must stay untouched (and nothing crashes).
        for _ in range(4):
            control.record(np.ones(3), np.array([1.0, 2.0]))
        assert len(control.dataset) == 1
        assert control.model.bandwidth == before
        assert control.refits == 0
        # A second distinct point makes the scan possible again.
        control.record(np.ones(3) * 2, np.array([2.0, 3.0]))
        assert len(control.dataset) == 2
        assert control.refits == 1
