"""Fidelity-ranked records in the persistent result store (satellite).

The supersede contract: within one key, a full-route record overwrites a
lower-fidelity probe, equal ranks keep first-writer-wins, and a
warm-store read never answers a full-fidelity question with a
low-fidelity record — including when two real processes race on the same
key with different ranks.
"""

from __future__ import annotations

import json
import subprocess
import sys

from repro.cache import (
    FIDELITY_RANKS,
    FULL_RANK,
    KIND_POINT,
    ResultStore,
    decode_point,
    encode_point,
)
from repro.core.point import EvaluatedPoint


def _point(fidelity: str, lut: float = 100.0) -> EvaluatedPoint:
    return EvaluatedPoint(
        parameters={"W": 8},
        metrics={"LUT": lut, "frequency": 400.0},
        source="tool",
        simulated_seconds=10.0,
        fidelity=fidelity,
    )


class TestRankSupersede:
    def test_full_route_supersedes_probe(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        probe = _point("synth-estimate", lut=90.0)
        assert store.put(
            "k1", KIND_POINT, encode_point(probe),
            rank=FIDELITY_RANKS["synth-estimate"],
        )
        full = _point("full-route", lut=100.0)
        assert store.put("k1", KIND_POINT, encode_point(full))
        got = store.get("k1")
        assert got.rank == FULL_RANK
        assert decode_point(got.payload).fidelity == "full-route"
        assert decode_point(got.payload).metrics["LUT"] == 100.0

    def test_probe_never_shadows_full(self, tmp_path):
        """A low-fidelity write after a full record is refused, and a
        fresh process's index still answers with the full record."""
        root = tmp_path / "store"
        store = ResultStore(root)
        store.put("k1", KIND_POINT, encode_point(_point("full-route")))
        assert not store.put(
            "k1", KIND_POINT,
            encode_point(_point("placed-estimate", lut=50.0)),
            rank=FIDELITY_RANKS["placed-estimate"],
        )
        got = ResultStore(root).get("k1")  # fresh index, same directory
        assert got.rank == FULL_RANK
        assert decode_point(got.payload).fidelity == "full-route"

    def test_equal_rank_first_writer_wins(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        rank = FIDELITY_RANKS["synth-estimate"]
        assert store.put(
            "k1", KIND_POINT, encode_point(_point("synth-estimate", lut=1.0)),
            rank=rank,
        )
        assert not store.put(
            "k1", KIND_POINT, encode_point(_point("synth-estimate", lut=2.0)),
            rank=rank,
        )
        assert decode_point(store.get("k1").payload).metrics["LUT"] == 1.0

    def test_supersede_visible_across_processes(self, tmp_path):
        """A reader that saw the probe picks up the full-route supersede
        on its next tail refresh."""
        root = tmp_path / "store"
        writer = ResultStore(root)
        reader = ResultStore(root)
        writer.put(
            "k1", KIND_POINT, encode_point(_point("synth-estimate")),
            rank=FIDELITY_RANKS["synth-estimate"],
        )
        assert reader.get("k1").rank == FIDELITY_RANKS["synth-estimate"]
        writer.put("k1", KIND_POINT, encode_point(_point("full-route")))
        reader.refresh()
        assert reader.get("k1").rank == FULL_RANK

    def test_full_rank_lines_keep_pre_ladder_byte_format(self, tmp_path):
        """Full-fidelity records serialize without a ``rank`` key, so
        stores written by this version round-trip byte-identically with
        pre-ladder readers (and vice versa)."""
        store = ResultStore(tmp_path / "store")
        store.put("kf", KIND_POINT, encode_point(_point("full-route")))
        store.put(
            "kp", KIND_POINT, encode_point(_point("synth-estimate")),
            rank=FIDELITY_RANKS["synth-estimate"],
        )
        lines = []
        for seg in sorted((tmp_path / "store" / "segments").glob("*.jsonl")):
            lines += [json.loads(s) for s in seg.read_text().splitlines()]
        by_key = {line["key"]: line for line in lines}
        assert "rank" not in by_key["kf"]
        assert by_key["kp"]["rank"] == FIDELITY_RANKS["synth-estimate"]

    def test_export_preserves_ranks(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(
            "kp", KIND_POINT, encode_point(_point("placed-estimate")),
            rank=FIDELITY_RANKS["placed-estimate"],
        )
        store.put("kf", KIND_POINT, encode_point(_point("full-route")))
        out = store.export(tmp_path / "export.jsonl")
        lines = {  # key -> parsed line
            json.loads(s)["key"]: json.loads(s)
            for s in out.read_text().splitlines()
        }
        assert lines["kp"]["rank"] == FIDELITY_RANKS["placed-estimate"]
        assert "rank" not in lines["kf"]


_RACER_SNIPPET = """
import sys
from repro.cache import FIDELITY_RANKS, KIND_POINT, ResultStore

root, fidelity = sys.argv[1], sys.argv[2]
store = ResultStore(root)
written = 0
for i in range(50):
    payload = {
        "parameters": {"W": i},
        "metrics": {"LUT": float(FIDELITY_RANKS[fidelity])},
        "source": "tool",
        "simulated_seconds": 1.0,
    }
    if fidelity != "full-route":
        payload["fidelity"] = fidelity
    if store.put(f"key-{i:04d}", KIND_POINT, payload,
                 rank=FIDELITY_RANKS[fidelity]):
        written += 1
print(written)
"""


class TestConcurrentRankRace:
    def test_two_processes_race_probe_vs_full(self, tmp_path):
        """A probe writer and a full-route writer race on the same keys.

        Whatever the interleaving, every key must end up answering at
        FULL_RANK: either the full record landed first (the probe put was
        refused) or it superseded the probe afterwards.
        """
        root = str(tmp_path / "store")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _RACER_SNIPPET, root, fidelity],
                stdout=subprocess.PIPE,
                cwd="/root/repo",
                env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            )
            for fidelity in ("synth-estimate", "full-route")
        ]
        outs = [p.communicate(timeout=120)[0] for p in procs]
        assert all(p.returncode == 0 for p in procs)

        store = ResultStore(root)
        assert len(store) == 50
        for record in store.records():
            assert record.rank == FULL_RANK
            assert record.payload["metrics"]["LUT"] == float(FULL_RANK)
        # The full-route writer always lands all 50; the probe writer's
        # successful puts are the keys it reached first.
        full_written = int(outs[1])
        assert full_written == 50
