"""Tests for the VHDL entity parser."""

import pytest

from repro.errors import ParseError
from repro.hdl.ast import Direction
from repro.hdl.vhdl_parser import parse_vhdl


BASIC = """
library ieee;
use ieee.std_logic_1164.all;

entity counter is
  generic (
    WIDTH : natural := 8;
    STEP  : positive := 1
  );
  port (
    clk    : in  std_logic;
    rst_n  : in  std_logic;
    en     : in  std_logic;
    count  : out std_logic_vector(WIDTH-1 downto 0)
  );
end entity counter;
"""


class TestBasicEntity:
    def test_name_and_counts(self):
        m = parse_vhdl(BASIC)[0]
        assert m.name == "counter"
        assert len(m.parameters) == 2
        assert len(m.ports) == 4

    def test_generic_defaults(self):
        m = parse_vhdl(BASIC)[0]
        env = m.default_environment()
        assert env == {"WIDTH": 8, "STEP": 1}

    def test_port_directions(self):
        m = parse_vhdl(BASIC)[0]
        assert m.port("clk").direction == Direction.IN
        assert m.port("count").direction == Direction.OUT

    def test_vector_width_from_generic(self):
        m = parse_vhdl(BASIC)[0]
        assert m.port("count").width({"WIDTH": 8}) == 8
        assert m.port("count").width({"WIDTH": 32}) == 32

    def test_libraries_and_uses_recorded(self):
        m = parse_vhdl(BASIC)[0]
        assert "ieee" in m.libraries
        assert "ieee.std_logic_1164.all" in m.use_clauses


class TestDeclarationStyles:
    """The paper stresses 'a wide variety of declaration styles'."""

    def test_grouped_identifier_list(self):
        src = """
        entity e is
          port (a, b, c : in std_logic; q : out std_logic);
        end e;
        """
        m = parse_vhdl(src)[0]
        assert [p.name for p in m.ports] == ["a", "b", "c", "q"]
        assert all(p.direction == Direction.IN for p in m.ports[:3])

    def test_default_direction_is_in(self):
        src = "entity e is port (d : std_logic); end e;"
        m = parse_vhdl(src)[0]
        assert m.port("d").direction == Direction.IN

    def test_buffer_and_inout(self):
        src = "entity e is port (x : inout std_logic; y : buffer std_logic); end e;"
        m = parse_vhdl(src)[0]
        assert m.port("x").direction == Direction.INOUT
        assert m.port("y").direction == Direction.BUFFER

    def test_integer_range_subtype_port(self):
        src = "entity e is port (n : in integer range 0 to 15); end e;"
        m = parse_vhdl(src)[0]
        assert m.port("n").ptype.base == "integer"
        assert m.port("n").width() == 1

    def test_ascending_range(self):
        src = "entity e is port (v : in bit_vector(0 to 7)); end e;"
        m = parse_vhdl(src)[0]
        assert m.port("v").width() == 8

    def test_signal_keyword_allowed(self):
        src = "entity e is port (signal s : in std_logic); end e;"
        assert parse_vhdl(src)[0].port("s").name == "s"

    def test_constant_keyword_in_generic(self):
        src = "entity e is generic (constant N : natural := 4); end e;"
        assert parse_vhdl(src)[0].parameter("N").default_value() == 4

    def test_generic_without_default(self):
        src = "entity e is generic (N : natural); port (c : in std_logic); end e;"
        assert parse_vhdl(src)[0].parameter("N").default is None

    def test_boolean_and_string_generics(self):
        src = """
        entity e is generic (
          EN  : boolean := true;
          TAG : string := "hello"
        ); end e;
        """
        m = parse_vhdl(src)[0]
        assert m.parameter("EN").default_value() == 1
        assert m.parameter("TAG").ptype == "string"

    def test_expression_defaults(self):
        src = """
        entity e is generic (
          D : natural := 2**10;
          A : natural := 16#20# + 2;
          W : natural := D / 4
        ); end e;
        """
        env = parse_vhdl(src)[0].default_environment()
        assert env == {"D": 1024, "A": 34, "W": 256}

    def test_unsigned_port_type(self):
        src = "entity e is port (u : in unsigned(3 downto 0)); end e;"
        m = parse_vhdl(src)[0]
        assert m.port("u").ptype.base == "unsigned"
        assert m.port("u").width() == 4

    def test_end_without_entity_keyword(self):
        src = "entity plain is port (c : in std_logic); end plain;"
        assert parse_vhdl(src)[0].name == "plain"

    def test_bare_end(self):
        src = "entity bare is port (c : in std_logic); end;"
        assert parse_vhdl(src)[0].name == "bare"


class TestArchitectureHandling:
    def test_architecture_name_attached(self):
        src = BASIC + """
        architecture rtl of counter is
          signal x : std_logic;
        begin
          process(clk) begin end process;
        end architecture rtl;
        """
        m = parse_vhdl(src)[0]
        assert m.architecture == "rtl"

    def test_end_by_arch_name(self):
        src = """
        entity e is port (c : in std_logic); end e;
        architecture impl of e is begin end impl;
        """
        assert parse_vhdl(src)[0].architecture == "impl"

    def test_body_contents_not_parsed_as_entities(self):
        src = """
        entity outer is port (c : in std_logic); end outer;
        architecture a of outer is
          component inner is port (x : in std_logic); end component;
        begin
        end architecture a;
        """
        modules = parse_vhdl(src)
        assert [m.name for m in modules] == ["outer"]


class TestMultiUnit:
    def test_two_entities(self):
        src = """
        entity a is port (c : in std_logic); end a;
        entity b is port (c : in std_logic); end b;
        """
        assert [m.name for m in parse_vhdl(src)] == ["a", "b"]

    def test_package_skipped(self):
        src = """
        package pkg is
          constant K : natural := 3;
        end package pkg;
        entity after_pkg is port (c : in std_logic); end after_pkg;
        """
        assert [m.name for m in parse_vhdl(src)] == ["after_pkg"]


class TestErrors:
    def test_mismatched_closing_name(self):
        src = "entity a is port (c : in std_logic); end b;"
        with pytest.raises(ParseError, match="closed by"):
            parse_vhdl(src)

    def test_clock_detection(self):
        m = parse_vhdl(BASIC)[0]
        assert [p.name for p in m.clock_ports()] == ["clk"]
