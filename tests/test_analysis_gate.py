"""Tests for the DSE pre-flight gate and its evaluation-loop integration.

The acceptance bar: an infeasible point is rejected *before* evaluator
dispatch (no simulated tool cost, ``source="drc"`` in history), while a
run in which every point is feasible is behaviour-neutral.
"""

import numpy as np
import pytest

from repro.analysis.gate import PreflightGate, freeze_params
from repro.core.evaluate import PointEvaluator
from repro.core.fitness import ApproximateFitness, DseProblem
from repro.core.parallel import (
    EvaluationFailure,
    EvaluatorSpec,
    ParallelPointEvaluator,
    _freeze,
)
from repro.core.spaces import IntRange, ParameterSpace
from repro.errors import DrcViolationError
from repro.hdl.frontend import parse_source
from repro.moo.problem import IntegerProblem, Objective

NULLABLE_SV = """
module nullable #(parameter W = 4) (
  input  logic clk,
  input  logic [W-1:0] d,
  output logic [W-2:0] q
);
endmodule
"""
# W=1 elaborates q to [-1:0] -> P001; W>=2 is feasible.


def nullable_module():
    return parse_source(NULLABLE_SV, "systemverilog")[0]


def make_evaluator(**kw):
    return PointEvaluator(
        source=NULLABLE_SV, language="systemverilog", top="nullable", **kw
    )


def make_fitness(use_model=False, **kw):
    return ApproximateFitness(
        evaluator=make_evaluator(),
        space=ParameterSpace([IntRange("W", 1, 16)]),
        use_model=use_model,
        pretrain_size=0,
        seed=3,
        **kw,
    )


class TestPreflightGate:
    def test_feasibility_split(self):
        gate = PreflightGate(nullable_module())
        assert not gate.is_feasible({"W": 1})
        assert gate.is_feasible({"W": 8})

    def test_verdicts_memoized(self):
        gate = PreflightGate(nullable_module())
        for _ in range(3):
            gate.errors({"W": 1})
            gate.errors({"w": 1})  # case-insensitive: same frozen key
        assert gate.stats() == {
            "drc_checks": 1, "drc_rejections": 1, "drc_memo_size": 1,
        }

    def test_freeze_matches_parallel_memo_key(self):
        params = {"B": 2, "a": 1}
        assert freeze_params(params) == _freeze(params)
        assert freeze_params({"A": 1, "b": 2}) == freeze_params(params)

    def test_violation_carries_findings_and_point(self):
        gate = PreflightGate(nullable_module())
        error = gate.violation({"W": 1})
        assert isinstance(error, DrcViolationError)
        assert "W=1" in str(error) and "P001" in str(error)
        assert error.findings and error.findings[0].code == "P001"
        assert gate.violation({"W": 8}) is None

    def test_space_aware_gate_rejects_out_of_space(self):
        space = ParameterSpace([IntRange("W", 4, 16)])
        gate = PreflightGate(nullable_module(), space=space)
        assert not gate.is_feasible({"W": 64})
        assert gate.is_feasible({"W": 8})


class TestEvaluatorGate:
    def test_infeasible_point_never_reaches_the_tool(self):
        ev = make_evaluator()
        with pytest.raises(DrcViolationError, match="P001"):
            ev.evaluate({"W": 1})
        assert ev.evaluations == 0
        assert ev.last_script == ""  # no TCL was ever rendered

    def test_feasible_point_unaffected(self):
        ev = make_evaluator()
        point = ev.evaluate({"W": 8})
        assert point.source == "tool"
        assert ev.gate.stats()["drc_rejections"] == 0


class TestParallelGate:
    def spec(self):
        return EvaluatorSpec.from_evaluator(make_evaluator())

    def test_rejected_before_any_dispatch(self):
        with ParallelPointEvaluator(spec=self.spec(), workers=0) as pe:
            outs = pe.evaluate_many([{"W": 1}], on_error="return")
        assert isinstance(outs[0], EvaluationFailure)
        assert outs[0].original_type == "DrcViolationError"
        assert pe.dispatched == 0 and pe.drc_rejections == 1
        # The serial fallback evaluator was never even constructed.
        assert pe._serial is None

    def test_mixed_batch_dispatches_only_feasible(self):
        with ParallelPointEvaluator(spec=self.spec(), workers=0) as pe:
            outs = pe.evaluate_many(
                [{"W": 1}, {"W": 8}, {"W": 1}], on_error="return"
            )
        assert isinstance(outs[0], EvaluationFailure)
        assert outs[1].source == "tool"
        assert isinstance(outs[2], EvaluationFailure)  # memo replay
        assert pe.dispatched == 1 and pe.drc_rejections == 1
        assert pe.memo_hits == 1

    def test_failure_record_matches_serial_error_text(self):
        # The parallel fan-out and the serial evaluator's own gate must
        # produce byte-identical failure messages for the same point.
        ev = make_evaluator()
        with pytest.raises(DrcViolationError) as excinfo:
            ev.evaluate({"W": 1})
        with ParallelPointEvaluator(spec=self.spec(), workers=0) as pe:
            out = pe.evaluate_many([{"W": 1}], on_error="return")[0]
        assert out.message == str(excinfo.value)

    def test_on_error_raise_propagates(self):
        with ParallelPointEvaluator(spec=self.spec(), workers=0) as pe:
            with pytest.raises(Exception, match="DrcViolationError"):
                pe.evaluate_many([{"W": 1}], on_error="raise")


class TestFitnessGate:
    def test_drc_failure_is_zero_cost_in_history(self):
        f = make_fitness()
        before = f.simulated_seconds
        F = f.evaluate_encoded(np.array([[1]]))
        assert f.simulated_seconds == before  # no tool time charged
        assert f.infeasible == 1 and f.drc_rejections == 1
        record = f.history[-1]
        assert record.source == "drc"
        assert record.simulated_seconds == 0.0
        assert F[0, 0] >= 1e11      # LUT penalty (minimized)
        assert F[0, 1] == 0.0       # frequency penalty (maximized)

    def test_tool_failures_keep_their_source_and_cost(self):
        # A tool-level failure (not DRC-catchable) still charges time.
        f = make_fitness()
        f._note_failure({"W": 4}, "BramOverflowError")
        assert f.history[-1].source == "infeasible:BramOverflowError"
        assert f.simulated_seconds > 0.0
        assert f.drc_rejections == 0

    def test_feasible_run_is_gate_neutral(self):
        f = make_fitness()
        f.evaluate_encoded(np.array([[8], [12]]))
        assert f.drc_rejections == 0
        assert all(p.source == "tool" for p in f.history)
        stats = f.stats()
        assert stats["drc_rejections"] == 0
        assert stats["infeasible"] == 0

    def test_model_path_checks_gate_before_control(self):
        f = make_fitness(use_model=True)
        F = f.evaluate_encoded(np.array([[1]]))
        assert f.history[-1].source == "drc"
        assert F[0, 0] >= 1e11
        # The rejected point never entered the control model's dataset.
        assert len(f.control.dataset) == 0

    def test_stats_expose_gate_counters(self):
        f = make_fitness()
        f.evaluate_encoded(np.array([[1], [8]]))
        stats = f.stats()
        assert stats["drc_rejections"] == 1
        assert stats["drc_checks"] >= 1
        assert stats["drc_memo_size"] >= 1


class TestFeasibleMask:
    def test_base_problem_everything_feasible(self):
        problem = _Stub()
        mask = problem.feasible_mask(np.array([[1], [2], [3]]))
        assert mask.dtype == bool and mask.all()

    def test_dse_problem_consults_gate(self):
        f = make_fitness()
        problem = DseProblem(f)
        mask = problem.feasible_mask(np.array([[1], [8], [1]]))
        assert mask.tolist() == [False, True, False]


class _Stub(IntegerProblem):
    def __init__(self):
        super().__init__([0], [10], [Objective.minimize("x")])

    def evaluate(self, X):  # pragma: no cover
        raise NotImplementedError
