"""Tests for the ``dovado-repro lint`` subcommand: exit codes and formats."""

import json

import pytest

from repro.core.cli import main

NULLABLE_SV = """
module nullable #(parameter W = 4) (
  input  logic clk,
  output logic [W-2:0] q
);
endmodule
"""

CLOCKLESS_SV = "module warny(input logic a, output logic q); endmodule"


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "nullable.sv"
    path.write_text(NULLABLE_SV)
    return str(path)


@pytest.fixture
def warn_file(tmp_path):
    path = tmp_path / "warny.sv"
    path.write_text(CLOCKLESS_SV)
    return str(path)


class TestExitCodes:
    def test_clean_design_exits_zero(self, capsys):
        assert main(["lint", "--design", "cv32e40p-fifo"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_errors_exit_two(self, bad_file, capsys):
        assert main(["lint", bad_file, "--at", "W=1"]) == 2
        out = capsys.readouterr().out
        assert "P001" in out and "1 error(s)" in out

    def test_warnings_exit_zero_without_strict(self, warn_file):
        assert main(["lint", warn_file, "--no-box"]) == 0

    def test_warnings_exit_one_under_strict(self, warn_file, capsys):
        assert main(["lint", warn_file, "--no-box", "--strict"]) == 1
        assert "W002" in capsys.readouterr().out

    def test_disable_silences_rule(self, warn_file):
        code = main(
            ["lint", warn_file, "--no-box", "--strict", "--disable", "W002"]
        )
        assert code == 0

    def test_missing_inputs_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint"])


class TestFormats:
    def test_list_rules_prints_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("E001", "E005", "W004", "P001", "P005", "B001", "H002"):
            assert code in out

    def test_json_format(self, bad_file, capsys):
        assert main(["lint", bad_file, "--at", "W=1", "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1
        [finding] = [f for f in payload["findings"] if f["code"] == "P001"]
        assert finding["severity"] == "error"
        assert finding["module"] == "nullable"
        assert finding["fingerprint"]

    def test_sarif_format_shape(self, bad_file, capsys):
        assert main(["lint", bad_file, "--at", "W=1", "--format", "sarif"]) == 2
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "P001" in rule_ids and "E001" in rule_ids
        [result] = run["results"]
        assert result["ruleId"] == "P001"
        assert result["level"] == "error"
        assert result["partialFingerprints"]["dovadoRepro/v1"]
        location = result["locations"][0]
        assert location["logicalLocations"][0]["name"] == "nullable"

    def test_sarif_clean_has_empty_results(self, capsys):
        code = main(
            ["lint", "--design", "cv32e40p-fifo", "--format", "sarif"]
        )
        assert code == 0
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["runs"][0]["results"] == []

    def test_output_file(self, bad_file, tmp_path, capsys):
        report = tmp_path / "report.sarif"
        code = main(
            ["lint", bad_file, "--at", "W=1", "--format", "sarif",
             "--output", str(report)]
        )
        assert code == 2  # exit code reflects findings even when redirected
        assert json.loads(report.read_text())["runs"]
        assert str(report) in capsys.readouterr().out


class TestBaseline:
    def test_roundtrip_suppresses_and_blocks_new(self, warn_file, tmp_path, capsys):
        baseline = str(tmp_path / "drc-baseline.json")
        assert main(
            ["lint", warn_file, "--no-box",
             "--baseline", baseline, "--update-baseline"]
        ) == 0
        assert "baseline written" in capsys.readouterr().out
        # Baselined warnings no longer fail strict runs.
        assert main(
            ["lint", warn_file, "--no-box", "--strict", "--baseline", baseline]
        ) == 0
        # A *different* finding is not covered by the baseline.
        other = tmp_path / "other.sv"
        other.write_text("module other(input logic x, output logic y); endmodule")
        assert main(
            ["lint", str(other), "--no-box", "--strict", "--baseline", baseline]
        ) == 1

    def test_update_baseline_requires_path(self, warn_file):
        with pytest.raises(SystemExit, match="--update-baseline"):
            main(["lint", warn_file, "--update-baseline"])


class TestDesignSweep:
    @pytest.mark.parametrize(
        "name", ["corundum-cqm", "cv32e40p", "cv32e40p-fifo", "neorv32", "tirex"]
    )
    def test_builtin_designs_strict_clean(self, name, capsys):
        assert main(["lint", "--design", name, "--strict"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_explicit_point(self, capsys):
        code = main(
            ["lint", "--design", "cv32e40p-fifo", "--at", "DEPTH=4"]
        )
        assert code == 0

    def test_eval_surfaces_drc_error(self, bad_file, capsys):
        # The eval flow hits the evaluator's gate and reports, exit 1.
        code = main(
            ["eval", "--source", bad_file, "--top", "nullable",
             "--set", "W=1"]
        )
        assert code == 1
        assert "DRC pre-flight" in capsys.readouterr().err
