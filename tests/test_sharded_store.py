"""Tests for the sharded result store and the layout-sniffing opener.

The sharded store must be indistinguishable from the flat store through
the ``get``/``put`` surface (the evaluator layers are layout-blind),
route every key to the same shard from every process, and survive the
same maintenance operations (clear/compact) shard by shard.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from tests._sanitize_support import lock_order_guard

from repro.cache import (
    FULL_RANK,
    KIND_POINT,
    ResultStore,
    ShardedResultStore,
    open_store,
    point_key,
    run_identity,
)


@pytest.fixture(autouse=True)
def _lock_order_sanitizer():
    """Record lock/flock ordering in every test and cross-check it
    against the static S003 graph (runtime must be a subgraph)."""
    with lock_order_guard():
        yield


def _keys(n: int) -> list[str]:
    identity = run_identity(
        source="module m(input wire c); endmodule",
        top="m",
        part="XC7K70T",
        step="FlowStep.IMPLEMENTATION",
        synth_directive="Default",
        impl_directive="Default",
        target_period_ns=1.0,
        seed=3,
        metrics=(("LUT", "min"),),
    )
    return [point_key(identity, {"DEPTH": i}) for i in range(n)]


class TestSharding:
    def test_round_trip_across_shards(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        keys = _keys(40)
        for i, key in enumerate(keys):
            assert store.put(key, KIND_POINT, {"i": i}) is True
        assert len(store) == 40
        for i, key in enumerate(keys):
            record = store.get(key)
            assert record is not None and record.payload["i"] == i
            assert key in store
        # Real digests spread over every shard.
        populated = {store.shard_for(k) for k in keys}
        assert populated == {0, 1, 2, 3}

    def test_recorded_shard_count_wins_on_reopen(self, tmp_path):
        """Reopening with a different count would misroute every key."""
        root = tmp_path / "store"
        ShardedResultStore(root, shards=4).put("00ff" * 16, KIND_POINT, {})
        reopened = ShardedResultStore(root, shards=16)
        assert reopened.shards == 4
        assert len(reopened) == 1

    def test_routing_is_stable_across_instances(self, tmp_path):
        a = ShardedResultStore(tmp_path / "store", shards=8)
        b = ShardedResultStore(tmp_path / "store")
        for key in _keys(30):
            assert a.shard_for(key) == b.shard_for(key)

    def test_non_hex_keys_still_route_deterministically(self, tmp_path):
        a = ShardedResultStore(tmp_path / "store", shards=8)
        assert a.put("not-a-digest", KIND_POINT, {"v": 1}) is True
        b = ShardedResultStore(tmp_path / "store")
        assert b.get("not-a-digest").payload["v"] == 1

    def test_rank_supersession_within_a_shard(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        key = _keys(1)[0]
        assert store.put(key, KIND_POINT, {"f": "probe"}, rank=0) is True
        assert store.put(key, KIND_POINT, {"f": "full"}) is True
        assert store.put(key, KIND_POINT, {"f": "probe2"}, rank=0) is False
        assert store.get(key).rank == FULL_RANK

    def test_stats_aggregate_and_expose_shard_count(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        for i, key in enumerate(_keys(20)):
            store.put(key, KIND_POINT, {"i": i})
        store.get(_keys(1)[0])
        stats = store.stats()
        assert stats.shards == 4
        assert stats.unique_keys == 20
        assert stats.records == 20
        assert stats.hits == 1
        assert len(store.shard_stats()) == 4
        assert sum(s.unique_keys for s in store.shard_stats()) == 20

    def test_clear_and_compact_apply_to_every_shard(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        keys = _keys(24)
        for key in keys:
            store.put(key, KIND_POINT, {"f": "probe"}, rank=0)
            store.put(key, KIND_POINT, {"f": "full"})
        result = store.compact()
        assert result.records_before == 48
        assert result.records_after == 24
        assert {r.key for r in store.records()} == set(keys)
        assert store.clear() == 24
        assert len(store) == 0

    def test_export_merges_all_shards(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        keys = _keys(12)
        for i, key in enumerate(keys):
            store.put(key, KIND_POINT, {"i": i})
        out = store.export(tmp_path / "export.jsonl")
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert {line["key"] for line in lines} == set(keys)

    def test_cross_process_visibility(self, tmp_path):
        root = str(tmp_path / "store")
        parent = ShardedResultStore(root, shards=4)
        keys = _keys(10)
        snippet = (
            "import sys\n"
            "from repro.cache import open_store, KIND_POINT\n"
            "store = open_store(sys.argv[1])\n"
            "for key in sys.argv[2:]:\n"
            "    store.put(key, KIND_POINT, {'who': 'child'})\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", snippet, root, *keys],
            cwd="/root/repo",
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        for key in keys:
            record = parent.get(key)
            assert record is not None and record.payload["who"] == "child"


class TestOpenStore:
    def test_sniffs_sharded_layout(self, tmp_path):
        root = tmp_path / "store"
        ShardedResultStore(root, shards=4)
        opened = open_store(root)
        assert isinstance(opened, ShardedResultStore)
        assert opened.shards == 4

    def test_sniffs_flat_layout(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root)
        # Even with a shards hint, an existing flat store stays flat.
        assert isinstance(open_store(root, shards=8), ResultStore)

    def test_fresh_path_defaults_to_flat(self, tmp_path):
        assert isinstance(open_store(tmp_path / "new"), ResultStore)

    def test_fresh_path_with_shards_creates_sharded(self, tmp_path):
        opened = open_store(tmp_path / "new", shards=8)
        assert isinstance(opened, ShardedResultStore)
        assert opened.shards == 8
