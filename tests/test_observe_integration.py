"""Telemetry threaded through the real evaluation stack.

The acceptance contract under test: an explore emits **one ledger record
per evaluated design point**, and the summed per-record ``charge`` equals
the tool session's cumulative simulated seconds *exactly* — including the
partial cost of failed runs.
"""

import pytest

from repro.core.evaluate import PointEvaluator
from repro.core.session import DseSession
from repro.designs import get_design
from repro.errors import ReproError
from repro.observe import telemetry_session, validate_trace, write_trace


def _fifo_session(**kw):
    defaults = dict(design=get_design("cv32e40p-fifo"), seed=1)
    defaults.update(kw)
    return DseSession(**defaults)


class TestExploreLedger:
    def test_one_record_per_point_and_charges_balance(self):
        with telemetry_session() as tel:
            s = _fifo_session(pretrain_size=8)
            result = s.explore(generations=2, population=6)
            s.close()
            # Every evaluated point (the 8 pretrain runs + every DSE-loop
            # evaluation) has exactly one record.
            assert len(tel.ledger) == 8 + result.evaluations
            # The acceptance invariant: summed charges == tool seconds.
            assert tel.ledger.total_charge() == pytest.approx(
                s.evaluator.sim.simulated_seconds, abs=1e-9
            )
            assert result.evaluations > 0

    def test_decision_count_identity(self):
        with telemetry_session() as tel:
            s = _fifo_session(pretrain_size=8)
            s.explore(generations=2, population=6)
            s.close()
            counts = tel.ledger.counts()
            stats = s.fitness.stats()
            # Ledger outcomes match the control model's decision counters
            # (pretrain/tool-path runs bypass decide(), so `evaluate`
            # decisions are a subset of tool+failed records).
            assert counts["cache"] == stats["cached"]
            assert counts["estimate"] == stats["estimated"]
            assert tel.counters.get("decision.cached") == stats["cached"]
            assert tel.counters.get("decision.estimate") == stats["estimated"]
            assert tel.counters.get("decision.evaluate") == stats["evaluated"]
            assert counts["drc"] == stats["drc_rejections"]
            # History mirrors the ledger for the outcomes it archives
            # (cached decisions answer from the dataset without a history
            # entry, so only tool/estimate sources are comparable).
            history_sources = {"tool": 0, "estimate": 0}
            for p in s.fitness.history:
                if p.source in history_sources:
                    history_sources[p.source] += 1
            assert counts["tool"] == history_sources["tool"]
            assert counts["estimate"] == history_sources["estimate"]

    def test_generation_stats_and_spans(self):
        with telemetry_session() as tel:
            s = _fifo_session(pretrain_size=8)
            s.explore(generations=2, population=6)
            s.close()
            assert [g.generation for g in tel.generations] == [1, 2]
            assert all(g.front_size >= 1 for g in tel.generations)
            assert all(g.hypervolume >= 0.0 for g in tel.generations)
            spans = tel.tracer.as_dict()
            assert spans["dse.explore"]["count"] == 1
            assert spans["dse.explore/dse.generation"]["count"] == 2
            assert "dse.explore/dse.pretrain/flow.synthesis" in spans
            # The explore span charges the fitness *budget* clock (which
            # floors cache/estimate answers), not the raw tool clock.
            assert spans["dse.explore"]["sim_s"] == pytest.approx(
                s.fitness.simulated_seconds, abs=1e-9
            )

    def test_budget_counter_tracks_fitness_accounting(self):
        with telemetry_session() as tel:
            s = _fifo_session(pretrain_size=8)
            s.explore(generations=2, population=6)
            s.close()
            assert tel.counters.get("budget.charged_s") == pytest.approx(
                s.fitness.simulated_seconds, abs=1e-9
            )

    def test_trace_file_valid_after_explore(self, tmp_path):
        with telemetry_session() as tel:
            s = _fifo_session(pretrain_size=6)
            s.explore(generations=1, population=6)
            s.close()
            path = write_trace(tmp_path / "t.jsonl", tel, meta={"design": "fifo"})
        assert validate_trace(path) == []

    def test_disabled_telemetry_records_nothing(self):
        from repro.observe import current_telemetry

        assert current_telemetry() is None
        s = _fifo_session(pretrain_size=4)
        s.explore(generations=1, population=6)
        s.close()  # no error, no bundle — nothing to assert beyond survival


class TestFailureCharging:
    def _tirex_evaluator(self, **kw):
        g = get_design("tirex")
        return PointEvaluator(
            source=g.source(), language=str(g.language), top=g.top,
            part="XC7A35T", **kw,
        )

    def test_failed_run_ledger_record_carries_partial_charge(self):
        ev = self._tirex_evaluator()
        with telemetry_session() as tel:
            with pytest.raises(ReproError):
                ev.evaluate({"NCLUSTER": 8})
            record = tel.ledger.records[-1]
            assert record.outcome == "failed"
            assert record.error_type == "UtilizationOverflowError"
            assert record.charge > 0.0
            assert record.charge == pytest.approx(
                ev.sim.simulated_seconds, abs=1e-9
            )
            assert ev.last_failure_seconds == record.charge

    def test_charges_balance_with_failures_mixed_in(self):
        ev = self._tirex_evaluator()
        with telemetry_session() as tel:
            with pytest.raises(ReproError):
                ev.evaluate({"NCLUSTER": 8})
            ev.evaluate({"NCLUSTER": 1})
            ev.evaluate({"NCLUSTER": 1})  # cache answer
            counts = tel.ledger.counts()
            assert counts == {
                "tool": 1, "cache": 1, "estimate": 0, "drc": 0, "failed": 1,
            }
            assert tel.ledger.total_charge() == pytest.approx(
                ev.sim.simulated_seconds, abs=1e-9
            )

    def test_cache_attribution_not_fooled_by_intervening_failure(self):
        """source="cache" comes from the explicit flag, not stale seconds."""
        ev = self._tirex_evaluator()
        first = ev.evaluate({"NCLUSTER": 1})
        assert first.source == "tool"
        with pytest.raises(ReproError):
            ev.evaluate({"NCLUSTER": 8})
        # Fresh point after a failure: must be attributed to the tool.
        fresh = ev.evaluate({"NCLUSTER": 2})
        assert fresh.source == "tool"
        assert fresh.simulated_seconds > 0.0
        # Repeat of the first point: a true cache answer.
        again = ev.evaluate({"NCLUSTER": 1})
        assert again.source == "cache"
        assert again.simulated_seconds == 0.0


class TestParallelTelemetry:
    def _run(self, workers: int):
        with telemetry_session() as tel:
            s = _fifo_session(use_model=False, pretrain_size=0, workers=workers)
            s.explore(generations=2, population=6, pretrain=False)
            s.close()
            return [
                (r.params, r.outcome, r.charge, r.error_type)
                for r in tel.ledger
            ], tel.tracer.as_dict()

    def test_pool_records_match_serial_reference(self):
        serial_records, serial_spans = self._run(0)
        pool_records, pool_spans = self._run(2)
        # Identical records modulo wall_s/origin (excluded above), in the
        # same deterministic order.
        assert pool_records == serial_records
        # Worker flow spans lose the parent nesting prefix but the leaf
        # totals agree.
        def leaf_sim(spans, leaf):
            return sum(
                t["sim_s"] for p, t in spans.items()
                if p.split("/")[-1] == leaf
            )

        for leaf in ("flow.synthesis", "flow.implementation"):
            assert leaf_sim(pool_spans, leaf) == pytest.approx(
                leaf_sim(serial_spans, leaf), abs=1e-9
            )

    def test_memo_replay_recorded_as_cache(self):
        from repro.core.parallel import EvaluatorSpec, ParallelPointEvaluator

        g = get_design("cv32e40p-fifo")
        ev = PointEvaluator(
            source=g.source(), language=str(g.language), top=g.top
        )
        spec = EvaluatorSpec.from_evaluator(ev)
        with telemetry_session() as tel:
            with ParallelPointEvaluator(spec=spec, workers=0) as pool:
                point = {"DEPTH": 8}
                pool.evaluate_many([point, point])
            counts = tel.ledger.counts()
            assert counts["tool"] == 1
            assert counts["cache"] == 1
            replay = tel.ledger.records[-1]
            assert replay.origin == "memo"
            assert replay.charge == 0.0
