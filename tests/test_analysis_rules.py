"""Tests for the design rule checker: every registered rule, both ways.

Each rule gets at least one positive case (a design that trips it) and
one negative case (a near-identical design that does not), plus registry
configuration behaviour (disable, severity override, baseline) and the
boundary-point sweep over every built-in case-study design.
"""

import pytest

from repro.analysis import (
    DesignRuleChecker,
    RuleConfig,
    RuleContext,
    Severity,
    Stage,
    all_rules,
    boundary_points,
    get_rule,
    rules_for_stage,
)
from repro.analysis.registry import rule as register_rule
from repro.core.spaces import IntRange, ParameterSpace, PowerOfTwoRange
from repro.designs import all_designs
from repro.hdl.ast import HdlLanguage
from repro.hdl.frontend import parse_source

ALL_CODES = (
    "B001", "B002", "B003", "B004",
    "D001", "D002", "D003", "D004",
    "E001", "E002", "E003", "E004", "E005",
    "H001", "H002",
    "N001", "N002", "N003", "N004", "N005", "N006", "N007",
    "P001", "P002", "P003", "P004", "P005",
    "S001", "S002", "S003", "S004", "S005", "S006",
    "W001", "W002", "W003", "W004",
)


def sv_module(text: str):
    return parse_source(text, HdlLanguage.SYSTEMVERILOG)[0]


def vhdl_module(text: str):
    return parse_source(text, HdlLanguage.VHDL)[0]


def interface_codes(module, config=None):
    return DesignRuleChecker(config).check_interface(module).codes()


def point_codes(module, params, **kw):
    return DesignRuleChecker().check_point(module, params, **kw).codes()


CLEAN_SV = """
module clean #(parameter W = 8) (
  input  logic clk,
  input  logic [W-1:0] d,
  output logic [W-1:0] q
);
endmodule
"""


class TestRegistry:
    def test_all_rules_registered(self):
        assert tuple(r.code for r in all_rules()) == ALL_CODES

    def test_every_rule_has_name_description_stage(self):
        for r in all_rules():
            assert r.name and r.description
            assert isinstance(r.stage, Stage)
            assert r.severity in (Severity.ERROR, Severity.WARNING)

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule code"):
            register_rule(
                "E001", "imposter", Severity.ERROR, Stage.INTERFACE, "dup"
            )(lambda ctx: [])

    def test_get_rule_unknown_code(self):
        with pytest.raises(KeyError, match="unknown rule code"):
            get_rule("Z999")

    def test_rules_for_stage_partitions(self):
        by_stage = [
            r.code for s in Stage for r in rules_for_stage(s)
        ]
        assert sorted(by_stage) == sorted(ALL_CODES)

    def test_disable_skips_rule(self):
        module = sv_module("module m(output logic q); endmodule")
        assert "W002" in interface_codes(module)
        config = RuleConfig(disabled=frozenset({"W002"}))
        assert "W002" not in interface_codes(module, config)

    def test_severity_override_promotes_warning(self):
        module = sv_module("module m(output logic q); endmodule")
        config = RuleConfig(severity_overrides={"W002": Severity.ERROR})
        result = DesignRuleChecker(config).check_interface(module)
        promoted = [f for f in result if f.code == "W002"]
        assert promoted and all(f.severity == Severity.ERROR for f in promoted)
        assert not result.ok()

    def test_baseline_suppresses_exact_finding(self):
        module = sv_module("module m(output logic q); endmodule")
        findings = DesignRuleChecker().check_interface(module).findings
        fingerprints = frozenset(f.fingerprint() for f in findings)
        config = RuleConfig(baseline=fingerprints)
        assert interface_codes(module, config) == ()


class TestInterfaceRules:
    def test_e001_duplicate_port_vhdl_case_insensitive(self):
        module = vhdl_module(
            "entity e is port (Data : in std_logic; DATA : in std_logic; "
            "clk : in std_logic); end e;"
        )
        assert "E001" in interface_codes(module)

    def test_e001_negative_distinct_ports(self):
        assert "E001" not in interface_codes(sv_module(CLEAN_SV))

    def test_e002_duplicate_parameter_case_insensitive(self):
        module = sv_module(
            "module m #(parameter W = 4, parameter w = 8) "
            "(input logic clk); endmodule"
        )
        assert "E002" in interface_codes(module)

    def test_e002_negative(self):
        assert "E002" not in interface_codes(sv_module(CLEAN_SV))

    def test_e003_port_parameter_collision(self):
        module = sv_module(
            "module m #(parameter Q = 4) "
            "(input logic clk, output logic q); endmodule"
        )
        assert "E003" in interface_codes(module)

    def test_e003_negative(self):
        assert "E003" not in interface_codes(sv_module(CLEAN_SV))

    def test_e004_unknown_width_reference(self):
        module = sv_module(
            "module m(input logic clk, output logic [K-1:0] q); endmodule"
        )
        assert "E004" in interface_codes(module)

    def test_e004_negative_declared_reference(self):
        assert "E004" not in interface_codes(sv_module(CLEAN_SV))

    def test_e005_unknown_default_reference(self):
        module = sv_module(
            "module m #(parameter W = K + 1) (input logic clk); endmodule"
        )
        codes = interface_codes(module)
        assert "E005" in codes
        assert "E004" not in codes  # widths are fine; only the default is bad

    def test_e005_negative_default_references_other_parameter(self):
        module = sv_module(
            "module m #(parameter A = 4, parameter B = A + 1) "
            "(input logic clk, output logic [B-1:0] q); endmodule"
        )
        assert "E005" not in interface_codes(module)

    def test_w001_no_ports(self):
        module = vhdl_module("entity e is end e;")
        assert "W001" in interface_codes(module)

    def test_w001_negative(self):
        assert "W001" not in interface_codes(sv_module(CLEAN_SV))

    def test_w002_clockless_module(self):
        module = sv_module(
            "module m(input logic a, output logic q); endmodule"
        )
        assert "W002" in interface_codes(module)

    def test_w002_negative_with_clock(self):
        assert "W002" not in interface_codes(sv_module(CLEAN_SV))

    def test_w002_not_raised_for_portless_module(self):
        # W001 already covers the portless case; W002 would be noise.
        module = vhdl_module("entity e is end e;")
        assert "W002" not in interface_codes(module)

    def test_w003_parameter_without_default(self):
        module = vhdl_module(
            "entity e is generic (W : integer); "
            "port (clk : in std_logic); end e;"
        )
        assert "W003" in interface_codes(module)

    def test_w003_negative(self):
        assert "W003" not in interface_codes(sv_module(CLEAN_SV))

    def test_w004_output_only_module(self):
        module = sv_module("module m(output logic q); endmodule")
        assert "W004" in interface_codes(module)

    def test_w004_inout_only_module_not_flagged(self):
        # inout ports carry input connectivity: a pad-only module is not
        # input-less and must not trip W004.
        module = sv_module("module m(inout wire pad); endmodule")
        assert "W004" not in interface_codes(module)

    def test_w004_negative_with_input(self):
        assert "W004" not in interface_codes(sv_module(CLEAN_SV))


NULLABLE_SV = """
module nullable #(parameter W = 4) (
  input  logic clk,
  output logic [W-2:0] q
);
endmodule
"""

CLOG2_SV = """
module depthy #(parameter D = 4) (
  input  logic clk,
  output logic [$clog2(D)-1:0] addr
);
endmodule
"""


class TestElaborationRules:
    def test_p001_null_range_at_boundary(self):
        module = sv_module(NULLABLE_SV)
        codes = point_codes(module, {"W": 1}, boxed=False)
        assert "P001" in codes

    def test_p001_negative_at_safe_point(self):
        module = sv_module(NULLABLE_SV)
        assert point_codes(module, {"W": 8}, boxed=False) == ()

    def test_p001_vhdl_ascending_range(self):
        module = vhdl_module(
            "entity e is generic (N : integer := 4); port ("
            "clk : in std_logic; "
            "q : out std_logic_vector(0 to N-2)); end e;"
        )
        assert "P001" in point_codes(module, {"N": 1}, boxed=False)
        assert "P001" not in point_codes(module, {"N": 3}, boxed=False)

    def test_p001_negative_static_ascending_verilog_numbering(self):
        # `[0:7]` is a legal 8-bit vector with ascending index numbering,
        # not a null range — only parameter-dependent collapses count.
        module = sv_module(
            "module m(input logic clk, output logic [0:7] q); endmodule"
        )
        assert "P001" not in point_codes(module, {}, boxed=False)

    def test_p002_clog2_of_zero(self):
        module = sv_module(CLOG2_SV)
        codes = point_codes(module, {"D": 0}, boxed=False)
        assert "P002" in codes
        assert "P001" not in codes  # unevaluable, not null

    def test_p002_negative(self):
        module = sv_module(CLOG2_SV)
        assert "P002" not in point_codes(module, {"D": 16}, boxed=False)

    def test_p003_out_of_range_value(self):
        module = sv_module(CLEAN_SV)
        space = ParameterSpace([IntRange("W", 4, 32)])
        codes = point_codes(module, {"W": 64}, space=space, boxed=False)
        assert "P003" in codes

    def test_p003_power_of_two_violation(self):
        module = sv_module(CLEAN_SV)
        space = ParameterSpace([PowerOfTwoRange("W", 2, 5)])
        assert "P003" in point_codes(module, {"W": 24}, space=space, boxed=False)
        assert "P003" not in point_codes(module, {"W": 16}, space=space, boxed=False)

    def test_p003_negative_in_range(self):
        module = sv_module(CLEAN_SV)
        space = ParameterSpace([IntRange("W", 4, 32)])
        assert point_codes(module, {"W": 8}, space=space, boxed=False) == ()

    def test_p004_unknown_parameter(self):
        module = sv_module(CLEAN_SV)
        assert "P004" in point_codes(module, {"NOPE": 1}, boxed=False)

    def test_p004_local_parameter_override(self):
        module = sv_module(
            "module m #(parameter W = 4, localparam L = W * 2) "
            "(input logic clk, output logic [L-1:0] q); endmodule"
        )
        assert "P004" in point_codes(module, {"L": 16}, boxed=False)
        assert "P004" not in point_codes(module, {"W": 8}, boxed=False)

    def test_p005_negative_natural(self):
        module = vhdl_module(
            "entity e is generic (N : natural := 4); port ("
            "clk : in std_logic); end e;"
        )
        assert "P005" in point_codes(module, {"N": -1}, boxed=False)
        assert "P005" not in point_codes(module, {"N": 0}, boxed=False)

    def test_p005_non_positive_positive(self):
        module = vhdl_module(
            "entity e is generic (N : positive := 4); port ("
            "clk : in std_logic); end e;"
        )
        assert "P005" in point_codes(module, {"N": 0}, boxed=False)
        assert "P005" not in point_codes(module, {"N": 1}, boxed=False)

    def test_p005_boolean_out_of_domain(self):
        module = vhdl_module(
            "entity e is generic (EN : boolean := true); port ("
            "clk : in std_logic); end e;"
        )
        assert "P005" in point_codes(module, {"EN": 2}, boxed=False)
        assert "P005" not in point_codes(module, {"EN": 1}, boxed=False)


class _FakeBox:
    def __init__(self, source, clock_port="clk"):
        self.source = source
        self.clock_port = clock_port
        self.language = HdlLanguage.SYSTEMVERILOG


def run_boxing_rule(code, module, box):
    """Run one boxing rule with a pre-rendered (possibly corrupt) wrapper."""
    ctx = RuleContext(module=module, params={}, boxed=True)
    ctx.cache["box"] = box
    return [v.message for v in get_rule(code).check(ctx)]


class TestBoxingRules:
    def test_b001_clockless_module(self):
        module = sv_module("module m(input logic a); endmodule")
        assert "B001" in point_codes(module, {})

    def test_b001_named_clock_missing(self):
        module = sv_module(CLEAN_SV)
        assert "B001" in point_codes(module, {}, clock_port="nope")

    def test_b001_negative(self):
        module = sv_module(CLEAN_SV)
        assert "B001" not in point_codes(module, {"W": 8})

    def test_b002_detects_unwired_port(self):
        module = sv_module(CLEAN_SV)
        broken = _FakeBox(
            "(* DONT_TOUCH = \"TRUE\" *) clean #(.W(8)) dut "
            "(.clk(clk), .d(s_d));"  # q left unwired
        )
        messages = run_boxing_rule("B002", module, broken)
        assert any("'q'" in m for m in messages)

    def test_b002_detects_unspecialized_generic(self):
        module = sv_module(CLEAN_SV)
        broken = _FakeBox(
            "(* DONT_TOUCH = \"TRUE\" *) clean dut "
            "(.clk(clk), .d(s_d), .q(s_q));"  # W not specialized
        )
        messages = run_boxing_rule("B002", module, broken)
        assert any("'W'" in m for m in messages)

    def test_b002_negative_real_wrapper(self):
        module = sv_module(CLEAN_SV)
        assert "B002" not in point_codes(module, {"W": 8})

    def test_b003_missing_dont_touch(self):
        module = sv_module(CLEAN_SV)
        broken = _FakeBox("clean #(.W(8)) dut (.clk(clk), .d(s_d), .q(s_q));")
        assert run_boxing_rule("B003", module, broken)

    def test_b003_negative_real_wrapper(self):
        module = sv_module(CLEAN_SV)
        assert "B003" not in point_codes(module, {"W": 8})

    def test_b004_clock_not_reaching_pin(self):
        module = sv_module(CLEAN_SV)
        broken = _FakeBox(
            "(* DONT_TOUCH = \"TRUE\" *) clean #(.W(8)) dut "
            "(.clk(1'b0), .d(s_d), .q(s_q));"
        )
        assert run_boxing_rule("B004", module, broken)

    def test_b004_negative_real_wrapper(self):
        module = sv_module(CLEAN_SV)
        assert "B004" not in point_codes(module, {"W": 8})

    def test_boxing_rules_silent_when_unboxed(self):
        module = sv_module("module m(input logic a); endmodule")
        codes = point_codes(module, {}, boxed=False)
        assert not any(c.startswith("B") for c in codes)


TOP_SV = "module top(input logic clk); sub u0(.clk(clk)); endmodule"
SUB_SV = "module sub(input logic clk); endmodule"


class TestHierarchyRules:
    def check(self, sources, known):
        return DesignRuleChecker().check_sources(sources, known_modules=known)

    def test_h001_unresolved_instance(self):
        result = self.check([(TOP_SV, "systemverilog")], ["top"])
        assert "H001" in result.codes()
        assert result.ok()  # warning only

    def test_h001_negative_all_defined(self):
        result = self.check(
            [(TOP_SV + "\n" + SUB_SV, "systemverilog")], ["top", "sub"]
        )
        assert "H001" not in result.codes()

    def test_h002_recursive_instantiation(self):
        text = (
            "module a(input logic clk); b u0(.clk(clk)); endmodule\n"
            "module b(input logic clk); a u0(.clk(clk)); endmodule"
        )
        result = self.check([(text, "systemverilog")], ["a", "b"])
        assert "H002" in result.codes()
        assert not result.ok()

    def test_h002_negative_tree(self):
        result = self.check(
            [(TOP_SV + "\n" + SUB_SV, "systemverilog")], ["top", "sub"]
        )
        assert "H002" not in result.codes()


class TestBoundaryPoints:
    def test_midpoint_plus_per_dimension_bounds(self):
        space = ParameterSpace([IntRange("A", 0, 10), IntRange("B", 4, 8)])
        points = boundary_points(space)
        assert {"A": 5, "B": 6} in points          # midpoint base
        assert {"A": 0, "B": 6} in points          # A at low
        assert {"A": 10, "B": 6} in points         # A at high
        assert {"A": 5, "B": 4} in points          # B at low
        assert {"A": 5, "B": 8} in points          # B at high
        assert len(points) == 5

    def test_power_of_two_bounds_decoded(self):
        space = ParameterSpace([PowerOfTwoRange("M", 3, 6)])
        points = boundary_points(space)
        values = {p["M"] for p in points}
        assert values == {8, 16, 64}  # 2^3, 2^4 (encoded midpoint), 2^6

    @pytest.mark.parametrize("name", sorted(all_designs()))
    def test_builtin_designs_clean_at_boundaries(self, name):
        gen = all_designs()[name]
        space = ParameterSpace.from_design(gen)
        source = gen.source()
        modules = parse_source(source, gen.language)
        result = DesignRuleChecker().check_design(
            gen.module(),
            space=space,
            sources=((source, str(gen.language)),),
            known_modules=[m.name for m in modules],
        )
        assert result.findings == (), [str(f) for f in result.findings]

    def test_crafted_design_dirty_at_boundary(self):
        module = sv_module(NULLABLE_SV)
        space = ParameterSpace([IntRange("W", 1, 16)])
        result = DesignRuleChecker().check_design(
            module, space=space, boxed=False
        )
        assert "P001" in result.codes()  # the W=1 boundary point
