// A small systolic multiply-accumulate array.
//
// Used by examples/custom_module_dse.py as the "bring your own RTL" demo,
// and linted (with the dataflow D-rules) by the CI self-lint step.
module mac_array #(
    parameter ROWS = 4,
    parameter COLS = 4,
    parameter DATA_WIDTH = 8,
    parameter ACC_WIDTH = 24,
    localparam OUT_BITS = ROWS * ACC_WIDTH
)(
    input  logic                         clk,
    input  logic                         rst_n,
    input  logic                         en_mul,
    input  logic [ROWS*DATA_WIDTH-1:0]   a_col,
    input  logic [COLS*DATA_WIDTH-1:0]   b_row,
    output logic [OUT_BITS-1:0]          acc_out,
    output logic                         valid
);
    // systolic mesh elided
endmodule
