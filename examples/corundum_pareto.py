#!/usr/bin/env python3
"""Corundum queue-manager exploration — the paper's Table I / Fig. 4 study.

Explores the completion queue manager's outstanding-operations, queue
count, and pipeline-depth parameters on the XC7K70T with four objectives
(LUT, FF, BRAM minimized; frequency maximized) and the approximator
disabled, exactly as Section IV-B describes.  Saves the Pareto set to
``results/corundum/`` as JSON + CSV.

Run:  python examples/corundum_pareto.py [--generations N]
"""

import argparse

from repro.core import DseSession, MetricSpec
from repro.designs import get_design
from repro.util.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generations", type=int, default=12)
    parser.add_argument("--population", type=int, default=24)
    parser.add_argument("--out", default="results/corundum")
    args = parser.parse_args()

    design = get_design("corundum-cqm")
    session = DseSession(
        design=design,
        part="XC7K70T",
        metrics=[
            MetricSpec.minimize("LUT"),
            MetricSpec.minimize("FF"),
            MetricSpec.minimize("BRAM"),
            MetricSpec.maximize("frequency"),
        ],
        use_model=False,   # paper: "disabling the approximator model"
        seed=7,
    )
    result = session.explore(
        generations=args.generations, population=args.population
    )

    labels = [chr(ord("A") + i) for i in range(len(result.pareto))]
    rows = [
        (
            label,
            p.parameters["OP_TABLE_SIZE"],
            p.parameters["QUEUE_COUNT"],
            p.parameters["PIPELINE"],
            round(p.metrics["LUT"]),
            round(p.metrics["FF"]),
            round(p.metrics["BRAM"]),
            round(p.metrics["frequency"], 1),
        )
        for label, p in zip(labels, result.pareto)
    ]
    print(render_table(
        ("Pt", "ops", "queues", "pipe", "LUT", "FF", "BRAM", "Fmax [MHz]"),
        rows,
        title=f"Corundum non-dominated configurations "
              f"({len(result.pareto)} points; paper's Table I lists 13)",
    ))
    print()
    print(f"Evaluations          : {result.evaluations}")
    print(f"Tool runs            : {result.tool_runs}")
    print(f"Simulated tool-hours : {result.simulated_seconds / 3600:.2f}")

    path = result.save(args.out, name="corundum_dse")
    print(f"Saved                : {path} (+ CSV)")

    from repro.util.plots import pareto_plot

    print()
    print(pareto_plot(
        result.pareto, "LUT", "frequency",
        title="Solution trade-off (the paper's Fig. 4 view)",
        width=56, height=14,
    ))

    # The paper's qualitative observations, checked live:
    brams = {p.metrics["BRAM"] for p in result.pareto}
    print(f"BRAM constant across front: {'yes' if len(brams) == 1 else 'NO'}")
    freqs = [p.metrics["frequency"] for p in result.pareto]
    print(f"Frequency range           : {min(freqs):.0f}-{max(freqs):.0f} MHz "
          "(paper: near 200 MHz)")


if __name__ == "__main__":
    main()
