#!/usr/bin/env python3
"""Neorv32 memory exploration with the power-of-two restriction (Fig. 5).

Section IV-C: the Neorv32 VHDL top is explored over its instruction and
data memory size generics, "constrain[ed] ... only to the power of twos to
explore a larger parameter space without considering meaningless parameter
assignments".  The encoded GA variables are the exponents; the design sees
2^e bytes.

Run:  python examples/neorv32_pow2.py
"""

from repro.core import DseSession, MetricSpec, ParameterSpace
from repro.core.spaces import PowerOfTwoRange
from repro.designs import get_design
from repro.util.tables import render_table


def main() -> None:
    design = get_design("neorv32")

    # Explicit space construction, to show the restriction API; this matches
    # ParameterSpace.from_design(design).
    space = ParameterSpace([
        PowerOfTwoRange("MEM_INT_IMEM_SIZE", 12, 16),  # 4 KiB .. 64 KiB
        PowerOfTwoRange("MEM_INT_DMEM_SIZE", 12, 16),
    ])
    print(f"Explored space: {space.cardinality()} points "
          f"({' x '.join(space.names())})")

    session = DseSession(
        design=design,
        space=space,
        part="XC7K70T",
        metrics=[
            MetricSpec.minimize("LUT"),
            MetricSpec.minimize("FF"),
            MetricSpec.minimize("BRAM"),
            MetricSpec.maximize("frequency"),
        ],
        use_model=False,
        seed=5,
    )
    # 25 points total: a compact exploration enumerates most of the space.
    result = session.explore(generations=8, population=10)

    rows = [
        (
            i + 1,
            f"2^{p.parameters['MEM_INT_IMEM_SIZE'].bit_length() - 1}",
            f"2^{p.parameters['MEM_INT_DMEM_SIZE'].bit_length() - 1}",
            round(p.metrics["LUT"]),
            round(p.metrics["FF"]),
            round(p.metrics["BRAM"]),
            round(p.metrics["frequency"], 1),
        )
        for i, p in enumerate(result.pareto)
    ]
    print(render_table(
        ("Sol.", "IMEM [B]", "DMEM [B]", "LUT", "FF", "BRAM", "Fmax [MHz]"),
        rows,
        title=f"Neorv32 non-dominated solutions ({len(result.pareto)}; paper: 5)",
    ))

    # The Fig. 5 observation: memory-size steps move BRAM while the other
    # metrics barely move.
    by_mem = sorted(
        result.pareto,
        key=lambda p: p.parameters["MEM_INT_IMEM_SIZE"]
        + p.parameters["MEM_INT_DMEM_SIZE"],
    )
    if len(by_mem) >= 2:
        lo, hi = by_mem[0], by_mem[-1]
        print()
        print(f"BRAM at smallest memories : {lo.metrics['BRAM']:.0f}")
        print(f"BRAM at largest memories  : {hi.metrics['BRAM']:.0f}")
        delta_lut = abs(hi.metrics["LUT"] - lo.metrics["LUT"]) / lo.metrics["LUT"]
        print(f"LUT change across the same step: {delta_lut:.1%} "
              "(paper: 'almost unchanged')")


if __name__ == "__main__":
    main()
