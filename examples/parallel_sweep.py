#!/usr/bin/env python3
"""Exact-set sweep, in parallel, with power — design-automation mode at scale.

Dovado's first mode is the "exact exploration of a given set of
parameters".  This example sweeps a cartesian grid over the Corundum queue
manager, fans the evaluations over worker processes (bitwise-identical to
a serial run, by VEDA's determinism), includes the vectorless power
estimate as a metric, and renders the LUT-vs-frequency landscape as a
terminal scatter plot with the Pareto subset highlighted.

Run:  python examples/parallel_sweep.py [--workers 4]
"""

import argparse
import time

from repro.core import MetricSpec
from repro.core.evaluate import PointEvaluator
from repro.core.sweep import grid, run_sweep
from repro.designs import get_design
from repro.util.plots import Series, scatter_plot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    design = get_design("corundum-cqm")
    evaluator = PointEvaluator(
        source=design.source(),
        language=design.language,
        top=design.top,
        part="XC7K70T",
        metrics=[
            MetricSpec.minimize("LUT"),
            MetricSpec.maximize("frequency"),
            MetricSpec.minimize("power"),
        ],
        seed=17,
    )

    points = grid(
        OP_TABLE_SIZE=[8, 16, 24, 32, 40],
        QUEUE_COUNT=[4, 6, 8],
        PIPELINE=[2, 3, 4, 5],
    )
    print(f"Sweeping {len(points)} configurations "
          f"({args.workers} worker processes) ...")
    t0 = time.perf_counter()
    result = run_sweep(
        evaluator, points, workers=args.workers, design_name="corundum-cqm"
    )
    wall = time.perf_counter() - t0
    print(f"Done in {wall:.1f} s wall "
          f"({result.total_simulated_seconds() / 3600:.1f} simulated tool-hours).")
    print()

    front = result.pareto()
    print(f"Pareto subset: {len(front)} of {len(result)} configurations")
    best_f = result.best("frequency")
    best_p = result.best("power")
    print(f"Fastest  : {best_f}")
    print(f"Leanest  : {best_p}")
    print()

    dominated = [p for p in result.points if p not in front]
    print(scatter_plot(
        [
            Series(
                "dominated",
                tuple(p.metrics["LUT"] for p in dominated),
                tuple(p.metrics["frequency"] for p in dominated),
                mark=".",
            ),
            Series(
                "Pareto",
                tuple(p.metrics["LUT"] for p in front),
                tuple(p.metrics["frequency"] for p in front),
                mark="o",
            ),
        ],
        x_label="LUT",
        y_label="Fmax [MHz]",
        title="Corundum sweep landscape",
        width=64,
        height=16,
    ))


if __name__ == "__main__":
    main()
