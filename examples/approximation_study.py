#!/usr/bin/env python3
"""Approximation-model accuracy study — the Fig. 3 experiment.

Section IV-A assesses the Nadaraya-Watson model's mean squared error on
the cv32e40p FIFO while the dataset grows: this script pre-trains on
random tool runs, then tracks the leave-one-out MSE of the FF, LUT, and
frequency predictions as samples accumulate, and finally spot-checks the
model's predictions against fresh ground-truth tool runs.

Run:  python examples/approximation_study.py
"""

import numpy as np

from repro.core import MetricSpec, ParameterSpace
from repro.core.evaluate import PointEvaluator
from repro.core.fitness import ApproximateFitness
from repro.designs import get_design
from repro.estimation import Decision
from repro.util.tables import render_series, render_table

METRICS = [
    MetricSpec.minimize("FF"),
    MetricSpec.minimize("LUT"),
    MetricSpec.maximize("frequency"),
]


def main() -> None:
    design = get_design("cv32e40p-fifo")
    space = ParameterSpace.from_design(design, names=["DEPTH"])
    evaluator = PointEvaluator(
        source=design.source(), language=design.language, top=design.top,
        part="XC7K70T", metrics=METRICS, seed=1,
    )
    fitness = ApproximateFitness(
        evaluator=evaluator, space=space, use_model=True,
        pretrain_size=100, seed=1,   # the paper's M = 100 default
    )
    print("Pre-training on 100 random tool runs "
          "(paper: 'pre-trained on 100 samples') ...")
    fitness.pretrain()

    # MSE trace recorded during pre-training (aggregate over metrics).
    sizes = [n for n, _ in fitness.mse_trace][::10]
    mses = [m for _, m in fitness.mse_trace][::10]
    print(render_series(
        "samples", sizes, {"LOO MSE": mses},
        title="Model validation MSE vs dataset size (normalized units)",
    ))
    print()

    # Spot-check: model vs truth on unseen depths.
    control = fitness.control
    rows = []
    rng = np.random.default_rng(123)
    checked = 0
    for depth in rng.permutation(space.dimension("DEPTH").values()):
        x = np.array([float(space.dimension("DEPTH").encode(int(depth)))])
        if control.decide(x) != Decision.ESTIMATE:
            continue
        est = control.estimate(x)
        truth = evaluator.evaluate({"DEPTH": int(depth)})
        truth_vec = [truth.metrics[m.canonical_name()] for m in METRICS]
        rows.append((
            int(depth),
            *(f"{e:.0f}/{t:.0f}" for e, t in zip(est, truth_vec)),
        ))
        checked += 1
        if checked >= 8:
            break
    print(render_table(
        ("DEPTH", "FF est/true", "LUT est/true", "Fmax est/true"),
        rows,
        title="Model predictions vs ground-truth tool runs",
    ))
    print()
    stats = control.stats()
    print(f"Bandwidth (LOO-selected) : {stats['bandwidth']:.3g}")
    print(f"Adaptive threshold Γ     : {stats['threshold']:.3g}")
    print(f"Final LOO MSE            : {stats['loo_mse']:.3g}")


if __name__ == "__main__":
    main()
