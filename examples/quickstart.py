#!/usr/bin/env python3
"""Quickstart: evaluate one design point, then run a small DSE.

Mirrors the Dovado workflow end to end on the Corundum completion queue
manager case study:

1. *design automation* mode — evaluate two explicit configurations and
   print the tool reports' metrics;
2. *DSE* mode — a short NSGA-II exploration returning the non-dominated
   set of (LUT, frequency) trade-offs.

Run:  python examples/quickstart.py
"""

from repro.core import DseSession, MetricSpec
from repro.designs import get_design
from repro.util.tables import render_table


def main() -> None:
    design = get_design("corundum-cqm")
    print(f"Design      : {design.name} (top module `{design.top}`, {design.language})")
    print(f"Parameters  : " + ", ".join(
        f"{p.name}[{p.low}..{p.high}]" for p in design.params
    ))
    print()

    session = DseSession(
        design=design,
        part="XC7K70T",           # the paper's Kintex-7 target
        metrics=[MetricSpec.minimize("LUT"), MetricSpec.maximize("frequency")],
        use_model=False,          # direct tool evaluation for the demo
        seed=42,
    )

    # --- 1. single-point evaluation (design automation mode) --------------
    print("== Point evaluation mode ==")
    points = session.evaluate_points([
        {"OP_TABLE_SIZE": 8, "QUEUE_COUNT": 4, "PIPELINE": 2},
        {"OP_TABLE_SIZE": 32, "QUEUE_COUNT": 6, "PIPELINE": 5},
    ])
    for point in points:
        print(f"  {point}")
    print()

    # The generated TCL script for the last run, exactly what drives the tool:
    print("== Generated evaluation script (last point) ==")
    for line in session.evaluator.last_script.splitlines()[:14]:
        print(f"  {line}")
    print("  ...")
    print()

    # --- 2. design space exploration --------------------------------------
    print("== DSE mode (NSGA-II) ==")
    result = session.explore(generations=8, population=16)
    rows = [
        (
            p.parameters["OP_TABLE_SIZE"],
            p.parameters["QUEUE_COUNT"],
            p.parameters["PIPELINE"],
            round(p.metrics["LUT"]),
            round(p.metrics["frequency"], 1),
        )
        for p in result.pareto
    ]
    print(render_table(
        ("ops", "queues", "pipeline", "LUT", "Fmax [MHz]"),
        rows,
        title=f"Non-dominated set ({len(result.pareto)} points, "
              f"{result.evaluations} evaluations, "
              f"{result.simulated_seconds / 3600:.1f} simulated tool-hours)",
    ))


if __name__ == "__main__":
    main()
