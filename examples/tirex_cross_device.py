#!/usr/bin/env python3
"""TiReX cross-device exploration — the Figs. 6/7 + Table II study.

Runs the same TiReX design space (NCluster parallelism, stack, instruction
and data memories, all powers of two) on both of the paper's targets — the
16 nm Zynq UltraScale+ ZU3EG and the 28 nm Kintex-7 XC7K70T — and compares
the non-dominated sets, reproducing the technology-impact analysis
("the achievable frequencies are so different, e.g., 550 against 190 MHz,
even though configurations are quite similar").

Run:  python examples/tirex_cross_device.py
"""

from repro.core import DseSession, MetricSpec
from repro.designs import get_design
from repro.util.tables import render_table

PARTS = ("XCZU3EG-SBVA484-1", "XC7K70TFBV676-1")


def explore(part: str):
    design = get_design("tirex")
    session = DseSession(
        design=design,
        part=part,
        metrics=[
            MetricSpec.minimize("LUT"),
            MetricSpec.minimize("BRAM"),
            MetricSpec.maximize("frequency"),
        ],
        use_model=False,
        seed=9,
    )
    return session.explore(generations=10, population=16)


def main() -> None:
    results = {}
    for part in PARTS:
        print(f"Exploring TiReX on {part} ...")
        results[part] = explore(part)

    for part, result in results.items():
        rows = [
            (
                chr(ord("A") + i),
                p.parameters["NCLUSTER"],
                p.parameters["STACK_SIZE"],
                p.parameters["INSTR_MEM_SIZE"],
                p.parameters["DATA_MEM_SIZE"],
                round(p.metrics["LUT"]),
                round(p.metrics["BRAM"]),
                round(p.metrics["frequency"], 1),
            )
            for i, p in enumerate(result.pareto)
        ]
        print()
        print(render_table(
            ("Pt", "NCluster", "Stack", "IMem", "DMem", "LUT", "BRAM", "Fmax"),
            rows,
            title=f"{part}: {len(result.pareto)} non-dominated configurations",
        ))

    best = {
        part: max(p.metrics["frequency"] for p in r.pareto)
        for part, r in results.items()
    }
    zu, k7 = best[PARTS[0]], best[PARTS[1]]
    print()
    print(f"Best Fmax ZU3EG   : {zu:.0f} MHz  (paper: ~550 MHz)")
    print(f"Best Fmax XC7K70T : {k7:.0f} MHz  (paper: ~190 MHz)")
    print(f"Technology ratio  : {zu / k7:.2f}x (paper: ~2.9x)")
    all_nc1 = all(
        p.parameters["NCLUSTER"] == 1
        for r in results.values()
        for p in r.pareto
    )
    print(f"All non-dominated configs have NCluster=1: "
          f"{'yes (as in Table II)' if all_nc1 else 'NO'}")


if __name__ == "__main__":
    main()
