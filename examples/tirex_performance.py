#!/usr/bin/env python3
"""Performance-aware TiReX exploration + Roofline — the future-work features.

The paper's Table II has every non-dominated TiReX configuration at
NCluster = 1: without a performance metric, extra clusters only cost area
and frequency.  The conclusions note Dovado "lacks in run-time performance
modeling" and promise a static performance model and a Roofline view.

This example runs both extensions: a registered throughput model
(characters/second = NCluster × Fmax, amortized over context switches)
turns NCluster into a genuine trade-off dimension, and each front point is
placed on its own Roofline.

Run:  python examples/tirex_performance.py
"""

from repro.core import DseSession, MetricSpec
from repro.designs import get_design
from repro.devices import get_device
from repro.perf import build_roofline, render_roofline
from repro.synth import synthesize
from repro.util.tables import render_table


def main() -> None:
    design = get_design("tirex")   # registers the performance model

    session = DseSession(
        design=design,
        part="ZU3EG",
        metrics=[
            MetricSpec.minimize("LUT"),
            MetricSpec.minimize("BRAM"),
            MetricSpec.maximize("performance"),   # the new objective
        ],
        use_model=False,
        seed=11,
    )
    result = session.explore(generations=10, population=16)

    rows = [
        (
            p.parameters["NCLUSTER"],
            p.parameters["INSTR_MEM_SIZE"],
            round(p.metrics["LUT"]),
            round(p.metrics["BRAM"]),
            f"{p.metrics['performance'] / 1e9:.2f}",
        )
        for p in result.pareto
    ]
    print(render_table(
        ("NCluster", "IMem [K]", "LUT", "BRAM", "Throughput [Gchar/s]"),
        rows,
        title=f"Performance-aware TiReX front ({len(result.pareto)} points)",
    ))
    nclusters = sorted({p.parameters["NCLUSTER"] for p in result.pareto})
    print(f"\nNCluster values on the front: {nclusters}")
    print("(with throughput as an objective, multi-cluster configurations "
          "earn their area — compare Table II, where all are 1)")

    # Roofline for the widest configuration on the front.
    widest = max(result.pareto, key=lambda p: p.parameters["NCLUSTER"])
    synth = synthesize(
        design.module(), get_device("ZU3EG"), widest.parameters
    )
    # TiReX streams ~1 byte/char with a handful of ops per character.
    point = build_roofline(
        synth.mapped,
        fmax_mhz=widest.metrics["performance"]
        / (widest.parameters["NCLUSTER"] * 1e6),
        operational_intensity=4.0,
        achieved_gops=widest.metrics["performance"] * 4.0 / 1e9,
    )
    print()
    print(render_roofline(point))


if __name__ == "__main__":
    main()
