#!/usr/bin/env python3
"""DSE over a user-supplied module — no registered cost model needed.

Dovado's promise is that *any* parametrizable RTL module can be explored:
here a hand-written SystemVerilog systolic MAC array goes through the full
pipeline — our own parser extracts its interface, the box wrapper is
generated around it, elaboration falls back to the interface-driven
heuristic model, and NSGA-II explores the (ROWS, COLS, ACC_WIDTH) space.

Run:  python examples/custom_module_dse.py
"""

from pathlib import Path

from repro.core import DseSession, MetricSpec, ParameterSpace
from repro.core.spaces import IntRange
from repro.hdl import parse_source, lint_module
from repro.util.tables import render_table

# The RTL lives next to this script so the CI self-lint step (and any user)
# can run `dovado-repro lint examples/mac_array.sv` against the same file.
CUSTOM_RTL = (Path(__file__).parent / "mac_array.sv").read_text(encoding="utf-8")


def main() -> None:
    # Show what the frontend extracted before exploring.
    module = parse_source(CUSTOM_RTL, "systemverilog")[0]
    print(f"Parsed module `{module.name}`")
    print("  parameters:", ", ".join(
        f"{p.name}={p.default_value(module.default_environment())}"
        for p in module.free_parameters()
    ))
    print("  ports     :", ", ".join(
        f"{p.name}[{p.width(module.default_environment())}b]"
        for p in module.ports
    ))
    for finding in lint_module(module):
        print("  lint      :", finding)
    print()

    space = ParameterSpace([
        IntRange("ROWS", 2, 16),
        IntRange("COLS", 2, 16),
        IntRange("ACC_WIDTH", 16, 48),
    ])
    session = DseSession(
        source=CUSTOM_RTL,
        language="systemverilog",
        top="mac_array",
        space=space,
        part="ZU3EG",
        metrics=[
            MetricSpec.minimize("LUT"),
            MetricSpec.minimize("DSP"),
            MetricSpec.maximize("frequency"),
        ],
        use_model=True,        # approximation on: the space is big (15*15*33)
        pretrain_size=40,
        seed=3,
    )
    result = session.explore(generations=10, population=16)

    rows = [
        (
            p.parameters["ROWS"],
            p.parameters["COLS"],
            p.parameters["ACC_WIDTH"],
            round(p.metrics["LUT"]),
            round(p.metrics["DSP"]),
            round(p.metrics["frequency"], 1),
        )
        for p in result.pareto[:12]
    ]
    print(render_table(
        ("ROWS", "COLS", "ACC_WIDTH", "LUT", "DSP", "Fmax [MHz]"),
        rows,
        title=f"mac_array non-dominated set (showing {len(rows)} of "
              f"{len(result.pareto)})",
    ))
    print()
    stats = result.stats
    print(f"Fitness queries answered by the model : {stats.get('estimated', 0)}")
    print(f"Real tool runs                        : {result.tool_runs}")
    print(f"Simulated tool-hours                  : "
          f"{result.simulated_seconds / 3600:.2f}")


if __name__ == "__main__":
    main()
