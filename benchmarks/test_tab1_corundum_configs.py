"""Table I — non-dominated Corundum queue-manager configurations.

Paper setup (Section IV-B): completion queue manager on the XC7K70T,
approximator disabled, objectives LUT / registers / BRAM / frequency,
explored knobs: outstanding operations, number of queues, pipeline stages.
Table I lists 13 non-dominated configurations with operations 8–35, queues
4–7, pipeline 2–5 — low operation counts and queue counts dominate, with a
spread of pipeline depths trading registers for frequency.

Shape checks: a healthy non-dominated set (≥5 configs), parameters inside
the paper's reported envelope with the same "mostly minimal queues, small
op tables, varied pipelines" structure.
"""

from __future__ import annotations

from common import corundum_run, emit
from repro.util.tables import render_table


def test_tab1_corundum_configs(benchmark):
    result = benchmark.pedantic(corundum_run, rounds=1, iterations=1)
    pareto = result.pareto
    assert len(pareto) >= 5, "expected a Table-I-sized non-dominated set"

    labels = [chr(ord("A") + i) for i in range(len(pareto))]
    rows = [
        (
            label,
            p.parameters["OP_TABLE_SIZE"],
            p.parameters["QUEUE_COUNT"],
            p.parameters["PIPELINE"],
        )
        for label, p in zip(labels, pareto)
    ]
    text = render_table(
        ("Design Point", "# operations outstanding", "# of queues", "Pipe. stages"),
        rows,
        title=f"Table I — Corundum non-dominated configurations ({len(pareto)} points; paper: 13)",
    )
    emit("tab1_corundum_configs", text)

    ops = [p.parameters["OP_TABLE_SIZE"] for p in pareto]
    queues = [p.parameters["QUEUE_COUNT"] for p in pareto]
    pipes = [p.parameters["PIPELINE"] for p in pareto]

    # Paper envelope: ops 8-35, queues 4-7, pipeline 2-5.
    assert min(ops) <= 10, "small op tables should appear on the front"
    assert all(4 <= q <= 8 for q in queues)
    assert all(2 <= s <= 5 for s in pipes)
    # Queue counts concentrate at the minimum (Table I: ten of thirteen
    # configurations use 4 queues).
    assert queues.count(min(queues)) >= len(queues) // 2
    # Pipeline depth varies across the front (the register/frequency trade).
    assert len(set(pipes)) >= 2
