"""Ablation 4 — estimator families on the synthetic dataset.

Paper future work: "explore different statistical models, either
parametric or non-parametric"; the paper itself reports that "more complex
models with higher variance, such as Neural Networks, showed overfitting
on such small datasets".  This ablation scores four families by
leave-one-out MSE on a real synthetic dataset (cv32e40p FIFO tool runs):
Nadaraya-Watson (the shipped default), k-NN, thin-plate RBF interpolation,
and a degree-2 polynomial ridge (the parametric comparator).

Shape checks: the non-parametric families are competitive; the parametric
one does not win on the paper's small-dataset regime.
"""

from __future__ import annotations

import numpy as np

from common import emit
from repro.core import MetricSpec, ParameterSpace
from repro.core.evaluate import PointEvaluator
from repro.designs import get_design
from repro.estimation.models import compare_estimators
from repro.util.rng import as_generator
from repro.util.tables import render_table

METRICS = [
    MetricSpec.minimize("FF"),
    MetricSpec.minimize("LUT"),
    MetricSpec.maximize("frequency"),
]


def _dataset(n=60):
    design = get_design("cv32e40p-fifo")
    space = ParameterSpace.from_design(design, names=["DEPTH"])
    evaluator = PointEvaluator(
        source=design.source(), language=design.language, top=design.top,
        part="XC7K70T", metrics=METRICS, seed=77,
    )
    rng = as_generator(77)
    depths = rng.permutation(space.dimension("DEPTH").values())[:n]
    X = np.array([[int(d)] for d in depths], dtype=float)
    Y = np.array([
        [evaluator.evaluate({"DEPTH": int(d)}).metrics[m.canonical_name()]
         for m in METRICS]
        for d in depths
    ])
    return X, Y


def _experiment():
    X_small, Y_small = _dataset(n=20)   # the paper's "small sample" regime
    X_big, Y_big = _dataset(n=60)
    return {
        "small (20 runs)": compare_estimators(X_small, Y_small),
        "medium (60 runs)": compare_estimators(X_big, Y_big),
    }


def test_abl_estimators(benchmark):
    scores = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    names = list(next(iter(scores.values())).keys())
    rows = [
        (regime, *(f"{s[name]:.4g}" for name in names))
        for regime, s in scores.items()
    ]
    text = render_table(
        ("Dataset", *names),
        rows,
        title="Ablation — LOO MSE per estimator family (normalized metrics; "
              "lower is better)",
    )
    emit("abl_estimators", text)

    for regime, s in scores.items():
        best = min(s, key=s.get)
        # The shipped NWM must be competitive: within 3x of the best.
        assert s["nadaraya-watson"] <= 3.0 * s[best], (regime, s)
    # Once the dataset grows, the non-parametric default pulls clearly
    # ahead of the parametric comparator — the regime Dovado operates in
    # after its 100-run pretraining.
    medium = scores["medium (60 runs)"]
    assert medium["nadaraya-watson"] < medium["ridge"], medium
