"""Perf — the evaluation pipeline (store + stage caches + scheduler).

Times six experiments on the Corundum and FIFO case studies, asserting
bitwise identity against the serial cold-cache references throughout
(the harness in ``perf_engine.py`` does the asserting):

* serial-vs-pool DSE generations (persistent worker pool),
* cold-vs-warm persistent result store (cross-run reuse),
* per-batch-barrier vs out-of-order pipelined scheduling,
* per-insert vs incremental control-model refits at paper-scale n=300,
* ungated vs speculative multi-fidelity gated exploration (simulated
  seconds cut vs hypervolume regret of the reported front),
* fixed/uncoalesced vs adaptive/coalesced DSE serving of overlapping
  tenants (identical fronts, one combined tool-run bill, wall-clock
  throughput under emulated tool latency).

The timing payload lands in ``BENCH_perf_engine.json`` at the repo root
so future PRs have a perf trajectory to compare against.

The acceptance bars are the *host-independent* ones: the warm store must
cut tool runs ≥5×, out-of-order scheduling must be ≥1.3× under emulated
tool latency, the incremental refit policy must be ≥3× faster at n=300,
the fidelity gate must cut simulated tool seconds ≥2× at ≤1%
hypervolume regret, and adaptive/coalesced serving must be ≥1.3× over
the fixed/uncoalesced baseline under emulated tool latency.  Pool
wall-clock speedup is recorded but not thresholded — CI
boxes with one core cannot show it, and the pool's correctness
(bitwise-identical fronts and cost accounting) is the part that must
never regress.
"""

from __future__ import annotations

import json
from pathlib import Path

from common import emit
from perf_engine import run_perf_engine
from repro.util.tables import render_table

BENCH_JSON = Path(__file__).parent.parent / "BENCH_perf_engine.json"


def test_perf_engine(benchmark):
    payload = benchmark.pedantic(run_perf_engine, rounds=1, iterations=1)

    refit = payload["refit"]
    warm = payload["warm_store"]
    ooo = payload["ooo"]
    dse_rows = [
        (d["design"], d["evaluations"], d["pareto_points"],
         d["serial_wall_s"], d["pool_wall_s"], "yes")
        for d in payload["dse_pool"]
    ]
    text = render_table(
        ("Design", "Evals", "Pareto", "serial s", "pool s", "identical"),
        dse_rows,
        title="Perf — DSE generations, serial vs persistent pool (workers=2)",
    )
    text += "\n" + render_table(
        ("Design", "Evals", "cold runs", "warm runs", "ratio", "identical"),
        [(warm["design"], warm["evaluations"], warm["cold_tool_runs"],
          warm["warm_tool_runs"], f"{warm['tool_run_ratio']}x", "yes")],
        title="Perf — DSE with persistent result store, cold vs warm",
    )
    text += "\n" + render_table(
        ("Design", "Points", "Workers", "barrier s", "pipelined s",
         "speedup", "identical"),
        [(ooo["design"], ooo["points"], ooo["workers"],
          ooo["blocking_wall_s"], ooo["pipelined_wall_s"],
          f"{ooo['speedup']}x", "yes")],
        title="Perf — batch scheduling, per-batch barrier vs out-of-order",
    )
    text += "\n" + render_table(
        ("n", "per-insert s", "incremental s", "speedup", "LOO scans (was)", "identical"),
        [(refit["n_points"], refit["full_s"], refit["incremental_s"],
          f"{refit['speedup']}x", f"{refit['incremental_refits']} ({refit['full_refits']})",
          "yes")],
        title="Perf — control-model refit, per-insert vs incremental policy",
    )
    gate = payload["fidelity_gate"]
    text += "\n" + render_table(
        ("Design", "full sim s", "gated sim s", "reduction", "HV regret",
         "promoted", "skipped"),
        [(gate["design"], gate["full_simulated_s"], gate["gated_simulated_s"],
          f"{gate['reduction']}x", f"{gate['hv_regret']:.4%}",
          gate["promoted"], gate["skipped"])],
        title="Perf — speculative multi-fidelity gate, off vs on",
    )
    serve = payload["serve"]
    text += "\n" + render_table(
        ("Design", "Jobs", "serial runs", "paid runs", "coalesced",
         "fixed s", "adaptive s", "speedup", "identical"),
        [(serve["design"], serve["jobs"], serve["serial_tool_runs"],
          serve["combined_tool_runs"], serve["coalesced_hits"],
          serve["baseline_wall_s"], serve["adaptive_wall_s"],
          f"{serve['speedup']}x", "yes")],
        title="Perf — DSE service, fixed/uncoalesced vs adaptive/coalesced",
    )
    emit("perf_engine", text)

    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    assert all(d["identical"] for d in payload["dse_pool"])
    assert warm["identical"] and ooo["identical"] and refit["identical"]
    assert warm["tool_run_ratio"] >= 5.0, (
        f"warm store must cut tool runs >=5x, got {warm['tool_run_ratio']}x"
    )
    assert ooo["speedup"] >= 1.3, (
        f"out-of-order scheduling must be >=1.3x at workers={ooo['workers']}, "
        f"got {ooo['speedup']}x"
    )
    assert refit["speedup"] >= 3.0, (
        f"incremental refit must be >=3x at n={refit['n_points']}, "
        f"got {refit['speedup']}x"
    )
    assert gate["identical_off"]
    assert gate["reduction"] >= 2.0, (
        f"fidelity gate must cut simulated seconds >=2x, got {gate['reduction']}x"
    )
    assert gate["hv_regret"] <= 0.01, (
        f"fidelity gate regret budget is 1%, got {gate['hv_regret']:.2%}"
    )
    assert serve["identical"]
    assert serve["combined_tool_runs"] == serve["serial_tool_runs"], (
        "tenants must together pay exactly one serial tool-run bill"
    )
    assert serve["speedup"] >= 1.3, (
        f"adaptive+coalesced serving must be >=1.3x over the fixed/"
        f"uncoalesced baseline, got {serve['speedup']}x"
    )
