"""Figure 5 — Neorv32 non-dominated solutions under the power-of-two rule.

Paper setup (Section IV-C): Neorv32 top module, instruction/data memory
sizes restricted to powers of two, XC7K70T, approximator off.  Fig. 5
shows five non-dominated solutions whose "main difference ... is in the
high number of BRAMs": the 2^15 configuration jumps in BRAM versus the
2^14/2^13 ones "while leaving almost unchanged the other metrics".

Shape checks: a compact front (3-8 points), memory size spread across the
front, BRAM strictly increasing with total memory, and LUT/frequency
near-flat across memory choices.
"""

from __future__ import annotations

from common import FOUR_METRICS, emit
from repro.core import DseSession
from repro.designs import get_design
from repro.util.tables import render_table


def _run():
    design = get_design("neorv32")
    session = DseSession(
        design=design,
        part="XC7K70T",
        metrics=FOUR_METRICS,
        use_model=False,
        seed=2021,
    )
    return session.explore(generations=10, population=12)


def test_fig5_neorv32(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    pareto = result.pareto
    assert 2 <= len(pareto) <= 10

    rows = [
        (
            i + 1,
            p.parameters["MEM_INT_IMEM_SIZE"],
            p.parameters["MEM_INT_DMEM_SIZE"],
            round(p.metrics["LUT"]),
            round(p.metrics["FF"]),
            round(p.metrics["BRAM"]),
            round(p.metrics["frequency"], 1),
        )
        for i, p in enumerate(pareto)
    ]
    text = render_table(
        ("Sol.", "IMEM [B]", "DMEM [B]", "LUTs", "FFs", "BRAM", "Fmax [MHz]"),
        rows,
        title=f"Fig.5 — Neorv32 non-dominated solutions ({len(pareto)} points; paper: 5)",
    )
    emit("fig5_neorv32", text)

    # Power-of-two restriction respected by construction.
    for p in pareto:
        for key in ("MEM_INT_IMEM_SIZE", "MEM_INT_DMEM_SIZE"):
            v = p.parameters[key]
            assert v >= 1 and (v & (v - 1)) == 0

    # BRAM monotone in total memory bytes across the front.
    by_mem = sorted(
        pareto,
        key=lambda p: p.parameters["MEM_INT_IMEM_SIZE"]
        + p.parameters["MEM_INT_DMEM_SIZE"],
    )
    brams = [p.metrics["BRAM"] for p in by_mem]
    assert brams == sorted(brams)
    assert brams[-1] > brams[0], "memory growth must show in BRAM"

    # "Almost unchanged" other metrics: LUT spread below 15 %.
    luts = [p.metrics["LUT"] for p in pareto]
    assert (max(luts) - min(luts)) / min(luts) < 0.15
