"""Ablation 5 — the run-time algorithm chooser.

Paper future work: "we envision an investigation on a run-time choice
among various algorithms based on information from synthetic dataset
generation."  This ablation exercises both mechanisms on the Corundum
space:

1. the heuristic recommendation (space size + dataset ruggedness);
2. the empirical probe: equal small budgets for NSGA-II, MOSA, and random
   search, scored by hypervolume-per-evaluation.

Shape checks: the probe's winner is never random search; merged probe
archives yield a valid front.
"""

from __future__ import annotations

from common import emit
from repro.core import DseSession
from repro.core.fitness import DseProblem
from repro.designs import get_design
from repro.moo.portfolio import (
    pareto_of_merged,
    probe_and_choose,
    recommend_algorithm,
)
from repro.util.tables import render_kv, render_table


def _experiment():
    design = get_design("corundum-cqm")
    session = DseSession(
        design=design, part="XC7K70T",
        use_model=True, pretrain_size=30, seed=2021,
    )
    session.fitness.pretrain()
    problem = DseProblem(session.fitness)

    recommendation = recommend_algorithm(
        problem, session.fitness.control.dataset
    )
    choice, merged, scores = probe_and_choose(problem, probe_budget=40, seed=2021)
    front = pareto_of_merged(merged)
    return recommendation, choice, scores, len(merged), len(front)


def test_abl_portfolio(benchmark):
    recommendation, choice, scores, merged_n, front_n = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )

    rows = [(name, f"{v:.4g}") for name, v in sorted(
        scores.items(), key=lambda kv: -kv[1]
    )]
    text = render_table(
        ("Algorithm", "HV per evaluation"),
        rows,
        title="Ablation — probe-based algorithm choice (Corundum CQM)",
    )
    text += "\n\n" + render_kv({
        "heuristic recommendation": f"{recommendation.name} ({recommendation.reason})",
        "probe winner": choice.name,
        "merged probe archive": merged_n,
        "merged front size": front_n,
    })
    emit("abl_portfolio", text)

    assert choice.name != "random", scores
    assert front_n >= 1
    assert recommendation.name in ("nsga2", "mosa", "exhaustive")
