"""Figure 6 + Table II (top) — TiReX exploration on the Zynq US+ ZU3EG.

Paper setup (Section IV-D): TiReX with the NCluster parallelism knob plus
stack/instruction-memory/data-memory sizes, powers of two, on the 16 nm
ZU3EG.  Table II (top) lists four non-dominated configurations, all with
NCluster = 1 and small memories; the achievable frequency is ~550 MHz.

Shape checks: every front point has NCluster = 1, small instruction/data
memories dominate, and frequencies land in the 16 nm band (≫ the XC7K70T
run of Fig. 7).
"""

from __future__ import annotations

from common import emit, tirex_run
from repro.util.tables import render_table


def _rows(pareto):
    return [
        (
            chr(ord("A") + i),
            p.parameters["NCLUSTER"],
            p.parameters["STACK_SIZE"],
            p.parameters["INSTR_MEM_SIZE"],
            p.parameters["DATA_MEM_SIZE"],
            round(p.metrics["LUT"]),
            round(p.metrics["BRAM"]),
            round(p.metrics["frequency"], 1),
        )
        for i, p in enumerate(pareto)
    ]


HEADERS = (
    "Point", "NCluster", "Stack", "IMem [K]", "DMem [K]",
    "LUTs", "BRAM", "Fmax [MHz]",
)


def test_fig6_tirex_zu3eg(benchmark):
    result = benchmark.pedantic(lambda: tirex_run("ZU3EG"), rounds=1, iterations=1)
    pareto = result.pareto
    assert len(pareto) >= 2

    text = render_table(
        HEADERS, _rows(pareto),
        title=f"Fig.6/Table II (top) — TiReX on ZU3EG "
              f"({len(pareto)} non-dominated points; paper: 4, ~550 MHz)",
    )
    emit("fig6_tirex_zu3eg", text)

    # Table II: every non-dominated configuration has NCluster = 1.
    assert all(p.parameters["NCLUSTER"] == 1 for p in pareto)
    # Small memories dominate (paper: IMem 2^3, DMem 2^3/2^4).
    assert min(p.parameters["INSTR_MEM_SIZE"] for p in pareto) == 8
    # 16 nm frequency band.
    freqs = [p.metrics["frequency"] for p in pareto]
    assert all(380 <= f <= 700 for f in freqs), freqs
