"""Figure 7 + Table II (bottom) — TiReX exploration on the Kintex-7 XC7K70T.

The 28 nm counterpart of Fig. 6: Table II (bottom) lists eight
non-dominated configurations, again all NCluster = 1, with ~190 MHz
frequencies — the paper's technology-impact observation ("the achievable
frequencies are so different, e.g., 550 against 190 MHz, even though
configurations are quite similar").

Shape checks: NCluster = 1 everywhere, the 28 nm frequency band, and the
cross-device ratio against the Fig. 6 run (>2x, approaching the paper's
~2.9x).
"""

from __future__ import annotations

from common import emit, tirex_run
from test_fig6_tirex_zu3eg import HEADERS, _rows

from repro.util.tables import render_table


def test_fig7_tirex_xc7k(benchmark):
    result = benchmark.pedantic(lambda: tirex_run("XC7K70T"), rounds=1, iterations=1)
    pareto = result.pareto
    assert len(pareto) >= 2

    text = render_table(
        HEADERS, _rows(pareto),
        title=f"Fig.7/Table II (bottom) — TiReX on XC7K70T "
              f"({len(pareto)} non-dominated points; paper: 8, ~190 MHz)",
    )

    # Technology-impact comparison against the ZU3EG run.
    zu = tirex_run("ZU3EG")
    best_k7 = max(p.metrics["frequency"] for p in pareto)
    best_zu = max(p.metrics["frequency"] for p in zu.pareto)
    ratio = best_zu / best_k7
    text += (
        f"\n\nTechnology impact: best Fmax ZU3EG {best_zu:.0f} MHz vs "
        f"XC7K70T {best_k7:.0f} MHz (ratio {ratio:.2f}x; paper ~2.9x)"
    )
    emit("fig7_tirex_xc7k", text)

    assert all(p.parameters["NCLUSTER"] == 1 for p in pareto)
    freqs = [p.metrics["frequency"] for p in pareto]
    # The bulk of the front sits in the 28 nm band around 190 MHz; huge-stack
    # outliers can ride onto a 4-objective front through register count.
    in_band = [f for f in freqs if 150 <= f <= 240]
    assert len(in_band) >= 0.7 * len(freqs), freqs
    assert all(100 <= f <= 240 for f in freqs), freqs
    assert ratio > 2.0
