"""Ablation 2 — the incremental synthesis/implementation flow.

Section III-B2: Vivado's incremental flow reuses per-run checkpoints so
re-runs skip work on design parts parametrization did not touch.  VEDA
models this as placement warm-starting plus runtime scaling with the
unchanged-cell fraction.  This ablation runs the same Corundum exploration
with and without the incremental flow and compares accumulated simulated
tool time.

Shape checks: the incremental run is cheaper, with identical exploration
budget; savings are bounded (the incremental floor means reuse is never
free).
"""

from __future__ import annotations

from common import emit
from repro.core import DseSession
from repro.designs import get_design
from repro.util.tables import render_table


def _run(incremental: bool):
    design = get_design("corundum-cqm")
    session = DseSession(
        design=design,
        part="XC7K70T",
        use_model=False,
        incremental=incremental,
        seed=2021,
    )
    result = session.explore(generations=6, population=12)
    return result, session.fitness.simulated_seconds


def _experiment():
    return {"full": _run(False), "incremental": _run(True)}


def test_abl_incremental(benchmark):
    runs = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    (full_res, full_s) = runs["full"]
    (incr_res, incr_s) = runs["incremental"]

    # Warm-started placement legitimately shifts QoR, so the two GA
    # trajectories may evaluate slightly different point counts; compare
    # *per-evaluation* tool cost.
    full_per = full_s / full_res.evaluations
    incr_per = incr_s / incr_res.evaluations
    saving = 1.0 - incr_per / full_per
    rows = [
        ("full flow", full_res.evaluations, round(full_s / 3600, 2),
         round(full_per, 1)),
        ("incremental flow", incr_res.evaluations, round(incr_s / 3600, 2),
         round(incr_per, 1)),
    ]
    text = render_table(
        ("Mode", "Tool runs", "Tool-hours (simulated)", "s / run"),
        rows,
        title=f"Ablation — incremental flow (Corundum CQM); per-run saving {saving:.1%}",
    )
    emit("abl_incremental", text)

    assert incr_per < full_per, "incremental flow must save tool time per run"
    assert saving < 0.75, "savings must respect the incremental floor"
