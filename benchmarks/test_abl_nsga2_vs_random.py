"""Ablation 3 — NSGA-II against random search at equal evaluation budget.

The paper motivates NSGA-II as "a general DSE solver with adequate
performance"; this ablation quantifies that choice on the Corundum space:
run the DSE, then give uniform random search exactly the same number of
tool evaluations, and compare dominated hypervolume (LUT minimized,
frequency maximized, against a common reference point).

Shape checks: NSGA-II's front hypervolume matches or beats random search's.
"""

from __future__ import annotations

import numpy as np

from common import emit
from repro.core import DseSession
from repro.core.fitness import DseProblem
from repro.designs import get_design
from repro.moo import hypervolume
from repro.moo.baselines import pareto_of, random_search
from repro.util.tables import render_table


def _experiment():
    design = get_design("corundum-cqm")
    session = DseSession(
        design=design, part="XC7K70T", use_model=False, seed=2021
    )
    nsga = session.explore(generations=10, population=16)

    # Equal budget for random search on an identical, fresh problem.
    session_rs = DseSession(
        design=design, part="XC7K70T", use_model=False, seed=2021
    )
    problem = DseProblem(session_rs.fitness)
    rs_pop = random_search(problem, nsga.evaluations, seed=2021)

    # Common reference point: worst observed values padded by 10 %.
    all_F = np.vstack([nsga.raw.archive.F, rs_pop.F])
    ref = all_F.max(axis=0) * 1.1 + 1.0
    hv_nsga = hypervolume(nsga.raw.archive.F, ref)
    hv_rs = hypervolume(pareto_of(rs_pop).F, ref)
    return nsga, rs_pop, hv_nsga, hv_rs


def test_abl_nsga2_vs_random(benchmark):
    nsga, rs_pop, hv_nsga, hv_rs = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    rs_front = pareto_of(rs_pop)
    rows = [
        ("NSGA-II", nsga.evaluations, len(nsga.pareto), round(hv_nsga, 1)),
        ("random search", len(rs_pop), len(rs_front), round(hv_rs, 1)),
    ]
    text = render_table(
        ("Strategy", "Evaluations", "Front size", "Hypervolume"),
        rows,
        title="Ablation — NSGA-II vs random search (Corundum CQM, equal budget)",
    )
    emit("abl_nsga2_vs_random", text)

    assert hv_nsga >= hv_rs * 0.98, (
        f"NSGA-II ({hv_nsga:.1f}) should not lose to random ({hv_rs:.1f})"
    )
