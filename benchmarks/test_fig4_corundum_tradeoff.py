"""Figure 4 — quantitative trade-offs of the Corundum non-dominated set.

Fig. 4 plots the metric values of the Table I configurations: "the module
is constant in the number of BRAMs needed, while the LUTs and Registers
numbers vary according [to] Table I configurations.  On the other hand,
this module achieves a running frequency near 200 MHz."

Shape checks: BRAM constant across every non-dominated point, LUT and FF
columns actually spread, all frequencies in the neighbourhood of 200 MHz.
"""

from __future__ import annotations

from common import corundum_run, emit
from repro.util.tables import render_table


def test_fig4_corundum_tradeoff(benchmark):
    result = benchmark.pedantic(corundum_run, rounds=1, iterations=1)
    pareto = result.pareto

    labels = [chr(ord("A") + i) for i in range(len(pareto))]
    rows = [
        (
            label,
            round(p.metrics["LUT"]),
            round(p.metrics["FF"]),
            round(p.metrics["BRAM"]),
            round(p.metrics["frequency"], 1),
        )
        for label, p in zip(labels, pareto)
    ]
    text = render_table(
        ("Point", "LUTs", "Registers", "BRAM", "Fmax [MHz]"),
        rows,
        title="Fig.4 — Corundum solution trade-offs "
              "(paper: BRAM constant, Fmax near 200 MHz)",
    )
    from repro.util.plots import pareto_plot

    text += "\n\n" + pareto_plot(
        pareto, "LUT", "frequency",
        title="Fig.4 scatter — LUTs vs Fmax [MHz]", width=56, height=14,
    )
    emit("fig4_corundum_tradeoff", text)

    brams = {p.metrics["BRAM"] for p in pareto}
    assert len(brams) == 1, "BRAM must be constant across the front"

    luts = [p.metrics["LUT"] for p in pareto]
    ffs = [p.metrics["FF"] for p in pareto]
    assert max(luts) - min(luts) > 0.05 * min(luts), "LUTs should vary"
    assert max(ffs) - min(ffs) > 0.05 * min(ffs), "Registers should vary"

    freqs = [p.metrics["frequency"] for p in pareto]
    assert all(140 <= f <= 260 for f in freqs), (
        f"frequencies {freqs} should sit near 200 MHz"
    )
