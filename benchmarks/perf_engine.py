"""Fast-evaluation-engine microbenchmark (shared harness).

Two experiments prove the engine and chart its perf trajectory:

- **DSE fan-out** — the same no-model NSGA-II exploration run serially and
  over the persistent worker pool.  The assertion is *bitwise identity*:
  Pareto parameters, metric vectors, evaluation counts, and accumulated
  simulated tool seconds must match exactly (VEDA runs are pure per
  point, so the pool may not change a single bit).
- **Refit policy** — inserting n tool results into the control model with
  the per-insert LOO rescan (``RefitPolicy(every=1)``, the original
  behaviour) versus the incremental policy (periodic rescan + Γ-drift
  trigger + one exact refit at the end).  The final model state must be
  bitwise identical (the LOO scan is a pure function of the dataset) and
  the incremental path must be ≥3× faster at the paper-scale n=300.

``run_perf_engine(smoke=True)`` shrinks every size so the correctness
assertions run inside the tier-1 suite without timing thresholds; the
benchmark run writes the timing payload to ``BENCH_perf_engine.json`` so
future PRs can track the trajectory.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import DseSession
from repro.designs import get_design
from repro.estimation import ControlModel, Dataset, RefitPolicy

__all__ = ["dse_pool_bench", "refit_bench", "run_perf_engine"]


def _pareto_signature(result) -> list[tuple]:
    return sorted(
        (tuple(sorted(p.parameters.items())), tuple(sorted(p.metrics.items())))
        for p in result.pareto
    )


def _dse_run(design_name: str, workers: int, generations: int, population: int):
    session = DseSession(
        design=get_design(design_name),
        part="XC7K70T",
        use_model=False,
        seed=2021,
        workers=workers,
    )
    try:
        start = time.perf_counter()
        result = session.explore(generations=generations, population=population)
        wall = time.perf_counter() - start
    finally:
        session.close()
    return result, wall


def dse_pool_bench(
    design_name: str = "corundum-cqm",
    generations: int = 5,
    population: int = 12,
    workers: int = 2,
) -> dict:
    """Serial vs pooled DSE generations; asserts bitwise-identical results."""
    serial, serial_wall = _dse_run(design_name, 0, generations, population)
    pooled, pooled_wall = _dse_run(design_name, workers, generations, population)

    assert _pareto_signature(serial) == _pareto_signature(pooled), (
        f"{design_name}: pooled Pareto front diverged from the serial reference"
    )
    assert serial.evaluations == pooled.evaluations
    assert serial.simulated_seconds == pooled.simulated_seconds, (
        f"{design_name}: pooled cost accounting diverged"
    )
    return {
        "design": design_name,
        "workers": workers,
        "generations": generations,
        "population": population,
        "evaluations": serial.evaluations,
        "pareto_points": len(serial.pareto),
        "serial_wall_s": round(serial_wall, 4),
        "pool_wall_s": round(pooled_wall, 4),
        "speedup": round(serial_wall / pooled_wall, 3) if pooled_wall else None,
        "identical": True,
    }


def _refit_run(policy: RefitPolicy, X: np.ndarray, Y: np.ndarray):
    control = ControlModel(
        dataset=Dataset(n_var=X.shape[1], metric_names=("LUT", "frequency")),
        refit_policy=policy,
    )
    start = time.perf_counter()
    for x, y in zip(X, Y):
        control.record(x, y)
    control.refit()  # exact refit on demand: both policies end aligned
    return control, time.perf_counter() - start


def refit_bench(
    n_points: int = 300,
    n_var: int = 4,
    every: int = 16,
    gamma_drift: float = 0.05,
    seed: int = 7,
) -> dict:
    """Per-insert vs incremental refit; asserts identical final state."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 64, size=(n_points, n_var)).astype(float)
    Y = np.stack(
        [X.sum(axis=1) * 2.0, 400.0 - X[:, 0]], axis=1
    ) + rng.normal(0.0, 1.0, (n_points, 2))

    full, full_s = _refit_run(RefitPolicy(every=1), X, Y)
    incremental, incremental_s = _refit_run(
        RefitPolicy(every=every, gamma_drift=gamma_drift), X, Y
    )

    assert incremental.model.bandwidth == full.model.bandwidth
    assert incremental.threshold == full.threshold
    assert incremental.last_loo_mse == full.last_loo_mse
    probe = X[: min(16, n_points)] + 0.5
    for q in probe:
        assert (incremental.model.predict(q) == full.model.predict(q)).all(), (
            "incremental refit produced different predictions"
        )
    return {
        "n_points": n_points,
        "n_var": n_var,
        "policy": {"every": every, "gamma_drift": gamma_drift},
        "full_refits": full.refits,
        "incremental_refits": incremental.refits,
        "full_s": round(full_s, 4),
        "incremental_s": round(incremental_s, 4),
        "speedup": round(full_s / incremental_s, 2) if incremental_s else None,
        "identical": True,
    }


def run_perf_engine(smoke: bool = False) -> dict:
    """The whole microbenchmark; smoke mode shrinks sizes for tier-1."""
    if smoke:
        designs = [("cv32e40p-fifo", 2, 8)]
        refit = refit_bench(n_points=40, every=8, gamma_drift=0.05)
    else:
        designs = [("corundum-cqm", 5, 12), ("cv32e40p-fifo", 5, 12)]
        refit = refit_bench(n_points=300, every=16, gamma_drift=0.05)
    dse = [
        dse_pool_bench(name, generations=gens, population=pop)
        for name, gens, pop in designs
    ]
    return {"smoke": smoke, "dse_pool": dse, "refit": refit}
