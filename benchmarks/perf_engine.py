"""Fast-evaluation-engine microbenchmark (shared harness).

Seven experiments prove the engine and chart its perf trajectory:

- **DSE fan-out** — the same no-model NSGA-II exploration run serially and
  over the persistent worker pool.  The assertion is *bitwise identity*:
  Pareto parameters, metric vectors, evaluation counts, and accumulated
  simulated tool seconds must match exactly (VEDA runs are pure per
  point, so the pool may not change a single bit).
- **Warm store** — the same exploration run cold (fresh persistent result
  store) and then warm (fresh session, same store).  The warm run must
  replay every configuration from the store — ≥5× fewer tool runs — and
  both runs' Pareto fronts must be bitwise identical to the no-store
  serial reference.
- **Out-of-order scheduling** — the same batched workload evaluated with
  a blocking per-batch barrier (``evaluate_many`` per batch) versus
  pipelined (``submit_many`` for every batch up front, then collect).
  Metric vectors must be bitwise identical to the serial reference; the
  pipelined schedule must be ≥1.3× faster at ``workers=4`` (asserted in
  benchmark mode only — single-core CI boxes cannot show it).
- **Fidelity gate** — the same no-model NSGA-II exploration with the
  speculative multi-fidelity gate off and on.  The gated run must spend
  ≤½ the simulated tool seconds, its reported front must stay within 1%
  hypervolume regret of the ungated front (exact 2-D hypervolume, shared
  reference point), and the gate-off run must be bitwise identical to a
  session constructed without any gate arguments (the pre-ladder
  reference).
- **Static estimate** — the rung-0 analytical pre-estimator evaluated
  against the full routed flow across sampled points of every bundled
  design.  The assertion is *soundness*: the utilization lower bounds
  never exceed the routed counts and the Fmax upper bound never falls
  below the routed Fmax, for every feasible compared point (``sound`` is
  1.0 exactly or the bench raises).
- **Serve throughput** — ``jobs`` identical tenants served to completion
  under the fixed admission stagger with per-spec-lock members and no
  coalescing, then under adaptive AIMD admission with event-driven
  claiming and single-flight coalescing.  Fronts must be byte-identical
  to the standalone session both ways and the tenants' combined
  tool-run bill must equal the one serial bill; the adaptive run must
  be ≥1.3× faster end to end under emulated tool latency.
- **Refit policy** — inserting n tool results into the control model with
  the per-insert LOO rescan (``RefitPolicy(every=1)``, the original
  behaviour) versus the incremental policy (periodic rescan + Γ-drift
  trigger + one exact refit at the end).  The final model state must be
  bitwise identical (the LOO scan is a pure function of the dataset) and
  the incremental path must be ≥3× faster at the paper-scale n=300.

``run_perf_engine(smoke=True)`` shrinks every size so the correctness
assertions run inside the tier-1 suite without timing thresholds; the
benchmark run writes the timing payload to ``BENCH_perf_engine.json`` so
future PRs can track the trajectory.
"""

from __future__ import annotations

import shutil
import tempfile
import time

import numpy as np

from repro.core import DseSession
from repro.designs import get_design
from repro.estimation import ControlModel, Dataset, RefitPolicy

__all__ = [
    "dse_pool_bench",
    "fidelity_gate_bench",
    "ooo_bench",
    "refit_bench",
    "run_perf_engine",
    "serve_bench",
    "static_estimate_bench",
    "warm_store_bench",
]


def _pareto_signature(result) -> list[tuple]:
    return sorted(
        (tuple(sorted(p.parameters.items())), tuple(sorted(p.metrics.items())))
        for p in result.pareto
    )


def _dse_run(
    design_name: str,
    workers: int,
    generations: int,
    population: int,
    result_store=None,
):
    session = DseSession(
        design=get_design(design_name),
        part="XC7K70T",
        use_model=False,
        seed=2021,
        workers=workers,
        result_store=result_store,
    )
    try:
        start = time.perf_counter()
        result = session.explore(generations=generations, population=population)
        wall = time.perf_counter() - start
    finally:
        session.close()
    return result, wall


def dse_pool_bench(
    design_name: str = "corundum-cqm",
    generations: int = 5,
    population: int = 12,
    workers: int = 2,
) -> dict:
    """Serial vs pooled DSE generations; asserts bitwise-identical results."""
    serial, serial_wall = _dse_run(design_name, 0, generations, population)
    pooled, pooled_wall = _dse_run(design_name, workers, generations, population)

    assert _pareto_signature(serial) == _pareto_signature(pooled), (
        f"{design_name}: pooled Pareto front diverged from the serial reference"
    )
    assert serial.evaluations == pooled.evaluations
    assert serial.simulated_seconds == pooled.simulated_seconds, (
        f"{design_name}: pooled cost accounting diverged"
    )
    return {
        "design": design_name,
        "workers": workers,
        "generations": generations,
        "population": population,
        "evaluations": serial.evaluations,
        "pareto_points": len(serial.pareto),
        "serial_wall_s": round(serial_wall, 4),
        "pool_wall_s": round(pooled_wall, 4),
        "speedup": round(serial_wall / pooled_wall, 3) if pooled_wall else None,
        "identical": True,
    }


def warm_store_bench(
    design_name: str = "cv32e40p-fifo",
    generations: int = 4,
    population: int = 10,
    min_ratio: float = 5.0,
) -> dict:
    """Cold vs warm persistent-store DSE; asserts replay economics.

    The cold run populates a fresh store; the warm run (new session, same
    configuration) must answer ≥``min_ratio``× more of its evaluations
    from the store than it sends to the tool, with a Pareto front bitwise
    identical to the no-store serial reference.
    """
    reference, _ = _dse_run(design_name, 0, generations, population)
    store_dir = tempfile.mkdtemp(prefix="veda-store-bench-")
    try:
        cold, cold_wall = _dse_run(
            design_name, 0, generations, population, result_store=store_dir
        )
        warm, warm_wall = _dse_run(
            design_name, 0, generations, population, result_store=store_dir
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    for label, run in (("cold", cold), ("warm", warm)):
        assert _pareto_signature(reference) == _pareto_signature(run), (
            f"{design_name}: {label}-store Pareto front diverged from the "
            "no-store serial reference"
        )
    assert reference.evaluations == cold.evaluations == warm.evaluations
    ratio = cold.tool_runs / max(warm.tool_runs, 1)
    assert ratio >= min_ratio, (
        f"{design_name}: warm store replayed too little — cold ran "
        f"{cold.tool_runs} tool runs, warm still ran {warm.tool_runs} "
        f"(ratio {ratio:.1f}x < {min_ratio}x)"
    )
    return {
        "design": design_name,
        "generations": generations,
        "population": population,
        "evaluations": reference.evaluations,
        "cold_tool_runs": cold.tool_runs,
        "warm_tool_runs": warm.tool_runs,
        "tool_run_ratio": round(ratio, 2),
        "cold_wall_s": round(cold_wall, 4),
        "warm_wall_s": round(warm_wall, 4),
        "identical": True,
    }


def _ooo_points(design_name: str, batches: int, batch_size: int):
    """Distinct configurations, grouped into uniform batches."""
    gen = get_design(design_name)
    dims = gen.params
    points = []
    n = batches * batch_size
    for i in range(n):
        point = {}
        for j, dim in enumerate(dims):
            span = dim.high - dim.low + 1
            point[dim.name] = dim.low + (i * (j + 3) + i // span) % span
        points.append(point)
    # Distinctness matters: repeats would replay from the memo and make the
    # workload smaller than advertised.
    assert len({tuple(sorted(p.items())) for p in points}) == n
    return [points[b * batch_size:(b + 1) * batch_size] for b in range(batches)]


def ooo_bench(
    design_name: str = "cv32e40p-fifo",
    batches: int = 16,
    batch_size: int = 5,
    workers: int = 4,
    min_speedup: float | None = 1.3,
    tool_latency: float = 0.002,
) -> dict:
    """Per-batch barrier vs out-of-order pipelined scheduling.

    The workload is ``batches`` batches whose size does not divide the
    worker count — the shape NSGA-II population slices take in practice —
    so the blocking schedule pays a straggler barrier per batch while the
    pipelined one packs batches back to back.  Metric vectors must be
    bitwise identical to the serial reference either way.

    ``tool_latency`` enables the spec's emulated tool latency (wall
    seconds slept per simulated tool second in each worker): real Vivado
    invocations wait on an external process, so schedule quality — not the
    benchmark host's core count — must set the wall clock.
    """
    import dataclasses as _dc

    from repro.core.parallel import EvaluatorSpec, ParallelPointEvaluator

    gen = get_design(design_name)
    from repro.core.evaluate import PointEvaluator

    evaluator = PointEvaluator(
        source=gen.source(),
        language=str(gen.language),
        top=gen.top,
        part="XC7K70T",
        seed=2021,
    )
    spec = EvaluatorSpec.from_evaluator(evaluator, design_name=design_name)
    spec = _dc.replace(spec, emulate_tool_latency=tool_latency)
    groups = _ooo_points(design_name, batches, batch_size)
    warmup = [{d.name: d.low for d in gen.params}]

    serial = [evaluator.evaluate(p) for batch in groups for p in batch]

    with ParallelPointEvaluator(spec=spec, workers=workers) as pool:
        pool.evaluate_many(warmup)  # pool start-up excluded from timing
        start = time.perf_counter()
        blocking = [res for batch in groups for res in pool.evaluate_many(batch)]
        blocking_wall = time.perf_counter() - start

    with ParallelPointEvaluator(spec=spec, workers=workers) as pool:
        pool.evaluate_many(warmup)
        start = time.perf_counter()
        pending = [pool.submit_many(batch) for batch in groups]
        pipelined = [res for p in pending for res in p.results()]
        pipelined_wall = time.perf_counter() - start

    for label, outs in (("blocking", blocking), ("pipelined", pipelined)):
        assert [p.metrics for p in outs] == [p.metrics for p in serial], (
            f"{design_name}: {label} schedule diverged from the serial "
            "reference"
        )
    speedup = blocking_wall / pipelined_wall if pipelined_wall else None
    if min_speedup is not None and speedup is not None:
        assert speedup >= min_speedup, (
            f"{design_name}: out-of-order scheduling must be >="
            f"{min_speedup}x over per-batch barriers at workers={workers}, "
            f"got {speedup:.2f}x"
        )
    return {
        "design": design_name,
        "workers": workers,
        "batches": batches,
        "batch_size": batch_size,
        "points": batches * batch_size,
        "tool_latency": tool_latency,
        "blocking_wall_s": round(blocking_wall, 4),
        "pipelined_wall_s": round(pipelined_wall, 4),
        "speedup": round(speedup, 3) if speedup else None,
        "identical": True,
    }


def _gate_run(
    design_name: str,
    gate: bool,
    generations: int,
    population: int,
    gate_risk: float,
    trickle_every: int,
):
    """One no-model exploration; returns (result, minimized front, wall)."""
    from repro.moo.problem import Sense

    session = DseSession(
        design=get_design(design_name),
        part="XC7K70T",
        use_model=False,
        seed=2021,
        fidelity_gate=gate,
        gate_risk=gate_risk,
        gate_trickle_every=trickle_every,
    )
    try:
        start = time.perf_counter()
        result = session.explore(generations=generations, population=population)
        wall = time.perf_counter() - start
        names = session.evaluator.metric_names()
        signs = np.array(
            [
                -1.0 if m.sense == Sense.MAXIMIZE else 1.0
                for m in session.evaluator.metrics
            ]
        )
    finally:
        session.close()
    front = (
        np.array([[p.metrics[n] for n in names] for p in result.pareto], dtype=float)
        * signs
    )
    return result, front, wall


def fidelity_gate_bench(
    design_name: str = "corundum-cqm",
    generations: int = 20,
    population: int = 24,
    gate_risk: float = 0.1,
    trickle_every: int = 12,
    min_reduction: float | None = 2.0,
    max_regret: float = 0.01,
) -> dict:
    """Speculative multi-fidelity gate: simulated-seconds cut vs front regret.

    The ungated run is the reference; the gated run probes every fresh
    candidate at synth-estimate fidelity and skips route+STA when the
    learned gate proves the point dominated.  Both thresholds are
    host-independent: simulated seconds and hypervolume are deterministic
    functions of the run.  The gate-off session must also match a
    session built with no gate arguments at all — turning the feature
    off must be indistinguishable from the feature not existing.
    """
    from repro.moo.indicators import hypervolume

    reference, _ = _dse_run(design_name, 0, generations, population)
    full, full_front, full_wall = _gate_run(
        design_name, False, generations, population, gate_risk, trickle_every
    )
    gated, gated_front, gated_wall = _gate_run(
        design_name, True, generations, population, gate_risk, trickle_every
    )

    assert _pareto_signature(reference) == _pareto_signature(full), (
        f"{design_name}: gate-off run diverged from the no-gate reference"
    )
    assert reference.simulated_seconds == full.simulated_seconds, (
        f"{design_name}: gate-off cost accounting diverged from the "
        "no-gate reference"
    )

    # Shared reference point: worst corner of both fronts plus a 10%
    # margin, so boundary points contribute volume for either front.
    union = np.vstack([full_front, gated_front])
    ref = union.max(axis=0) + 0.1 * (union.max(axis=0) - union.min(axis=0)) + 1e-9
    hv_full = hypervolume(full_front, ref)
    hv_gated = hypervolume(gated_front, ref)
    regret = max(0.0, (hv_full - hv_gated) / hv_full) if hv_full > 0 else 0.0
    reduction = (
        full.simulated_seconds / gated.simulated_seconds
        if gated.simulated_seconds
        else None
    )

    assert regret <= max_regret, (
        f"{design_name}: gated front lost {regret:.2%} hypervolume "
        f"(budget {max_regret:.0%})"
    )
    if min_reduction is not None and reduction is not None:
        assert reduction >= min_reduction, (
            f"{design_name}: fidelity gate must cut simulated seconds >="
            f"{min_reduction}x, got {reduction:.2f}x"
        )
    stats = gated.stats
    return {
        "design": design_name,
        "generations": generations,
        "population": population,
        "gate_risk": gate_risk,
        "trickle_every": trickle_every,
        "full_simulated_s": round(full.simulated_seconds, 2),
        "gated_simulated_s": round(gated.simulated_seconds, 2),
        "reduction": round(reduction, 3) if reduction else None,
        "hv_regret": round(regret, 6),
        "promoted": stats.get("gate_promoted", 0),
        "skipped": stats.get("gate_skipped", 0),
        "trickled": stats.get("gate_trickled", 0),
        "full_wall_s": round(full_wall, 4),
        "gated_wall_s": round(gated_wall, 4),
        "identical_off": True,
    }


def static_estimate_bench(
    points_per_design: int = 4, part: str = "XC7K70T", seed: int = 2021
) -> dict:
    """Rung-0 soundness sweep: static bounds vs the routed flow.

    Samples points of every bundled design's space (plus the default
    binding), computes the zero-cost static estimate, runs the full
    routed flow, and asserts the bounds hold: LUT/FF lower bounds at or
    under the routed counts, Fmax upper bound at or over the routed
    Fmax.  Points the router rejects (capacity overflow) are skipped —
    there is no routed number to bound.  Returns ``sound`` (1.0 or the
    assertions above raised) plus the mean bound tightness, so the
    trajectory file records how much headroom the estimator leaves.
    """
    from repro.core.evaluate import PointEvaluator
    from repro.core.spaces import ParameterSpace
    from repro.designs import all_designs
    from repro.devices import ResourceKind, get_device
    from repro.errors import ReproError
    from repro.netlist.static_estimate import static_estimate_point

    rng = np.random.default_rng(seed)
    device = get_device(part)
    compared = 0
    skipped = 0
    fmax_slack = []  # (UB - routed) / routed, >= 0 when sound
    lut_slack = []  # (routed - LB) / routed, >= 0 when sound
    start = time.perf_counter()
    for name, gen in sorted(all_designs().items()):
        space = ParameterSpace.from_design(gen)
        evaluator = PointEvaluator(
            source=gen.source(),
            language=str(gen.language),
            top=gen.top,
            part=part,
            target_period_ns=10.0,
            seed=seed,
        )
        rows = np.column_stack([
            rng.integers(lo, hi + 1, size=points_per_design)
            for lo, hi in zip(space.lows(), space.highs())
        ])
        points = [dict()] + [space.decode(row) for row in rows]
        for params in points:
            est = static_estimate_point(gen.module(), device, params)
            try:
                full = evaluator.evaluate(params)
            except ReproError:
                skipped += 1
                continue
            fmax = full.metrics["frequency"]
            lut = full.metrics["LUT"]
            assert est.fmax_ub_mhz >= fmax, (
                f"{name}@{params}: static Fmax UB {est.fmax_ub_mhz:.2f} "
                f"below routed {fmax:.2f}"
            )
            lut_lb = est.utilization_lb.get(ResourceKind.LUT)
            assert lut_lb <= lut, (
                f"{name}@{params}: static LUT LB {lut_lb} above routed {lut}"
            )
            fmax_slack.append((est.fmax_ub_mhz - fmax) / fmax)
            lut_slack.append((lut - lut_lb) / lut if lut else 0.0)
            compared += 1
    wall = time.perf_counter() - start
    assert compared > 0, "static-estimate bench compared no feasible points"
    return {
        "part": part,
        "points_per_design": points_per_design,
        "compared": compared,
        "skipped_infeasible": skipped,
        "sound": 1.0,
        "mean_fmax_headroom": round(float(np.mean(fmax_slack)), 4),
        "mean_lut_headroom": round(float(np.mean(lut_slack)), 4),
        "wall_s": round(wall, 4),
    }


def _refit_run(policy: RefitPolicy, X: np.ndarray, Y: np.ndarray):
    control = ControlModel(
        dataset=Dataset(n_var=X.shape[1], metric_names=("LUT", "frequency")),
        refit_policy=policy,
    )
    start = time.perf_counter()
    for x, y in zip(X, Y):
        control.record(x, y)
    control.refit()  # exact refit on demand: both policies end aligned
    return control, time.perf_counter() - start


def refit_bench(
    n_points: int = 300,
    n_var: int = 4,
    every: int = 16,
    gamma_drift: float = 0.05,
    seed: int = 7,
) -> dict:
    """Per-insert vs incremental refit; asserts identical final state."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 64, size=(n_points, n_var)).astype(float)
    Y = np.stack(
        [X.sum(axis=1) * 2.0, 400.0 - X[:, 0]], axis=1
    ) + rng.normal(0.0, 1.0, (n_points, 2))

    full, full_s = _refit_run(RefitPolicy(every=1), X, Y)
    incremental, incremental_s = _refit_run(
        RefitPolicy(every=every, gamma_drift=gamma_drift), X, Y
    )

    assert incremental.model.bandwidth == full.model.bandwidth
    assert incremental.threshold == full.threshold
    assert incremental.last_loo_mse == full.last_loo_mse
    probe = X[: min(16, n_points)] + 0.5
    for q in probe:
        assert (incremental.model.predict(q) == full.model.predict(q)).all(), (
            "incremental refit produced different predictions"
        )
    return {
        "n_points": n_points,
        "n_var": n_var,
        "policy": {"every": every, "gamma_drift": gamma_drift},
        "full_refits": full.refits,
        "incremental_refits": incremental.refits,
        "full_s": round(full_s, 4),
        "incremental_s": round(incremental_s, 4),
        "speedup": round(full_s / incremental_s, 2) if incremental_s else None,
        "identical": True,
    }


def _serve_session_reference(spec):
    """The standalone session a served job must match, byte for byte."""
    session = DseSession(
        design=get_design(spec.design),
        part=spec.part,
        target_period_ns=spec.target_period_ns,
        use_model=spec.use_model,
        pretrain_size=spec.pretrain,
        seed=spec.seed,
    )
    try:
        return session.explore(
            generations=spec.generations, population=spec.population
        )
    finally:
        session.close()


def serve_bench(
    design_name: str = "cv32e40p-fifo",
    jobs: int = 3,
    generations: int = 2,
    population: int = 6,
    tool_latency: float = 0.002,
    poll_interval_s: float = 0.05,
    min_speedup: float | None = 1.3,
) -> dict:
    """Serve throughput: fixed/uncoalesced vs adaptive/coalesced admission.

    ``jobs`` identical tenants are queued up front and served to
    completion twice, each from a fresh service root: once under the
    classic fixed admission stagger with per-spec-lock members and no
    coalescing (the previously shipped shape), once under adaptive AIMD
    admission with event-driven claiming, concurrent members, and
    single-flight coalescing.  Emulated tool latency stands in for the
    external tool process, so schedule quality — not the benchmark
    host's core count — sets the wall clock.

    Correctness bars (both modes, host-independent): every job's front
    is byte-identical to the standalone serial session, and the tenants'
    combined tool-run bill equals the one serial bill — overlapping
    identical points resolve from memo/store/coalescing, never as a
    second tool run.  The adaptive/coalesced run must then be
    ``min_speedup``× faster end to end.
    """
    import json as _json
    from pathlib import Path as _Path

    from repro.serve import DseServer, JobSpec

    spec = JobSpec(
        design=design_name,
        seed=2021,
        generations=generations,
        population=population,
        use_model=False,
    )
    reference = _serve_session_reference(spec)
    reference_front = sorted(
        tuple(sorted(p.as_row().items())) for p in reference.pareto
    )

    def serve_once(admission: str, coalesce: bool) -> dict:
        root = tempfile.mkdtemp(prefix="veda-serve-bench-")
        try:
            server = DseServer(
                root,
                capacity=4,
                shards=4,
                slots_per_job=2,
                poll_interval_s=poll_interval_s,
                admission=admission,
                coalesce=coalesce,
                emulate_tool_latency=tool_latency,
            )
            records = [server.queue.submit(spec) for _ in range(jobs)]
            start = time.perf_counter()
            stats = server.serve_forever(stop_after=jobs, max_idle_s=120.0)
            wall = time.perf_counter() - start
            assert stats["jobs_done"] == jobs, stats
            tool_runs = 0
            for record in records:
                done = server.queue.get(record.job_id)
                assert done is not None and done.error is None, done
                payload = _json.loads(
                    _Path(done.result_path).read_text(encoding="utf-8")
                )
                front = sorted(
                    tuple(sorted(row.items())) for row in payload["pareto"]
                )
                assert front == reference_front, (
                    f"{design_name}: served front ({admission}, "
                    f"coalesce={coalesce}) diverged from the standalone "
                    "session"
                )
                tool_runs += done.stats["tool_runs"]
            assert tool_runs == reference.tool_runs, (
                f"{design_name}: {jobs} tenants paid {tool_runs} tool runs "
                f"({admission}, coalesce={coalesce}); the combined bill "
                f"must equal the one serial bill of {reference.tool_runs}"
            )
            return {
                "wall_s": wall,
                "tool_runs": tool_runs,
                "coalesced_hits": stats["coalesced_hits"],
                "admission": stats["admission"],
            }
        finally:
            shutil.rmtree(root, ignore_errors=True)

    baseline = serve_once("fixed", coalesce=False)
    adaptive = serve_once("adaptive", coalesce=True)
    speedup = (
        baseline["wall_s"] / adaptive["wall_s"] if adaptive["wall_s"] else None
    )
    if min_speedup is not None and speedup is not None:
        assert speedup >= min_speedup, (
            f"{design_name}: adaptive+coalesced serving must be >="
            f"{min_speedup}x over the fixed/uncoalesced baseline at "
            f"jobs={jobs}, got {speedup:.2f}x"
        )
    return {
        "design": design_name,
        "jobs": jobs,
        "generations": generations,
        "population": population,
        "tool_latency": tool_latency,
        "poll_interval_s": poll_interval_s,
        "serial_tool_runs": reference.tool_runs,
        "combined_tool_runs": adaptive["tool_runs"],
        "coalesced_hits": adaptive["coalesced_hits"],
        "admission_decisions": adaptive["admission"]["decisions"],
        "baseline_wall_s": round(baseline["wall_s"], 4),
        "adaptive_wall_s": round(adaptive["wall_s"], 4),
        "speedup": round(speedup, 3) if speedup else None,
        "identical": True,
    }


def run_perf_engine(smoke: bool = False) -> dict:
    """The whole microbenchmark; smoke mode shrinks sizes for tier-1.

    Smoke mode keeps every *correctness* assertion (bitwise identity, the
    ≥5× warm-store replay ratio) but drops the wall-clock thresholds —
    the out-of-order speedup and refit-speedup floors only apply to the
    benchmark run, which writes ``BENCH_perf_engine.json``.
    """
    if smoke:
        designs = [("cv32e40p-fifo", 2, 8)]
        refit = refit_bench(n_points=40, every=8, gamma_drift=0.05)
        warm = warm_store_bench("cv32e40p-fifo", generations=2, population=8)
        ooo = ooo_bench(
            "cv32e40p-fifo", batches=3, batch_size=5, workers=2,
            min_speedup=None, tool_latency=0.001,
        )
        gate = fidelity_gate_bench(
            "corundum-cqm", generations=6, population=12,
            min_reduction=None,
        )
        static = static_estimate_bench(points_per_design=1)
        serve = serve_bench(
            "cv32e40p-fifo", jobs=2, generations=1, population=4,
            tool_latency=0.0005, min_speedup=None,
        )
    else:
        designs = [("corundum-cqm", 5, 12), ("cv32e40p-fifo", 5, 12)]
        refit = refit_bench(n_points=300, every=16, gamma_drift=0.05)
        warm = warm_store_bench("cv32e40p-fifo", generations=4, population=10)
        ooo = ooo_bench(
            "cv32e40p-fifo", batches=16, batch_size=5, workers=4,
            min_speedup=1.3,
        )
        gate = fidelity_gate_bench(
            "corundum-cqm", generations=20, population=24,
            min_reduction=2.0,
        )
        static = static_estimate_bench(points_per_design=4)
        serve = serve_bench(
            "cv32e40p-fifo", jobs=3, generations=2, population=6,
            tool_latency=0.002, min_speedup=1.3,
        )
    dse = [
        dse_pool_bench(name, generations=gens, population=pop)
        for name, gens, pop in designs
    ]
    return {
        "smoke": smoke,
        "dse_pool": dse,
        "warm_store": warm,
        "ooo": ooo,
        "refit": refit,
        "fidelity_gate": gate,
        "static_estimate": static,
        "serve": serve,
    }
