"""CI perf-regression gate over the perf-engine benchmark payload.

Reads ``BENCH_perf_engine.json`` (written by ``benchmarks/
test_perf_engine.py``) and compares the host-independent ratios against
the recorded thresholds in ``benchmarks/perf_thresholds.json``:

- **floors** — dot-path metrics that must stay *at or above* the
  recorded value (warm-store replay ratio, out-of-order speedup,
  incremental-refit speedup, fidelity-gate simulated-seconds reduction);
- **ceilings** — metrics that must stay *at or below* it (the gate's
  hypervolume regret).

Exit code 0 when every metric holds, 1 with a per-metric report when any
regresses — so the perf job *fails* on a regression instead of silently
uploading a worse trajectory.

Usage::

    python benchmarks/check_perf_regression.py [BENCH_perf_engine.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

THRESHOLDS = Path(__file__).parent / "perf_thresholds.json"
DEFAULT_PAYLOAD = Path(__file__).parent.parent / "BENCH_perf_engine.json"


def resolve(payload: dict, dotted: str):
    """Walk a dot-separated path through nested dicts; None when absent."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check(payload: dict, thresholds: dict) -> list[str]:
    """All threshold violations (empty = pass)."""
    problems: list[str] = []
    for path, floor in thresholds.get("floors", {}).items():
        value = resolve(payload, path)
        if value is None:
            problems.append(f"{path}: missing from the benchmark payload")
        elif float(value) < float(floor):
            problems.append(f"{path}: {value} regressed below the floor {floor}")
    for path, ceiling in thresholds.get("ceilings", {}).items():
        value = resolve(payload, path)
        if value is None:
            problems.append(f"{path}: missing from the benchmark payload")
        elif float(value) > float(ceiling):
            problems.append(f"{path}: {value} exceeded the ceiling {ceiling}")
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    payload_path = Path(argv[0]) if argv else DEFAULT_PAYLOAD
    if not payload_path.exists():
        print(f"error: benchmark payload not found: {payload_path}", file=sys.stderr)
        return 1
    payload = json.loads(payload_path.read_text(encoding="utf-8"))
    if payload.get("smoke"):
        print(
            "error: payload was written by a smoke run — thresholds only "
            "apply to the full benchmark",
            file=sys.stderr,
        )
        return 1
    thresholds = json.loads(THRESHOLDS.read_text(encoding="utf-8"))
    problems = check(payload, thresholds)
    if problems:
        print("perf regression detected:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    checked = len(thresholds.get("floors", {})) + len(thresholds.get("ceilings", {}))
    print(f"perf thresholds hold ({checked} metric(s) checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
