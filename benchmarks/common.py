"""Shared machinery for the benchmark harness.

- :func:`emit` prints an experiment's regenerated rows to the real terminal
  (pytest captures normal stdout during ``--benchmark-only`` runs) and
  archives them under ``benchmarks/out/``;
- :func:`corundum_run` caches the Table I / Fig. 4 DSE so both benches
  share one exploration, as they share one run in the paper.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core import DseSession, MetricSpec
from repro.designs import get_design

OUT_DIR = Path(__file__).parent / "out"

FOUR_METRICS = [
    MetricSpec.minimize("LUT"),
    MetricSpec.minimize("FF"),
    MetricSpec.minimize("BRAM"),
    MetricSpec.maximize("frequency"),
]


def emit(experiment: str, text: str) -> None:
    """Write regenerated rows to the terminal and to benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{experiment}.txt").write_text(text + "\n", encoding="utf-8")
    real_stdout = getattr(sys, "__stdout__", sys.stdout)
    real_stdout.write(f"\n===== {experiment} =====\n{text}\n")
    real_stdout.flush()


_CACHE: dict[str, object] = {}


def corundum_run():
    """The shared Corundum DSE (Table I + Fig. 4): 4 objectives, no model."""
    if "corundum" not in _CACHE:
        design = get_design("corundum-cqm")
        session = DseSession(
            design=design,
            part="XC7K70T",
            metrics=FOUR_METRICS,
            use_model=False,
            seed=2021,
        )
        result = session.explore(generations=14, population=24)
        _CACHE["corundum"] = result
    return _CACHE["corundum"]


def tirex_run(part: str):
    """The TiReX DSE on one device (Figs. 6/7 + Table II)."""
    key = f"tirex:{part}"
    if key not in _CACHE:
        design = get_design("tirex")
        session = DseSession(
            design=design,
            part=part,
            metrics=FOUR_METRICS,
            use_model=False,
            seed=2021,
        )
        _CACHE[key] = session.explore(generations=12, population=20)
    return _CACHE[key]
