"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (table or figure) through
:func:`common.emit`, which archives the rows under ``benchmarks/out/``.
Because pytest captures file descriptors during the run, the regenerated
artifacts are replayed in the terminal summary below — so a plain
``pytest benchmarks/ --benchmark-only`` run ends with every reproduced
table/figure inline.
"""

import sys
from pathlib import Path

# Make the sibling `common` module importable regardless of rootdir layout.
sys.path.insert(0, str(Path(__file__).parent))

_OUT_DIR = Path(__file__).parent / "out"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay the regenerated paper artifacts after the benchmark table."""
    if not _OUT_DIR.exists():
        return
    artifacts = sorted(_OUT_DIR.glob("*.txt"))
    if not artifacts:
        return
    tr = terminalreporter
    tr.section("regenerated paper artifacts (benchmarks/out/)")
    for path in artifacts:
        tr.write_line("")
        tr.write_line(f"===== {path.stem} =====")
        for line in path.read_text(encoding="utf-8").splitlines():
            tr.write_line(line)
