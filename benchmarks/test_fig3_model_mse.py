"""Figure 3 — approximation-model MSE convergence on the cv32e40p FIFO.

Paper setup (Section IV-A): SystemVerilog FIFO submodule, DEPTH parameter
over 500 values, XC7K70T target, 100 pre-training samples, metrics FF /
LUT / frequency.  Fig. 3 plots the normalized MSE of each metric's
prediction against the number of collected samples: all three curves are
low, decrease, and stabilize; the *frequency* curve is the worst, peaking
near 0.45e-2 and settling around 0.25e-2 after ~40 samples.

This bench rebuilds the curve: starting from a small seed dataset it adds
random tool-evaluated samples one at a time and records each metric's
leave-one-out MSE (normalized metric space, the paper's 1e-2 scale).
Shape checks: every curve's late average is below its early peak, and the
frequency curve dominates the resource curves.
"""

from __future__ import annotations

import numpy as np

from common import emit
from repro.core import MetricSpec, ParameterSpace
from repro.core.evaluate import PointEvaluator
from repro.designs import get_design
from repro.estimation.cross_validation import loo_bandwidth, loo_mse
from repro.util.rng import as_generator
from repro.util.tables import render_series

METRICS = [
    MetricSpec.minimize("FF"),
    MetricSpec.minimize("LUT"),
    MetricSpec.maximize("frequency"),
]
MAX_SAMPLES = 100
REPORT_EVERY = 10


def _collect_mse_trace() -> dict[str, list[tuple[int, float]]]:
    design = get_design("cv32e40p-fifo")
    space = ParameterSpace.from_design(design, names=["DEPTH"])
    evaluator = PointEvaluator(
        source=design.source(),
        language=design.language,
        top=design.top,
        part="XC7K70T",
        metrics=METRICS,
        seed=2021,
    )
    rng = as_generator(2021)
    depths = rng.permutation(space.dimension("DEPTH").values())[:MAX_SAMPLES]

    X_rows: list[list[int]] = []
    Y_rows: list[list[float]] = []
    traces: dict[str, list[tuple[int, float]]] = {
        m.canonical_name(): [] for m in METRICS
    }
    for depth in depths:
        point = evaluator.evaluate({"DEPTH": int(depth)})
        X_rows.append([int(depth)])
        Y_rows.append([point.metrics[m.canonical_name()] for m in METRICS])
        n = len(X_rows)
        if n < 4:
            continue
        X = np.asarray(X_rows, dtype=float)
        Y = np.asarray(Y_rows, dtype=float)
        # Normalize each metric column (the paper's MSE magnitudes ~1e-2
        # come from unit-scaled metrics), then score per column at the
        # LOO-selected shared bandwidth.
        span = Y.max(axis=0) - Y.min(axis=0)
        span[span == 0] = 1.0
        Y_norm = (Y - Y.min(axis=0)) / span
        h, _ = loo_bandwidth(X, Y_norm)
        for j, metric in enumerate(METRICS):
            mse_j = loo_mse(X, Y_norm[:, j : j + 1], h)
            traces[metric.canonical_name()].append((n, mse_j))
    return traces


def _shape_checks(traces: dict[str, list[tuple[int, float]]]) -> dict[str, float]:
    summary: dict[str, float] = {}
    for name, series in traces.items():
        values = np.array([v for _, v in series])
        early_peak = values[: len(values) // 3].max()
        late_mean = values[-len(values) // 3 :].mean()
        assert late_mean <= early_peak, (
            f"{name}: MSE did not stabilize below its early peak"
        )
        summary[f"{name}_peak"] = float(early_peak)
        summary[f"{name}_late"] = float(late_mean)
    # Frequency prediction is the hardest of the three (paper Fig. 3c).
    assert summary["frequency_late"] >= summary["FF_late"] * 0.5
    return summary


def test_fig3_mse_convergence(benchmark):
    traces = benchmark.pedantic(_collect_mse_trace, rounds=1, iterations=1)
    summary = _shape_checks(traces)

    sizes = [n for n, _ in traces["FF"] if n % REPORT_EVERY == 0]
    series = {
        name: [v for n, v in tr if n % REPORT_EVERY == 0]
        for name, tr in traces.items()
    }
    text = render_series(
        "samples", sizes, series,
        title="Fig.3 — LOO MSE per metric vs dataset size "
              "(normalized units; paper reports ~0.25e-2..0.45e-2 for frequency)",
    )
    text += "\n\n" + "\n".join(
        f"{k}: {v:.4g}" for k, v in sorted(summary.items())
    )
    emit("fig3_model_mse", text)
