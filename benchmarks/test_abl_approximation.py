"""Ablation 1 — the fitness approximation model's tool-call savings.

The approximation model exists to cut the number of real synthesis/
implementation runs ("this naive approach implies calling Vivado for each
exploration iteration ... requiring prohibitive execution times").  This
ablation runs the same cv32e40p-FIFO exploration with the model disabled
and enabled and compares real tool runs and simulated tool hours.

Shape checks: with the model on, a substantial fraction of fitness queries
are answered by estimation or cache, and the post-pretraining tool cost is
lower than the direct-evaluation run's.
"""

from __future__ import annotations

from common import emit
from repro.core import DseSession, ParameterSpace
from repro.designs import get_design
from repro.util.tables import render_table

GENERATIONS = 10
POPULATION = 16
PRETRAIN = 40


def _run(use_model: bool):
    design = get_design("cv32e40p-fifo")
    space = ParameterSpace.from_design(design, names=["DEPTH"])
    session = DseSession(
        design=design,
        space=space,
        part="XC7K70T",
        use_model=use_model,
        pretrain_size=PRETRAIN,
        seed=2021,
    )
    result = session.explore(generations=GENERATIONS, population=POPULATION)
    return result


def _experiment():
    return {"direct": _run(False), "model": _run(True)}


def test_abl_approximation(benchmark):
    runs = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    direct, model = runs["direct"], runs["model"]

    rows = [
        (
            name,
            r.evaluations,
            r.tool_runs,
            r.stats.get("estimated", 0),
            r.stats.get("cached", 0),
            round(r.simulated_seconds / 3600.0, 2),
            len(r.pareto),
        )
        for name, r in (("direct (no model)", direct), ("NWM + control", model))
    ]
    text = render_table(
        ("Mode", "Fitness evals", "Tool runs", "Estimated", "Cached",
         "Tool-hours (simulated)", "Pareto size"),
        rows,
        title="Ablation — approximation model on/off (cv32e40p FIFO, DEPTH space)",
    )
    emit("abl_approximation", text)

    assert model.stats.get("estimated", 0) > 0, "model never estimated"
    # GA-phase tool runs with the model must undercut direct evaluation
    # (pretraining is the fixed investment the paper's M parameter sets).
    model_ga_runs = model.tool_runs - PRETRAIN
    assert model_ga_runs < direct.tool_runs
    # And at least a third of GA fitness queries avoided the tool
    # (`evaluations` counts GA-phase queries only; pretraining is separate).
    avoided = model.stats.get("estimated", 0) + model.stats.get("cached", 0)
    assert avoided >= 0.33 * model.evaluations
