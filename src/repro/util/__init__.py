"""Shared utilities: RNG plumbing, timing, tables, plots, session IO."""

from repro.util.rng import as_generator, spawn_child, stable_hash_seed
from repro.util.timing import Stopwatch, SoftDeadline
from repro.util.tables import render_table
from repro.util.units import mhz_from_ns, ns_from_mhz, format_mhz
from repro.util.plots import Series, pareto_plot, scatter_plot

__all__ = [
    "as_generator",
    "spawn_child",
    "stable_hash_seed",
    "Stopwatch",
    "SoftDeadline",
    "render_table",
    "mhz_from_ns",
    "ns_from_mhz",
    "format_mhz",
    "Series",
    "pareto_plot",
    "scatter_plot",
]
