"""Wall-clock helpers: stopwatches and soft deadlines.

The paper runs its cv32e40p DSE "with a four hour soft deadline to the
genetic algorithm": the GA finishes the current generation once the deadline
passes rather than aborting mid-evaluation.  :class:`SoftDeadline` models
exactly that contract and is consumed by ``repro.moo.termination``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "SoftDeadline"]


class Stopwatch:
    """Accumulating stopwatch with independent named splits.

    Used by the flow facade to attribute runtime to synthesis vs
    implementation vs estimation, which the ablation benchmarks report.
    """

    def __init__(self) -> None:
        self._splits: dict[str, float] = {}
        self._started: dict[str, float] = {}

    def start(self, name: str) -> None:
        self._started[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        """Stop split ``name``; returns the elapsed seconds of this interval."""
        begin = self._started.pop(name, None)
        if begin is None:
            raise KeyError(f"split {name!r} was never started")
        elapsed = time.perf_counter() - begin
        self._splits[name] = self._splits.get(name, 0.0) + elapsed
        return elapsed

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` to split ``name`` without a timer (simulated cost)."""
        if seconds < 0:
            raise ValueError("cannot add negative time")
        self._splits[name] = self._splits.get(name, 0.0) + seconds

    def total(self, name: str) -> float:
        return self._splits.get(name, 0.0)

    def totals(self) -> dict[str, float]:
        return dict(self._splits)

    class _Ctx:
        def __init__(self, sw: "Stopwatch", name: str) -> None:
            self._sw = sw
            self._name = name

        def __enter__(self) -> None:
            self._sw.start(self._name)

        def __exit__(self, *exc: object) -> None:
            self._sw.stop(self._name)

    def measure(self, name: str) -> "Stopwatch._Ctx":
        """Context manager: ``with sw.measure("synth"): ...``."""
        return Stopwatch._Ctx(self, name)


@dataclass
class SoftDeadline:
    """A soft wall-clock budget.

    ``expired()`` becomes true once ``budget_s`` seconds have passed since
    construction (or since :meth:`restart`).  A budget of ``None`` never
    expires.  ``virtual_elapsed`` lets the simulated flow charge *simulated*
    tool seconds against the budget, so benchmarks can reproduce the paper's
    four-hour run in milliseconds of real time.
    """

    budget_s: float | None = None
    virtual_elapsed: float = 0.0
    _t0: float = field(default_factory=time.perf_counter)

    def restart(self) -> None:
        self._t0 = time.perf_counter()
        self.virtual_elapsed = 0.0

    def charge(self, simulated_seconds: float) -> None:
        """Charge simulated tool time against the budget."""
        if simulated_seconds < 0:
            raise ValueError("cannot charge negative time")
        self.virtual_elapsed += simulated_seconds

    def elapsed(self) -> float:
        return (time.perf_counter() - self._t0) + self.virtual_elapsed

    def remaining(self) -> float:
        if self.budget_s is None:
            return float("inf")
        return self.budget_s - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0
