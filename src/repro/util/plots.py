"""ASCII scatter plots for terminal-first workflows.

The paper's Figs. 4–7 are metric scatter plots of non-dominated sets; the
benchmark harness and examples render the same data as terminal scatter
charts so the reproduction works without a display server.  Marks overlap
by priority (later series overdraw earlier ones); axes are linear with
min/max annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["Series", "scatter_plot", "pareto_plot"]


@dataclass(frozen=True)
class Series:
    name: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]
    mark: str = "*"

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(f"series {self.name!r}: x/y length mismatch")
        if len(self.mark) != 1:
            raise ValueError("mark must be a single character")


def scatter_plot(
    series: Sequence[Series],
    width: int = 60,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Render series as an ASCII scatter chart."""
    points = [(x, y) for s in series for x, y in zip(s.xs, s.ys)]
    if not points:
        return (title or "") + "\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s in series:
        for x, y in zip(s.xs, s.ys):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((1.0 - (y - y_lo) / y_span) * (height - 1)))
            grid[row][col] = s.mark

    lines: list[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(f"{s.mark} {s.name}" for s in series)
    if legend:
        lines.append(legend)
    lines.append(f"{y_hi:>12.6g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:>12.6g} +" + "-" * width + "+")
    lines.append(
        " " * 14 + f"{x_lo:<.6g}".ljust(width // 2)
        + f"{x_hi:>.6g}".rjust(width - width // 2)
    )
    lines.append(" " * 14 + f"x: {x_label}   y: {y_label}")
    return "\n".join(lines)


def pareto_plot(
    points,
    x_metric: str,
    y_metric: str,
    title: str | None = None,
    width: int = 60,
    height: int = 18,
) -> str:
    """Scatter a list of :class:`~repro.core.point.EvaluatedPoint` by two
    metrics — the Figs. 4–7 view."""
    xs = tuple(p.metrics[x_metric] for p in points)
    ys = tuple(p.metrics[y_metric] for p in points)
    return scatter_plot(
        [Series(name="non-dominated", xs=xs, ys=ys, mark="o")],
        width=width,
        height=height,
        x_label=x_metric,
        y_label=y_metric,
        title=title,
    )
