"""Plain-text table rendering for benchmark harness output.

The benchmark harness prints the same rows the paper's tables report
(Table I / Table II) and series summaries for the figures; this module keeps
that formatting in one place so every bench emits uniform, diffable text.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["render_table", "render_kv", "render_series"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with a header rule; returns the string."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def render_kv(pairs: dict[str, Any], title: str | None = None) -> str:
    """Render a key/value block (used for run summaries)."""
    width = max((len(k) for k in pairs), default=0)
    out: list[str] = []
    if title:
        out.append(title)
    for key, value in pairs.items():
        out.append(f"{key.ljust(width)} : {_fmt(value)}")
    return "\n".join(out)


def render_series(
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render figure-style data: one x column plus one column per series."""
    headers = [x_label, *series.keys()]
    columns = [x_values, *series.values()]
    n = len(x_values)
    for name, col in series.items():
        if len(col) != n:
            raise ValueError(f"series {name!r} length {len(col)} != {n}")
    rows = [[col[i] for col in columns] for i in range(n)]
    return render_table(headers, rows, title=title)
