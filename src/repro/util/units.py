"""Frequency/period unit conversions used throughout the flow.

The paper's Eq. (1) mixes MHz and ns: ``Fmax = 1000 / ((1/1000)*T - WNS)``
where ``T`` is the target period in *nano*seconds and WNS in ns.  (The
literal formula in the paper divides T by 1000 — a typographical slip, since
with T in ns and WNS in ns the dimensionally meaningful form is
``Fmax_MHz = 1000 / (T_ns - WNS_ns)``; the Dovado source uses that form and
so do we, while :func:`fmax_paper_eq1` keeps the verbatim variant for the
regression test that documents the discrepancy.)
"""

from __future__ import annotations

__all__ = [
    "mhz_from_ns",
    "ns_from_mhz",
    "fmax_from_wns",
    "fmax_paper_eq1",
    "format_mhz",
]


def mhz_from_ns(period_ns: float) -> float:
    """Convert a clock period in ns to a frequency in MHz."""
    if period_ns <= 0:
        raise ValueError(f"period must be positive, got {period_ns}")
    return 1000.0 / period_ns


def ns_from_mhz(freq_mhz: float) -> float:
    """Convert a frequency in MHz to a clock period in ns."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return 1000.0 / freq_mhz


def fmax_from_wns(target_period_ns: float, wns_ns: float) -> float:
    """Maximum achievable frequency (MHz) from worst negative slack.

    This is the operational form of the paper's Eq. (1): the critical-path
    delay equals the target period minus the (signed) slack, so
    ``Fmax = 1000 / (T - WNS)``.  WNS is negative when timing fails
    (lengthening the effective period) and positive when timing closes with
    margin (shortening it).
    """
    effective_period = target_period_ns - wns_ns
    if effective_period <= 0:
        raise ValueError(
            f"non-positive effective period {effective_period} ns "
            f"(T={target_period_ns}, WNS={wns_ns})"
        )
    return 1000.0 / effective_period


def fmax_paper_eq1(target_period_ns: float, wns_ns: float) -> float:
    """Verbatim Eq. (1) from the paper: ``1000 / ((1/1000)*T - WNS)``.

    Kept only so tests can document that the verbatim formula is a typo:
    with the paper's own worked numbers (1 GHz target → T = 1 ns) it yields
    nonsense unless WNS dominates, whereas :func:`fmax_from_wns` reproduces
    the reported ~200 MHz/~550 MHz figures.
    """
    denom = (target_period_ns / 1000.0) - wns_ns
    if denom <= 0:
        raise ValueError("non-positive denominator in verbatim Eq. (1)")
    return 1000.0 / denom


def format_mhz(freq_mhz: float) -> str:
    """Human-readable frequency (``312.5 MHz`` / ``1.25 GHz``)."""
    if freq_mhz >= 1000.0:
        return f"{freq_mhz / 1000.0:.2f} GHz"
    return f"{freq_mhz:.1f} MHz"
