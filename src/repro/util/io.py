"""Session persistence: JSON/CSV round-tripping of DSE results.

Dovado persists each exploration session (evaluated points, Pareto archive,
tool timings) so a run can be inspected or resumed.  We store a single JSON
document per session plus an optional flat CSV of evaluated points for
spreadsheet-style analysis.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["save_json", "load_json", "save_csv", "load_csv"]


def _default(obj: Any) -> Any:
    # numpy scalars / arrays show up in metric dicts; coerce to plain python.
    if hasattr(obj, "item") and callable(obj.item) and getattr(obj, "shape", None) == ():
        return obj.item()
    if hasattr(obj, "tolist") and callable(obj.tolist):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def save_json(path: str | Path, payload: Mapping[str, Any]) -> Path:
    """Write ``payload`` as pretty-printed JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True, default=_default)
    path.write_text(text + "\n", encoding="utf-8")
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def save_csv(
    path: str | Path,
    fieldnames: Sequence[str],
    rows: Iterable[Mapping[str, Any]],
) -> Path:
    """Write dict-rows as CSV with a fixed header order."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(fieldnames))
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in fieldnames})
    return path


def load_csv(path: str | Path) -> list[dict[str, str]]:
    with Path(path).open(newline="", encoding="utf-8") as fh:
        return list(csv.DictReader(fh))
