"""Deterministic random-number plumbing.

Every stochastic component in the framework (placer, tool-noise model,
NSGA-II operators, sampling) receives a :class:`numpy.random.Generator`.
These helpers normalize seeds, derive independent child streams, and map
arbitrary hashable structures (e.g. a design-point tuple plus a device name)
to stable 64-bit seeds so the simulated EDA tool is a *function* of its
inputs: re-evaluating the same design point reproduces the same "Vivado"
answer, which is what makes result caching in the control model sound.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = ["as_generator", "spawn_child", "stable_hash_seed"]


def as_generator(
    seed: int | np.random.Generator | np.random.SeedSequence | None,
) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can share a stream deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_child(rng: np.random.Generator, *tags: Any) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    ``tags`` (any reprable values) decorrelate children spawned for distinct
    purposes at the same parent state; two children spawned with different
    tags from the same parent state are independent streams.
    """
    base = int(rng.integers(0, 2**63 - 1))
    if tags:
        base ^= stable_hash_seed(tags)
    return np.random.default_rng(base)


def _flatten(values: Any, out: list[str]) -> None:
    if isinstance(values, (list, tuple)):
        out.append("[")
        for v in values:
            _flatten(v, out)
        out.append("]")
    elif isinstance(values, dict):
        out.append("{")
        for k in sorted(values, key=repr):
            _flatten(k, out)
            _flatten(values[k], out)
        out.append("}")
    elif isinstance(values, float):
        # Canonicalize integral floats so 1.0 and 1 hash identically.
        if float(values).is_integer():
            out.append(repr(int(values)))
        else:
            out.append(repr(float(values)))
    elif isinstance(values, (int, np.integer)):
        out.append(repr(int(values)))
    else:
        out.append(repr(values))


def stable_hash_seed(values: Any) -> int:
    """Map an arbitrary (nested) structure to a stable 63-bit seed.

    Unlike ``hash()``, the result is stable across processes (no
    ``PYTHONHASHSEED`` dependence), which the tool-noise model relies on:
    the noise applied to a design point must be identical in every run and
    on every worker of a parallel evaluation pool.
    """
    parts: list[str] = []
    _flatten(values, parts)
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def integer_sample(
    rng: np.random.Generator, lows: Sequence[int], highs: Sequence[int], n: int
) -> np.ndarray:
    """Sample ``n`` integer vectors uniformly from inclusive per-dim bounds.

    Vectorized: returns an ``(n, d)`` int64 array.
    """
    lows_a = np.asarray(lows, dtype=np.int64)
    highs_a = np.asarray(highs, dtype=np.int64)
    if lows_a.shape != highs_a.shape:
        raise ValueError("lows/highs length mismatch")
    if np.any(highs_a < lows_a):
        raise ValueError("inverted bounds")
    return rng.integers(lows_a, highs_a + 1, size=(n, lows_a.size), dtype=np.int64)


def choice_without_replacement(
    rng: np.random.Generator, pool: Iterable[int], k: int
) -> list[int]:
    """Choose ``k`` distinct items from ``pool`` (shuffle-based, seeded)."""
    items = list(pool)
    if k > len(items):
        raise ValueError(f"cannot choose {k} from {len(items)} items")
    idx = rng.permutation(len(items))[:k]
    return [items[i] for i in idx]
