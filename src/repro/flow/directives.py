"""Re-export shim: directives live in :mod:`repro.directives`.

They sit at the package root (below both :mod:`repro.synth` and
:mod:`repro.flow` in the import graph) because the optimizer, the
implementation driver, and the tool facade all consume them.
"""

from repro.directives import (  # noqa: F401
    DirectiveEffect,
    DirectiveSet,
    ImplDirective,
    SynthDirective,
)

__all__ = ["DirectiveEffect", "DirectiveSet", "ImplDirective", "SynthDirective"]
