"""Vivado-style report text: rendering and parsing.

Dovado extracts its metrics by scraping the report files Vivado writes.  To
exercise the same code path, VEDA renders utilization and timing reports in
a Vivado-like table format, and the framework's metric extraction *parses
the text back* rather than peeking at internal objects.  Render → parse is
round-trip tested.
"""

from __future__ import annotations

import re

from repro.devices import ResourceKind, UtilizationReport, ResourceVector
from repro.errors import FlowError

__all__ = [
    "render_utilization_report",
    "parse_utilization_report",
    "render_timing_report",
    "parse_timing_report",
]


# ---------------------------------------------------------------------------
# utilization
# ---------------------------------------------------------------------------

_UTIL_HEADER = ("Site Type", "Used", "Available", "Util%")


def render_utilization_report(report: UtilizationReport, design: str, part: str) -> str:
    """Render a utilization report for ``design`` on ``part``."""
    rows = report.rows()
    widths = [len(h) for h in _UTIL_HEADER]
    cells = [
        (kind, str(used), str(avail), f"{pct:.2f}")
        for kind, used, avail, pct in rows
    ]
    for row in cells:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def rule() -> str:
        return "+" + "+".join("-" * (w + 2) for w in widths) + "+"

    def line(row: tuple[str, str, str, str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"

    out = [
        f"Utilization Design Information",
        f"| Design : {design}",
        f"| Device : {part}",
        "",
        rule(),
        line(_UTIL_HEADER),
        rule(),
    ]
    out.extend(line(row) for row in cells)
    out.append(rule())
    return "\n".join(out)


_UTIL_ROW_RE = re.compile(
    r"^\|\s*(?P<kind>[A-Z]+)\s*\|\s*(?P<used>\d+)\s*\|\s*(?P<avail>\d+)\s*\|"
    r"\s*(?P<pct>[\d.]+)\s*\|\s*$"
)


def parse_utilization_report(text: str) -> UtilizationReport:
    """Parse a rendered utilization report back into a structure."""
    used: dict[ResourceKind, int] = {}
    avail: dict[ResourceKind, int] = {}
    for line in text.splitlines():
        m = _UTIL_ROW_RE.match(line.strip())
        if not m:
            continue
        try:
            kind = ResourceKind(m.group("kind"))
        except ValueError:
            continue  # unknown site type rows are tolerated, as in Vivado
        used[kind] = int(m.group("used"))
        avail[kind] = int(m.group("avail"))
    if not avail:
        raise FlowError("no utilization rows found in report text")
    return UtilizationReport(
        used=ResourceVector(used), available=ResourceVector(avail)
    )


# ---------------------------------------------------------------------------
# timing
# ---------------------------------------------------------------------------


def render_timing_report(
    wns_ns: float,
    target_period_ns: float,
    critical_delay_ns: float,
    critical_path: tuple[str, ...],
    arcs_analyzed: int,
) -> str:
    """Render a timing summary in a report_timing_summary-like shape."""
    status = "MET" if wns_ns >= 0 else "VIOLATED"
    path = " -> ".join(critical_path)
    return "\n".join(
        [
            "Timing Summary",
            "--------------",
            f"Requirement  : {target_period_ns:.3f} ns",
            f"Data Path    : {critical_delay_ns:.3f} ns",
            f"WNS          : {wns_ns:.3f} ns",
            f"Status       : {status}",
            f"Paths        : {arcs_analyzed}",
            f"Critical Path: {path}",
        ]
    )


_TIMING_FIELD_RE = re.compile(r"^(?P<key>[A-Za-z ]+?)\s*:\s*(?P<value>.+)$")


def parse_timing_report(text: str) -> dict[str, float | str | tuple[str, ...]]:
    """Parse a rendered timing summary; returns a field dict.

    Keys: ``requirement_ns``, ``data_path_ns``, ``wns_ns``, ``status``,
    ``paths``, ``critical_path``.
    """
    fields: dict[str, float | str | tuple[str, ...]] = {}
    for line in text.splitlines():
        m = _TIMING_FIELD_RE.match(line.strip())
        if not m:
            continue
        key = m.group("key").strip().lower()
        value = m.group("value").strip()
        if key == "requirement":
            fields["requirement_ns"] = float(value.split()[0])
        elif key == "data path":
            fields["data_path_ns"] = float(value.split()[0])
        elif key == "wns":
            fields["wns_ns"] = float(value.split()[0])
        elif key == "status":
            fields["status"] = value
        elif key == "paths":
            fields["paths"] = int(value)
        elif key == "critical path":
            fields["critical_path"] = tuple(p.strip() for p in value.split("->"))
    required = {"requirement_ns", "wns_ns"}
    if not required.issubset(fields):
        missing = ", ".join(sorted(required - set(fields)))
        raise FlowError(f"timing report missing fields: {missing}")
    return fields
