"""Power estimation — VEDA's ``report_power`` counterpart.

The DSE literature the paper builds on optimizes power-delay-area products
(Karakaya's RTL DSE, Section II), and Vivado ships a vectorless power
estimator; VEDA provides the same surface so ``POWER`` can join the metric
set.  The model is the standard vectorless decomposition:

- **static power** — device leakage, scaling with die size and process
  (16 nm leaks less per cell than 28 nm at comparable performance);
- **clock tree** — proportional to clocked cells × frequency;
- **logic / signal** — LUT switching at a default 12.5 % toggle rate,
  scaled by frequency and the routing detour (longer nets = more
  capacitance);
- **BRAM / DSP** — per-primitive active energy at the achieved clock.

Output is milliwatts, rendered/parsed in a Vivado-like report block.  The
absolute values are model constants (documented below), calibrated to
small-design Vivado reports: a ~1k-LUT 28 nm design near 200 MHz lands in
the 60–120 mW total range.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.devices import Device, ResourceKind, ResourceVector
from repro.errors import FlowError

__all__ = ["PowerReport", "estimate_power", "render_power_report", "parse_power_report"]

# Per-process constants (mW-scale), calibrated per the module docstring.
_STATIC_MW_PER_KLUT_CAPACITY = {"28nm": 0.65, "20nm": 0.50, "16nm": 0.38}
_CLOCK_MW_PER_KFF_PER_100MHZ = {"28nm": 1.9, "20nm": 1.3, "16nm": 0.9}
_LOGIC_MW_PER_KLUT_PER_100MHZ = {"28nm": 2.6, "20nm": 1.8, "16nm": 1.2}
_BRAM_MW_PER_TILE_PER_100MHZ = {"28nm": 0.95, "20nm": 0.70, "16nm": 0.50}
_DSP_MW_PER_SLICE_PER_100MHZ = {"28nm": 0.55, "20nm": 0.40, "16nm": 0.28}
_DEFAULT_TOGGLE_RATE = 0.125


@dataclass(frozen=True)
class PowerReport:
    """Per-category power (mW)."""

    static_mw: float
    clocks_mw: float
    logic_mw: float
    bram_mw: float
    dsp_mw: float
    toggle_rate: float
    frequency_mhz: float

    @property
    def dynamic_mw(self) -> float:
        return self.clocks_mw + self.logic_mw + self.bram_mw + self.dsp_mw

    @property
    def total_mw(self) -> float:
        return self.static_mw + self.dynamic_mw


def estimate_power(
    used: ResourceVector,
    device: Device,
    frequency_mhz: float,
    toggle_rate: float = _DEFAULT_TOGGLE_RATE,
    routing_factor: float = 1.0,
) -> PowerReport:
    """Vectorless power estimate for a mapped design at ``frequency_mhz``.

    ``routing_factor`` is the router's detour multiplier: congested designs
    drive longer (higher-capacitance) nets.
    """
    if frequency_mhz <= 0:
        raise FlowError(f"non-positive frequency {frequency_mhz}")
    if not 0.0 < toggle_rate <= 1.0:
        raise FlowError(f"toggle rate {toggle_rate} outside (0, 1]")
    process = device.process
    try:
        static_c = _STATIC_MW_PER_KLUT_CAPACITY[process]
        clock_c = _CLOCK_MW_PER_KFF_PER_100MHZ[process]
        logic_c = _LOGIC_MW_PER_KLUT_PER_100MHZ[process]
        bram_c = _BRAM_MW_PER_TILE_PER_100MHZ[process]
        dsp_c = _DSP_MW_PER_SLICE_PER_100MHZ[process]
    except KeyError:
        raise FlowError(f"no power constants for process {process!r}") from None

    f_scale = frequency_mhz / 100.0
    toggle_scale = toggle_rate / _DEFAULT_TOGGLE_RATE

    static = static_c * device.capacity(ResourceKind.LUT) / 1000.0
    clocks = clock_c * used.get(ResourceKind.FF) / 1000.0 * f_scale
    logic = (
        logic_c * used.get(ResourceKind.LUT) / 1000.0
        * f_scale * toggle_scale * max(1.0, routing_factor)
    )
    bram = bram_c * used.get(ResourceKind.BRAM) * f_scale
    dsp = dsp_c * used.get(ResourceKind.DSP) * f_scale
    return PowerReport(
        static_mw=static,
        clocks_mw=clocks,
        logic_mw=logic,
        bram_mw=bram,
        dsp_mw=dsp,
        toggle_rate=toggle_rate,
        frequency_mhz=frequency_mhz,
    )


def render_power_report(report: PowerReport, design: str, part: str) -> str:
    """Vivado-report_power-like text block."""
    rows = [
        ("Clocks", report.clocks_mw),
        ("Logic+Signals", report.logic_mw),
        ("Block RAM", report.bram_mw),
        ("DSP", report.dsp_mw),
        ("Static", report.static_mw),
    ]
    lines = [
        "Power Report",
        f"| Design : {design}",
        f"| Device : {part}",
        f"| Clock  : {report.frequency_mhz:.1f} MHz @ toggle {report.toggle_rate:.3f}",
        "",
    ]
    for name, mw in rows:
        lines.append(f"{name:<14}: {mw:9.3f} mW")
    lines.append(f"{'Dynamic':<14}: {report.dynamic_mw:9.3f} mW")
    lines.append(f"{'Total':<14}: {report.total_mw:9.3f} mW")
    return "\n".join(lines)


_POWER_ROW_RE = re.compile(r"^(?P<name>[A-Za-z+ ]+?)\s*:\s*(?P<mw>[\d.]+) mW$")
_CLOCK_RE = re.compile(r"Clock\s*:\s*(?P<mhz>[\d.]+) MHz @ toggle (?P<tr>[\d.]+)")


def parse_power_report(text: str) -> PowerReport:
    """Parse a rendered power report back."""
    values: dict[str, float] = {}
    mhz = tr = None
    for line in text.splitlines():
        m = _CLOCK_RE.search(line)
        if m:
            mhz = float(m.group("mhz"))
            tr = float(m.group("tr"))
        m = _POWER_ROW_RE.match(line.strip())
        if m:
            values[m.group("name").strip()] = float(m.group("mw"))
    required = {"Clocks", "Logic+Signals", "Block RAM", "DSP", "Static"}
    if not required.issubset(values) or mhz is None or tr is None:
        raise FlowError("malformed power report")
    return PowerReport(
        static_mw=values["Static"],
        clocks_mw=values["Clocks"],
        logic_mw=values["Logic+Signals"],
        bram_mw=values["Block RAM"],
        dsp_mw=values["DSP"],
        toggle_rate=tr,
        frequency_mhz=mhz,
    )
