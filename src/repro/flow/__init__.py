"""VEDA — the simulated EDA tool facade.

This package is the Vivado stand-in: a project/run façade
(:mod:`repro.flow.vivado_sim`) driven either programmatically or through the
TCL layer, per-step directives (:mod:`repro.flow.directives`), and textual
utilization/timing reports with parsers (:mod:`repro.flow.reports`) so the
framework extracts metrics the same way Dovado scrapes Vivado's output.
"""

from repro.flow.directives import (
    ImplDirective,
    SynthDirective,
    DirectiveSet,
)
from repro.flow.vivado_sim import VivadoSim, RunResult, FlowStep
from repro.flow.reports import (
    render_timing_report,
    render_utilization_report,
    parse_timing_report,
    parse_utilization_report,
)
from repro.flow.power import (
    PowerReport,
    estimate_power,
    render_power_report,
    parse_power_report,
)

__all__ = [
    "ImplDirective",
    "SynthDirective",
    "DirectiveSet",
    "VivadoSim",
    "RunResult",
    "FlowStep",
    "render_timing_report",
    "render_utilization_report",
    "parse_timing_report",
    "parse_utilization_report",
    "PowerReport",
    "estimate_power",
    "render_power_report",
    "parse_power_report",
]
