"""VEDA's Vivado-like project facade.

:class:`VivadoSim` exposes the command surface Dovado drives over TCL:
source readin, part selection, clock constraint, ``synth_design``,
``place_design``/``route_design`` (fused as the implementation step),
report generation, and checkpoint write/read.  A higher-level
:meth:`VivadoSim.run` performs a whole single-point evaluation and returns a
:class:`RunResult` with the metrics Dovado scrapes.

Determinism & noise: every run's QoR receives a small multiplicative jitter
keyed on the *content* of the run (part, top, parameter binding, directives,
step) — re-running the same point reproduces identical numbers (so caching
is sound, matching Vivado's deterministic default flow), while neighbouring
points get decorrelated wiggle, which is what the Nadaraya-Watson model has
to average over.

Simulated wall time: each step charges simulated seconds (see the runtime
models in synthesis/implementation); ``last_run_seconds`` and the
cumulative ``simulated_seconds`` let the DSE loop account tool cost against
its soft deadline without actually waiting.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.devices import Device, ResourceKind, ResourceVector, UtilizationReport, get_device
from repro.errors import FlowError
from repro.directives import DirectiveSet, ImplDirective, SynthDirective
from repro.flow.reports import render_timing_report, render_utilization_report
from repro.hdl.ast import HdlLanguage, Module
from repro.hdl.frontend import SourceCollection, parse_source
from repro.observe import span as observe_span
from repro.pnr.checkpoints import CheckpointStore
from repro.pnr.implementation import implement
from repro.pnr.timing import block_internal_delay_ns
from repro.synth.synthesis import synthesize
from repro.util.rng import stable_hash_seed
from repro.util.timing import Stopwatch
from repro.util.units import fmax_from_wns

__all__ = ["FlowStep", "RunResult", "VivadoSim"]


class FlowStep(str, enum.Enum):
    """Which physical step metrics are extracted after (paper Section III-A)."""

    SYNTHESIS = "synthesis"
    IMPLEMENTATION = "implementation"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class RunResult:
    """One evaluated design point, as Dovado consumes it."""

    top: str
    part: str
    parameters: dict[str, int]
    step: FlowStep
    utilization: UtilizationReport
    wns_ns: float
    target_period_ns: float
    fmax_mhz: float
    critical_path: tuple[str, ...]
    simulated_seconds: float
    incremental: bool
    utilization_report_text: str
    timing_report_text: str
    from_cache: bool = False

    def metric(self, name: str) -> float:
        """Uniform metric accessor: ``"frequency"`` (MHz) or a resource kind."""
        if name.lower() in ("frequency", "fmax", "fmax_mhz"):
            return self.fmax_mhz
        return float(self.utilization.used.get(ResourceKind(name.upper())))


# QoR noise magnitudes (1-sigma, multiplicative).
_NOISE_DELAY = 0.020
_NOISE_LUT = 0.010
_NOISE_FF = 0.008


class VivadoSim:
    """A simulated Vivado session (one project)."""

    def __init__(
        self,
        part: str = "XC7K70T",
        seed: int = 0,
        incremental_synth: bool = False,
        incremental_impl: bool = False,
        noise: bool = True,
    ) -> None:
        self.device: Device = get_device(part)
        self.seed = seed
        self.noise = noise
        self.incremental_synth = incremental_synth
        self.incremental_impl = incremental_impl
        self.sources = SourceCollection()
        self.target_period_ns: float = 1.0  # paper default: 1 GHz target
        self.checkpoints = CheckpointStore()
        self.stopwatch = Stopwatch()
        self.simulated_seconds = 0.0
        self.last_run_seconds = 0.0
        self.last_run_cached = False
        self.runs = 0
        self.failed_runs = 0
        self._last_synth_netlist = None
        self._cache: dict[int, RunResult] = {}

    # ------------------------------------------------------------------
    # project commands (TCL surface)
    # ------------------------------------------------------------------

    def set_part(self, part: str) -> Device:
        self.device = get_device(part)
        return self.device

    def create_clock(self, period_ns: float) -> None:
        if period_ns <= 0:
            raise FlowError(f"create_clock: non-positive period {period_ns}")
        self.target_period_ns = float(period_ns)

    def read_hdl(self, text: str, language: HdlLanguage | str) -> list[str]:
        """Read HDL text (read_vhdl / read_verilog -sv); returns module names."""
        language = HdlLanguage(language)
        modules = parse_source(text, language)
        from repro.hdl.ast import SourceUnit

        self.sources.add_unit(
            SourceUnit(
                path=f"<read:{len(self.sources.units)}>",
                language=language,
                modules=tuple(modules),
            )
        )
        return [m.name for m in modules]

    def read_file(self, path: str) -> list[str]:
        unit = self.sources.add_file(path)
        return [m.name for m in unit.modules]

    def find_top(self, top: str) -> Module:
        return self.sources.find_module(top)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _noise_factor(self, key: tuple, sigma: float) -> float:
        if not self.noise:
            return 1.0
        rng = np.random.default_rng(stable_hash_seed((self.seed, *key)))
        return float(np.clip(1.0 + sigma * rng.standard_normal(), 0.9, 1.1))

    def run(
        self,
        top: str,
        parameters: Mapping[str, int | bool] | None = None,
        step: FlowStep = FlowStep.IMPLEMENTATION,
        directives: DirectiveSet | None = None,
    ) -> RunResult:
        """Evaluate one design point end to end.

        Results are cached on (top, part, parameters, step, directives,
        period): repeating a call returns the archived result at zero
        simulated cost — the "Vivado employs cached results" case of the
        paper's control model.  Cache answers are flagged explicitly:
        the returned :class:`RunResult` has ``from_cache=True`` and
        ``last_run_cached`` is set, so callers never have to infer cache
        hits from a (possibly stale) ``last_run_seconds``.

        A run that *fails* — e.g. utilization exceeding device capacity —
        still charges the simulated seconds the completed steps cost to
        ``simulated_seconds``/``last_run_seconds`` before the error
        propagates: Vivado errors late, and a failed point is not free
        against the DSE soft deadline.
        """
        directives = directives or DirectiveSet()
        params = {k: int(v) for k, v in (parameters or {}).items()}
        cache_key = stable_hash_seed(
            (
                top.lower(), self.device.part, sorted(params.items()), str(step),
                directives.as_dict(), round(self.target_period_ns, 6),
            )
        )
        cached = self._cache.get(cache_key)
        if cached is not None:
            self.last_run_seconds = 0.0
            self.last_run_cached = True
            return dataclasses.replace(cached, from_cache=True)
        self.last_run_cached = False

        module = self.find_top(top)
        reference = self._last_synth_netlist if self.incremental_synth else None
        seconds = 0.0
        try:
            with self.stopwatch.measure("synthesis"), \
                    observe_span("flow.synthesis") as sp:
                synth = synthesize(
                    module,
                    self.device,
                    overrides=params,
                    directive=directives.synth,
                    reference=reference,
                )
                seconds = synth.simulated_seconds
                sp.charge(synth.simulated_seconds)
            noise_key = (top.lower(), self.device.part, sorted(params.items()),
                         directives.as_dict(), str(step))

            if step == FlowStep.IMPLEMENTATION:
                with self.stopwatch.measure("implementation"), \
                        observe_span("flow.implementation") as sp:
                    impl = implement(
                        synth.mapped,
                        target_period_ns=self.target_period_ns,
                        directive=directives.impl,
                        seed=stable_hash_seed((self.seed, *noise_key)),
                        checkpoints=self.checkpoints if self.incremental_impl else None,
                        extra_delay_bias=directives.synth.effect().delay_bias,
                    )
                    seconds += impl.simulated_seconds
                    sp.charge(impl.simulated_seconds)
                critical_delay = impl.timing.critical_delay_ns
                critical_path = impl.timing.critical_path
                arcs = impl.timing.arcs_analyzed
                incremental = impl.used_checkpoint or synth.incremental_reuse > 0
            else:
                # Synthesis-step timing estimate: internal delays plus one
                # nominal net hop per combinational crossing — optimistic,
                # as Vivado's post-synth estimates are.
                critical_delay, critical_path, arcs = self._synth_timing_estimate(synth)
                incremental = synth.incremental_reuse > 0

            critical_delay *= self._noise_factor((*noise_key, "delay"), _NOISE_DELAY)
            wns = self.target_period_ns - critical_delay
            fmax = fmax_from_wns(self.target_period_ns, wns)

            used = synth.mapped.total
            lut_noise = self._noise_factor((*noise_key, "lut"), _NOISE_LUT)
            ff_noise = self._noise_factor((*noise_key, "ff"), _NOISE_FF)
            noisy_counts = dict(used.counts)
            if ResourceKind.LUT in noisy_counts:
                noisy_counts[ResourceKind.LUT] = max(
                    1, round(noisy_counts[ResourceKind.LUT] * lut_noise)
                )
            if ResourceKind.FF in noisy_counts:
                noisy_counts[ResourceKind.FF] = max(
                    1, round(noisy_counts[ResourceKind.FF] * ff_noise)
                )
            utilization = UtilizationReport(
                used=ResourceVector(noisy_counts), available=self.device.resources
            )
            overflow = utilization.overflows()
            if overflow:
                kinds = ", ".join(str(k) for k in overflow)
                raise FlowError(
                    f"{top}: utilization exceeds {self.device.part} capacity for {kinds}"
                )
        except FlowError:
            # The steps that completed before the error still spent tool
            # time; charge it so failed points count against the deadline.
            self.simulated_seconds += seconds
            self.last_run_seconds = seconds
            self.failed_runs += 1
            raise

        # Only now — after the whole flow succeeded — commit this netlist
        # as the incremental-synthesis warm-start reference: a failed point
        # must not seed later runs with a netlist that never finished.
        self._last_synth_netlist = synth.netlist

        util_text = render_utilization_report(utilization, design=top, part=self.device.part)
        timing_text = render_timing_report(
            wns_ns=wns,
            target_period_ns=self.target_period_ns,
            critical_delay_ns=critical_delay,
            critical_path=critical_path,
            arcs_analyzed=arcs,
        )
        result = RunResult(
            top=module.name,
            part=self.device.part,
            parameters=params,
            step=step,
            utilization=utilization,
            wns_ns=wns,
            target_period_ns=self.target_period_ns,
            fmax_mhz=fmax,
            critical_path=critical_path,
            simulated_seconds=seconds,
            incremental=incremental,
            utilization_report_text=util_text,
            timing_report_text=timing_text,
        )
        self._cache[cache_key] = result
        self.simulated_seconds += seconds
        self.last_run_seconds = seconds
        self.runs += 1
        return result

    def _synth_timing_estimate(self, synth) -> tuple[float, tuple[str, ...], int]:
        netlist = synth.netlist
        device = self.device
        t = device.timing()
        overhead = (t.ff_clk_to_q_ns + t.ff_setup_ns) * device.speed_factor
        internal = {
            b.name: block_internal_delay_ns(b, device) for b in netlist.blocks()
        }
        arcs = netlist.timing_arcs()
        if not arcs:
            raise FlowError("no timing arcs at synthesis estimate")
        hop = t.net_delay_ns * device.speed_factor
        worst = 0.0
        worst_path: tuple[str, ...] = arcs[0].blocks
        blocks = {b.name: b for b in netlist.blocks()}
        for arc in arcs:
            launch_registered = (
                blocks[arc.blocks[0]].registered_output and len(arc.blocks) > 1
            )
            delay = overhead + hop * arc.hops()
            for i, name in enumerate(arc.blocks):
                if i == 0 and launch_registered:
                    continue
                delay += internal[name]
            if delay > worst:
                worst, worst_path = delay, arc.blocks
        worst *= synth.directive.effect().delay_bias
        return worst, worst_path, len(arcs)
