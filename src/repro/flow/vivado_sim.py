"""VEDA's Vivado-like project facade.

:class:`VivadoSim` exposes the command surface Dovado drives over TCL:
source readin, part selection, clock constraint, ``synth_design``,
``place_design``/``route_design`` (fused as the implementation step),
report generation, and checkpoint write/read.  A higher-level
:meth:`VivadoSim.run` performs a whole single-point evaluation and returns a
:class:`RunResult` with the metrics Dovado scrapes.

Determinism & noise: every run's QoR receives a small multiplicative jitter
keyed on the *content* of the run (part, top, parameter binding, directives,
step) — re-running the same point reproduces identical numbers (so caching
is sound, matching Vivado's deterministic default flow), while neighbouring
points get decorrelated wiggle, which is what the Nadaraya-Watson model has
to average over.

Simulated wall time: each step charges simulated seconds (see the runtime
models in synthesis/implementation); ``last_run_seconds`` and the
cumulative ``simulated_seconds`` let the DSE loop account tool cost against
its soft deadline without actually waiting.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.cache.lru import LruCache
from repro.devices import Device, ResourceKind, ResourceVector, UtilizationReport, get_device
from repro.errors import FlowError
from repro.directives import DirectiveSet, ImplDirective, SynthDirective
from repro.flow.reports import render_timing_report, render_utilization_report
from repro.hdl.ast import HdlLanguage, Module
from repro.hdl.frontend import SourceCollection, parse_source
from repro.observe import current_telemetry, span as observe_span
from repro.pnr.checkpoints import CheckpointStore
from repro.pnr.implementation import implement, implement_placed_estimate
from repro.pnr.timing import block_internal_delay_ns
from repro.synth.synthesis import synthesize
from repro.util.rng import stable_hash_seed
from repro.util.timing import Stopwatch
from repro.util.units import fmax_from_wns

__all__ = ["Fidelity", "FlowStep", "RunResult", "VivadoSim"]

#: Default bound of each in-memory cache (run/synthesis/implementation).
#: Generous — a DSE session rarely revisits more distinct configurations —
#: but finite: the persistent result store (``repro.cache``) is the durable
#: layer, so the in-memory side only needs the hot working set.
DEFAULT_CACHE_CAPACITY = 1024


class FlowStep(str, enum.Enum):
    """Which physical step metrics are extracted after (paper Section III-A)."""

    SYNTHESIS = "synthesis"
    IMPLEMENTATION = "implementation"

    def __str__(self) -> str:
        return self.value


class Fidelity(str, enum.Enum):
    """How far down the flow ladder a run's metrics come from.

    Ordered by cost and trustworthiness:

    - ``STATIC_ESTIMATE`` — no tool stage at all: analytical bounds from
      the elaborated netlist (utilization lower bounds, Fmax upper bound).
      Charges **zero** simulated seconds; rank below every tool rung.
    - ``SYNTH_ESTIMATE`` — synthesis only, optimistic post-synth timing
      estimate.  What a ``step=SYNTHESIS`` run always produces.
    - ``PLACED_ESTIMATE`` — synthesis + real placement, timing from
      congestion-free (optimistic) routing.  A mid-ladder probe for
      ``step=IMPLEMENTATION`` evaluations.
    - ``FULL_ROUTE`` — the complete synth → place → route → STA flow; the
      only fidelity whose numbers are authoritative.
    """

    STATIC_ESTIMATE = "static-estimate"
    SYNTH_ESTIMATE = "synth-estimate"
    PLACED_ESTIMATE = "placed-estimate"
    FULL_ROUTE = "full-route"

    def __str__(self) -> str:
        return self.value

    @property
    def rank(self) -> int:
        """Ladder position (higher = more trustworthy)."""
        return _FIDELITY_RANK[self]


# The tool rungs keep their pre-ladder ranks (0/1/2 are persisted in the
# result store); the static rung slots underneath rather than renumbering.
_FIDELITY_RANK = {
    Fidelity.STATIC_ESTIMATE: -1,
    Fidelity.SYNTH_ESTIMATE: 0,
    Fidelity.PLACED_ESTIMATE: 1,
    Fidelity.FULL_ROUTE: 2,
}


@dataclass(frozen=True)
class RunResult:
    """One evaluated design point, as Dovado consumes it."""

    top: str
    part: str
    parameters: dict[str, int]
    step: FlowStep
    utilization: UtilizationReport
    wns_ns: float
    target_period_ns: float
    fmax_mhz: float
    critical_path: tuple[str, ...]
    simulated_seconds: float
    incremental: bool
    utilization_report_text: str
    timing_report_text: str
    from_cache: bool = False
    fidelity: Fidelity = Fidelity.FULL_ROUTE

    def metric(self, name: str) -> float:
        """Uniform metric accessor: ``"frequency"`` (MHz) or a resource kind."""
        if name.lower() in ("frequency", "fmax", "fmax_mhz"):
            return self.fmax_mhz
        return float(self.utilization.used.get(ResourceKind(name.upper())))


# QoR noise magnitudes (1-sigma, multiplicative).
_NOISE_DELAY = 0.020
_NOISE_LUT = 0.010
_NOISE_FF = 0.008


@dataclass(frozen=True)
class _ImplStageEntry:
    """What the implementation stage contributes to a run.

    Deliberately excludes the target period: placement, routing and the
    pre-noise critical delay of the simulated flow are functions of the
    mapped netlist, the implementation directive and the seed alone — the
    period only enters the WNS subtraction, which :meth:`VivadoSim.run`
    recomputes per call.  Caching at this granularity lets points that
    differ only in clock constraint reuse the implemented design.
    """

    critical_delay_ns: float
    critical_path: tuple[str, ...]
    arcs_analyzed: int
    simulated_seconds: float
    used_checkpoint: bool


class VivadoSim:
    """A simulated Vivado session (one project)."""

    def __init__(
        self,
        part: str = "XC7K70T",
        seed: int = 0,
        incremental_synth: bool = False,
        incremental_impl: bool = False,
        noise: bool = True,
        cache_capacity: int | None = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        self.device: Device = get_device(part)
        self.seed = seed
        self.noise = noise
        self.incremental_synth = incremental_synth
        self.incremental_impl = incremental_impl
        self.sources = SourceCollection()
        self.target_period_ns: float = 1.0  # paper default: 1 GHz target
        self.checkpoints = CheckpointStore()
        self.stopwatch = Stopwatch()
        self.simulated_seconds = 0.0
        self.last_run_seconds = 0.0
        self.last_run_cached = False
        self.last_run_stages: tuple[str, ...] = ()
        self.last_run_fidelity: Fidelity = Fidelity.FULL_ROUTE
        self.fidelity_runs: dict[str, int] = {str(f): 0 for f in Fidelity}
        self.runs = 0
        self.failed_runs = 0
        self.run_cache_hits = 0
        self.synth_stage_hits = 0
        self.impl_stage_hits = 0
        self.cache_capacity = cache_capacity
        self._last_synth_netlist = None
        self._cache: LruCache = LruCache(cache_capacity)
        self._synth_cache: LruCache = LruCache(cache_capacity)
        self._impl_cache: LruCache = LruCache(cache_capacity)

    @staticmethod
    def _count(name: str) -> None:
        tel = current_telemetry()
        if tel is not None:
            tel.counters.inc(name)

    # ------------------------------------------------------------------
    # project commands (TCL surface)
    # ------------------------------------------------------------------

    def set_part(self, part: str) -> Device:
        self.device = get_device(part)
        return self.device

    def create_clock(self, period_ns: float) -> None:
        if period_ns <= 0:
            raise FlowError(f"create_clock: non-positive period {period_ns}")
        self.target_period_ns = float(period_ns)

    def read_hdl(self, text: str, language: HdlLanguage | str) -> list[str]:
        """Read HDL text (read_vhdl / read_verilog -sv); returns module names."""
        language = HdlLanguage(language)
        modules = parse_source(text, language)
        from repro.hdl.ast import SourceUnit

        self.sources.add_unit(
            SourceUnit(
                path=f"<read:{len(self.sources.units)}>",
                language=language,
                modules=tuple(modules),
            )
        )
        return [m.name for m in modules]

    def read_file(self, path: str) -> list[str]:
        unit = self.sources.add_file(path)
        return [m.name for m in unit.modules]

    def find_top(self, top: str) -> Module:
        return self.sources.find_module(top)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _noise_factor(self, key: tuple, sigma: float) -> float:
        if not self.noise:
            return 1.0
        rng = np.random.default_rng(stable_hash_seed((self.seed, *key)))
        return float(np.clip(1.0 + sigma * rng.standard_normal(), 0.9, 1.1))

    def run(
        self,
        top: str,
        parameters: Mapping[str, int | bool] | None = None,
        step: FlowStep = FlowStep.IMPLEMENTATION,
        directives: DirectiveSet | None = None,
        fidelity: Fidelity | str | None = None,
    ) -> RunResult:
        """Evaluate one design point end to end.

        Caching happens at two granularities:

        - **Run cache** — keyed on (top, part, parameters, step,
          directives, period): repeating a call returns the archived
          result at zero simulated cost — the "Vivado employs cached
          results" case of the paper's control model.  Cache answers are
          flagged explicitly: the returned :class:`RunResult` has
          ``from_cache=True`` and ``last_run_cached`` is set, so callers
          never have to infer cache hits from a (possibly stale)
          ``last_run_seconds``.
        - **Stage caches** — the synthesis stage is keyed on (top, part,
          parameters, synth directive) and the implementation stage on
          (synthesis key, impl directive), so a point that differs only
          in implementation directive or target period reuses the
          synthesized/mapped netlist instead of re-running
          ``synth_design``.  Simulated seconds charge only the stages
          actually executed (``last_run_stages`` names them).  Stage
          entries commit only after the whole flow succeeds, and stage
          caching is disabled for incremental flows, whose results are
          order-dependent.

        A run that *fails* — e.g. utilization exceeding device capacity —
        still charges the simulated seconds the completed steps cost to
        ``simulated_seconds``/``last_run_seconds`` before the error
        propagates: Vivado errors late, and a failed point is not free
        against the DSE soft deadline.

        ``fidelity`` selects a rung of the flow ladder for
        ``step=IMPLEMENTATION`` runs: ``None``/``FULL_ROUTE`` is the
        unchanged full flow; ``PLACED_ESTIMATE`` stops after placement and
        reads timing off congestion-free routing; ``SYNTH_ESTIMATE``
        stops after synthesis (same numbers a ``step=SYNTHESIS`` run
        produces); ``STATIC_ESTIMATE`` runs no tool stage at all and
        reports sound analytical bounds (utilization lower bounds, Fmax
        upper bound) at **zero** simulated seconds.  ``step=SYNTHESIS``
        runs always report ``SYNTH_ESTIMATE``.  Each rung charges only the stages it
        executes, and the result is tagged with its fidelity.  Lower
        rungs never touch the implementation stage cache or incremental
        checkpoints — a speculative probe must not perturb what the full
        flow would later compute.
        """
        directives = directives or DirectiveSet()
        params = {k: int(v) for k, v in (parameters or {}).items()}
        if fidelity is not None:
            fidelity = Fidelity(fidelity)
        if step != FlowStep.IMPLEMENTATION:
            effective = Fidelity.SYNTH_ESTIMATE
        elif fidelity is None:
            effective = Fidelity.FULL_ROUTE
        else:
            effective = fidelity
        self.last_run_fidelity = effective
        cache_key = stable_hash_seed(
            (
                top.lower(), self.device.part, sorted(params.items()), str(step),
                directives.as_dict(), round(self.target_period_ns, 6),
                str(effective),
            )
        )
        cached = self._cache.get(cache_key)
        if cached is not None:
            self.last_run_seconds = 0.0
            self.last_run_cached = True
            self.last_run_stages = ()
            self.run_cache_hits += 1
            self._count("cache.run_hit")
            return dataclasses.replace(cached, from_cache=True)
        self.last_run_cached = False

        module = self.find_top(top)
        if step == FlowStep.IMPLEMENTATION and effective is Fidelity.STATIC_ESTIMATE:
            return self._static_estimate_run(module, params, directives, cache_key)
        # Incremental flows warm-start from whatever ran before, so their
        # stage outputs are order-dependent and must not be reused by key.
        stage_cacheable = not (self.incremental_synth or self.incremental_impl)
        reference = self._last_synth_netlist if self.incremental_synth else None
        synth_key = (
            top.lower(), self.device.part, tuple(sorted(params.items())),
            str(directives.synth),
        )
        impl_key = (synth_key, str(directives.impl))
        impl_entry: _ImplStageEntry | None = None
        stages: list[str] = []
        seconds = 0.0
        try:
            synth = self._synth_cache.get(synth_key) if stage_cacheable else None
            if synth is not None:
                self.synth_stage_hits += 1
                self._count("cache.synth_hit")
            else:
                with self.stopwatch.measure("synthesis"), \
                        observe_span("flow.synthesis") as sp:
                    synth = synthesize(
                        module,
                        self.device,
                        overrides=params,
                        directive=directives.synth,
                        reference=reference,
                    )
                    seconds = synth.simulated_seconds
                    sp.charge(synth.simulated_seconds)
                stages.append("synthesis")
            noise_key = (top.lower(), self.device.part, sorted(params.items()),
                         directives.as_dict(), str(step))
            if step == FlowStep.IMPLEMENTATION and effective is not Fidelity.FULL_ROUTE:
                # Lower rungs decorrelate their jitter from the full flow —
                # the gate's residual model has to learn a real estimate
                # gap, not a shared noise draw.  Full-route keys stay
                # byte-identical to the pre-ladder flow.
                noise_key = (*noise_key, str(effective))

            if step == FlowStep.IMPLEMENTATION and effective is Fidelity.FULL_ROUTE:
                impl_entry = (
                    self._impl_cache.get(impl_key) if stage_cacheable else None
                )
                if impl_entry is not None:
                    self.impl_stage_hits += 1
                    self._count("cache.impl_hit")
                else:
                    with self.stopwatch.measure("implementation"), \
                            observe_span("flow.implementation") as sp:
                        impl = implement(
                            synth.mapped,
                            target_period_ns=self.target_period_ns,
                            directive=directives.impl,
                            seed=stable_hash_seed((self.seed, *noise_key)),
                            checkpoints=self.checkpoints if self.incremental_impl else None,
                            extra_delay_bias=directives.synth.effect().delay_bias,
                        )
                        seconds += impl.simulated_seconds
                        sp.charge(impl.simulated_seconds)
                    stages.append("implementation")
                    impl_entry = _ImplStageEntry(
                        critical_delay_ns=impl.timing.critical_delay_ns,
                        critical_path=impl.timing.critical_path,
                        arcs_analyzed=impl.timing.arcs_analyzed,
                        simulated_seconds=impl.simulated_seconds,
                        used_checkpoint=impl.used_checkpoint,
                    )
                critical_delay = impl_entry.critical_delay_ns
                critical_path = impl_entry.critical_path
                arcs = impl_entry.arcs_analyzed
                incremental = impl_entry.used_checkpoint or synth.incremental_reuse > 0
            elif step == FlowStep.IMPLEMENTATION and effective is Fidelity.PLACED_ESTIMATE:
                with self.stopwatch.measure("placement"), \
                        observe_span("flow.placed_estimate") as sp:
                    est = implement_placed_estimate(
                        synth.mapped,
                        target_period_ns=self.target_period_ns,
                        directive=directives.impl,
                        seed=stable_hash_seed((self.seed, *noise_key)),
                        extra_delay_bias=directives.synth.effect().delay_bias,
                    )
                    seconds += est.simulated_seconds
                    sp.charge(est.simulated_seconds)
                stages.append("placement")
                critical_delay = est.timing.critical_delay_ns
                critical_path = est.timing.critical_path
                arcs = est.timing.arcs_analyzed
                incremental = synth.incremental_reuse > 0
            else:
                # Synthesis-step timing estimate: internal delays plus one
                # nominal net hop per combinational crossing — optimistic,
                # as Vivado's post-synth estimates are.
                critical_delay, critical_path, arcs = self._synth_timing_estimate(synth)
                incremental = synth.incremental_reuse > 0

            critical_delay *= self._noise_factor((*noise_key, "delay"), _NOISE_DELAY)
            wns = self.target_period_ns - critical_delay
            fmax = fmax_from_wns(self.target_period_ns, wns)

            used = synth.mapped.total
            lut_noise = self._noise_factor((*noise_key, "lut"), _NOISE_LUT)
            ff_noise = self._noise_factor((*noise_key, "ff"), _NOISE_FF)
            noisy_counts = dict(used.counts)
            if ResourceKind.LUT in noisy_counts:
                noisy_counts[ResourceKind.LUT] = max(
                    1, round(noisy_counts[ResourceKind.LUT] * lut_noise)
                )
            if ResourceKind.FF in noisy_counts:
                noisy_counts[ResourceKind.FF] = max(
                    1, round(noisy_counts[ResourceKind.FF] * ff_noise)
                )
            utilization = UtilizationReport(
                used=ResourceVector(noisy_counts), available=self.device.resources
            )
            overflow = utilization.overflows()
            if overflow:
                kinds = ", ".join(str(k) for k in overflow)
                raise FlowError(
                    f"{top}: utilization exceeds {self.device.part} capacity for {kinds}"
                )
        except FlowError:
            # The steps that completed before the error still spent tool
            # time; charge it so failed points count against the deadline.
            self.simulated_seconds += seconds
            self.last_run_seconds = seconds
            self.last_run_stages = tuple(stages)
            self.failed_runs += 1
            raise

        # Only now — after the whole flow succeeded — commit this netlist
        # as the incremental-synthesis warm-start reference, and the stage
        # outputs to their caches: a failed point must not seed later runs
        # with artifacts from a flow that never finished (and retrying a
        # failing point must keep charging what the baseline flow charges).
        self._last_synth_netlist = synth.netlist
        if stage_cacheable:
            self._synth_cache.put(synth_key, synth)
            if impl_entry is not None:
                self._impl_cache.put(impl_key, impl_entry)

        util_text = render_utilization_report(utilization, design=top, part=self.device.part)
        timing_text = render_timing_report(
            wns_ns=wns,
            target_period_ns=self.target_period_ns,
            critical_delay_ns=critical_delay,
            critical_path=critical_path,
            arcs_analyzed=arcs,
        )
        result = RunResult(
            top=module.name,
            part=self.device.part,
            parameters=params,
            step=step,
            utilization=utilization,
            wns_ns=wns,
            target_period_ns=self.target_period_ns,
            fmax_mhz=fmax,
            critical_path=critical_path,
            simulated_seconds=seconds,
            incremental=incremental,
            utilization_report_text=util_text,
            timing_report_text=timing_text,
            fidelity=effective,
        )
        self._cache.put(cache_key, result)
        self.simulated_seconds += seconds
        self.last_run_seconds = seconds
        self.last_run_stages = tuple(stages)
        self.runs += 1
        self.fidelity_runs[str(effective)] += 1
        return result

    def _static_estimate_run(
        self,
        module: Module,
        params: dict[str, int],
        directives: DirectiveSet,
        cache_key: int,
    ) -> RunResult:
        """Rung 0: analytical bounds, zero simulated seconds.

        Elaborates and optimizes the netlist exactly as the synthesis
        stage would (milliseconds of real time, no simulated tool charge),
        then reports the sound bounds from
        :func:`repro.netlist.static_estimate.static_estimate`: utilization
        lower bounds and an Fmax upper bound.  Never touches the stage
        caches, checkpoints, or the incremental warm-start reference — a
        static probe must not perturb what a later tool run computes.  A
        point whose utilization *lower bound* already overflows the device
        is guaranteed to fail every tool rung, so the overflow
        :class:`FlowError` raised here is a sound (and free) rejection.
        """
        from repro.netlist.static_estimate import static_estimate
        from repro.synth.elaborate import elaborate
        from repro.synth.optimizer import optimize

        effective = Fidelity.STATIC_ESTIMATE
        try:
            with observe_span("flow.static_estimate"):
                netlist = elaborate(module, params)
                optimized = optimize(netlist, directives.synth)
                bias = (
                    directives.synth.effect().delay_bias
                    * directives.impl.effect().delay_bias
                )
                est = static_estimate(
                    optimized,
                    self.device,
                    boxed=True,
                    delay_bias=bias,
                    noise_floor=0.9 if self.noise else 1.0,
                )
            utilization = UtilizationReport(
                used=est.utilization_lb, available=self.device.resources
            )
            overflow = utilization.overflows()
            if overflow:
                kinds = ", ".join(str(k) for k in overflow)
                raise FlowError(
                    f"{module.name}: utilization lower bound exceeds "
                    f"{self.device.part} capacity for {kinds}"
                )
        except FlowError:
            self.last_run_seconds = 0.0
            self.last_run_stages = ("static-estimate",)
            self.failed_runs += 1
            raise

        wns = self.target_period_ns - est.delay_lb_ns
        fmax = fmax_from_wns(self.target_period_ns, wns)
        util_text = render_utilization_report(
            utilization, design=module.name, part=self.device.part
        )
        timing_text = render_timing_report(
            wns_ns=wns,
            target_period_ns=self.target_period_ns,
            critical_delay_ns=est.delay_lb_ns,
            critical_path=est.critical_path,
            arcs_analyzed=est.arcs_analyzed,
        )
        result = RunResult(
            top=module.name,
            part=self.device.part,
            parameters=params,
            step=FlowStep.IMPLEMENTATION,
            utilization=utilization,
            wns_ns=wns,
            target_period_ns=self.target_period_ns,
            fmax_mhz=fmax,
            critical_path=est.critical_path,
            simulated_seconds=0.0,
            incremental=False,
            utilization_report_text=util_text,
            timing_report_text=timing_text,
            fidelity=effective,
        )
        self._cache.put(cache_key, result)
        self.last_run_seconds = 0.0
        self.last_run_stages = ("static-estimate",)
        self.runs += 1
        self.fidelity_runs[str(effective)] += 1
        return result

    def _synth_timing_estimate(self, synth) -> tuple[float, tuple[str, ...], int]:
        netlist = synth.netlist
        device = self.device
        t = device.timing()
        overhead = (t.ff_clk_to_q_ns + t.ff_setup_ns) * device.speed_factor
        # One pass over the netlist collects both per-block facts the arc
        # walk needs (internal delay, launch registration).
        internal: dict[str, float] = {}
        registered: dict[str, bool] = {}
        for b in netlist.blocks():
            internal[b.name] = block_internal_delay_ns(b, device)
            registered[b.name] = b.registered_output
        arcs = netlist.timing_arcs()
        if not arcs:
            raise FlowError("no timing arcs at synthesis estimate")
        hop = t.net_delay_ns * device.speed_factor
        lengths = np.fromiter(
            (len(arc.blocks) for arc in arcs), dtype=np.intp, count=len(arcs)
        )
        starts = np.zeros(len(arcs), dtype=np.intp)
        np.cumsum(lengths[:-1], out=starts[1:])
        flat = np.fromiter(
            (internal[name] for arc in arcs for name in arc.blocks),
            dtype=np.float64,
            count=int(lengths.sum()),
        )
        # A registered launch block contributes clk-to-q (already in the
        # overhead term), not its internal delay — subtract it back out.
        launch_skip = np.fromiter(
            (
                internal[arc.blocks[0]]
                if registered[arc.blocks[0]] and len(arc.blocks) > 1
                else 0.0
                for arc in arcs
            ),
            dtype=np.float64,
            count=len(arcs),
        )
        hops = np.fromiter(
            (arc.hops() for arc in arcs), dtype=np.float64, count=len(arcs)
        )
        delays = overhead + hop * hops + np.add.reduceat(flat, starts) - launch_skip
        worst_idx = int(np.argmax(delays))
        worst = float(delays[worst_idx]) * synth.directive.effect().delay_bias
        return worst, arcs[worst_idx].blocks, len(arcs)
