"""Process-wide telemetry plumbing: the bundle, the current instance, spans.

Telemetry is **off by default and zero-overhead when off**: instrumented
code calls :func:`current_telemetry` (a module-global read) and skips all
bookkeeping when it returns ``None``; :func:`span` hands back a shared
no-op span object without allocating.  Enabling installs a fresh
:class:`Telemetry` bundle — tracer, run ledger, counters, generation
stats — that every instrumented layer (flow, evaluator, fitness, control
model, NSGA-II loop) reports into.

Worker processes of a parallel evaluation pool enable their own local
bundle and ship per-task deltas back to the parent with each result
(:meth:`Telemetry.drain_delta` / :meth:`Telemetry.merge_delta`), so a
parallel run's merged trace carries the same records a serial run writes
locally.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.observe.counters import Counters, GenerationStat
from repro.observe.ledger import RunLedger
from repro.observe.tracer import NULL_SPAN, Span, Tracer, _NullSpan

__all__ = [
    "Telemetry",
    "current_telemetry",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_session",
    "span",
]


@dataclass
class Telemetry:
    """One run's worth of observability state."""

    tracer: Tracer = field(default_factory=Tracer)
    ledger: RunLedger = field(default_factory=RunLedger)
    counters: Counters = field(default_factory=Counters)
    generations: list[GenerationStat] = field(default_factory=list)

    def note_generation(self, stat: GenerationStat) -> None:
        self.generations.append(stat)

    # -- worker deltas ---------------------------------------------------

    def drain_delta(self) -> dict:
        """Serialize and reset the collected state (picklable).

        Pool workers call this after each task so every result ships the
        telemetry it produced; the parent folds the delta back in with
        :meth:`merge_delta`.  Generation stats never originate in workers
        and are not part of the delta.
        """
        return {
            "records": self.ledger.drain(),
            "spans": self.tracer.drain(),
            "counters": self.counters.drain(),
        }

    def merge_delta(self, delta: Mapping, origin: str = "worker") -> None:
        """Fold a worker delta into this (parent) bundle."""
        self.ledger.extend_from(delta.get("records", ()), origin=origin)
        self.tracer.merge(delta.get("spans", {}))
        self.counters.merge(delta.get("counters", {}))


# The process-wide current bundle (None = telemetry disabled).
_CURRENT: Telemetry | None = None


def current_telemetry() -> Telemetry | None:
    """The active bundle, or ``None`` when telemetry is disabled."""
    return _CURRENT


def enable_telemetry() -> Telemetry:
    """Install (and return) a fresh process-wide telemetry bundle."""
    global _CURRENT
    _CURRENT = Telemetry()
    return _CURRENT


def disable_telemetry() -> None:
    """Turn telemetry off (instrumented code reverts to no-ops)."""
    global _CURRENT
    _CURRENT = None


@contextmanager
def telemetry_session() -> Iterator[Telemetry]:
    """Scoped telemetry: enable on entry, restore the prior state on exit."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = Telemetry()
    try:
        yield _CURRENT
    finally:
        _CURRENT = previous


def span(name: str) -> Span | _NullSpan:
    """A tracer span when telemetry is on, the shared no-op span when off."""
    if _CURRENT is None:
        return NULL_SPAN
    return _CURRENT.tracer.span(name)
