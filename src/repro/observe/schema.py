"""Trace-file schema validation (the CI gate for ``--trace`` output).

The schema is line-oriented: every line must be a JSON object whose
``kind`` selects a field contract.  Validation is strict about the fields
the paper-metric extraction relies on (outcome vocabulary, non-negative
charges, contiguous record indexes) and tolerant of extra fields, so the
format can grow without breaking old validators.

Run as a module for CI::

    python -m repro.observe.schema trace.jsonl
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.observe.ledger import OUTCOMES

__all__ = ["validate_trace", "validate_lines"]

_KINDS = ("meta", "record", "span", "counter", "generation")
_FIDELITIES = ("synth-estimate", "placed-estimate", "full-route")


def _is_num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_record(payload: dict, errors: list[str], where: str) -> None:
    params = payload.get("params")
    if not isinstance(params, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and not isinstance(v, bool)
        for k, v in params.items()
    ):
        errors.append(f"{where}: params must map str -> int")
    outcome = payload.get("outcome")
    if outcome not in OUTCOMES:
        errors.append(f"{where}: outcome {outcome!r} not in {OUTCOMES}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not all(
        isinstance(k, str) and _is_num(v) for k, v in metrics.items()
    ):
        errors.append(f"{where}: metrics must map str -> number")
    if not isinstance(payload.get("index"), int) or payload["index"] < 0:
        errors.append(f"{where}: index must be a non-negative integer")
    for field in ("charge", "wall_s"):
        if not _is_num(payload.get(field)) or payload[field] < 0:
            errors.append(f"{where}: {field} must be a non-negative number")
    error_type = payload.get("error_type")
    if outcome in ("failed", "drc"):
        if not isinstance(error_type, str) or not error_type:
            errors.append(f"{where}: {outcome} records need an error_type")
        if metrics:
            errors.append(f"{where}: {outcome} records must not carry metrics")
    elif error_type is not None:
        errors.append(f"{where}: {outcome} records must not carry error_type")
    if not isinstance(payload.get("origin"), str):
        errors.append(f"{where}: origin must be a string")
    fidelity = payload.get("fidelity")
    if fidelity is not None and fidelity not in _FIDELITIES:
        errors.append(f"{where}: fidelity {fidelity!r} not in {_FIDELITIES}")


def _check_span(payload: dict, errors: list[str], where: str) -> None:
    if not isinstance(payload.get("path"), str) or not payload["path"]:
        errors.append(f"{where}: span path must be a non-empty string")
    if not isinstance(payload.get("count"), int) or payload["count"] < 1:
        errors.append(f"{where}: span count must be a positive integer")
    for field in ("wall_s", "sim_s"):
        if not _is_num(payload.get(field)) or payload[field] < 0:
            errors.append(f"{where}: span {field} must be a non-negative number")


def _check_counter(payload: dict, errors: list[str], where: str) -> None:
    if not isinstance(payload.get("name"), str) or not payload["name"]:
        errors.append(f"{where}: counter name must be a non-empty string")
    if not _is_num(payload.get("value")):
        errors.append(f"{where}: counter value must be a number")


def _check_generation(payload: dict, errors: list[str], where: str) -> None:
    for field in ("generation", "front_size", "evaluations"):
        if not isinstance(payload.get(field), int) or payload[field] < 0:
            errors.append(f"{where}: {field} must be a non-negative integer")
    if not _is_num(payload.get("hypervolume")) or payload["hypervolume"] < 0:
        errors.append(f"{where}: hypervolume must be a non-negative number")
    remaining = payload.get("budget_remaining_s")
    if remaining is not None and not _is_num(remaining):
        errors.append(f"{where}: budget_remaining_s must be a number or null")


def validate_lines(lines: list[str]) -> list[str]:
    """Validate trace lines; returns a (possibly empty) list of errors."""
    errors: list[str] = []
    saw_meta = False
    next_record_index = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"line {lineno}"
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: invalid JSON ({exc})")
            continue
        if not isinstance(payload, dict):
            errors.append(f"{where}: expected a JSON object")
            continue
        kind = payload.get("kind")
        if kind not in _KINDS:
            errors.append(f"{where}: unknown kind {kind!r}")
            continue
        if kind == "meta":
            if saw_meta:
                errors.append(f"{where}: duplicate meta line")
            saw_meta = True
            if payload.get("version") != 1:
                errors.append(f"{where}: unsupported trace version "
                              f"{payload.get('version')!r}")
        elif kind == "record":
            _check_record(payload, errors, where)
            if payload.get("index") != next_record_index:
                errors.append(
                    f"{where}: record index {payload.get('index')!r} breaks "
                    f"the contiguous sequence (expected {next_record_index})"
                )
            next_record_index += 1
        elif kind == "span":
            _check_span(payload, errors, where)
        elif kind == "counter":
            _check_counter(payload, errors, where)
        elif kind == "generation":
            _check_generation(payload, errors, where)
    if not saw_meta:
        errors.append("trace has no meta line")
    return errors


def validate_trace(path: str | Path) -> list[str]:
    """Validate a trace file; returns a (possibly empty) list of errors."""
    text = Path(path).read_text(encoding="utf-8")
    return validate_lines(text.splitlines())


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.observe.schema TRACE.jsonl", file=sys.stderr)
        return 2
    errors = validate_trace(argv[0])
    if errors:
        for error in errors:
            print(f"schema error: {error}", file=sys.stderr)
        return 1
    lines = [
        line for line in Path(argv[0]).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    print(f"{argv[0]}: {len(lines)} lines, schema ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
