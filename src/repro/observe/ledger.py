"""The run ledger: one typed record per design-point evaluation.

Every evaluation the DSE performs — a real tool run, a tool-cache answer,
a Nadaraya-Watson estimate, a DRC pre-flight rejection, or a failed run —
appends exactly one :class:`LedgerRecord`.  The ledger is the ground truth
the paper's headline numbers are read from:

- ``outcome`` counts reproduce the Section III-C control-model decision
  mix (how many Vivado calls the approximation saved);
- summed ``charge`` equals the flow's cumulative simulated tool seconds
  (:attr:`repro.flow.vivado_sim.VivadoSim.simulated_seconds`), *including*
  the partial cost of failed runs, so wall-time claims against the
  four-hour soft deadline are auditable;
- ``error_type`` preserves the failure taxonomy for robustness analysis.

Records export/import losslessly as JSONL (one ``{"kind": "record", ...}``
object per line); :meth:`RunLedger.from_jsonl` ignores lines of other
kinds, so a full trace file (which also carries span/counter lines — see
:mod:`repro.observe.summary`) round-trips through the same reader.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

__all__ = ["OUTCOMES", "LedgerRecord", "RunLedger"]

#: The closed outcome vocabulary (anything else is a schema violation).
OUTCOMES = ("tool", "cache", "estimate", "drc", "failed")


@dataclass(frozen=True)
class LedgerRecord:
    """One evaluated design point, as the ledger archives it.

    ``charge`` is the simulated tool seconds this evaluation added to the
    flow's clock (0 for cache/estimate/DRC answers, the partial cost spent
    before the error for failed runs).  ``wall_s`` is real time spent by
    the recording process.  ``origin`` distinguishes records produced
    locally, shipped back from a pool worker, or replayed from the
    cross-batch memo table.  ``fidelity`` (when set) names the flow-ladder
    rung the charge was measured at — a gated point may therefore produce
    two records for the same binding (the low-fidelity probe and the
    promotion's full-route run) whose charges still sum to the flow's
    clock.
    """

    index: int
    params: dict[str, int]
    outcome: str
    metrics: dict[str, float] = field(default_factory=dict)
    charge: float = 0.0
    error_type: str | None = None
    wall_s: float = 0.0
    origin: str = "local"
    fidelity: str | None = None

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(
                f"unknown outcome {self.outcome!r}; expected one of {OUTCOMES}"
            )

    def to_json(self) -> dict:
        payload = {
            "kind": "record",
            "index": self.index,
            "params": dict(self.params),
            "outcome": self.outcome,
            "metrics": dict(self.metrics),
            "charge": self.charge,
            "error_type": self.error_type,
            "wall_s": self.wall_s,
            "origin": self.origin,
        }
        # Only fidelity-tagged records carry the key: pre-ladder traces
        # (and their golden fixtures) round-trip byte-identically.
        if self.fidelity is not None:
            payload["fidelity"] = self.fidelity
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "LedgerRecord":
        return cls(
            index=int(payload["index"]),
            params={str(k): int(v) for k, v in payload["params"].items()},
            outcome=str(payload["outcome"]),
            metrics={str(k): float(v) for k, v in payload.get("metrics", {}).items()},
            charge=float(payload.get("charge", 0.0)),
            error_type=payload.get("error_type"),
            wall_s=float(payload.get("wall_s", 0.0)),
            origin=str(payload.get("origin", "local")),
            fidelity=(
                str(payload["fidelity"]) if payload.get("fidelity") is not None else None
            ),
        )


class RunLedger:
    """Append-only sequence of :class:`LedgerRecord` with JSONL round-trip.

    Appends assign contiguous indexes (the trace schema checks the
    sequence), so concurrent appenders — the serve path records from
    scheduler executor threads — serialize on an internal leaf lock.
    """

    def __init__(self, records: Iterable[LedgerRecord] = ()) -> None:
        self.records: list[LedgerRecord] = list(records)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def append(
        self,
        *,
        params: Mapping[str, int],
        outcome: str,
        metrics: Mapping[str, float] | None = None,
        charge: float = 0.0,
        error_type: str | None = None,
        wall_s: float = 0.0,
        origin: str = "local",
        fidelity: str | None = None,
    ) -> LedgerRecord:
        """Append one record; the index is assigned by the ledger."""
        with self._lock:
            record = LedgerRecord(
                index=len(self.records),
                params={str(k): int(v) for k, v in params.items()},
                outcome=outcome,
                metrics=dict(metrics or {}),
                charge=float(charge),
                error_type=error_type,
                wall_s=float(wall_s),
                origin=origin,
                fidelity=fidelity,
            )
            self.records.append(record)
            return record

    def extend_from(self, payloads: Iterable[Mapping], origin: str | None = None) -> int:
        """Merge serialized records (e.g. a worker delta), re-indexing.

        Returns the number of records appended.  ``origin`` (when given)
        overrides the stored origin — the parent uses ``"worker"`` so
        merged traces say where each record was produced.
        """
        n = 0
        for payload in payloads:
            record = LedgerRecord.from_json(payload)
            self.append(
                params=record.params,
                outcome=record.outcome,
                metrics=record.metrics,
                charge=record.charge,
                error_type=record.error_type,
                wall_s=record.wall_s,
                origin=origin if origin is not None else record.origin,
                fidelity=record.fidelity,
            )
            n += 1
        return n

    # -- accounting ------------------------------------------------------

    def total_charge(self) -> float:
        """Summed simulated tool seconds across every record."""
        return sum(r.charge for r in self.records)

    def counts(self) -> dict[str, int]:
        """Record count per outcome (every outcome present, even at 0)."""
        out = {outcome: 0 for outcome in OUTCOMES}
        for r in self.records:
            out[r.outcome] += 1
        return out

    def charges(self) -> dict[str, float]:
        """Summed charge per outcome."""
        out = {outcome: 0.0 for outcome in OUTCOMES}
        for r in self.records:
            out[r.outcome] += r.charge
        return out

    def fidelity_breakdown(self) -> dict[str, tuple[int, float]]:
        """Per-fidelity (record count, summed charge) for tagged records.

        Untagged records (pre-ladder traces, DRC rejections) are grouped
        under ``"untagged"`` so the breakdown still totals the ledger.
        """
        out: dict[str, tuple[int, float]] = {}
        for r in self.records:
            key = r.fidelity if r.fidelity is not None else "untagged"
            count, charge = out.get(key, (0, 0.0))
            out[key] = (count + 1, charge + r.charge)
        return out

    def drain(self) -> list[dict]:
        """Serialize and clear the records (used for worker deltas)."""
        with self._lock:
            payloads = [r.to_json() for r in self.records]
            self.records.clear()
        return payloads

    # -- persistence -----------------------------------------------------

    def to_jsonl(self, path: str | Path) -> Path:
        """Write one JSON object per line; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        return path

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "RunLedger":
        """Load records from a JSONL file, skipping non-record lines."""
        records: list[LedgerRecord] = []
        with Path(path).open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                if payload.get("kind", "record") != "record":
                    continue
                records.append(LedgerRecord.from_json(payload))
        return cls(records)
