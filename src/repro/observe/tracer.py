"""Nested span tracing for the evaluation stack.

A :class:`Tracer` keeps a stack of open spans and aggregates closed spans
into per-path totals.  A span records two clocks:

- **wall seconds** — real ``perf_counter`` time between ``__enter__`` and
  ``__exit__`` (what the process actually spent);
- **simulated seconds** — tool cost explicitly charged via
  :meth:`Span.charge` (the unit the paper's four-hour soft deadline is
  expressed in; see :mod:`repro.flow.vivado_sim`).

Span *paths* preserve nesting: a ``flow.synthesis`` span opened while
``dse.generation`` is active aggregates under
``"dse.generation/flow.synthesis"``.  Totals are keyed on the full path, so
the same leaf span shows up separately per enclosing phase — exactly what
the paper-metric breakdown (pretrain cost vs in-loop cost) needs.

The tracer is deliberately free of global state; process-wide plumbing
lives in :mod:`repro.observe.telemetry`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["Span", "SpanTotals", "Tracer"]


@dataclass
class SpanTotals:
    """Aggregated cost of every closed span sharing one path."""

    count: int = 0
    wall_s: float = 0.0
    sim_s: float = 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {"count": self.count, "wall_s": self.wall_s, "sim_s": self.sim_s}


class Span:
    """One open span; use as a context manager and :meth:`charge` tool cost."""

    __slots__ = ("_tracer", "name", "path", "sim_s", "_t0")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.path = name
        self.sim_s = 0.0
        self._t0 = 0.0

    def charge(self, simulated_seconds: float) -> None:
        """Charge simulated tool seconds to this span."""
        self.sim_s += float(simulated_seconds)

    def __enter__(self) -> "Span":
        self.path = self._tracer._enter(self.name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = time.perf_counter() - self._t0
        self._tracer._exit(self.path, wall, self.sim_s)


class _NullSpan:
    """Stateless no-op span used when telemetry is disabled."""

    __slots__ = ()

    def charge(self, simulated_seconds: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Aggregates nested spans into per-path totals."""

    def __init__(self) -> None:
        self.totals: dict[str, SpanTotals] = {}
        self._stack: list[str] = []

    def span(self, name: str) -> Span:
        """Open a span named ``name`` (nested under the current span)."""
        return Span(self, name)

    # -- internal span protocol -----------------------------------------

    def _enter(self, name: str) -> str:
        path = f"{self._stack[-1]}/{name}" if self._stack else name
        self._stack.append(path)
        return path

    def _exit(self, path: str, wall_s: float, sim_s: float) -> None:
        if self._stack and self._stack[-1] == path:
            self._stack.pop()
        totals = self.totals.setdefault(path, SpanTotals())
        totals.count += 1
        totals.wall_s += wall_s
        totals.sim_s += sim_s

    # -- aggregation -----------------------------------------------------

    def total_sim_s(self) -> float:
        """Sum of simulated seconds charged across all span paths."""
        return sum(t.sim_s for t in self.totals.values())

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """Picklable/JSON-able snapshot of the per-path totals."""
        return {path: t.as_dict() for path, t in sorted(self.totals.items())}

    def merge(self, totals: dict[str, dict[str, float | int]]) -> None:
        """Fold a snapshot (e.g. a worker delta) into this tracer."""
        for path, t in totals.items():
            own = self.totals.setdefault(path, SpanTotals())
            own.count += int(t.get("count", 0))
            own.wall_s += float(t.get("wall_s", 0.0))
            own.sim_s += float(t.get("sim_s", 0.0))

    def drain(self) -> dict[str, dict[str, float | int]]:
        """Snapshot and reset the totals (used for worker deltas)."""
        snapshot = self.as_dict()
        self.totals.clear()
        return snapshot
