"""Trace files and the end-of-session text summary.

A *trace* is a JSONL file carrying the whole telemetry bundle, one typed
object per line:

- ``{"kind": "meta", ...}`` — format version plus free-form run context;
- ``{"kind": "record", ...}`` — the run ledger (one line per evaluated
  design point; see :mod:`repro.observe.ledger`);
- ``{"kind": "span", ...}`` — per-path span totals;
- ``{"kind": "counter", ...}`` — one counter name/value pair;
- ``{"kind": "generation", ...}`` — NSGA-II per-generation stats.

:func:`write_trace` emits it, :func:`read_trace` parses it back, and
:func:`render_summary` / :func:`render_trace_summary` produce the text
tables the CLI prints at session end (``dovado-repro stats trace.jsonl``
renders the same summary offline).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.observe.counters import GenerationStat
from repro.observe.ledger import OUTCOMES, LedgerRecord, RunLedger
from repro.observe.telemetry import Telemetry
from repro.util.tables import render_table

__all__ = [
    "TRACE_VERSION",
    "write_trace",
    "read_trace",
    "render_summary",
    "render_trace_summary",
]

TRACE_VERSION = 1


def write_trace(
    path: str | Path, telemetry: Telemetry, meta: Mapping | None = None
) -> Path:
    """Write the full telemetry bundle as a JSONL trace file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        def emit(payload: dict) -> None:
            fh.write(json.dumps(payload, sort_keys=True) + "\n")

        emit({"kind": "meta", "version": TRACE_VERSION, **dict(meta or {})})
        for record in telemetry.ledger:
            emit(record.to_json())
        for span_path, totals in telemetry.tracer.as_dict().items():
            emit({"kind": "span", "path": span_path, **totals})
        for name, value in telemetry.counters.as_dict().items():
            emit({"kind": "counter", "name": name, "value": value})
        for stat in telemetry.generations:
            emit(stat.to_json())
    return path


def read_trace(path: str | Path) -> dict:
    """Parse a trace file back into its sections.

    Returns ``{"meta": dict, "ledger": RunLedger, "spans": dict,
    "counters": dict, "generations": list[GenerationStat]}``.  Unknown
    kinds are ignored so newer traces stay readable.
    """
    meta: dict = {}
    records: list[LedgerRecord] = []
    spans: dict[str, dict] = {}
    counters: dict[str, float] = {}
    generations: list[GenerationStat] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            kind = payload.get("kind")
            if kind == "meta":
                meta = {k: v for k, v in payload.items() if k != "kind"}
            elif kind == "record":
                records.append(LedgerRecord.from_json(payload))
            elif kind == "span":
                spans[payload["path"]] = {
                    "count": int(payload["count"]),
                    "wall_s": float(payload["wall_s"]),
                    "sim_s": float(payload["sim_s"]),
                }
            elif kind == "counter":
                counters[payload["name"]] = payload["value"]
            elif kind == "generation":
                generations.append(GenerationStat.from_json(payload))
    return {
        "meta": meta,
        "ledger": RunLedger(records),
        "spans": spans,
        "counters": counters,
        "generations": generations,
    }


# ---------------------------------------------------------------------------
# text summary
# ---------------------------------------------------------------------------


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.2f} h"
    return f"{seconds:.1f} s"


def render_summary(telemetry: Telemetry, meta: Mapping | None = None) -> str:
    """The end-of-session summary table for a live telemetry bundle."""
    return _render(
        ledger=telemetry.ledger,
        spans=telemetry.tracer.as_dict(),
        counters=telemetry.counters.as_dict(),
        generations=telemetry.generations,
        meta=meta or {},
    )


def render_trace_summary(trace: Mapping) -> str:
    """The same summary, rendered from a parsed trace file."""
    return _render(
        ledger=trace["ledger"],
        spans=trace["spans"],
        counters=trace["counters"],
        generations=trace["generations"],
        meta=trace.get("meta", {}),
    )


def _render(
    ledger: RunLedger,
    spans: Mapping[str, Mapping],
    counters: Mapping[str, float],
    generations: list[GenerationStat],
    meta: Mapping,
) -> str:
    sections: list[str] = []

    counts = ledger.counts()
    charges = ledger.charges()
    total = len(ledger)
    rows = [
        (
            outcome,
            counts[outcome],
            f"{100.0 * counts[outcome] / total:.1f}%" if total else "-",
            _fmt_seconds(charges[outcome]),
        )
        for outcome in OUTCOMES
    ]
    rows.append(("total", total, "100.0%" if total else "-",
                 _fmt_seconds(ledger.total_charge())))
    sections.append(render_table(
        ("Outcome", "Points", "Share", "Tool time"),
        rows,
        title="Run ledger",
    ))

    breakdown = ledger.fidelity_breakdown()
    if any(key != "untagged" for key in breakdown):
        rows = [
            (key, count, _fmt_seconds(charge))
            for key, (count, charge) in sorted(breakdown.items())
        ]
        sections.append(render_table(
            ("Fidelity", "Records", "Tool time"), rows, title="Fidelity ladder"
        ))

    decision_names = [n for n in counters if n.startswith("decision.")]
    if decision_names:
        rows = [
            (name.removeprefix("decision."), int(counters[name]))
            for name in sorted(decision_names)
        ]
        sections.append(render_table(
            ("Decision", "Count"), rows, title="Control model (Section III-C)"
        ))

    if spans:
        rows = [
            (
                path,
                int(t["count"]),
                f"{float(t['wall_s']):.3f}",
                _fmt_seconds(float(t["sim_s"])),
            )
            for path, t in sorted(spans.items())
        ]
        sections.append(render_table(
            ("Span", "Count", "Wall s", "Simulated"), rows, title="Spans"
        ))

    other = {
        n: v for n, v in counters.items() if not n.startswith("decision.")
    }
    if other:
        rows = [
            (name, f"{value:.4g}" if isinstance(value, float) else value)
            for name, value in sorted(other.items())
        ]
        sections.append(render_table(("Counter", "Value"), rows, title="Counters"))

    if generations:
        last = generations[-1]
        rows_g = [
            (
                g.generation,
                g.front_size,
                g.evaluations,
                f"{g.hypervolume:.4g}",
                "-" if g.budget_remaining_s is None
                else _fmt_seconds(g.budget_remaining_s),
            )
            for g in generations
        ]
        sections.append(render_table(
            ("Gen", "Front", "Evals", "Hypervolume", "Budget left"),
            rows_g,
            title=f"NSGA-II generations ({last.generation} total)",
        ))

    if meta:
        context = ", ".join(
            f"{k}={v}" for k, v in sorted(meta.items()) if k != "version"
        )
        if context:
            sections.append(f"run: {context}")

    return "\n\n".join(sections)
