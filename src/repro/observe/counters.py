"""Monotonic counters and NSGA-II per-generation statistics.

Counters are a flat ``name -> number`` map with dotted names grouping
related series (``decision.cached``, ``budget.charged_s``, …).  They back
the control-model decision mix the paper reports in Section III-C and the
DSE budget audit trail.  :class:`GenerationStat` snapshots one NSGA-II
generation: front size, evaluation count so far, dominated hypervolume of
the current population, and the soft-deadline budget remaining.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Mapping

__all__ = ["Counters", "GenerationStat"]


class Counters:
    """Dotted-name counter map (int increments and float accumulators).

    Increments are read-modify-writes, and the serve path bumps them from
    scheduler executor threads concurrently — the internal lock keeps
    them lossless (it is a leaf lock: nothing else is ever acquired while
    it is held).
    """

    def __init__(self) -> None:
        self._data: dict[str, float] = {}
        self._lock = threading.Lock()

    def inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._data[name] = self._data.get(name, 0) + by

    def add(self, name: str, value: float) -> None:
        with self._lock:
            self._data[name] = self._data.get(name, 0) + float(value)

    def get(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._data.get(name, default)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def as_dict(self) -> dict[str, float]:
        with self._lock:
            return dict(sorted(self._data.items()))

    def merge(self, values: Mapping[str, float]) -> None:
        """Fold a snapshot (e.g. a worker delta) into these counters."""
        with self._lock:
            for name, value in values.items():
                self._data[name] = self._data.get(name, 0) + value

    def drain(self) -> dict[str, float]:
        """Snapshot and reset (used for worker deltas)."""
        with self._lock:
            snapshot = dict(sorted(self._data.items()))
            self._data.clear()
            return snapshot


@dataclass(frozen=True)
class GenerationStat:
    """One NSGA-II generation as the telemetry layer archives it."""

    generation: int
    front_size: int
    evaluations: int
    hypervolume: float
    budget_remaining_s: float | None = None

    def to_json(self) -> dict:
        return {
            "kind": "generation",
            "generation": self.generation,
            "front_size": self.front_size,
            "evaluations": self.evaluations,
            "hypervolume": self.hypervolume,
            "budget_remaining_s": self.budget_remaining_s,
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "GenerationStat":
        remaining = payload.get("budget_remaining_s")
        return cls(
            generation=int(payload["generation"]),
            front_size=int(payload["front_size"]),
            evaluations=int(payload["evaluations"]),
            hypervolume=float(payload["hypervolume"]),
            budget_remaining_s=None if remaining is None else float(remaining),
        )
