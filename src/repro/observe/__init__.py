"""``repro.observe`` — the flow telemetry layer.

Structured observability for the whole evaluation stack, built from four
pieces:

- :class:`Tracer` — nested spans (``flow.synthesis``, ``dse.generation``,
  ``estimation.refit``, …) accumulating wall seconds and simulated tool
  seconds per span path;
- :class:`RunLedger` — one typed :class:`LedgerRecord` per design-point
  evaluation (params, outcome ``tool|cache|estimate|drc|failed``,
  metrics, charge, error type) with lossless JSONL export/import;
- :class:`Counters` — the paper's control-model decision mix and budget
  audit trail;
- :class:`GenerationStat` — NSGA-II per-generation stats (front size,
  hypervolume, budget remaining).

Telemetry is **disabled by default**: instrumented code consults
:func:`current_telemetry` and does nothing when it returns ``None``, so
the hot paths carry no measurable overhead until a run opts in via
:func:`enable_telemetry` / :func:`telemetry_session` (or the CLI's
``--trace``).  See ``docs/observability.md`` for the span taxonomy, the
ledger schema, and the mapping to the paper's reported quantities.
"""

from repro.observe.counters import Counters, GenerationStat
from repro.observe.ledger import OUTCOMES, LedgerRecord, RunLedger
from repro.observe.summary import (
    read_trace,
    render_summary,
    render_trace_summary,
    write_trace,
)
from repro.observe.telemetry import (
    Telemetry,
    current_telemetry,
    disable_telemetry,
    enable_telemetry,
    span,
    telemetry_session,
)
from repro.observe.tracer import Span, SpanTotals, Tracer


def validate_trace(path):  # noqa: ANN001 — thin lazy re-export
    """Validate a trace file; see :func:`repro.observe.schema.validate_trace`.

    Imported lazily so ``python -m repro.observe.schema`` does not see the
    submodule pre-imported by the package (runpy's double-import warning).
    """
    from repro.observe.schema import validate_trace as _impl

    return _impl(path)


__all__ = [
    "OUTCOMES",
    "Counters",
    "GenerationStat",
    "LedgerRecord",
    "RunLedger",
    "Span",
    "SpanTotals",
    "Telemetry",
    "Tracer",
    "current_telemetry",
    "disable_telemetry",
    "enable_telemetry",
    "read_trace",
    "render_summary",
    "render_trace_summary",
    "span",
    "telemetry_session",
    "validate_trace",
    "write_trace",
]
