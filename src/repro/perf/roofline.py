"""Roofline construction from a mapped design.

The Roofline model (Williams et al., CACM 2009) bounds attainable
performance by ``min(peak_compute, operational_intensity × bandwidth)``.
For an FPGA design point the two ceilings derive from the implementation
itself:

- **compute ceiling** — DSP slices retire one MAC (2 ops) per cycle and
  LUT datapaths contribute one op per N logic terms (a coarse
  bit-serial-equivalent credit), all at the achieved frequency;
- **memory ceiling** — each BRAM contributes two ports × its configured
  word width per cycle; the box's interface contributes nothing (it is
  sandboxed), matching on-chip-bound operation.

The output is a :class:`RooflinePoint` per design point plus an ASCII
rendering of the log-log roofline with the point placed on it, usable
directly in terminal reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices import ResourceKind
from repro.synth.mapper import MappedDesign

__all__ = ["RooflinePoint", "build_roofline", "render_roofline"]

_OPS_PER_DSP_PER_CYCLE = 2.0     # multiply + accumulate
_LUTS_PER_OP = 64.0              # LUT-fabric ops credit (bit-serial equiv.)
_BRAM_PORTS = 2


@dataclass(frozen=True)
class RooflinePoint:
    """One design point's position against its rooflines.

    Units: GOP/s for compute, GB/s for bandwidth, ops/byte for intensity.
    """

    peak_compute_gops: float
    peak_bandwidth_gbs: float
    operational_intensity: float     # of the *workload*, ops/byte
    attainable_gops: float
    achieved_gops: float | None = None   # from a performance model, if any

    def ridge_point(self) -> float:
        """Intensity where the two ceilings meet (ops/byte)."""
        if self.peak_bandwidth_gbs == 0:
            return float("inf")
        return self.peak_compute_gops / self.peak_bandwidth_gbs

    def memory_bound(self) -> bool:
        return self.operational_intensity < self.ridge_point()


def build_roofline(
    design: MappedDesign,
    fmax_mhz: float,
    operational_intensity: float,
    achieved_gops: float | None = None,
) -> RooflinePoint:
    """Derive the rooflines of ``design`` at ``fmax_mhz``.

    ``operational_intensity`` characterizes the *workload* (ops per byte
    moved through on-chip memory); the ceilings come from the design.
    """
    if fmax_mhz <= 0:
        raise ValueError(f"non-positive frequency {fmax_mhz}")
    if operational_intensity <= 0:
        raise ValueError("operational intensity must be positive")

    hz = fmax_mhz * 1e6
    dsps = design.total.get(ResourceKind.DSP)
    luts = design.total.get(ResourceKind.LUT)
    peak_ops = (dsps * _OPS_PER_DSP_PER_CYCLE + luts / _LUTS_PER_OP) * hz

    bytes_per_cycle = 0.0
    for block in design.netlist.blocks():
        res = design.block_resources[block.name]
        if res.get(ResourceKind.BRAM) > 0:
            bytes_per_cycle += _BRAM_PORTS * block.mem_width / 8.0
    peak_bw = bytes_per_cycle * hz

    attainable = min(peak_ops, operational_intensity * peak_bw)
    return RooflinePoint(
        peak_compute_gops=peak_ops / 1e9,
        peak_bandwidth_gbs=peak_bw / 1e9,
        operational_intensity=operational_intensity,
        attainable_gops=attainable / 1e9,
        achieved_gops=achieved_gops,
    )


def render_roofline(
    point: RooflinePoint, width: int = 64, height: int = 16
) -> str:
    """ASCII log-log roofline with the design point marked.

    X axis: operational intensity (ops/byte), two decades around the ridge;
    Y axis: GOP/s.  ``*`` marks the workload's attainable position, ``o``
    the achieved throughput when a performance model supplied one.
    """
    ridge = max(point.ridge_point(), 1e-6)
    x_lo = np.log10(ridge) - 1.5
    x_hi = np.log10(ridge) + 1.5
    xs = np.logspace(x_lo, x_hi, width)
    roof = np.minimum(point.peak_compute_gops, xs * point.peak_bandwidth_gbs)
    y_hi = np.log10(point.peak_compute_gops * 1.5 + 1e-12)
    y_lo = y_hi - 3.0  # three decades of dynamic range

    def row_of(value: float) -> int:
        v = np.log10(max(value, 10**y_lo))
        frac = (v - y_lo) / (y_hi - y_lo)
        return int(round((1.0 - np.clip(frac, 0, 1)) * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    for i, r in enumerate(roof):
        grid[row_of(r)][i] = "-" if r >= point.peak_compute_gops * 0.999 else "/"

    def col_of(intensity: float) -> int:
        frac = (np.log10(max(intensity, 10**x_lo)) - x_lo) / (x_hi - x_lo)
        return int(round(np.clip(frac, 0, 1) * (width - 1)))

    ci = col_of(point.operational_intensity)
    grid[row_of(point.attainable_gops)][ci] = "*"
    if point.achieved_gops is not None:
        grid[row_of(point.achieved_gops)][ci] = "o"

    lines = [
        f"Roofline: peak {point.peak_compute_gops:.2f} GOP/s, "
        f"BW {point.peak_bandwidth_gbs:.2f} GB/s, "
        f"ridge {point.ridge_point():.2f} ops/B "
        f"({'memory' if point.memory_bound() else 'compute'}-bound at "
        f"I={point.operational_intensity:.2f})",
    ]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width + f"> intensity [ops/B], 10^{x_lo:.1f}..10^{x_hi:.1f}")
    return "\n".join(lines)
