"""Static run-time performance modeling + Roofline (paper future work).

The paper's conclusions name two missing features: "Currently, Dovado
lacks in run-time performance modeling of RTL modules.  Hence, we will add
the chance of inserting a custom model for static performance that enables
an improved DSE and adding a visual performance model (e.g., Roofline)."

This package implements both:

- :mod:`repro.perf.model` — a pluggable *static performance model* per
  design: a callable mapping (parameter binding, achieved Fmax) to a
  throughput figure.  Registered models make ``performance`` available as
  a DSE metric, so configurations that spend area to gain throughput (e.g.
  TiReX's NCluster) can be properly traded instead of being dominated.
- :mod:`repro.perf.roofline` — an operational-intensity/bandwidth Roofline
  built from the mapped design (compute ceiling from DSP/LUT datapaths,
  memory ceiling from BRAM port bandwidth at the achieved frequency), with
  an ASCII rendering for terminal workflows.
"""

from repro.perf.model import (
    PerformanceModel,
    StaticThroughputModel,
    register_performance_model,
    performance_model_for,
    unregister_performance_model,
)
from repro.perf.roofline import RooflinePoint, build_roofline, render_roofline

__all__ = [
    "PerformanceModel",
    "StaticThroughputModel",
    "register_performance_model",
    "performance_model_for",
    "unregister_performance_model",
    "RooflinePoint",
    "build_roofline",
    "render_roofline",
]
