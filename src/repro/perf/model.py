"""Pluggable static performance models.

A performance model answers "how much work per second does this
configuration do at the frequency the tool achieved?".  It is *static* in
the paper's sense: computed from the parameter binding and the implemented
clock, with no simulation.  Units are model-defined (items/s, ops/s,
chars/s); the DSE only needs a consistent maximize-able scalar.

Models are registered per module name — mirroring the architectural-model
registry in :mod:`repro.synth.elaborate` — so a
:class:`~repro.core.evaluate.PointEvaluator` can resolve the right model
for its top module automatically when the user asks for the
``performance`` metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Protocol

__all__ = [
    "PerformanceModel",
    "StaticThroughputModel",
    "register_performance_model",
    "performance_model_for",
    "unregister_performance_model",
]


class PerformanceModel(Protocol):
    """Protocol: throughput of a configuration at an achieved frequency."""

    def throughput(self, params: Mapping[str, int], fmax_mhz: float) -> float:
        """Work per second (model-defined units) at ``fmax_mhz``."""
        ...


@dataclass(frozen=True)
class StaticThroughputModel:
    """The common shape: items/cycle × cycles/s, with optional overheads.

    Attributes
    ----------
    items_per_cycle:
        Callable mapping the parameter binding to steady-state work items
        retired per clock cycle (e.g. ``lambda p: p["NCLUSTER"]``).
    startup_cycles:
        Pipeline fill cost; amortized over ``batch`` items.
    batch:
        Work items per invocation used for amortization (∞ batch ⇒ ignore
        startup).
    description:
        Human-readable unit/assumption note, carried into reports.
    """

    items_per_cycle: Callable[[Mapping[str, int]], float]
    startup_cycles: int = 0
    batch: int = 0
    description: str = ""

    def throughput(self, params: Mapping[str, int], fmax_mhz: float) -> float:
        if fmax_mhz <= 0:
            raise ValueError(f"non-positive frequency {fmax_mhz}")
        per_cycle = float(self.items_per_cycle(params))
        if per_cycle < 0:
            raise ValueError("items_per_cycle returned a negative rate")
        cycles_per_second = fmax_mhz * 1e6
        raw = per_cycle * cycles_per_second
        if self.startup_cycles and self.batch:
            # Amortize pipeline fill: effective = batch / (batch/rate + fill).
            per_item_cycles = 1.0 / per_cycle if per_cycle > 0 else float("inf")
            total_cycles = self.batch * per_item_cycles + self.startup_cycles
            return self.batch / (total_cycles / cycles_per_second)
        return raw


_MODELS: dict[str, PerformanceModel] = {}


def register_performance_model(module_name: str, model: PerformanceModel) -> None:
    """Register (or replace) the performance model for ``module_name``."""
    _MODELS[module_name.lower()] = model


def performance_model_for(module_name: str) -> PerformanceModel | None:
    """Resolve a registered model (None when the design has none)."""
    return _MODELS.get(module_name.lower())


def unregister_performance_model(module_name: str) -> bool:
    return _MODELS.pop(module_name.lower(), None) is not None
