"""Reproduction of *Dovado: An Open-Source Design Space Exploration Framework*
(Paletti, Conficconi, Santambrogio — IPDPSW 2021).

Dovado automates single-design-point evaluation and multi-objective design
space exploration (DSE) of RTL parameters on FPGAs.  This package rebuilds
the entire system in pure Python, including every substrate the original
delegates to external tools:

- :mod:`repro.hdl` — VHDL / Verilog / SystemVerilog interface parsers
  (replacing ANTLR grammars);
- :mod:`repro.boxing` — the interface-sandboxing "box" generator;
- :mod:`repro.flow` (+ :mod:`repro.synth`, :mod:`repro.pnr`,
  :mod:`repro.netlist`, :mod:`repro.devices`, :mod:`repro.tcl`) — **VEDA**,
  a simulated Vivado-like EDA suite with synthesis, place & route, static
  timing, utilization reports, directives and incremental checkpoints;
- :mod:`repro.moo` — NSGA-II and baselines (replacing pymoo);
- :mod:`repro.estimation` — the Nadaraya-Watson fitness approximation and
  its control model;
- :mod:`repro.core` — the Dovado framework proper: parameter spaces, point
  evaluation, DSE sessions, CLI;
- :mod:`repro.designs` — generators for the paper's four case studies
  (cv32e40p FIFO, Corundum queue manager, Neorv32, TiReX).
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
