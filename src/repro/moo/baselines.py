"""Search baselines: uniform random search and exhaustive enumeration.

The paper's "exact exploration of a given set of parameters" mode is
exhaustive enumeration; random search is the standard equal-budget
comparator for the NSGA-II ablation.
"""

from __future__ import annotations

import numpy as np

from repro.moo.nds import non_dominated_mask
from repro.moo.population import Population
from repro.moo.problem import IntegerProblem
from repro.moo.sampling import IntegerRandomSampling
from repro.util.rng import as_generator

__all__ = ["random_search", "exhaustive_search"]


def random_search(
    problem: IntegerProblem,
    n_eval: int,
    seed: int | np.random.Generator | None = 0,
    batch: int = 64,
) -> Population:
    """Evaluate ``n_eval`` unique random points; returns the evaluated archive."""
    rng = as_generator(seed)
    sampler = IntegerRandomSampling(unique=True)
    n_eval = min(n_eval, problem.cardinality())
    collected_X: list[np.ndarray] = []
    seen: set[tuple[int, ...]] = set()
    while sum(x.shape[0] for x in collected_X) < n_eval:
        want = n_eval - sum(x.shape[0] for x in collected_X)
        X = sampler(problem, max(batch, want), rng).X
        fresh = [row for row in X if tuple(map(int, row)) not in seen]
        for row in fresh:
            seen.add(tuple(map(int, row)))
        if fresh:
            collected_X.append(np.asarray(fresh[:want], dtype=np.int64))
        if len(seen) >= problem.cardinality():
            break
    X = np.vstack(collected_X) if collected_X else np.empty((0, problem.n_var), np.int64)
    F = problem.minimized(problem.evaluate(X))
    return Population(X=X, F=F)


def exhaustive_search(problem: IntegerProblem, limit: int = 200_000) -> Population:
    """Enumerate and evaluate the whole space (guarded by ``limit``)."""
    size = problem.cardinality()
    if size > limit:
        raise ValueError(
            f"space has {size} points, above the exhaustive limit {limit}"
        )
    grids = np.meshgrid(
        *[np.arange(lo, hi + 1) for lo, hi in zip(problem.lows, problem.highs)],
        indexing="ij",
    )
    X = np.stack([g.ravel() for g in grids], axis=1).astype(np.int64)
    F = problem.minimized(problem.evaluate(X))
    return Population(X=X, F=F)


def pareto_of(pop: Population) -> Population:
    """Non-dominated subset of an evaluated population."""
    if pop.F is None:
        raise ValueError("population is not evaluated")
    mask = non_dominated_mask(pop.F)
    return pop.take(np.nonzero(mask)[0])
