"""Integer random sampling — the paper's initial-population operator."""

from __future__ import annotations

import numpy as np

from repro.moo.population import Population
from repro.moo.problem import IntegerProblem
from repro.util.rng import as_generator

__all__ = ["IntegerRandomSampling"]


class IntegerRandomSampling:
    """Uniform integer sampling within the problem's bounds.

    With ``unique=True`` (default) sampled rows are de-duplicated and
    re-drawn — up to a retry budget — so the initial population does not
    waste expensive evaluations on repeats; if the space is smaller than
    the population, the whole space is returned instead.
    """

    def __init__(self, unique: bool = True, max_retries: int = 20) -> None:
        self.unique = unique
        self.max_retries = max_retries

    def __call__(
        self,
        problem: IntegerProblem,
        n: int,
        rng: np.random.Generator | int | None = None,
    ) -> Population:
        rng = as_generator(rng)
        if n < 1:
            raise ValueError("sample size must be >= 1")
        if self.unique and problem.cardinality() <= n:
            grids = np.meshgrid(
                *[np.arange(lo, hi + 1) for lo, hi in zip(problem.lows, problem.highs)],
                indexing="ij",
            )
            X = np.stack([g.ravel() for g in grids], axis=1).astype(np.int64)
            return Population(X=X)
        X = rng.integers(
            problem.lows, problem.highs + 1, size=(n, problem.n_var), dtype=np.int64
        )
        if self.unique:
            for _ in range(self.max_retries):
                _, first = np.unique(X, axis=0, return_index=True)
                if first.size == n:
                    break
                keep = np.zeros(n, dtype=bool)
                keep[first] = True
                refill = int((~keep).sum())
                X[~keep] = rng.integers(
                    problem.lows, problem.highs + 1, size=(refill, problem.n_var),
                    dtype=np.int64,
                )
        return Population(X=X)
