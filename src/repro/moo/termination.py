"""Termination criteria: generations, evaluations, soft wall-clock deadline.

The paper "constrained on time the DSE with a four hour soft deadline to
the genetic algorithm": the run stops at the first *generation boundary*
after the deadline passes.  :class:`Termination` composes any subset of the
three budgets; an empty Termination never stops (the caller must bound it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TerminationError
from repro.util.timing import SoftDeadline

__all__ = ["Termination"]


@dataclass
class Termination:
    """Stop when *any* configured budget is exhausted.

    Attributes
    ----------
    n_gen:
        Maximum generations (None = unbounded).
    n_eval:
        Maximum objective evaluations (None = unbounded).
    deadline:
        A :class:`~repro.util.timing.SoftDeadline`; simulated tool seconds
        can be charged through :meth:`charge`.
    """

    n_gen: int | None = None
    n_eval: int | None = None
    deadline: SoftDeadline | None = None
    generations: int = field(default=0, init=False)
    evaluations: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.n_gen is not None and self.n_gen < 1:
            raise TerminationError(f"n_gen must be >= 1, got {self.n_gen}")
        if self.n_eval is not None and self.n_eval < 1:
            raise TerminationError(f"n_eval must be >= 1, got {self.n_eval}")

    @classmethod
    def by_generations(cls, n: int) -> "Termination":
        return cls(n_gen=n)

    @classmethod
    def by_soft_deadline(
        cls, budget_s: float, n_gen: int | None = None
    ) -> "Termination":
        return cls(n_gen=n_gen, deadline=SoftDeadline(budget_s=budget_s))

    def note_generation(self) -> None:
        self.generations += 1

    def note_evaluations(self, n: int) -> None:
        self.evaluations += int(n)

    def charge(self, simulated_seconds: float) -> None:
        """Charge simulated tool time against the soft deadline (if any)."""
        if self.deadline is not None:
            self.deadline.charge(simulated_seconds)

    def should_stop(self) -> bool:
        if self.n_gen is not None and self.generations >= self.n_gen:
            return True
        if self.n_eval is not None and self.evaluations >= self.n_eval:
            return True
        if self.deadline is not None and self.deadline.expired():
            return True
        return False
