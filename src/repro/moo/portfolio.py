"""Run-time exploration-algorithm choice (paper future work).

"Starting from [Panerati et al.], we envision an investigation on a
run-time choice among various algorithms based on information from
synthetic dataset generation."  Two mechanisms:

- :func:`recommend_algorithm` — a zero-cost heuristic over dataset/space
  statistics: tiny spaces are enumerated exhaustively, smooth
  low-dimensional landscapes go to the MOSA walker, everything else to
  NSGA-II.  The *ruggedness* statistic comes straight from the synthetic
  dataset the approximation model builds anyway: the mean normalized
  metric gap between nearest-neighbour design points (smooth surfaces ⇒
  neighbours score alike).
- :func:`probe_and_choose` — an empirical selector: give each candidate a
  small identical evaluation budget, score dominated hypervolume per
  evaluation, and return the winner plus the merged archive (probe
  evaluations are not wasted — their union seeds the final front).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.estimation.dataset import Dataset
from repro.moo.baselines import exhaustive_search, random_search
from repro.moo.indicators import hypervolume
from repro.moo.mosa import MOSA
from repro.moo.nds import non_dominated_mask
from repro.moo.nsga2 import NSGA2
from repro.moo.population import Population
from repro.moo.problem import IntegerProblem
from repro.moo.termination import Termination

__all__ = [
    "AlgorithmChoice",
    "dataset_ruggedness",
    "recommend_algorithm",
    "probe_and_choose",
]

AlgorithmName = Literal["exhaustive", "nsga2", "mosa", "spea2", "random"]

EXHAUSTIVE_LIMIT = 512      # spaces up to this size are simply enumerated
SMOOTHNESS_THRESHOLD = 0.15  # mean normalized neighbour gap below ⇒ smooth
LOW_DIM_LIMIT = 3


@dataclass(frozen=True)
class AlgorithmChoice:
    name: AlgorithmName
    reason: str


def dataset_ruggedness(dataset: Dataset) -> float:
    """Mean normalized metric gap between nearest-neighbour points.

    0 means neighbouring design points score identically (a smooth
    landscape an annealer can walk); values toward 1 mean the synthetic
    dataset already shows cliff-like responses.
    """
    n = len(dataset)
    if n < 4:
        return 1.0  # unknown: assume rugged
    X = dataset.X()
    Y = dataset.Y()
    span = Y.max(axis=0) - Y.min(axis=0)
    span = np.where(span > 0, span, 1.0)
    Y_norm = (Y - Y.min(axis=0)) / span
    d2 = ((X[:, None, :] - X[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    nearest = d2.argmin(axis=1)
    gaps = np.abs(Y_norm - Y_norm[nearest]).mean(axis=1)
    return float(gaps.mean())


def recommend_algorithm(
    problem: IntegerProblem, dataset: Dataset | None = None
) -> AlgorithmChoice:
    """Zero-cost heuristic recommendation."""
    size = problem.cardinality()
    if size <= EXHAUSTIVE_LIMIT:
        return AlgorithmChoice(
            "exhaustive",
            f"space has only {size} points (≤ {EXHAUSTIVE_LIMIT}): enumerate",
        )
    ruggedness = dataset_ruggedness(dataset) if dataset is not None else 1.0
    if problem.n_var <= LOW_DIM_LIMIT and ruggedness < SMOOTHNESS_THRESHOLD:
        return AlgorithmChoice(
            "mosa",
            f"low-dimensional ({problem.n_var} vars) smooth landscape "
            f"(ruggedness {ruggedness:.3f}): annealing walker",
        )
    return AlgorithmChoice(
        "nsga2",
        f"{problem.n_var} variables, ruggedness "
        f"{'unknown' if dataset is None else f'{ruggedness:.3f}'}: "
        "population-based search",
    )


def _run(name: AlgorithmName, problem: IntegerProblem, budget: int, seed: int) -> Population:
    if name == "exhaustive":
        return exhaustive_search(problem, limit=max(budget, EXHAUSTIVE_LIMIT))
    if name == "random":
        return random_search(problem, budget, seed=seed)
    if name == "mosa":
        res = MOSA().minimize(problem, Termination(n_eval=budget), seed=seed)
        return res.archive
    if name == "nsga2":
        pop_size = max(8, min(40, budget // 8))
        res = NSGA2(pop_size=pop_size).minimize(
            problem, Termination(n_eval=budget), seed=seed
        )
        return res.archive
    if name == "spea2":
        from repro.moo.spea2 import SPEA2

        pop_size = max(8, min(32, budget // 8))
        res = SPEA2(pop_size=pop_size, archive_size=pop_size).minimize(
            problem, Termination(n_eval=budget), seed=seed
        )
        return res.archive
    raise ValueError(f"unknown algorithm {name!r}")


def probe_and_choose(
    problem: IntegerProblem,
    probe_budget: int = 60,
    candidates: tuple[AlgorithmName, ...] = ("nsga2", "mosa", "random"),
    seed: int = 0,
) -> tuple[AlgorithmChoice, Population, dict[str, float]]:
    """Probe each candidate, score HV/eval, return (choice, merged archive,
    scores).  The merged archive unions all probe evaluations so nothing
    paid for is discarded."""
    archives: dict[str, Population] = {}
    for name in candidates:
        archives[name] = _run(name, problem, probe_budget, seed)

    all_F = np.vstack([a.F for a in archives.values()])
    ref = all_F.max(axis=0) * 1.1 + 1.0
    scores = {
        name: hypervolume(a.F, ref) / max(len(a), 1)
        for name, a in archives.items()
    }
    best = max(scores, key=scores.get)

    merged_X = np.vstack([a.X for a in archives.values()])
    merged_F = np.vstack([a.F for a in archives.values()])
    merged = Population(X=merged_X, F=merged_F)
    choice = AlgorithmChoice(
        best,
        f"probe hypervolume-per-eval: "
        + ", ".join(f"{k}={v:.3g}" for k, v in sorted(scores.items())),
    )
    return choice, merged, scores


def pareto_of_merged(merged: Population) -> Population:
    mask = non_dominated_mask(merged.F)
    return Population(X=merged.X[mask], F=merged.F[mask])
