"""Duplicate elimination over integer decision vectors."""

from __future__ import annotations

import numpy as np

__all__ = ["drop_duplicates", "unique_against"]


def drop_duplicates(X: np.ndarray) -> np.ndarray:
    """Indices of first occurrences in ``X``, original order preserved."""
    X = np.atleast_2d(X)
    _, first = np.unique(X, axis=0, return_index=True)
    return np.sort(first)


def unique_against(X: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Row indices of ``X`` not present in ``reference`` and not repeated
    earlier in ``X`` itself (offspring dedup against the parent archive)."""
    X = np.atleast_2d(X)
    reference = np.atleast_2d(reference)
    if reference.shape[0] == 0:
        return drop_duplicates(X)
    seen: set[tuple[int, ...]] = {tuple(int(v) for v in row) for row in reference}
    keep: list[int] = []
    for i, row in enumerate(X):
        key = tuple(int(v) for v in row)
        if key in seen:
            continue
        seen.add(key)
        keep.append(i)
    return np.asarray(keep, dtype=np.int64)
