"""Multi-objective optimization: NSGA-II and baselines (pymoo replacement).

The paper formulates DSE as a multi-objective *integer* problem and solves
it with NSGA-II configured as: integer random sampling, integer simulated
binary crossover, a Gaussian-flavored mutation (mean 0.5, hand-tuned
variance), and duplicate elimination.  This package implements that
algorithm and its supporting machinery from scratch:

- :mod:`repro.moo.problem` — integer problem definition with per-objective
  optimization sense;
- :mod:`repro.moo.nds` — fast non-dominated sorting;
- :mod:`repro.moo.crowding` — crowding-distance diversity measure;
- :mod:`repro.moo.sampling` / :mod:`~repro.moo.crossover` /
  :mod:`~repro.moo.mutation` / :mod:`~repro.moo.dedup` — the operators;
- :mod:`repro.moo.nsga2` — the elitist main loop;
- :mod:`repro.moo.termination` — generation/evaluation budgets and the
  paper's soft wall-clock deadline;
- :mod:`repro.moo.indicators` — hypervolume for the ablation benches;
- :mod:`repro.moo.baselines` — random and exhaustive search.
"""

from repro.moo.problem import IntegerProblem, Objective, Sense
from repro.moo.population import Population
from repro.moo.nds import fast_non_dominated_sort, non_dominated_mask
from repro.moo.crowding import crowding_distance
from repro.moo.sampling import IntegerRandomSampling
from repro.moo.crossover import IntegerSBX
from repro.moo.mutation import GaussianIntegerMutation
from repro.moo.dedup import drop_duplicates
from repro.moo.nsga2 import NSGA2, NSGA2Result
from repro.moo.termination import Termination
from repro.moo.indicators import hypervolume
from repro.moo.baselines import random_search, exhaustive_search
from repro.moo.mosa import MOSA
from repro.moo.spea2 import SPEA2

__all__ = [
    "IntegerProblem",
    "Objective",
    "Sense",
    "Population",
    "fast_non_dominated_sort",
    "non_dominated_mask",
    "crowding_distance",
    "IntegerRandomSampling",
    "IntegerSBX",
    "GaussianIntegerMutation",
    "drop_duplicates",
    "NSGA2",
    "NSGA2Result",
    "Termination",
    "hypervolume",
    "random_search",
    "exhaustive_search",
    "MOSA",
    "SPEA2",
]
