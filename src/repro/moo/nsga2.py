"""NSGA-II main loop (Deb et al. 2002), elitist, integer-configured.

Per generation:

1. binary tournament selection on (rank, crowding distance);
2. integer SBX crossover + Gaussian integer mutation;
3. duplicate elimination against the combined archive ("duplication
   elimination" in the paper's hyperparameter list);
4. offspring evaluation;
5. elitist environmental selection: non-dominated sort of parents ∪
   offspring, fill by fronts, split the boundary front by crowding.

The loop reports every evaluated point to an archive so the DSE session
can expose the *global* non-dominated set (not just the final population),
and charges each generation's simulated tool time to the termination
object's soft deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.moo.crossover import IntegerSBX
from repro.moo.crowding import crowding_distance
from repro.moo.dedup import unique_against
from repro.moo.mutation import GaussianIntegerMutation
from repro.moo.nds import fast_non_dominated_sort, non_dominated_mask
from repro.moo.population import Population
from repro.moo.problem import IntegerProblem
from repro.moo.sampling import IntegerRandomSampling
from repro.moo.termination import Termination
from repro.observe import span as observe_span
from repro.util.rng import as_generator

__all__ = ["NSGA2", "NSGA2Result"]


@dataclass
class NSGA2Result:
    """Outcome of one optimization run."""

    population: Population          # final population (evaluated)
    archive: Population             # every evaluated point
    pareto: Population              # global non-dominated subset of archive
    generations: int
    evaluations: int

    def pareto_raw(self, problem: IntegerProblem) -> np.ndarray:
        """Pareto objectives in the problem's raw (sense-preserving) units."""
        return problem.raw_from_minimized(self.pareto.F)


@dataclass
class NSGA2:
    """The algorithm object; construct once, call :meth:`minimize`."""

    pop_size: int = 40
    sampling: IntegerRandomSampling = field(default_factory=IntegerRandomSampling)
    crossover: IntegerSBX = field(default_factory=IntegerSBX)
    mutation: GaussianIntegerMutation = field(default_factory=GaussianIntegerMutation)
    eliminate_duplicates: bool = True

    def minimize(
        self,
        problem: IntegerProblem,
        termination: Termination,
        seed: int | np.random.Generator | None = 0,
        on_generation: Callable[[int, Population], None] | None = None,
        simulated_cost: Callable[[int], float] | None = None,
    ) -> NSGA2Result:
        """Run the loop until ``termination`` fires.

        ``simulated_cost(n_evals)`` (optional) returns the simulated tool
        seconds the evaluations just performed cost; it is charged to the
        termination's soft deadline — this is how the DSE reproduces the
        paper's four-hour budget without wall-clock waiting.

        ``problem.evaluate`` always receives whole populations (the
        initial sample, then each generation's offspring in one matrix),
        so a DSE fitness with ``workers > 1`` fans every generation out
        over its persistent process pool.
        """
        if self.pop_size < 4:
            raise ValueError("pop_size must be >= 4 for tournament selection")
        rng = as_generator(seed)

        pop = self.sampling(problem, self.pop_size, rng)
        F_raw = problem.evaluate(pop.X)
        pop = Population(X=pop.X, F=problem.minimized(F_raw))
        termination.note_evaluations(len(pop))
        if simulated_cost is not None:
            termination.charge(simulated_cost(len(pop)))

        archive_X = pop.X.copy()
        archive_F = pop.F.copy()

        generation = 0
        while not termination.should_stop():
            generation += 1
            with observe_span("dse.generation") as sp:
                ranks, crowd = self._rank_and_crowd(pop.F)
                parents_idx = self._tournament(ranks, crowd, rng)
                half = len(parents_idx) // 2
                A = pop.X[parents_idx[:half]]
                B = pop.X[parents_idx[half : 2 * half]]
                c1, c2 = self.crossover(problem, A, B, rng)
                children = np.vstack([c1, c2])
                children = self.mutation(problem, children, rng)

                if self.eliminate_duplicates:
                    keep = unique_against(children, archive_X)
                    children = children[keep]
                if children.shape[0] == 0:
                    # Fully duplicated offspring: resample fresh points to
                    # keep the search alive (small spaces saturate quickly).
                    children = self.sampling(problem, self.pop_size, rng).X
                    keep = unique_against(children, archive_X)
                    children = children[keep]
                    if children.shape[0] == 0:
                        termination.note_generation()
                        if on_generation is not None:
                            on_generation(generation, pop)
                        continue

                F_children_raw = problem.evaluate(children)
                F_children = problem.minimized(F_children_raw)
                termination.note_evaluations(children.shape[0])
                if simulated_cost is not None:
                    cost = simulated_cost(children.shape[0])
                    termination.charge(cost)
                    sp.charge(cost)

                archive_X = np.vstack([archive_X, children])
                archive_F = np.vstack([archive_F, F_children])

                merged = Population(
                    X=np.vstack([pop.X, children]),
                    F=np.vstack([pop.F, F_children]),
                )
                pop = self._environmental_selection(merged)

                termination.note_generation()
                if on_generation is not None:
                    on_generation(generation, pop)

        mask = non_dominated_mask(archive_F)
        pareto = Population(X=archive_X[mask], F=archive_F[mask])
        return NSGA2Result(
            population=pop,
            archive=Population(X=archive_X, F=archive_F),
            pareto=pareto,
            generations=generation,
            evaluations=termination.evaluations,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _rank_and_crowd(F: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        fronts = fast_non_dominated_sort(F)
        ranks = np.empty(F.shape[0], dtype=np.int64)
        crowd = np.empty(F.shape[0], dtype=float)
        for r, front in enumerate(fronts):
            ranks[front] = r
            crowd[front] = crowding_distance(F[front])
        return ranks, crowd

    def _tournament(
        self, ranks: np.ndarray, crowd: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Binary tournaments yielding ``pop_size`` parents (even count)."""
        n = ranks.size
        n_parents = self.pop_size if self.pop_size % 2 == 0 else self.pop_size + 1
        a = rng.integers(0, n, size=n_parents)
        b = rng.integers(0, n, size=n_parents)
        a_wins = (ranks[a] < ranks[b]) | (
            (ranks[a] == ranks[b]) & (crowd[a] > crowd[b])
        )
        return np.where(a_wins, a, b)

    def _environmental_selection(self, merged: Population) -> Population:
        fronts = fast_non_dominated_sort(merged.F)
        chosen: list[np.ndarray] = []
        space = self.pop_size
        for front in fronts:
            if front.size <= space:
                chosen.append(front)
                space -= front.size
                if space == 0:
                    break
            else:
                crowd = crowding_distance(merged.F[front])
                order = np.argsort(-crowd, kind="stable")
                chosen.append(front[order[:space]])
                space = 0
                break
        idx = np.concatenate(chosen) if chosen else np.arange(0)
        return merged.take(idx)
