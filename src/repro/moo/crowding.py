"""Crowding distance (NSGA-II diversity preservation)."""

from __future__ import annotations

import numpy as np

__all__ = ["crowding_distance"]


def crowding_distance(F: np.ndarray) -> np.ndarray:
    """Per-point crowding distance within one front.

    Boundary points get ``inf``; interior points sum the normalized gaps of
    their neighbours along each objective.  Degenerate objectives (zero
    spread) contribute nothing.
    """
    F = np.atleast_2d(np.asarray(F, dtype=float))
    n, m = F.shape
    if n == 0:
        return np.zeros(0)
    if n <= 2:
        return np.full(n, np.inf)
    distance = np.zeros(n)
    for j in range(m):
        order = np.argsort(F[:, j], kind="stable")
        col = F[order, j]
        spread = col[-1] - col[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if spread <= 0:
            continue
        gaps = (col[2:] - col[:-2]) / spread
        interior = order[1:-1]
        finite = ~np.isinf(distance[interior])
        distance[interior[finite]] += gaps[finite]
    return distance
