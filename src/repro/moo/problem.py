"""Integer multi-objective problem definition.

A problem owns integer decision bounds and a list of objectives with
optimization *sense* (Dovado maximizes frequency while minimizing LUTs,
etc.).  Internally the optimizer always minimizes: :meth:`evaluate`
returns raw metric values and :meth:`minimized` flips maximized columns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InvalidSpaceError

__all__ = ["Sense", "Objective", "IntegerProblem"]


class Sense(str, enum.Enum):
    MINIMIZE = "min"
    MAXIMIZE = "max"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Objective:
    name: str
    sense: Sense = Sense.MINIMIZE

    @classmethod
    def minimize(cls, name: str) -> "Objective":
        return cls(name, Sense.MINIMIZE)

    @classmethod
    def maximize(cls, name: str) -> "Objective":
        return cls(name, Sense.MAXIMIZE)


class IntegerProblem:
    """Base class: subclass and implement :meth:`evaluate`.

    Parameters
    ----------
    lows, highs:
        Inclusive integer bounds per decision variable.
    objectives:
        Objective definitions, giving each output column a name and sense.
    """

    def __init__(
        self,
        lows: Sequence[int],
        highs: Sequence[int],
        objectives: Sequence[Objective],
    ) -> None:
        self.lows = np.asarray(lows, dtype=np.int64)
        self.highs = np.asarray(highs, dtype=np.int64)
        if self.lows.shape != self.highs.shape or self.lows.ndim != 1:
            raise InvalidSpaceError("bounds must be 1-D arrays of equal length")
        if self.lows.size == 0:
            raise InvalidSpaceError("problem has no decision variables")
        if np.any(self.highs < self.lows):
            bad = int(np.argmax(self.highs < self.lows))
            raise InvalidSpaceError(
                f"variable {bad}: inverted bounds [{self.lows[bad]}, {self.highs[bad]}]"
            )
        if not objectives:
            raise InvalidSpaceError("problem needs at least one objective")
        self.objectives = tuple(objectives)

    # ------------------------------------------------------------------

    @property
    def n_var(self) -> int:
        return int(self.lows.size)

    @property
    def n_obj(self) -> int:
        return len(self.objectives)

    def cardinality(self) -> int:
        """Number of points in the decision space (the paper's volume,
        factorial/product in the parameters)."""
        return int(np.prod((self.highs - self.lows + 1).astype(object)))

    def clip(self, X: np.ndarray) -> np.ndarray:
        return np.clip(X, self.lows, self.highs)

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        """Evaluate ``(n, n_var)`` int rows → ``(n, n_obj)`` raw metrics."""
        raise NotImplementedError

    def feasible_mask(self, X: np.ndarray) -> np.ndarray:
        """Per-row static feasibility (True = worth evaluating).

        The hook the DSE pre-flight gate plugs into: subclasses backed by
        a design rule checker override this to flag rows that cannot
        elaborate (see :class:`repro.core.fitness.DseProblem`).  The base
        problem knows nothing beyond its bounds, so every row is feasible.
        Must be pure — callers rely on it consuming no randomness.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.int64))
        return np.ones(X.shape[0], dtype=bool)

    def minimized(self, F_raw: np.ndarray) -> np.ndarray:
        """Flip maximize columns so every objective is minimized."""
        F = np.array(F_raw, dtype=float, copy=True)
        for j, obj in enumerate(self.objectives):
            if obj.sense == Sense.MAXIMIZE:
                F[:, j] = -F[:, j]
        return F

    def raw_from_minimized(self, F_min: np.ndarray) -> np.ndarray:
        return self.minimized(F_min)  # the transform is an involution
