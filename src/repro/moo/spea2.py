"""SPEA2 (Zitzler, Laumanns, Thiele 2001) — the portfolio's third solver.

The Strength Pareto Evolutionary Algorithm 2 differs from NSGA-II in its
fitness assignment — *strength* (how many solutions each point dominates)
accumulated over dominators, plus a k-nearest-neighbour density term — and
in maintaining a fixed-size external archive truncated by iterative
nearest-neighbour removal.  It tends to spread fronts more evenly on
problems where crowding distance clumps, which is why the run-time
algorithm chooser benefits from having it available.

Operators are shared with NSGA-II (integer SBX + Gaussian integer
mutation), keeping the comparison about the selection scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.moo.crossover import IntegerSBX
from repro.moo.dedup import unique_against
from repro.moo.mutation import GaussianIntegerMutation
from repro.moo.nds import dominates_matrix, non_dominated_mask
from repro.moo.population import Population
from repro.moo.problem import IntegerProblem
from repro.moo.sampling import IntegerRandomSampling
from repro.moo.termination import Termination
from repro.util.rng import as_generator

__all__ = ["SPEA2", "Spea2Result"]


def spea2_fitness(F: np.ndarray) -> np.ndarray:
    """SPEA2 fitness: raw strength-sum plus kNN density (minimize).

    Values below 1.0 mark non-dominated points.
    """
    F = np.atleast_2d(F)
    n = F.shape[0]
    if n == 0:
        return np.zeros(0)
    D = dominates_matrix(F)
    strength = D.sum(axis=1).astype(float)          # S(i): how many i dominates
    raw = np.array([strength[D[:, j]].sum() for j in range(n)])

    # Density: 1 / (sigma_k + 2) with k = sqrt(n).
    diff = F[:, None, :] - F[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    np.fill_diagonal(dist, np.inf)
    k = max(1, int(np.sqrt(n)) - 1)
    sigma_k = np.partition(dist, min(k, n - 1) - 0, axis=1)[:, min(k, n - 1)]
    sigma_k = np.where(np.isfinite(sigma_k), sigma_k, 0.0)
    density = 1.0 / (sigma_k + 2.0)
    return raw + density


def _truncate_archive(F: np.ndarray, size: int) -> np.ndarray:
    """Indices to keep: iterative removal of the most-crowded point."""
    n = F.shape[0]
    keep = list(range(n))
    if n <= size:
        return np.asarray(keep)
    diff = F[:, None, :] - F[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    np.fill_diagonal(dist, np.inf)
    alive = np.ones(n, dtype=bool)
    while alive.sum() > size:
        live_idx = np.nonzero(alive)[0]
        sub = dist[np.ix_(live_idx, live_idx)]
        # Remove the point with the smallest sorted distance vector
        # (lexicographic nearest-neighbour comparison).
        order = np.sort(sub, axis=1)
        victim_local = int(np.lexsort(order.T[::-1])[0])
        alive[live_idx[victim_local]] = False
    return np.nonzero(alive)[0]


@dataclass
class Spea2Result:
    archive: Population         # every evaluated point
    pareto: Population
    external: Population        # the final SPEA2 archive
    generations: int
    evaluations: int


@dataclass
class SPEA2:
    pop_size: int = 32
    archive_size: int = 32
    crossover: IntegerSBX = field(default_factory=IntegerSBX)
    mutation: GaussianIntegerMutation = field(default_factory=GaussianIntegerMutation)

    def minimize(
        self,
        problem: IntegerProblem,
        termination: Termination,
        seed: int | np.random.Generator | None = 0,
    ) -> Spea2Result:
        """Run the loop until ``termination`` fires.

        As in NSGA-II, ``problem.evaluate`` receives whole populations
        (initial sample, then per-generation offspring matrices), so a
        DSE fitness with ``workers > 1`` fans each call out over its
        persistent process pool.
        """
        rng = as_generator(seed)
        sample = IntegerRandomSampling()

        pop_X = sample(problem, self.pop_size, rng).X
        pop_F = problem.minimized(problem.evaluate(pop_X))
        termination.note_evaluations(pop_X.shape[0])
        all_X = [pop_X.copy()]
        all_F = [pop_F.copy()]
        ext_X = pop_X.copy()
        ext_F = pop_F.copy()

        generation = 0
        while not termination.should_stop():
            generation += 1
            union_X = np.vstack([pop_X, ext_X])
            union_F = np.vstack([pop_F, ext_F])
            # De-duplicate the union to keep fitness meaningful.
            _, first = np.unique(union_X, axis=0, return_index=True)
            union_X = union_X[np.sort(first)]
            union_F = union_F[np.sort(first)]

            fitness = spea2_fitness(union_F)
            nd = fitness < 1.0
            if nd.sum() <= self.archive_size:
                order = np.argsort(fitness, kind="stable")
                chosen = order[: self.archive_size]
            else:
                nd_idx = np.nonzero(nd)[0]
                kept = _truncate_archive(union_F[nd_idx], self.archive_size)
                chosen = nd_idx[kept]
            ext_X = union_X[chosen]
            ext_F = union_F[chosen]
            ext_fit = fitness[chosen]

            # Binary tournament on SPEA2 fitness over the archive.
            n_parents = self.pop_size + (self.pop_size % 2)
            a = rng.integers(0, ext_X.shape[0], n_parents)
            b = rng.integers(0, ext_X.shape[0], n_parents)
            winners = np.where(ext_fit[a] <= ext_fit[b], a, b)
            half = n_parents // 2
            c1, c2 = self.crossover(
                problem, ext_X[winners[:half]], ext_X[winners[half:]], rng
            )
            children = self.mutation(problem, np.vstack([c1, c2]), rng)
            keep = unique_against(children, np.vstack(all_X))
            children = children[keep]
            if children.shape[0] == 0:
                children = sample(problem, self.pop_size, rng).X
                keep = unique_against(children, np.vstack(all_X))
                children = children[keep]
                if children.shape[0] == 0:
                    termination.note_generation()
                    continue
            children_F = problem.minimized(problem.evaluate(children))
            termination.note_evaluations(children.shape[0])
            all_X.append(children.copy())
            all_F.append(children_F.copy())
            pop_X, pop_F = children, children_F
            termination.note_generation()

        X = np.vstack(all_X)
        F = np.vstack(all_F)
        mask = non_dominated_mask(F)
        return Spea2Result(
            archive=Population(X=X, F=F),
            pareto=Population(X=X[mask], F=F[mask]),
            external=Population(X=ext_X, F=ext_F),
            generations=generation,
            evaluations=termination.evaluations,
        )
