"""Integer simulated binary crossover (Deb & Agrawal 1995, rounded).

SBX draws a spread factor β from a polynomial distribution controlled by
``eta`` (larger eta → children closer to parents), producing two children
per parent pair.  The integer variant rounds children to the lattice and
clips into bounds — the configuration the paper names ("integer simulated
binary crossover").
"""

from __future__ import annotations

import numpy as np

from repro.moo.problem import IntegerProblem
from repro.util.rng import as_generator

__all__ = ["IntegerSBX"]


class IntegerSBX:
    """SBX over integer vectors.

    Parameters
    ----------
    eta:
        Distribution index; 15 is the common default for combinatorial-ish
        spaces.
    prob_crossover:
        Probability a parent pair undergoes crossover at all.
    prob_exchange:
        Per-gene probability the crossed values are swapped between the
        two children (standard SBX uses 0.5).
    """

    def __init__(
        self, eta: float = 15.0, prob_crossover: float = 0.9, prob_exchange: float = 0.5
    ) -> None:
        if eta <= 0:
            raise ValueError("eta must be positive")
        if not 0.0 <= prob_crossover <= 1.0:
            raise ValueError("prob_crossover must be in [0, 1]")
        self.eta = eta
        self.prob_crossover = prob_crossover
        self.prob_exchange = prob_exchange

    def __call__(
        self,
        problem: IntegerProblem,
        parents_a: np.ndarray,
        parents_b: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cross ``(n, n_var)`` parent matrices; returns two child matrices."""
        rng = as_generator(rng)
        A = np.asarray(parents_a, dtype=float)
        B = np.asarray(parents_b, dtype=float)
        if A.shape != B.shape:
            raise ValueError("parent shape mismatch")
        n, d = A.shape

        u = rng.random((n, d))
        beta = np.where(
            u <= 0.5,
            (2.0 * u) ** (1.0 / (self.eta + 1.0)),
            (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (self.eta + 1.0)),
        )
        c1 = 0.5 * ((1 + beta) * A + (1 - beta) * B)
        c2 = 0.5 * ((1 - beta) * A + (1 + beta) * B)

        # Per-gene exchange keeps children unbiased wrt parent order.
        swap = rng.random((n, d)) < self.prob_exchange
        c1_final = np.where(swap, c2, c1)
        c2_final = np.where(swap, c1, c2)

        # Pairs that skip crossover copy their parents verbatim.
        skip = rng.random(n) >= self.prob_crossover
        c1_final[skip] = A[skip]
        c2_final[skip] = B[skip]

        child1 = problem.clip(np.rint(c1_final).astype(np.int64))
        child2 = problem.clip(np.rint(c2_final).astype(np.int64))
        return child1, child2
