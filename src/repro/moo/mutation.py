"""Gaussian integer mutation — the paper's configuration.

The paper: "mutation occurs with an approximately Gaussian distribution
with 0.5 as mean and variance controlled by a hand-tuned parameter".  We
implement exactly that: each individual's per-gene mutation *probability*
is drawn from a clipped Normal(0.5, prob_sigma); a mutated gene takes a
Gaussian step whose scale is a fraction of its range, rounded to the
integer lattice (with a minimum step of ±1 so mutation never no-ops).
"""

from __future__ import annotations

import numpy as np

from repro.moo.problem import IntegerProblem
from repro.util.rng import as_generator

__all__ = ["GaussianIntegerMutation"]


class GaussianIntegerMutation:
    """Per-gene Gaussian-step mutation with Gaussian-drawn activation.

    Parameters
    ----------
    prob_mean / prob_sigma:
        Mean (paper: 0.5) and hand-tuned sigma of the per-individual
        activation probability.
    step_scale:
        Gaussian step sigma as a fraction of each variable's range.
    """

    def __init__(
        self, prob_mean: float = 0.5, prob_sigma: float = 0.15, step_scale: float = 0.1
    ) -> None:
        if not 0.0 <= prob_mean <= 1.0:
            raise ValueError("prob_mean must be in [0, 1]")
        if prob_sigma < 0 or step_scale <= 0:
            raise ValueError("prob_sigma must be >= 0 and step_scale > 0")
        self.prob_mean = prob_mean
        self.prob_sigma = prob_sigma
        self.step_scale = step_scale

    def __call__(
        self,
        problem: IntegerProblem,
        X: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        rng = as_generator(rng)
        X = np.array(X, dtype=np.int64, copy=True)
        n, d = X.shape
        ranges = (problem.highs - problem.lows).astype(float)

        prob = np.clip(
            rng.normal(self.prob_mean, self.prob_sigma, size=(n, 1)), 0.0, 1.0
        )
        active = rng.random((n, d)) < prob
        if not active.any():
            return X

        sigma = np.maximum(ranges * self.step_scale, 1.0)
        steps = np.rint(rng.normal(0.0, 1.0, size=(n, d)) * sigma).astype(np.int64)
        # A mutated gene must move: replace zero steps with ±1.
        zero = (steps == 0) & active
        steps[zero] = rng.choice(np.array([-1, 1]), size=int(zero.sum()))

        X[active] += steps[active]
        return problem.clip(X)
