"""Fast non-dominated sorting (Deb et al. 2002) and domination utilities.

The pairwise domination matrix is built with one vectorized broadcast
(O(M·N²) time, N² memory — fine at DSE population sizes), then fronts are
peeled iteratively, preserving the original algorithm's complexity class
while keeping the hot part in NumPy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dominates_matrix", "fast_non_dominated_sort", "non_dominated_mask"]


def dominates_matrix(F: np.ndarray) -> np.ndarray:
    """Boolean matrix D where ``D[i, j]`` ⇔ point i dominates point j.

    All objectives are minimized: i dominates j when i is ≤ j everywhere
    and < j somewhere.
    """
    F = np.atleast_2d(F)
    le = (F[:, None, :] <= F[None, :, :]).all(axis=2)
    lt = (F[:, None, :] < F[None, :, :]).any(axis=2)
    return le & lt


def fast_non_dominated_sort(F: np.ndarray) -> list[np.ndarray]:
    """Peel Pareto fronts; returns index arrays, best front first."""
    F = np.atleast_2d(F)
    n = F.shape[0]
    if n == 0:
        return []
    D = dominates_matrix(F)
    dominated_count = D.sum(axis=0).astype(np.int64)  # how many dominate j
    fronts: list[np.ndarray] = []
    remaining = np.ones(n, dtype=bool)
    while remaining.any():
        current = remaining & (dominated_count == 0)
        if not current.any():
            # Numerical duplicates can stall the peel; break ties by taking
            # the minimal remaining count (equivalent points share a front).
            min_count = dominated_count[remaining].min()
            current = remaining & (dominated_count == min_count)
        idx = np.nonzero(current)[0]
        fronts.append(idx)
        remaining[idx] = False
        # Removing the front releases the points it dominated.
        dominated_count -= D[idx].sum(axis=0)
        dominated_count[~remaining] = -1
    return fronts


def non_dominated_mask(F: np.ndarray) -> np.ndarray:
    """Boolean mask of the global non-dominated set of ``F``."""
    F = np.atleast_2d(F)
    if F.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    D = dominates_matrix(F)
    return ~D.any(axis=0)
