"""Quality indicators: hypervolume (exact 2-D, Monte Carlo ≥3-D).

Used by the ablation bench comparing NSGA-II against random search at an
equal evaluation budget: the dominated hypervolume against a common
reference point is the standard scalarization of Pareto-front quality.
All objectives are minimized and must lie below the reference point to
contribute.
"""

from __future__ import annotations

import numpy as np

from repro.moo.nds import non_dominated_mask
from repro.util.rng import as_generator

__all__ = ["hypervolume"]


def _hv_2d(F: np.ndarray, ref: np.ndarray) -> float:
    pts = F[np.all(F < ref, axis=1)]
    if pts.shape[0] == 0:
        return 0.0
    pts = pts[non_dominated_mask(pts)]
    order = np.argsort(pts[:, 0], kind="stable")
    pts = pts[order]
    hv = 0.0
    prev_y = ref[1]
    for x, y in pts:
        hv += (ref[0] - x) * (prev_y - y)
        prev_y = y
    return float(hv)


def hypervolume(
    F: np.ndarray,
    ref: np.ndarray,
    samples: int = 200_000,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Dominated hypervolume of minimized objectives ``F`` w.r.t. ``ref``.

    Exact sweep for two objectives; Monte Carlo estimate (``samples``
    uniform points in the reference box) for three or more.
    """
    F = np.atleast_2d(np.asarray(F, dtype=float))
    ref = np.asarray(ref, dtype=float)
    if F.shape[1] != ref.size:
        raise ValueError(f"reference has {ref.size} dims, F has {F.shape[1]}")
    if F.shape[0] == 0:
        return 0.0
    if F.shape[1] == 1:
        best = F.min()
        return float(max(0.0, ref[0] - best))
    if F.shape[1] == 2:
        return _hv_2d(F, ref)

    pts = F[np.all(F < ref, axis=1)]
    if pts.shape[0] == 0:
        return 0.0
    pts = pts[non_dominated_mask(pts)]
    lower = pts.min(axis=0)
    box_volume = float(np.prod(ref - lower))
    if box_volume <= 0:
        return 0.0
    rng = as_generator(seed)
    samples_pts = rng.uniform(lower, ref, size=(samples, ref.size))
    # A sample is dominated if some front point is <= it everywhere.
    dominated = np.zeros(samples, dtype=bool)
    for p in pts:
        dominated |= np.all(samples_pts >= p, axis=1)
        if dominated.all():
            break
    return box_volume * float(dominated.mean())
