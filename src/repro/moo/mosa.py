"""Multi-objective simulated annealing (MOSA) — a portfolio alternative.

A dominance-based annealer in the style of Smith et al.: a single walker
mutates its current point; moves that are not dominated by the current
point are accepted outright, dominated moves are accepted with a
temperature-controlled probability proportional to how badly they lose
(normalized objective gap).  Every evaluated point feeds an external
archive whose non-dominated subset is the result.

MOSA complements NSGA-II in the portfolio: it shines on smooth,
low-dimensional spaces where a population is overkill, and degrades on
deceptive ones — exactly the trade the run-time algorithm chooser
(:mod:`repro.moo.portfolio`) arbitrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.moo.mutation import GaussianIntegerMutation
from repro.moo.nds import non_dominated_mask
from repro.moo.population import Population
from repro.moo.problem import IntegerProblem
from repro.moo.sampling import IntegerRandomSampling
from repro.moo.termination import Termination
from repro.util.rng import as_generator

__all__ = ["MOSA", "MosaResult"]


@dataclass
class MosaResult:
    archive: Population
    pareto: Population
    evaluations: int
    accepted: int
    temperature_final: float


@dataclass
class MOSA:
    """The annealer.

    Attributes
    ----------
    initial_temperature:
        Acceptance temperature in *normalized objective gap* units (the
        per-objective loss is scaled by the running objective spread, so a
        temperature of ~0.3 accepts sizeable regressions early on).
    cooling:
        Geometric cooling factor applied per evaluation.
    step_scale:
        Mutation step as a fraction of each variable's range.
    restarts:
        Random restarts distributed over the run (escape stagnation).
    """

    initial_temperature: float = 0.35
    cooling: float = 0.995
    step_scale: float = 0.08
    restarts: int = 3

    def minimize(
        self,
        problem: IntegerProblem,
        termination: Termination,
        seed: int | np.random.Generator | None = 0,
    ) -> MosaResult:
        rng = as_generator(seed)
        mutate = GaussianIntegerMutation(
            prob_mean=1.0, prob_sigma=0.0, step_scale=self.step_scale
        )
        sample = IntegerRandomSampling(unique=False)

        current = sample(problem, 1, rng).X
        F_cur = problem.minimized(problem.evaluate(current))
        termination.note_evaluations(1)
        archive_X = [current[0].copy()]
        archive_F = [F_cur[0].copy()]
        # Running per-objective extrema over the archive; recomputing them
        # from the full archive every iteration is O(n) per step (O(n²)
        # per run) for the same values.
        f_min = F_cur[0].copy()
        f_max = F_cur[0].copy()

        temperature = self.initial_temperature
        accepted = 0
        spread = np.maximum(np.abs(F_cur[0]), 1.0)
        evals_since_restart = 0
        restart_period = None

        while not termination.should_stop():
            if (
                self.restarts
                and restart_period
                and evals_since_restart >= restart_period
            ):
                current = sample(problem, 1, rng).X
                F_cur = problem.minimized(problem.evaluate(current))
                termination.note_evaluations(1)
                archive_X.append(current[0].copy())
                archive_F.append(F_cur[0].copy())
                np.minimum(f_min, F_cur[0], out=f_min)
                np.maximum(f_max, F_cur[0], out=f_max)
                evals_since_restart = 0
                continue

            candidate = mutate(problem, current, rng)
            if np.array_equal(candidate, current):
                candidate = problem.clip(
                    current + rng.choice([-1, 1], size=current.shape)
                )
            F_new = problem.minimized(problem.evaluate(candidate))
            termination.note_evaluations(1)
            evals_since_restart += 1
            archive_X.append(candidate[0].copy())
            archive_F.append(F_new[0].copy())
            np.minimum(f_min, F_new[0], out=f_min)
            np.maximum(f_max, F_new[0], out=f_max)

            # Running spread normalizes objective gaps.
            spread = np.maximum(f_max - f_min, 1e-9)
            if restart_period is None and termination.n_eval:
                restart_period = max(
                    10, termination.n_eval // (self.restarts + 1)
                )

            delta = (F_new[0] - F_cur[0]) / spread
            worst_loss = float(delta.max())
            if worst_loss <= 0 or rng.random() < np.exp(
                -worst_loss / max(temperature, 1e-9)
            ):
                current = candidate
                F_cur = F_new
                accepted += 1
            temperature *= self.cooling

        X = np.asarray(archive_X, dtype=np.int64)
        F = np.asarray(archive_F, dtype=float)
        mask = non_dominated_mask(F)
        return MosaResult(
            archive=Population(X=X, F=F),
            pareto=Population(X=X[mask], F=F[mask]),
            evaluations=termination.evaluations,
            accepted=accepted,
            temperature_final=temperature,
        )
