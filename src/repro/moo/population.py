"""Population container: decision matrix + objective matrix in lockstep."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Population"]


@dataclass
class Population:
    """``X``: (n, n_var) int64 decisions; ``F``: (n, n_obj) minimized objectives.

    ``F`` may be ``None`` before evaluation.  Instances are lightweight
    views — operators return new Populations rather than mutating.
    """

    X: np.ndarray
    F: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.X = np.atleast_2d(np.asarray(self.X, dtype=np.int64))
        if self.F is not None:
            self.F = np.atleast_2d(np.asarray(self.F, dtype=float))
            if self.F.shape[0] != self.X.shape[0]:
                raise ValueError(
                    f"X has {self.X.shape[0]} rows but F has {self.F.shape[0]}"
                )

    def __len__(self) -> int:
        return int(self.X.shape[0])

    @property
    def evaluated(self) -> bool:
        return self.F is not None

    def take(self, idx: np.ndarray | list[int]) -> "Population":
        idx = np.asarray(idx)
        return Population(
            X=self.X[idx],
            F=None if self.F is None else self.F[idx],
        )

    def concat(self, other: "Population") -> "Population":
        if (self.F is None) != (other.F is None):
            raise ValueError("cannot concat evaluated with unevaluated population")
        return Population(
            X=np.vstack([self.X, other.X]),
            F=None if self.F is None else np.vstack([self.F, other.F]),
        )

    @classmethod
    def empty(cls, n_var: int, n_obj: int) -> "Population":
        return cls(
            X=np.empty((0, n_var), dtype=np.int64), F=np.empty((0, n_obj))
        )
