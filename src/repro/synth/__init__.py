"""Simulated synthesis: elaboration, logic optimization, technology mapping.

The synthesis half of VEDA lowers a parsed module + parameter binding into a
mapped design:

1. :mod:`repro.synth.elaborate` resolves the parameter environment and
   builds a block-level netlist — via a registered *architectural model*
   for known designs (the case-study generators register theirs), or via a
   generic interface-driven heuristic for arbitrary modules;
2. :mod:`repro.synth.optimizer` applies directive-controlled optimization
   passes (area sharing, retiming-ish level reduction);
3. :mod:`repro.synth.mapper` converts technology-independent quantities
   into device primitives (LUT/FF/BRAM/DSP/CARRY/IO), including the
   distributed-vs-block RAM decision and BRAM tile shaping.
"""

from repro.synth.elaborate import (
    ArchitecturalModel,
    elaborate,
    register_model,
    registered_models,
    unregister_model,
)
from repro.synth.mapper import MappedDesign, map_to_device
from repro.synth.optimizer import optimize
from repro.synth.synthesis import SynthesisResult, synthesize

__all__ = [
    "ArchitecturalModel",
    "elaborate",
    "register_model",
    "registered_models",
    "unregister_model",
    "MappedDesign",
    "map_to_device",
    "optimize",
    "SynthesisResult",
    "synthesize",
]
