"""Technology mapping: abstract block quantities → device primitives.

Mapping rules (per block):

- **LUTs** — one per 6-input-equivalent logic term, plus one per carry bit
  (the LUT feeding each carry mux), plus LUTRAM for small memories;
- **FF** — one per register bit;
- **BRAM** — memories above the distributed-RAM threshold map to 36Kb
  tiles; tile count is the max of the capacity requirement
  (``ceil(bits/36864)``) and the width requirement (``ceil(width/72)``) —
  this shape rule is what produces the step behaviour the Neorv32
  experiment shows between 2^14 and 2^15-bit memories;
- **DSP** — one slice per 18×18-equivalent multiply;
- **CARRY** — one CARRY4 per four carry bits;
- **IO** — the netlist's top-level port bits (the box collapses these to
  the clock pin plus a serialized observation chain, which is how Dovado
  avoids pin overflow);
- **BUFG** — one, for the boxed clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices import Device, ResourceKind, ResourceVector
from repro.errors import MappingError
from repro.netlist import Block, Netlist

__all__ = ["MappedDesign", "map_to_device", "BRAM_TILE_BITS", "DISTRIBUTED_RAM_LIMIT"]

BRAM_TILE_BITS = 36 * 1024
BRAM_MAX_WIDTH = 72
DISTRIBUTED_RAM_LIMIT = 1024  # bits; below this, memories stay in LUTRAM
LUTRAM_BITS_PER_LUT = 32      # RAM32 configuration of a SLICEM LUT


def map_block(block: Block) -> ResourceVector:
    """Map one block's quantities to primitives."""
    luts = block.logic_terms + block.carry_bits
    ffs = block.ff_bits
    brams = 0
    if block.mem_bits > 0:
        if block.mem_bits <= DISTRIBUTED_RAM_LIMIT:
            luts += -(-block.mem_bits // LUTRAM_BITS_PER_LUT)
        else:
            by_capacity = -(-block.mem_bits // BRAM_TILE_BITS)
            by_width = -(-block.mem_width // BRAM_MAX_WIDTH)
            brams = max(by_capacity, by_width)
    dsps = block.mul_ops
    carries = -(-block.carry_bits // 4) if block.carry_bits else 0
    counts: dict[ResourceKind, int] = {}
    if luts:
        counts[ResourceKind.LUT] = luts
    if ffs:
        counts[ResourceKind.FF] = ffs
    if brams:
        counts[ResourceKind.BRAM] = brams
    if dsps:
        counts[ResourceKind.DSP] = dsps
    if carries:
        counts[ResourceKind.CARRY] = carries
    return ResourceVector(counts)


@dataclass
class MappedDesign:
    """A netlist mapped onto a specific device."""

    netlist: Netlist
    device: Device
    block_resources: dict[str, ResourceVector]
    total: ResourceVector
    boxed: bool = True

    def block_sites(self, name: str) -> int:
        """Placement footprint of a block in grid sites (>= 1)."""
        res = self.block_resources[name]
        cells = res.get("LUT") + res.get("FF")
        # BRAM/DSP columns occupy dedicated sites; weight them as a column
        # stripe equivalent so memory-heavy blocks spread placement.
        cells += (res.get("BRAM") + res.get("DSP")) * 12
        return max(1, round(cells / self.device.cells_per_site()))

    def utilization_fraction(self) -> float:
        """LUT-based device fill fraction, the congestion driver."""
        cap = self.device.capacity(ResourceKind.LUT)
        return self.total.get(ResourceKind.LUT) / cap if cap else 0.0


def map_to_device(netlist: Netlist, device: Device, boxed: bool = True) -> MappedDesign:
    """Map ``netlist`` to ``device`` primitives.

    Raises :class:`MappingError` when the design needs a resource class the
    device lacks entirely (e.g. URAM blocks on a 7-series part); capacity
    overflow is *not* checked here — that is placement's job, matching where
    Vivado reports it.
    """
    block_resources: dict[str, ResourceVector] = {}
    total = ResourceVector()
    for block in netlist.blocks():
        res = map_block(block)
        for kind, count in res:
            if count and not device.has_resource(kind):
                raise MappingError(
                    f"block {block.name!r} needs {kind} but {device.part} has none"
                )
        block_resources[block.name] = res
        total = total + res

    io = 1 if boxed else netlist.ports.total()
    extra = {ResourceKind.IO: max(1, io), ResourceKind.BUFG: 1}
    total = total + ResourceVector(extra)
    return MappedDesign(
        netlist=netlist,
        device=device,
        block_resources=block_resources,
        total=total,
        boxed=boxed,
    )
