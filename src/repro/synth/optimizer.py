"""Directive-controlled logic optimization passes.

Operates on the block netlist between elaboration and mapping.  Passes are
deliberately structure-preserving (same blocks/nets — the incremental flow
depends on stable structure) and adjust block *quantities* the way the
corresponding Vivado passes shift QoR:

- **resource sharing** (area directives): multiplies logic terms down,
  adds a level on deep blocks (shared operators serialize paths);
- **logic replication** (performance directives): the reverse trade;
- **level trimming** (effort): higher effort retimes one level out of the
  deepest blocks with a mild LUT increase.

All passes are deterministic; the directive's ``DirectiveEffect`` is the
only input besides the netlist.
"""

from __future__ import annotations

import dataclasses

from repro.directives import SynthDirective
from repro.netlist import Block, Netlist

__all__ = ["optimize"]


def _copy_with(netlist: Netlist, new_blocks: dict[str, Block]) -> Netlist:
    out = Netlist(top=netlist.top)
    for block in netlist.blocks():
        out.add_block(new_blocks.get(block.name, block))
    for net in netlist.nets():
        out.add_net(net)
    out.set_ports(netlist.ports.inputs, netlist.ports.outputs)
    return out


def optimize(netlist: Netlist, directive: SynthDirective) -> Netlist:
    """Return an optimized copy of ``netlist`` under ``directive``."""
    effect = directive.effect()
    new_blocks: dict[str, Block] = {}
    max_levels = max((b.levels for b in netlist.blocks()), default=0)

    for block in netlist.blocks():
        logic = block.logic_terms
        levels = block.levels

        # Resource sharing / replication.
        if effect.area_bias != 1.0 and logic > 16:
            logic = max(1, round(logic * effect.area_bias))
            if effect.area_bias < 1.0 and levels >= 2:
                levels += 1  # shared operators lengthen the worst path
            elif effect.area_bias > 1.0 and levels > 2:
                levels -= 1  # replication shortens it

        # Effort-driven level trimming on the deepest blocks.
        if effect.effort > 1.0 and levels == max_levels and levels > 2:
            levels -= 1
            logic = round(logic * 1.03)

        if logic != block.logic_terms or levels != block.levels:
            new_blocks[block.name] = dataclasses.replace(
                block, logic_terms=logic, levels=levels
            )

    if not new_blocks:
        return netlist
    return _copy_with(netlist, new_blocks)
