"""Elaboration: parsed module + parameter binding → block-level netlist.

Two routes:

- **Architectural models.** Each case-study generator registers a callable
  that knows how its module's parameters shape the microarchitecture
  (pipeline stages, memory geometry, datapath clusters) and emits the
  corresponding block netlist.  This mirrors reality: synthesis of a FIFO
  with ``DEPTH=512`` produces a structurally predictable netlist.
- **Heuristic fallback.** For modules without a model, a generic
  inference pass derives a plausible netlist from the interface: port
  widths size a datapath, identifier hints (``mem``, ``addr``, ``mul``)
  trigger memory/DSP inference.  This keeps the tool *total* — any parsed
  module can be pushed through the flow — at reduced fidelity, exactly the
  situation a real estimation flow faces for unseen IP.

Elaboration also performs the legality checks Vivado would: unknown
parameter overrides, non-integer values for integer generics, and
combinational-loop detection on the produced netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ElaborationError
from repro.hdl.ast import Module
from repro.netlist import Block, Netlist

__all__ = ["ArchitecturalModel", "register_model", "registered_models", "elaborate"]

ModelFn = Callable[[Module, Mapping[str, int]], Netlist]


@dataclass(frozen=True)
class ArchitecturalModel:
    """A registered elaboration model for one module name."""

    module_name: str
    build: ModelFn
    description: str = ""


_MODELS: dict[str, ArchitecturalModel] = {}


def register_model(
    module_name: str, build: ModelFn, description: str = ""
) -> ArchitecturalModel:
    """Register (or replace) the architectural model for ``module_name``."""
    model = ArchitecturalModel(module_name=module_name, build=build, description=description)
    _MODELS[module_name.lower()] = model
    return model


def registered_models() -> dict[str, ArchitecturalModel]:
    return dict(_MODELS)


def unregister_model(module_name: str) -> bool:
    """Remove a registered model; returns whether one existed."""
    return _MODELS.pop(module_name.lower(), None) is not None


def resolve_environment(
    module: Module, overrides: Mapping[str, int | bool] | None = None
) -> dict[str, int]:
    """Merge parameter defaults with ``overrides`` into a full int environment.

    Raises :class:`ElaborationError` for overrides naming unknown parameters,
    targeting localparams, or carrying non-integer values.
    """
    env = module.default_environment()
    overrides = overrides or {}
    known = {p.name.lower(): p for p in module.parameters}
    for name, value in overrides.items():
        param = known.get(name.lower())
        if param is None:
            raise ElaborationError(
                f"module {module.name!r} has no parameter {name!r}"
            )
        if param.local:
            raise ElaborationError(
                f"parameter {param.name!r} is local and cannot be overridden"
            )
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, int):
            raise ElaborationError(
                f"parameter {param.name!r}: non-integer value {value!r} "
                "(the DSE formulation is integer-only)"
            )
        env[param.name] = value
    # Re-derive localparams that depend on overridden values, in declaration
    # order (e.g. CL_OP_TABLE_SIZE = $clog2(OP_TABLE_SIZE)).
    for param in module.parameters:
        if param.local and param.default is not None:
            v = param.default_value(env)
            if v is not None:
                env[param.name] = v
    return env


def elaborate(
    module: Module,
    overrides: Mapping[str, int | bool] | None = None,
    *,
    check_loops: bool = True,
) -> Netlist:
    """Elaborate ``module`` under ``overrides`` into a netlist.

    ``check_loops=False`` skips the combinational-loop check so analysis
    passes (lint rule N001) can obtain the broken netlist and report every
    cycle as a finding instead of dying on the first one.
    """
    env = resolve_environment(module, overrides)
    model = _MODELS.get(module.name.lower())
    if model is not None:
        netlist = model.build(module, env)
    else:
        netlist = _heuristic_netlist(module, env)
    if len(netlist) == 0:
        raise ElaborationError(f"module {module.name!r} elaborated to an empty netlist")
    if check_loops:
        netlist.check_no_combinational_loops()
    if netlist.ports.total() == 0:
        inputs = sum(
            p.width(env) for p in module.ports if p.direction.value in ("in", "inout")
        )
        outputs = sum(
            p.width(env) for p in module.ports if p.direction.value in ("out", "buffer")
        )
        netlist.set_ports(inputs, outputs)
    return netlist


# ---------------------------------------------------------------------------
# heuristic fallback
# ---------------------------------------------------------------------------

_MEM_HINTS = ("mem", "ram", "fifo", "buf", "cache", "queue")
_MUL_HINTS = ("mul", "mac", "dsp", "prod")


def _heuristic_netlist(module: Module, env: Mapping[str, int]) -> Netlist:
    """Interface-driven netlist inference for modules without a model.

    Sizing rules (coarse, but monotone in the interface):

    - a register stage sized by total output bits;
    - a datapath block whose logic grows with input×output bit product
      (capped) and whose depth grows with the log of input bits;
    - parameter-name hints add memory (``*_DEPTH``/``*_SIZE`` × widest data
      port) and multiplier blocks.
    """
    env = dict(env)
    in_bits = sum(p.width(env) for p in module.ports if p.direction.value == "in")
    out_bits = sum(
        p.width(env) for p in module.ports if p.direction.value in ("out", "buffer", "inout")
    )
    in_bits = max(in_bits, 1)
    out_bits = max(out_bits, 1)

    netlist = Netlist(top=module.name)

    logic_terms = min(in_bits * out_bits // 4 + in_bits + out_bits, 20000)
    levels = max(1, (in_bits - 1).bit_length() // 2 + 1)
    datapath = netlist.add_block(
        Block(
            name="u_datapath",
            logic_terms=logic_terms,
            ff_bits=in_bits,
            carry_bits=min(in_bits, 64),
            levels=levels,
            registered_output=False,
        )
    )
    outreg = netlist.add_block(
        Block(name="u_outreg", logic_terms=out_bits // 2, ff_bits=out_bits, levels=1)
    )
    netlist.connect(datapath.name, outreg.name, width=out_bits, combinational=True)

    widest_data = max((p.width(env) for p in module.ports if p.ptype.is_vector()), default=8)
    mem_depth = 0
    for param in module.parameters:
        lowered = param.name.lower()
        value = env.get(param.name, 0)
        if value <= 0:
            continue
        if any(h in lowered for h in _MEM_HINTS) or lowered.endswith(("depth", "size")):
            mem_depth += value
        if any(h in lowered for h in _MUL_HINTS):
            mem_depth += 0  # hint handled below; avoid double counting
    if mem_depth > 0:
        mem = netlist.add_block(
            Block(
                name="u_mem",
                logic_terms=max(8, (mem_depth - 1).bit_length() * 4),
                ff_bits=2 * max(1, (mem_depth - 1).bit_length()),
                mem_bits=mem_depth * widest_data,
                mem_width=widest_data,
                levels=2,
                through_memory=True,
            )
        )
        netlist.connect(mem.name, datapath.name, width=widest_data, combinational=True)
        netlist.connect(outreg.name, mem.name, width=widest_data)

    mul_hint = any(
        any(h in p.name.lower() for h in _MUL_HINTS) for p in module.parameters
    ) or any(any(h in p.name.lower() for h in _MUL_HINTS) for p in module.ports)
    if mul_hint:
        mul = netlist.add_block(
            Block(
                name="u_mul",
                logic_terms=widest_data * 2,
                ff_bits=widest_data * 2,
                mul_ops=max(1, widest_data // 18),
                levels=1,
                through_dsp=True,
            )
        )
        netlist.connect(mul.name, outreg.name, width=widest_data)

    ctrl = netlist.add_block(
        Block(
            name="u_ctrl",
            logic_terms=16 + 2 * len(module.ports),
            ff_bits=8,
            levels=2,
        )
    )
    netlist.connect(ctrl.name, datapath.name, width=4, combinational=True)
    return netlist
