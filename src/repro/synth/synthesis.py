"""Synthesis flow driver: elaborate → optimize → map, with a runtime model.

The *simulated* tool runtime matters as much as QoR here: Dovado's whole
approximation machinery exists because real synthesis/implementation runs
cost minutes to hours.  VEDA charges each run a simulated wall-clock cost
(calibrated to small-design Vivado behaviour: tens of seconds of fixed
startup plus per-cell work) which the DSE loop accounts against its soft
deadline, letting benchmarks reproduce the paper's time economics in
milliseconds of real time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.devices import Device
from repro.directives import SynthDirective
from repro.hdl.ast import Module
from repro.netlist import Netlist
from repro.synth.elaborate import elaborate
from repro.synth.mapper import MappedDesign, map_to_device
from repro.synth.optimizer import optimize

__all__ = ["SynthesisResult", "synthesize", "estimate_synth_seconds"]

# Runtime model constants (simulated seconds).
_SYNTH_BASE_S = 35.0         # project open + elaboration overhead
_SYNTH_PER_CELL_S = 0.012    # per mapped LUT+FF cell
_INCREMENTAL_FLOOR = 0.30    # fraction of full runtime an ideal reuse still pays


def estimate_synth_seconds(
    cells: int, directive: SynthDirective, reuse_fraction: float = 0.0
) -> float:
    """Simulated synthesis wall time for a design of ``cells`` mapped cells.

    ``reuse_fraction`` is the unchanged-cell fraction an incremental run can
    skip; savings saturate at ``1 - _INCREMENTAL_FLOOR``.
    """
    if not 0.0 <= reuse_fraction <= 1.0:
        raise ValueError(f"reuse_fraction out of range: {reuse_fraction}")
    effect = directive.effect()
    full = (_SYNTH_BASE_S + cells * _SYNTH_PER_CELL_S) * effect.runtime_factor
    saved = reuse_fraction * (1.0 - _INCREMENTAL_FLOOR)
    return full * (1.0 - saved)


@dataclass
class SynthesisResult:
    """Output of the synthesis step."""

    netlist: Netlist
    mapped: MappedDesign
    directive: SynthDirective
    simulated_seconds: float
    incremental_reuse: float = 0.0


def synthesize(
    module: Module,
    device: Device,
    overrides: Mapping[str, int | bool] | None = None,
    directive: SynthDirective = SynthDirective.DEFAULT,
    boxed: bool = True,
    reference: Netlist | None = None,
) -> SynthesisResult:
    """Run the full synthesis step.

    ``reference`` enables the incremental flow: when the previous run's
    netlist is supplied, runtime shrinks in proportion to the structurally
    unchanged cell fraction (Section III-B2 of the paper).
    """
    raw = elaborate(module, overrides)
    optimized = optimize(raw, directive)
    mapped = map_to_device(optimized, device, boxed=boxed)
    reuse = optimized.similarity_to(reference) if reference is not None else 0.0
    seconds = estimate_synth_seconds(
        mapped.netlist.approximate_cells(), directive, reuse_fraction=reuse
    )
    return SynthesisResult(
        netlist=optimized,
        mapped=mapped,
        directive=directive,
        simulated_seconds=seconds,
        incremental_reuse=reuse,
    )
