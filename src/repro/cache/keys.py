"""Content-addressed run identity for the persistent result store.

A stored result may only ever be replayed for a run the simulated tool is
*guaranteed* to answer bitwise-identically.  The key therefore covers the
full run identity:

- ``flow_version`` — bumped whenever anything that shapes QoR or runtime
  accounting changes (synthesis/implementation runtime models, the noise
  model, directive effects, boxing).  Results written under an older flow
  version simply never match again; no migration, no invalidation scans.
- ``source`` digest — the HDL text itself (two designs sharing a top
  name must not collide);
- ``top``, ``part``, ``step``, directives, target period, ``seed`` — the
  tool-session configuration;
- the requested metric set — the stored payload is the extracted metric
  vector, which depends on which metrics were requested;
- the parameter binding (per-point component of the key).

Keys are hex SHA-256 digests over a canonical JSON form, so they are
stable across processes, platforms, and Python hash randomization.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

__all__ = [
    "FLOW_VERSION",
    "identity_key",
    "point_key",
    "run_identity",
    "source_digest",
]

#: Version tag of the simulated flow's QoR + runtime behaviour.  Bump on
#: ANY change to the synthesis/implementation/noise/directive models or
#: to boxing — see docs/performance.md ("cache-key versioning rules").
FLOW_VERSION = "veda-3"


def source_digest(text: str) -> str:
    """Short stable digest of an HDL source text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def run_identity(
    *,
    source: str,
    top: str,
    part: str,
    step: str,
    synth_directive: str,
    impl_directive: str,
    target_period_ns: float,
    seed: int,
    metrics: tuple[tuple[str, str], ...],
    boxed: bool = True,
    language: str = "",
    flow_version: str = FLOW_VERSION,
) -> dict[str, Any]:
    """The per-evaluator identity every point key is derived from."""
    return {
        "flow_version": flow_version,
        "language": str(language),
        "source": source_digest(source),
        "top": top.lower(),
        "part": part,
        "step": str(step),
        "synth_directive": str(synth_directive),
        "impl_directive": str(impl_directive),
        "target_period_ns": round(float(target_period_ns), 6),
        "seed": int(seed),
        "metrics": [[name, sense] for name, sense in metrics],
        "boxed": bool(boxed),
    }


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def identity_key(identity: Mapping[str, Any]) -> str:
    """Digest of the evaluator identity alone (the store's namespace)."""
    return hashlib.sha256(_canonical(dict(identity)).encode("utf-8")).hexdigest()


def point_key(identity: Mapping[str, Any], params: Mapping[str, int]) -> str:
    """The full content-addressed key of one run (identity + binding)."""
    binding = sorted((k.lower(), int(v)) for k, v in params.items())
    blob = _canonical({"identity": dict(identity), "params": binding})
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
