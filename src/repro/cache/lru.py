"""A small LRU mapping for the in-memory evaluation caches.

The tool session's run/stage caches used to be plain dicts that grew
without bound — a long sweep held every :class:`RunResult` (netlists,
report text and all) alive for the session's lifetime.  With the
persistent :class:`~repro.cache.store.ResultStore` as the durable layer,
the in-memory caches only need to keep the hot working set, so they are
bounded with this LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator

__all__ = ["LruCache"]


class LruCache:
    """Bounded mapping with least-recently-used eviction.

    ``capacity=None`` disables eviction (unbounded, plain-dict
    behaviour); ``capacity`` must otherwise be positive.  Both reads and
    writes refresh an entry's recency.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"LruCache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.evictions = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        if key not in self._data:
            return default
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if self.capacity is not None and len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def clear(self) -> None:
        self._data.clear()
