"""The sharded result store: N independent segment directories.

One flat :class:`~repro.cache.store.ResultStore` funnels every writer
through a single ``flock`` — fine for a handful of processes, hostile to
a multi-tenant server where dozens of jobs append concurrently.
:class:`ShardedResultStore` splits the key space over N inner stores
(``shard-00/`` … ``shard-NN/``), each with its *own* segments, index,
and writer lock, so writers on different shards never contend and a tail
refresh scans only the shard a key lives in.

Layout::

    <root>/MANIFEST.json      # {"sharded": true, "shards": N, ...}
    <root>/shard-00/          # a full ResultStore directory
    <root>/shard-01/
    ...

Routing is by key prefix: keys are hex SHA-256 digests (uniformly
distributed), so ``int(key[:8], 16) % shards`` balances load without any
coordination.  The shard count is fixed at creation and recorded in the
root MANIFEST — reopening always honours the recorded count (a different
``shards`` argument would route keys to the wrong shard and manufacture
misses), so growing a store means ``export`` + re-import.

Every maintenance operation (``clear``, ``compact``) delegates per shard
under that shard's lock; each shard keeps its own generation stamp, so
cross-process staleness recovery works shard-by-shard exactly as for the
flat store.

:func:`open_store` sniffs a directory's MANIFEST and returns whichever
store class owns the layout — CLI paths accept either interchangeably.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.cache.store import (
    FULL_RANK,
    CompactResult,
    ResultStore,
    StoredResult,
    StoreStats,
)

__all__ = ["ShardedResultStore", "open_store"]

_DEFAULT_SHARDS = 8
_MAX_SHARDS = 4096


class ShardedResultStore:
    """Key-prefix-sharded result store: one :class:`ResultStore` per shard."""

    def __init__(
        self,
        root: str | Path,
        shards: int = _DEFAULT_SHARDS,
        segment_max_bytes: int | None = None,
    ) -> None:
        self.root = Path(root)
        self._manifest_path = self.root / "MANIFEST.json"
        recorded = self._recorded_shards()
        if recorded is not None:
            # The recorded count always wins: routing must match the
            # processes that wrote the store.
            shards = recorded
        if not 1 <= int(shards) <= _MAX_SHARDS:
            raise ValueError(f"shards must be in [1, {_MAX_SHARDS}], got {shards}")
        self.shards = int(shards)
        self.root.mkdir(parents=True, exist_ok=True)
        kwargs: dict[str, int] = {}
        if segment_max_bytes is not None:
            kwargs["segment_max_bytes"] = segment_max_bytes
        self._stores = [
            ResultStore(self.root / f"shard-{i:02d}", **kwargs)
            for i in range(self.shards)
        ]
        if recorded is None:
            self._write_manifest()

    # -- layout ----------------------------------------------------------

    def _recorded_shards(self) -> int | None:
        try:
            manifest = json.loads(self._manifest_path.read_text(encoding="utf-8"))
            count = manifest.get("shards")
            return None if count is None else int(count)
        except (OSError, json.JSONDecodeError, TypeError, ValueError):
            return None

    def _write_manifest(self) -> None:
        from repro.cache.keys import FLOW_VERSION

        # Atomic publish: another process sniffing the layout mid-write
        # must see the old manifest or the new one, never a torn file
        # (a torn read would misroute every key it stores).
        tmp = self._manifest_path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {
                        "store_version": 1,
                        "flow_version": FLOW_VERSION,
                        "sharded": True,
                        "shards": self.shards,
                    },
                    indent=2,
                )
                + "\n"
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path)

    def shard_for(self, key: str) -> int:
        """The shard ordinal a key routes to (stable across processes)."""
        try:
            prefix = int(key[:8], 16)
        except ValueError:
            # Non-hex keys (tests, future kinds): fall back to a stable
            # string hash so routing stays deterministic cross-process.
            import hashlib

            prefix = int(
                hashlib.sha256(key.encode("utf-8")).hexdigest()[:8], 16
            )
        return prefix % self.shards

    def _store_for(self, key: str) -> ResultStore:
        return self._stores[self.shard_for(key)]

    # -- aggregated this-process tallies ----------------------------------

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._stores)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._stores)

    @property
    def puts(self) -> int:
        return sum(s.puts for s in self._stores)

    @property
    def skipped_puts(self) -> int:
        return sum(s.skipped_puts for s in self._stores)

    @property
    def corrupt_lines(self) -> int:
        return sum(s.corrupt_lines for s in self._stores)

    # -- API ---------------------------------------------------------------

    def get(self, key: str) -> StoredResult | None:
        return self._store_for(key).get(key)

    def put(
        self,
        key: str,
        kind: str,
        payload: Mapping[str, Any],
        rank: int = FULL_RANK,
    ) -> bool:
        return self._store_for(key).put(key, kind, payload, rank=rank)

    def __contains__(self, key: str) -> bool:
        return key in self._store_for(key)

    def __len__(self) -> int:
        return sum(len(s) for s in self._stores)

    def keys(self) -> list[str]:
        out: list[str] = []
        for store in self._stores:
            out.extend(store.keys())
        return out

    def records(self) -> Iterator[StoredResult]:
        for store in self._stores:
            yield from store.records()

    def refresh(self) -> int:
        return sum(s.refresh() for s in self._stores)

    def clear(self) -> int:
        return sum(s.clear() for s in self._stores)

    def compact(self) -> CompactResult:
        result = CompactResult(0, 0, 0, 0, 0, 0)
        for store in self._stores:
            result = result.merged(store.compact())
        return result

    def export(self, path: str | Path) -> Path:
        """Write one merged JSONL file across every shard."""
        from repro.cache.store import _encode_record

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for record in self.records():
                fh.write(_encode_record(record) + "\n")
        return path

    def stats(self) -> StoreStats:
        per_shard = [s.stats() for s in self._stores]
        return StoreStats(
            path=str(self.root),
            segments=sum(s.segments for s in per_shard),
            records=sum(s.records for s in per_shard),
            unique_keys=sum(s.unique_keys for s in per_shard),
            duplicates=sum(s.duplicates for s in per_shard),
            size_bytes=sum(s.size_bytes for s in per_shard),
            hits=sum(s.hits for s in per_shard),
            misses=sum(s.misses for s in per_shard),
            puts=sum(s.puts for s in per_shard),
            skipped_puts=sum(s.skipped_puts for s in per_shard),
            corrupt_lines=sum(s.corrupt_lines for s in per_shard),
            generation=max((s.generation for s in per_shard), default=0),
            shards=self.shards,
        )

    def shard_stats(self) -> list[StoreStats]:
        """Per-shard stats (load-balance introspection for ``cache stats``)."""
        return [s.stats() for s in self._stores]


def open_store(
    root: str | Path, shards: int | None = None
) -> ResultStore | ShardedResultStore:
    """Open whichever store layout lives at ``root``.

    An existing directory is opened as the layout its MANIFEST records
    (sharded or flat — a ``shards`` argument never re-routes an existing
    store).  A fresh path is created sharded when ``shards`` is given
    (and > 1), flat otherwise — so single-session CLI flows keep the
    simple layout and the server opts into sharding explicitly.
    """
    root = Path(root)
    manifest = root / "MANIFEST.json"
    if manifest.exists():
        try:
            sharded = bool(
                json.loads(manifest.read_text(encoding="utf-8")).get("sharded")
            )
        except (OSError, json.JSONDecodeError, TypeError, ValueError):
            sharded = False
        if sharded:
            return ShardedResultStore(root)
        return ResultStore(root)
    if shards is not None and shards > 1:
        return ShardedResultStore(root, shards=shards)
    return ResultStore(root)
