"""``repro.cache`` — the persistent evaluation result store.

The paper's premise is that Vivado evaluations are the cost center; this
package is the durable layer of the evaluation pipeline that makes sure
no identical tool run is ever paid for twice — not within a batch (the
cross-batch memo in :mod:`repro.core.parallel` handles that), not within
a session (the tool's own run cache handles that), and, with this store,
not *across* sessions or worker processes either.

Three pieces:

- :mod:`repro.cache.keys` — the content-addressed run identity: a stable
  digest over (flow version, source digest, top, part, parameters, step,
  directives, target period, seed, metric set).  Two runs share a key
  exactly when the simulated tool is guaranteed to produce bitwise
  identical answers for them.
- :mod:`repro.cache.store` — :class:`ResultStore`, a process-safe
  on-disk store (JSONL segments + in-memory index, file-locked appends)
  that many writer processes can share concurrently.
- :mod:`repro.cache.records` — payload codecs between store records and
  the evaluated-point / failure shapes the DSE layers exchange.
- :mod:`repro.cache.sharded` — :class:`ShardedResultStore`, the same
  store split over N key-prefix shards with independent locks, for
  multi-tenant servers; :func:`open_store` opens either layout.

:class:`LruCache` also lives here: the bounded mapping used by the
in-memory caches now that this store is the durable layer.
"""

from repro.cache.keys import (
    FLOW_VERSION,
    identity_key,
    point_key,
    run_identity,
    source_digest,
)
from repro.cache.lru import LruCache
from repro.cache.records import (
    FIDELITY_RANKS,
    FULL_FIDELITY,
    KIND_FAILURE,
    KIND_POINT,
    decode_point,
    encode_failure,
    encode_point,
    fidelity_rank,
)
from repro.cache.sharded import ShardedResultStore, open_store
from repro.cache.store import (
    FULL_RANK,
    CompactResult,
    ResultStore,
    StoredResult,
    StoreStats,
)

__all__ = [
    "CompactResult",
    "FIDELITY_RANKS",
    "FLOW_VERSION",
    "FULL_FIDELITY",
    "FULL_RANK",
    "KIND_FAILURE",
    "KIND_POINT",
    "LruCache",
    "ResultStore",
    "ShardedResultStore",
    "StoreStats",
    "StoredResult",
    "decode_point",
    "encode_failure",
    "encode_point",
    "fidelity_rank",
    "identity_key",
    "open_store",
    "point_key",
    "run_identity",
    "source_digest",
]
