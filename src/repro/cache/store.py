"""The persistent, process-safe, on-disk result store.

Layout (one directory per store)::

    <root>/MANIFEST.json        # store format + flow version it was created under
    <root>/.lock                # writer mutual exclusion (flock)
    <root>/segments/seg-000001.jsonl
    <root>/segments/seg-000002.jsonl
    ...

Records are append-only JSONL lines ``{"key": <hex>, "kind": ..,
"payload": {..}}``; a segment rotates once it crosses the byte cap, so no
single file grows unboundedly and ``clear``/``export`` stream segment by
segment.

Concurrency model — many readers, many writers, zero coordination beyond
the lock file:

- **Appends** happen under an exclusive ``flock`` on ``<root>/.lock``
  and are preceded by a tail refresh, so two processes racing to store
  the same key write it once (first-writer-wins; results are
  content-addressed and deterministic, so the loser's record would have
  been byte-identical anyway).
- **Reads** go through a per-process in-memory index.  A lookup miss
  triggers a *tail refresh*: each segment is re-read only from the byte
  offset this process has already consumed, so picking up another
  process's appends costs O(new records), not O(store).
- Keys are content-addressed (:mod:`repro.cache.keys`), so duplicate
  keys across segments are benign: the first record wins and later ones
  are counted as duplicates in :meth:`ResultStore.stats`.
- **Fidelity ranks**: records may carry a rank (flow-ladder rung; absent
  means full fidelity).  Within a key, a *higher*-rank record supersedes
  a lower one — a full-route result overwrites the synth-estimate probe
  stored for the same design hash — while equal ranks keep
  first-writer-wins.  The index therefore always answers with the most
  trustworthy record the store holds for a key.  Because a low-rank hit
  may have been superseded by another process since it was indexed,
  :meth:`ResultStore.get` refreshes the tail *before* answering from a
  below-full-rank record — a hit on a probe never shadows a full-route
  record some other process already appended.
- **Generation stamp**: destructive maintenance (:meth:`ResultStore.clear`,
  :meth:`ResultStore.compact`) bumps a generation counter in MANIFEST
  under the writer lock.  ``refresh()`` compares it against the
  generation this process last saw and, on mismatch, resets its offsets
  and index before re-reading — otherwise a process that indexed the old
  segments would keep serving deleted records forever (its byte offsets
  exceed the recreated segments' sizes, so the tail scan finds nothing).
- **Defensive reads**: segment scans only consider files named
  ``seg-<digits>.jsonl``; foreign files dropped into the segments
  directory are ignored rather than crashing rotation, and complete
  lines that fail to decode are skipped and tallied in
  ``corrupt_lines`` (surfaced by ``cache stats``).

The lock degrades to a no-op on platforms without ``fcntl`` — the store
stays correct for a single writer, which is the only configuration those
platforms get.
"""

from __future__ import annotations

import json
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.cache.keys import FLOW_VERSION

try:  # pragma: no branch
    import fcntl

    _HAVE_FLOCK = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    _HAVE_FLOCK = False

__all__ = [
    "FULL_RANK",
    "CompactResult",
    "ResultStore",
    "StoredResult",
    "StoreStats",
]

_STORE_VERSION = 1
_SEGMENT_PREFIX = "seg-"
_SEGMENT_NAME = re.compile(rf"^{_SEGMENT_PREFIX}(\d+)\.jsonl$")
_DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Rank of records written without one (pre-ladder stores): they came from
#: the full flow and must stay authoritative over low-fidelity probes.
FULL_RANK = 2


@dataclass(frozen=True)
class StoredResult:
    """One decoded store record."""

    key: str
    kind: str
    payload: dict[str, Any]
    rank: int = FULL_RANK


def _encode_record(record: StoredResult) -> str:
    """The canonical JSONL line for a record (full-rank lines keep the
    pre-ladder byte format)."""
    obj: dict[str, Any] = {
        "key": record.key,
        "kind": record.kind,
        "payload": record.payload,
    }
    if record.rank != FULL_RANK:
        obj["rank"] = record.rank
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class StoreStats:
    """Store shape plus this process's hit/miss/put tallies."""

    path: str
    segments: int
    records: int
    unique_keys: int
    duplicates: int
    size_bytes: int
    hits: int
    misses: int
    puts: int
    skipped_puts: int
    corrupt_lines: int = 0
    generation: int = 0
    shards: int = 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "segments": self.segments,
            "records": self.records,
            "unique_keys": self.unique_keys,
            "duplicates": self.duplicates,
            "size_bytes": self.size_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "skipped_puts": self.skipped_puts,
            "corrupt_lines": self.corrupt_lines,
            "generation": self.generation,
            "shards": self.shards,
        }


@dataclass(frozen=True)
class CompactResult:
    """Outcome of one offline compaction pass."""

    records_before: int
    records_after: int
    segments_before: int
    segments_after: int
    bytes_before: int
    bytes_after: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "records_before": self.records_before,
            "records_after": self.records_after,
            "segments_before": self.segments_before,
            "segments_after": self.segments_after,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
        }

    def merged(self, other: "CompactResult") -> "CompactResult":
        return CompactResult(
            records_before=self.records_before + other.records_before,
            records_after=self.records_after + other.records_after,
            segments_before=self.segments_before + other.segments_before,
            segments_after=self.segments_after + other.segments_after,
            bytes_before=self.bytes_before + other.bytes_before,
            bytes_after=self.bytes_after + other.bytes_after,
        )


class ResultStore:
    """Content-addressed on-disk result store shared across processes."""

    def __init__(
        self,
        root: str | Path,
        segment_max_bytes: int = _DEFAULT_SEGMENT_BYTES,
    ) -> None:
        self.root = Path(root)
        self.segment_max_bytes = int(segment_max_bytes)
        self._segments_dir = self.root / "segments"
        self._lock_path = self.root / ".lock"
        self._manifest_path = self.root / "MANIFEST.json"
        self._index: dict[str, StoredResult] = {}
        self._offsets: dict[str, int] = {}  # segment name -> bytes consumed
        self._records_seen = 0
        self._generation = 0  # manifest generation this index was built from
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.skipped_puts = 0
        self.corrupt_lines = 0
        self._ensure_layout()
        self.refresh()

    # -- layout & locking ------------------------------------------------

    def _ensure_layout(self) -> None:
        self._segments_dir.mkdir(parents=True, exist_ok=True)
        if not self._manifest_path.exists():
            with self._locked():
                if not self._manifest_path.exists():
                    self._write_manifest({"generation": 0})

    def _write_manifest(self, extra: Mapping[str, Any]) -> None:
        """(Re)write MANIFEST (call under the lock for shared stores)."""
        payload: dict[str, Any] = {
            "store_version": _STORE_VERSION,
            "flow_version": FLOW_VERSION,
        }
        payload.update(extra)
        tmp = self._manifest_path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, indent=2) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path)

    def _read_manifest(self) -> dict[str, Any]:
        try:
            return dict(
                json.loads(self._manifest_path.read_text(encoding="utf-8"))
            )
        except (OSError, json.JSONDecodeError, TypeError, ValueError):
            return {}

    def _stored_generation(self) -> int:
        """The generation stamp currently in MANIFEST (0 when absent)."""
        try:
            return int(self._read_manifest().get("generation", 0))
        except (TypeError, ValueError):
            return 0

    def _bump_generation(self) -> int:
        """Advance the generation stamp (call under the lock)."""
        manifest = self._read_manifest()
        try:
            generation = int(manifest.get("generation", 0)) + 1
        except (TypeError, ValueError):
            generation = 1
        manifest["generation"] = generation
        self._write_manifest(manifest)
        return generation

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive writer lock on the store (no-op without fcntl)."""
        self._lock_path.touch(exist_ok=True)
        with self._lock_path.open("r+") as fh:
            if _HAVE_FLOCK:
                fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                if _HAVE_FLOCK:
                    fcntl.flock(fh, fcntl.LOCK_UN)

    def _segment_paths(self) -> list[Path]:
        # Only files matching seg-<digits>.jsonl are store segments; foreign
        # files (editor droppings, exports copied in by hand) are ignored so
        # neither the tail scan nor rotation trips over them.
        return sorted(
            p
            for p in self._segments_dir.glob(f"{_SEGMENT_PREFIX}*.jsonl")
            if _SEGMENT_NAME.match(p.name)
        )

    def _active_segment(self) -> Path:
        """The segment new appends go to (rotating past the byte cap)."""
        segments = self._segment_paths()
        if segments:
            last = segments[-1]
            if last.stat().st_size < self.segment_max_bytes:
                return last
            match = _SEGMENT_NAME.match(last.name)
            assert match is not None  # _segment_paths only yields conforming names
            ordinal = int(match.group(1)) + 1
        else:
            ordinal = 1
        return self._segments_dir / f"{_SEGMENT_PREFIX}{ordinal:06d}.jsonl"

    # -- index maintenance -----------------------------------------------

    def refresh(self) -> int:
        """Fold appends from other processes into the index.

        Reads only the unseen tail of each segment; returns the number of
        new records indexed (duplicate keys count as records but do not
        displace the first-seen entry).  When another process has cleared
        or compacted the store since this process last looked (MANIFEST
        generation mismatch), the local offsets and index are reset first
        — the old byte offsets are meaningless against recreated segments
        and the old index entries may reference deleted records.
        """
        stored_generation = self._stored_generation()
        if stored_generation != self._generation:
            self._index.clear()
            self._offsets.clear()
            self._records_seen = 0
            self._generation = stored_generation
        added = 0
        for path in self._segment_paths():
            name = path.name
            offset = self._offsets.get(name, 0)
            size = path.stat().st_size
            if size <= offset:
                continue
            with path.open("r", encoding="utf-8") as fh:
                fh.seek(offset)
                tail = fh.read()
            # Only consume whole lines: a concurrent writer may be mid-append.
            consumed = tail.rfind("\n") + 1
            if consumed <= 0:
                continue
            for line in tail[:consumed].splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                    record = StoredResult(
                        key=str(obj["key"]),
                        kind=str(obj["kind"]),
                        payload=dict(obj.get("payload", {})),
                        rank=int(obj.get("rank", FULL_RANK)),
                    )
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    # A complete line that does not decode to a record:
                    # corruption from a crashed/foreign writer.  Skip it but
                    # keep count — silent data loss is how stale-cache bugs
                    # hide.
                    self.corrupt_lines += 1
                    continue
                self._records_seen += 1
                existing = self._index.get(record.key)
                if existing is None or record.rank > existing.rank:
                    self._index[record.key] = record
                added += 1
            self._offsets[name] = offset + consumed
        return added

    # -- API ---------------------------------------------------------------

    def get(self, key: str) -> StoredResult | None:
        """Look up one key, refreshing the tail on a miss.

        A hit on a *below-full-rank* record also refreshes first: the
        cached entry is a low-fidelity probe, and a higher-rank record
        appended by another process since the last refresh must supersede
        it ("higher rank supersedes" is the store's contract for hits,
        not just for misses).
        """
        record = self._index.get(key)
        if record is None or record.rank < FULL_RANK:
            self.refresh()
            record = self._index.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def __contains__(self, key: str) -> bool:
        if key not in self._index:
            self.refresh()
        return key in self._index

    def __len__(self) -> int:
        self.refresh()
        return len(self._index)

    def keys(self) -> list[str]:
        self.refresh()
        return list(self._index)

    def records(self) -> Iterator[StoredResult]:
        self.refresh()
        return iter(list(self._index.values()))

    def put(
        self,
        key: str,
        kind: str,
        payload: Mapping[str, Any],
        rank: int = FULL_RANK,
    ) -> bool:
        """Append one record; returns False when it would not win the index.

        First-writer-wins within a rank; a *higher*-rank record (a
        full-route result superseding a stored low-fidelity probe) is
        appended even when the key exists and displaces the lower record
        in every process's index on its next refresh.  The append runs
        under the writer lock with a fresh tail read, so concurrent
        writers racing on one (key, rank) store it exactly once.
        """
        rank = int(rank)
        existing = self._index.get(key)
        if existing is not None and existing.rank >= rank:
            self.skipped_puts += 1
            return False
        line = _encode_record(
            StoredResult(key=key, kind=str(kind), payload=dict(payload), rank=rank)
        )
        with self._locked():
            self.refresh()
            existing = self._index.get(key)
            if existing is not None and existing.rank >= rank:
                self.skipped_puts += 1
                return False
            path = self._active_segment()
            with path.open("a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            # Index our own append without re-reading the file (still under
            # the lock, so the segment tail is exactly our line).
            self._offsets[path.name] = path.stat().st_size
        record = StoredResult(key=key, kind=str(kind), payload=dict(payload), rank=rank)
        self._index[key] = record
        self._records_seen += 1
        self.puts += 1
        return True

    def clear(self) -> int:
        """Delete every record; returns how many unique keys were dropped.

        Bumps the MANIFEST generation stamp under the lock so every other
        process's next ``refresh()`` resets its offsets and index instead
        of serving deleted records forever.
        """
        with self._locked():
            self.refresh()
            dropped = len(self._index)
            for path in self._segment_paths():
                path.unlink()
            self._index.clear()
            self._offsets.clear()
            self._records_seen = 0
            self._generation = self._bump_generation()
        return dropped

    def compact(self) -> CompactResult:
        """Rewrite the segments keeping only index winners.

        Duplicate appends (two processes racing on one key) and
        superseded low-rank probe records accumulate as dead lines the
        tail scan pays for on every fresh open; this offline pass rewrites
        the store to exactly one line per unique key — the record the
        index answers with — and bumps the generation stamp so other
        processes re-read cleanly.  Runs entirely under the writer lock.
        """
        with self._locked():
            self.refresh()
            old_segments = self._segment_paths()
            before = CompactResult(
                records_before=self._records_seen,
                records_after=0,
                segments_before=len(old_segments),
                segments_after=0,
                bytes_before=sum(p.stat().st_size for p in old_segments),
                bytes_after=0,
            )
            lines = [
                _encode_record(record) for record in self._index.values()
            ]
            for path in old_segments:
                path.unlink()
            self._offsets.clear()
            ordinal = 0
            written = 0
            fh = None
            try:
                for line in lines:
                    if fh is None or written >= self.segment_max_bytes:
                        if fh is not None:
                            fh.flush()
                            os.fsync(fh.fileno())
                            fh.close()
                        ordinal += 1
                        path = (
                            self._segments_dir
                            / f"{_SEGMENT_PREFIX}{ordinal:06d}.jsonl"
                        )
                        fh = path.open("w", encoding="utf-8")
                        written = 0
                    fh.write(line + "\n")
                    written += len(line) + 1
                if fh is not None:
                    fh.flush()
                    os.fsync(fh.fileno())
                    fh.close()
                    fh = None
            finally:
                if fh is not None:
                    fh.close()
            # This process wrote every surviving line itself: offsets point
            # at the segment ends and the index is already the winner set.
            for path in self._segment_paths():
                self._offsets[path.name] = path.stat().st_size
            self._records_seen = len(self._index)
            self._generation = self._bump_generation()
            segments = self._segment_paths()
            return CompactResult(
                records_before=before.records_before,
                records_after=len(lines),
                segments_before=before.segments_before,
                segments_after=len(segments),
                bytes_before=before.bytes_before,
                bytes_after=sum(p.stat().st_size for p in segments),
            )

    def export(self, path: str | Path) -> Path:
        """Write one merged JSONL file (one line per unique key)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for record in self.records():
                fh.write(_encode_record(record) + "\n")
        return path

    def stats(self) -> StoreStats:
        self.refresh()
        segments = self._segment_paths()
        return StoreStats(
            path=str(self.root),
            segments=len(segments),
            records=self._records_seen,
            unique_keys=len(self._index),
            duplicates=self._records_seen - len(self._index),
            size_bytes=sum(p.stat().st_size for p in segments),
            hits=self.hits,
            misses=self.misses,
            puts=self.puts,
            skipped_puts=self.skipped_puts,
            corrupt_lines=self.corrupt_lines,
            generation=self._generation,
        )
