"""Payload codecs between store records and DSE result shapes.

The store itself is payload-agnostic (it moves ``dict`` lines); these
helpers define the two record kinds the evaluation pipeline writes:

- ``kind="point"`` — a completed run's extracted metric vector (the
  original tool charge is preserved for stats; replays are re-priced as
  cache answers by the caller);
- ``kind="failure"`` — a run the tool itself rejected (capacity
  overflow, unroutable design).  DRC pre-flight rejections are *never*
  stored: they are recomputed locally at zero cost and depend on the
  rule configuration, not the flow.

JSON round-trips floats losslessly (shortest-repr encoding), so a
replayed metric vector is bitwise equal to the one the tool produced —
the property the warm-store equivalence benchmarks assert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # deferred: repro.core imports the flow, which uses this package
    from repro.core.point import EvaluatedPoint

__all__ = [
    "FIDELITY_RANKS",
    "FULL_FIDELITY",
    "KIND_FAILURE",
    "KIND_POINT",
    "decode_point",
    "encode_failure",
    "encode_point",
    "fidelity_rank",
]

KIND_POINT = "point"
KIND_FAILURE = "failure"

#: Flow-ladder rung each stored result was measured at.  Records written
#: before the ladder existed carry no fidelity and default to full-route —
#: they were produced by the full flow and stay authoritative.
FULL_FIDELITY = "full-route"
FIDELITY_RANKS = {
    "static-estimate": -1,
    "synth-estimate": 0,
    "placed-estimate": 1,
    FULL_FIDELITY: 2,
}


def fidelity_rank(fidelity: str | None) -> int:
    """Store rank of a fidelity tag (unknown/missing tags are full rank)."""
    if fidelity is None:
        return FIDELITY_RANKS[FULL_FIDELITY]
    return FIDELITY_RANKS.get(str(fidelity), FIDELITY_RANKS[FULL_FIDELITY])


def encode_point(point: "EvaluatedPoint") -> dict[str, Any]:
    """Serialize a completed run for the store."""
    payload = {
        "parameters": {str(k): int(v) for k, v in point.parameters.items()},
        "metrics": {str(k): float(v) for k, v in point.metrics.items()},
        "source": point.source,
        "simulated_seconds": float(point.simulated_seconds),
    }
    # Full-route payloads keep the pre-ladder byte format.
    if point.fidelity != FULL_FIDELITY:
        payload["fidelity"] = str(point.fidelity)
    return payload


def decode_point(payload: Mapping[str, Any]) -> "EvaluatedPoint":
    """Rebuild the stored run as the tool produced it (not yet re-priced)."""
    from repro.core.point import EvaluatedPoint

    return EvaluatedPoint(
        parameters={str(k): int(v) for k, v in payload["parameters"].items()},
        metrics={str(k): float(v) for k, v in payload["metrics"].items()},
        source=str(payload.get("source", "tool")),
        simulated_seconds=float(payload.get("simulated_seconds", 0.0)),
        fidelity=str(payload.get("fidelity", FULL_FIDELITY)),
    )


def encode_failure(
    original_type: str, message: str, simulated_seconds: float = 0.0
) -> dict[str, Any]:
    """Serialize a tool-side failure for the store."""
    return {
        "original_type": str(original_type),
        "message": str(message),
        "simulated_seconds": float(simulated_seconds),
    }
