"""The block-level netlist graph.

A :class:`Netlist` is a named DAG of :class:`~repro.netlist.blocks.Block`
with :class:`~repro.netlist.blocks.Net` edges.  It provides the queries the
rest of the flow needs: aggregate abstract quantities, combinational path
enumeration for STA, a structural fingerprint for incremental-flow
checkpoint matching, and cycle detection (combinational loops are a
synthesis error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, cast

import networkx as nx

from repro.errors import ElaborationError
from repro.netlist.blocks import Block, Net, PortBits
from repro.observe import current_telemetry
from repro.util.rng import stable_hash_seed

__all__ = ["Netlist", "TimingArc"]


@dataclass(frozen=True)
class TimingArc:
    """One register-to-register structural path: the block chain it crosses.

    ``blocks`` starts at the path's launching block and ends at the
    capturing block; interior hops are combinational crossings.
    """

    blocks: tuple[str, ...]
    net_widths: tuple[int, ...]

    def hops(self) -> int:
        return len(self.blocks) - 1


class Netlist:
    """Mutable during elaboration, then treated as immutable by the flow."""

    def __init__(self, top: str) -> None:
        self.top = top
        self._g = nx.DiGraph()
        self.ports = PortBits()
        #: (src, dst) pairs whose edge was overwritten by a later add_net —
        #: last-writer-wins semantics are kept for the flow, but lint rule
        #: N003 (multiply-driven net) reports the collisions.
        self.duplicate_connections: list[tuple[str, str]] = []
        #: Set by :meth:`timing_arcs` when enumeration hit ``max_arcs``.
        self.timing_arcs_truncated: bool = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_block(self, block: Block) -> Block:
        if block.name in self._g:
            raise ElaborationError(f"duplicate block name {block.name!r}")
        self._g.add_node(block.name, block=block)
        return block

    def add_net(self, net: Net) -> Net:
        for endpoint in (net.src, net.dst):
            if endpoint not in self._g:
                raise ElaborationError(f"net references unknown block {endpoint!r}")
        if self._g.has_edge(net.src, net.dst):
            self.duplicate_connections.append((net.src, net.dst))
        self._g.add_edge(net.src, net.dst, net=net)
        return net

    def connect(
        self, src: str, dst: str, width: int = 1, combinational: bool = False
    ) -> Net:
        return self.add_net(Net(src=src, dst=dst, width=width, combinational=combinational))

    def set_ports(self, inputs: int, outputs: int) -> None:
        self.ports = PortBits(inputs=inputs, outputs=outputs)

    def replace_block(self, name: str, **changes: Any) -> Block:
        """Replace block ``name`` with a modified copy (keeps all nets)."""
        import dataclasses

        current = self.block(name)
        updated = dataclasses.replace(current, **changes)
        if updated.name != name:
            raise ElaborationError("replace_block cannot rename a block")
        self._g.nodes[name]["block"] = updated
        return updated

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def block(self, name: str) -> Block:
        try:
            return cast(Block, self._g.nodes[name]["block"])
        except KeyError:
            raise KeyError(f"no block {name!r} in netlist {self.top!r}") from None

    def blocks(self) -> list[Block]:
        return [self._g.nodes[n]["block"] for n in self._g.nodes]

    def nets(self) -> list[Net]:
        return [self._g.edges[e]["net"] for e in self._g.edges]

    def __len__(self) -> int:
        return self._g.number_of_nodes()

    def __contains__(self, name: str) -> bool:
        return name in self._g

    def totals(self) -> dict[str, int]:
        """Aggregate abstract quantities over all blocks."""
        out = {
            "logic_terms": 0,
            "ff_bits": 0,
            "mem_bits": 0,
            "mul_ops": 0,
            "carry_bits": 0,
        }
        for b in self.blocks():
            out["logic_terms"] += b.logic_terms
            out["ff_bits"] += b.ff_bits
            out["mem_bits"] += b.mem_bits
            out["mul_ops"] += b.mul_ops
            out["carry_bits"] += b.carry_bits
        return out

    def approximate_cells(self) -> int:
        return sum(b.approximate_cells() for b in self.blocks())

    # ------------------------------------------------------------------
    # timing structure
    # ------------------------------------------------------------------

    def combinational_loops(self) -> list[tuple[str, ...]]:
        """Every simple cycle through combinational nets.

        Each loop is rotated so it starts at its lexicographically smallest
        block and the list is sorted (shortest first, then lexicographic),
        so the result is deterministic regardless of traversal order.
        """
        comb = nx.DiGraph(
            (n.src, n.dst) for n in self.nets() if n.combinational
        )
        loops: list[tuple[str, ...]] = []
        for cycle in nx.simple_cycles(comb):
            names = [str(node) for node in cycle]
            pivot = names.index(min(names))
            loops.append(tuple(names[pivot:] + names[:pivot]))
        loops.sort(key=lambda loop: (len(loop), loop))
        return loops

    def check_no_combinational_loops(self) -> None:
        """Raise :class:`ElaborationError` if combinational nets form a cycle.

        The error message enumerates *every* simple cycle, not just the
        first one found — a designer fixing one loop should see the rest.
        """
        loops = self.combinational_loops()
        if not loops:
            return
        chains = "; ".join(
            " -> ".join(loop) + f" -> {loop[0]}" for loop in loops
        )
        label = "combinational loop" if len(loops) == 1 else (
            f"combinational loops ({len(loops)})"
        )
        raise ElaborationError(f"{label}: {chains}")

    def timing_arcs(self, max_arcs: int = 4096) -> list[TimingArc]:
        """Enumerate register-to-register structural paths.

        A path starts at any block (launch register inside it), extends
        through *combinational* nets across blocks that do not register
        their outputs, and terminates at the first registered boundary.
        Single-block paths (purely internal) are included — they are often
        critical for memory-heavy blocks.

        ``max_arcs`` caps enumeration on pathological graphs; paths are
        explored longest-first by DFS so truncation keeps the deep ones.
        Truncation is never silent: :attr:`timing_arcs_truncated` is set
        and the ``netlist.timing_arcs_truncated`` telemetry counter is
        bumped whenever the cap cuts enumeration short.
        """
        self.check_no_combinational_loops()
        self.timing_arcs_truncated = False
        arcs: list[TimingArc] = []

        def truncated() -> list[TimingArc]:
            self.timing_arcs_truncated = True
            tel = current_telemetry()
            if tel is not None:
                tel.counters.inc("netlist.timing_arcs_truncated")
            return arcs

        for start in self._g.nodes:
            # Internal path of the launching block itself.
            arcs.append(TimingArc(blocks=(start,), net_widths=()))
            if len(arcs) >= max_arcs:
                return truncated()
            stack: list[tuple[tuple[str, ...], tuple[int, ...]]] = [((start,), ())]
            while stack:
                chain, widths = stack.pop()
                tail = chain[-1]
                tail_block = self.block(tail)
                # A registered tail (other than the start) ends the path.
                if len(chain) > 1 and tail_block.registered_output:
                    continue
                for _, dst, data in self._g.out_edges(tail, data=True):
                    net: Net = data["net"]
                    if not net.combinational:
                        continue
                    if dst in chain:
                        continue  # guarded against by loop check; be safe
                    new_chain = chain + (dst,)
                    new_widths = widths + (net.width,)
                    arcs.append(TimingArc(blocks=new_chain, net_widths=new_widths))
                    if len(arcs) >= max_arcs:
                        return truncated()
                    stack.append((new_chain, new_widths))
        return arcs

    # ------------------------------------------------------------------
    # fingerprinting (incremental flow)
    # ------------------------------------------------------------------

    def structure_fingerprint(self) -> int:
        """Hash of the block/net *topology* ignoring block sizes.

        Two parameterizations of the same design share a fingerprint when
        they produce the same block and net structure — exactly the case
        where the incremental flow can reuse a placement checkpoint.
        """
        node_sig = sorted(self._g.nodes)
        edge_sig = sorted(
            (n.src, n.dst, n.combinational) for n in self.nets()
        )
        return stable_hash_seed((self.top, node_sig, edge_sig))

    def content_fingerprint(self) -> int:
        """Hash including block sizes (identical designs ⇒ identical hash)."""
        block_sig = sorted(
            (
                b.name, b.logic_terms, b.ff_bits, b.mem_bits, b.mem_width,
                b.mul_ops, b.carry_bits, b.levels, b.registered_output,
                b.through_memory, b.through_dsp,
            )
            for b in self.blocks()
        )
        net_sig = sorted((n.src, n.dst, n.width, n.combinational) for n in self.nets())
        return stable_hash_seed(
            (self.top, self.ports.inputs, self.ports.outputs, block_sig, net_sig)
        )

    def similarity_to(self, other: "Netlist") -> float:
        """Fraction of this netlist's cells living in blocks unchanged vs
        ``other`` (same name and sizes).  Drives incremental-flow savings."""
        mine = {b.name: b for b in self.blocks()}
        theirs = {b.name: b for b in other.blocks()}
        total = sum(max(1, b.approximate_cells()) for b in mine.values())
        unchanged = 0
        for name, block in mine.items():
            if theirs.get(name) == block:
                unchanged += max(1, block.approximate_cells())
        return unchanged / total if total else 0.0
