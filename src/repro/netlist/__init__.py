"""Post-elaboration netlist representation.

VEDA's unit of work is a *block-level* netlist: elaboration lowers a
parameterized RTL module into a DAG of functional blocks (control FSMs,
datapaths, memories, pipeline stages), each carrying technology-independent
quantities (logic terms, flip-flop bits, memory bits, multiplier ops, carry
bits, combinational depth).  Technology mapping converts those quantities to
device primitives (LUT/FF/BRAM/DSP), and place & route/STA operate on the
block graph.  Blocks keep per-evaluation cost at milliseconds while
preserving the parameter→resource→timing structure the DSE explores.
"""

from repro.netlist.blocks import Block, Net, PortBits
from repro.netlist.graph import Netlist

__all__ = ["Block", "Net", "PortBits", "Netlist"]
