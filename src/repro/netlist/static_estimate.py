"""Sound analytical pre-estimation over the block netlist (ladder rung 0).

Everything the flow's expensive stages compute is bracketed from below by
quantities the elaborated netlist already carries — no synthesis clock, no
placement, no routing:

- **Utilization lower bounds** — technology mapping is deterministic; the
  only post-mapping perturbation the flow applies is a multiplicative QoR
  jitter on LUT/FF clipped at ``1 - _QOR_NOISE_SPAN``.  Flooring the mapped
  counts by that clip bound therefore under-approximates every achievable
  routed utilization.
- **Fmax upper bound** — a routed register-to-register arc's delay is the
  clock overhead plus the arc's internal block delays plus strictly
  positive routed-net delays, all scaled by the directive delay bias and a
  noise factor clipped at the same lower bound.  Dropping the routing term
  and applying the clip floor yields a delay *lower* bound, i.e. an Fmax
  *upper* bound.
- **Congestion proxy** — total net bits over a track-capacity proxy; not a
  bound, just a cheap monotone feature (used by the promotion gate as a
  prior, never for pruning).

The estimator must see the *optimized* netlist (``repro.synth.optimizer``
can shrink logic under area-biased directives), so the convenience entry
point mirrors the synthesis pipeline: elaborate → optimize → map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.devices import Device, ResourceKind, ResourceVector
from repro.directives import ImplDirective, SynthDirective
from repro.errors import FlowError
from repro.hdl.ast import Module
from repro.netlist.graph import Netlist

__all__ = ["StaticEstimate", "static_estimate", "static_estimate_point"]

#: The flow's QoR jitter is ``clip(1 + sigma*N(0,1), 0.9, 1.1)`` — every
#: noisy quantity is at least 0.9x its deterministic value.  That clip
#: bound is what makes the floors below sound.
_QOR_NOISE_FLOOR = 0.9

#: Resource kinds that receive QoR jitter in the simulated flow; all other
#: mapped counts are exact.
_NOISY_KINDS = (ResourceKind.LUT, ResourceKind.FF)

#: Routing-track proxy per grid column (mirrors the router's track model).
_TRACKS_PER_COLUMN = 18.0


@dataclass(frozen=True)
class StaticEstimate:
    """Zero-cost bounds for one design point on one device."""

    #: Per-resource lower bounds (≤ any achievable routed utilization).
    utilization_lb: ResourceVector
    #: Critical-delay lower bound in ns (≤ any achievable routed delay).
    delay_lb_ns: float
    #: Fmax upper bound in MHz (≥ any achievable routed Fmax).
    fmax_ub_mhz: float
    #: Width-weighted routing-demand proxy (feature, not a bound).
    congestion_proxy: float
    #: Deepest structural arc (in blocks) backing the delay bound.
    critical_path: tuple[str, ...]
    #: Number of register-to-register arcs examined.
    arcs_analyzed: int

    def features(self) -> tuple[float, ...]:
        """Numeric feature vector for estimator priors (stable order)."""
        return (
            float(self.utilization_lb.get(ResourceKind.LUT)),
            float(self.utilization_lb.get(ResourceKind.FF)),
            self.delay_lb_ns,
            self.congestion_proxy,
        )


def static_estimate(
    netlist: Netlist,
    device: Device,
    *,
    boxed: bool = True,
    delay_bias: float = 1.0,
    noise_floor: float = _QOR_NOISE_FLOOR,
) -> StaticEstimate:
    """Bound the flow's QoR for ``netlist`` (already optimized) on ``device``.

    ``delay_bias`` must be the *combined* directive delay bias the flow
    would apply (synthesis × implementation effect) — biases below 1.0
    exist, so omitting them would break the Fmax bound.  ``noise_floor``
    is the QoR jitter clip bound (pass 1.0 for noise-free sims to tighten
    the bounds without losing soundness).
    """
    from repro.pnr.timing import block_internal_delay_ns
    from repro.synth.mapper import map_to_device

    if delay_bias <= 0:
        raise FlowError(f"static_estimate: non-positive delay bias {delay_bias}")
    mapped = map_to_device(netlist, device, boxed=boxed)

    floored: dict[ResourceKind, int] = {}
    for kind, count in mapped.total:
        if kind in _NOISY_KINDS:
            floored[kind] = max(1, math.floor(count * noise_floor))
        else:
            floored[kind] = count
    utilization_lb = ResourceVector(floored)

    t = device.timing()
    overhead = (t.ff_clk_to_q_ns + t.ff_setup_ns) * device.speed_factor
    internal = {
        b.name: block_internal_delay_ns(b, device) for b in netlist.blocks()
    }
    registered = {b.name: b.registered_output for b in netlist.blocks()}
    arcs = netlist.timing_arcs()
    if not arcs:
        raise FlowError("static_estimate: no register-to-register timing arcs")
    worst = 0.0
    worst_path: tuple[str, ...] = arcs[0].blocks
    for arc in arcs:
        blocks = arc.blocks
        launch_registered = registered[blocks[0]] and len(blocks) > 1
        delay = overhead
        for i, name in enumerate(blocks):
            if i == 0 and launch_registered:
                continue
            delay += internal[name]
        if delay > worst:
            worst = delay
            worst_path = blocks
    delay_lb = worst * delay_bias * noise_floor
    fmax_ub = 1000.0 / delay_lb if delay_lb > 0 else math.inf

    demand = float(sum(n.width for n in netlist.nets()))
    lut_cap = device.capacity(ResourceKind.LUT)
    tracks = _TRACKS_PER_COLUMN * max(1.0, math.sqrt(float(lut_cap)))
    congestion = demand / tracks

    return StaticEstimate(
        utilization_lb=utilization_lb,
        delay_lb_ns=delay_lb,
        fmax_ub_mhz=fmax_ub,
        congestion_proxy=congestion,
        critical_path=worst_path,
        arcs_analyzed=len(arcs),
    )


def static_estimate_point(
    module: Module,
    device: Device,
    overrides: Mapping[str, int | bool] | None = None,
    *,
    synth_directive: SynthDirective = SynthDirective.DEFAULT,
    impl_directive: ImplDirective = ImplDirective.DEFAULT,
    boxed: bool = True,
    noise_floor: float = _QOR_NOISE_FLOOR,
) -> StaticEstimate:
    """Elaborate → optimize → bound one parameter point of ``module``.

    Mirrors exactly the netlist the synthesis stage would hand to place &
    route under ``synth_directive`` — the optimizer can *shrink* logic, so
    bounding the unoptimized netlist would not be a lower bound.
    """
    from repro.synth.elaborate import elaborate
    from repro.synth.optimizer import optimize

    netlist = elaborate(module, overrides)
    optimized = optimize(netlist, synth_directive)
    bias = synth_directive.effect().delay_bias * impl_directive.effect().delay_bias
    return static_estimate(
        optimized,
        device,
        boxed=boxed,
        delay_bias=bias,
        noise_floor=noise_floor,
    )
