"""Block and net records for the block-level netlist."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Block", "Net", "PortBits"]


@dataclass(frozen=True)
class Block:
    """One functional block with technology-independent cost quantities.

    Attributes
    ----------
    name:
        Unique instance name within the netlist.
    logic_terms:
        Count of 6-input-equivalent combinational terms; technology mapping
        turns these into LUTs (device families with narrower LUTs would get
        a >1 expansion factor).
    ff_bits:
        Register bits (1:1 flip-flops after mapping).
    mem_bits:
        RAM bits; mapped to BRAM tiles by capacity and port width.
    mem_width:
        Word width of the memory (drives BRAM tile count for shallow/wide
        shapes where width, not capacity, dominates).
    mul_ops:
        18x18-equivalent multiply operations; mapped to DSP slices.
    carry_bits:
        Bits riding carry chains (adders/counters); contributes CARRY
        primitives and fast-path delay.
    levels:
        Combinational LUT levels on the block's longest internal
        input-to-output path.
    registered_output:
        Whether the block registers its outputs; registered outputs
        terminate timing paths at the block boundary.
    through_memory / through_dsp:
        Whether the block's critical internal path traverses a BRAM / DSP
        primitive (adds the primitive's access delay once).
    """

    name: str
    logic_terms: int = 0
    ff_bits: int = 0
    mem_bits: int = 0
    mem_width: int = 1
    mul_ops: int = 0
    carry_bits: int = 0
    levels: int = 1
    registered_output: bool = True
    through_memory: bool = False
    through_dsp: bool = False

    def __post_init__(self) -> None:
        for attr in ("logic_terms", "ff_bits", "mem_bits", "mul_ops", "carry_bits"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{self.name}: negative {attr}")
        if self.levels < 0:
            raise ValueError(f"{self.name}: negative levels")
        if self.mem_width < 1:
            raise ValueError(f"{self.name}: mem_width must be >= 1")

    def approximate_cells(self) -> int:
        """Rough cell count used for area/placement footprint."""
        return self.logic_terms + self.ff_bits + self.carry_bits


@dataclass(frozen=True)
class Net:
    """A directed connection between two blocks.

    ``combinational`` nets extend timing paths across the block boundary;
    nets out of a registered source and into registered sinks cut them.
    ``width`` scales routing demand (congestion) and, mildly, net delay
    (fanout loading).
    """

    src: str
    dst: str
    width: int = 1
    combinational: bool = False

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"net {self.src}->{self.dst}: width must be >= 1")
        if self.src == self.dst:
            raise ValueError(f"net {self.src}: self-loops are not representable")


@dataclass(frozen=True)
class PortBits:
    """Top-level interface bits (drives IO counts and the box's flattening)."""

    inputs: int = 0
    outputs: int = 0

    def total(self) -> int:
        return self.inputs + self.outputs
