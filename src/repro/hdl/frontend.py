"""Frontend dispatch: language detection, file parsing, source collections.

Mirrors Dovado's entry point: the user hands over one or more RTL files plus
a top-module name; the frontend picks the dialect per file extension (with a
content-based fallback), parses every unit, and resolves the requested top.
It also enforces the paper's Vivado compilation conventions hooks: VHDL
library naming (one subdirectory per library) is *recorded* per file, and SV
package files sort first in compile order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.errors import ModuleNotFoundInSource, UnknownLanguageError
from repro.hdl.ast import HdlLanguage, Module, SourceUnit
from repro.hdl.verilog_parser import parse_verilog
from repro.hdl.vhdl_parser import parse_vhdl

__all__ = ["detect_language", "parse_source", "parse_file", "SourceCollection"]

_EXT_LANG = {
    ".vhd": HdlLanguage.VHDL,
    ".vhdl": HdlLanguage.VHDL,
    ".v": HdlLanguage.VERILOG,
    ".vh": HdlLanguage.VERILOG,
    ".sv": HdlLanguage.SYSTEMVERILOG,
    ".svh": HdlLanguage.SYSTEMVERILOG,
}


def detect_language(path: str | Path | None = None, source: str | None = None) -> HdlLanguage:
    """Determine HDL dialect from extension, falling back to content sniffing."""
    if path is not None:
        ext = Path(path).suffix.lower()
        if ext in _EXT_LANG:
            return _EXT_LANG[ext]
    if source is not None:
        lowered = source.lower()
        if "endmodule" in lowered or "module " in lowered:
            # SV-only markers promote to SYSTEMVERILOG
            if any(kw in lowered for kw in ("logic", "always_ff", "always_comb", "::")):
                return HdlLanguage.SYSTEMVERILOG
            return HdlLanguage.VERILOG
        if "entity" in lowered and "end" in lowered:
            return HdlLanguage.VHDL
    raise UnknownLanguageError(
        f"cannot determine HDL language for {path!r}"
        + ("" if source is None else " from content")
    )


_MACRO_DIRECTIVES = ("`define", "`include", "`ifdef", "`ifndef")


def parse_source(
    source: str,
    language: HdlLanguage | str,
    include_dirs: tuple[str, ...] = (),
) -> list[Module]:
    """Parse HDL text under an explicit dialect.

    Verilog/SV sources carrying macro directives run through the
    preprocessor first (``\\`timescale``-style pass-through directives
    alone don't need it — the lexer skips those).
    """
    language = HdlLanguage(language)
    if language == HdlLanguage.VHDL:
        return parse_vhdl(source)
    if any(d in source for d in _MACRO_DIRECTIVES):
        from repro.hdl.preprocess import preprocess_verilog

        source = preprocess_verilog(source, include_dirs=include_dirs)
    return parse_verilog(source, language)


def parse_file(path: str | Path) -> SourceUnit:
    """Parse one file, detecting dialect from its extension/content.

    The file's own directory serves as the ``\\`include`` search path.
    """
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    language = detect_language(path, source)
    modules = parse_source(source, language, include_dirs=(str(path.parent),))
    return SourceUnit(path=str(path), language=language, modules=tuple(modules))


def _is_package_file(unit: SourceUnit, source_text: str | None = None) -> bool:
    """Heuristic: SV files declaring only packages (no modules)."""
    return unit.language == HdlLanguage.SYSTEMVERILOG and not unit.modules


@dataclass
class SourceCollection:
    """A set of parsed sources forming one design hierarchy.

    ``vhdl_library`` maps file path → VHDL library name, derived from the
    parent directory name per the paper's convention ("one subfolder per
    library with the same name"); files at the collection root compile into
    ``work``.
    """

    units: list[SourceUnit] = field(default_factory=list)
    vhdl_library: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_files(cls, paths: Iterable[str | Path], root: str | Path | None = None) -> "SourceCollection":
        coll = cls()
        for p in paths:
            coll.add_file(p, root=root)
        return coll

    @classmethod
    def from_sources(
        cls, sources: Iterable[tuple[str, HdlLanguage | str]]
    ) -> "SourceCollection":
        """Build from in-memory ``(text, language)`` pairs (tests, generators)."""
        coll = cls()
        for i, (text, language) in enumerate(sources):
            language = HdlLanguage(language)
            modules = parse_source(text, language)
            coll.units.append(
                SourceUnit(path=f"<memory:{i}>", language=language, modules=tuple(modules))
            )
        return coll

    def add_file(self, path: str | Path, root: str | Path | None = None) -> SourceUnit:
        unit = parse_file(path)
        self.units.append(unit)
        if unit.language == HdlLanguage.VHDL:
            parent = Path(path).resolve().parent
            library = "work"
            if root is not None and parent != Path(root).resolve():
                library = parent.name
            self.vhdl_library[str(path)] = library
        return unit

    def add_unit(self, unit: SourceUnit) -> None:
        self.units.append(unit)

    def modules(self) -> list[Module]:
        return [m for u in self.units for m in u.modules]

    def find_module(self, name: str) -> Module:
        """Resolve a top module by name (case-insensitive)."""
        matches = [m for m in self.modules() if m.name.lower() == name.lower()]
        if not matches:
            available = ", ".join(sorted(m.name for m in self.modules())) or "<none>"
            raise ModuleNotFoundInSource(
                f"module {name!r} not found; available: {available}"
            )
        return matches[0]

    def compile_order(self) -> list[SourceUnit]:
        """Units in tool compile order: SV package files first (paper rule),
        then everything else in insertion order."""
        packages = [u for u in self.units if _is_package_file(u)]
        rest = [u for u in self.units if not _is_package_file(u)]
        return packages + rest

    def languages(self) -> set[HdlLanguage]:
        return {u.language for u in self.units}
