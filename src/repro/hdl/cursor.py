"""Token-stream cursor shared by both recursive-descent parsers."""

from __future__ import annotations

from repro.errors import ParseError
from repro.hdl.lexer import Token, TokenKind

__all__ = ["Cursor"]


class Cursor:
    """A peekable cursor over a lexed token list (EOF-terminated)."""

    def __init__(self, tokens: list[Token]) -> None:
        if not tokens or tokens[-1].kind != TokenKind.EOF:
            raise ValueError("token stream must be EOF-terminated")
        self._toks = tokens
        self._i = 0

    # -- inspection -----------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        i = min(self._i + offset, len(self._toks) - 1)
        return self._toks[i]

    def at_eof(self) -> bool:
        return self.peek().kind == TokenKind.EOF

    def mark(self) -> int:
        return self._i

    def rewind(self, mark: int) -> None:
        self._i = mark

    # -- consumption ----------------------------------------------------------

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != TokenKind.EOF:
            self._i += 1
        return tok

    def accept_op(self, *ops: str) -> Token | None:
        if self.peek().is_op(*ops):
            return self.next()
        return None

    def expect_op(self, *ops: str) -> Token:
        tok = self.accept_op(*ops)
        if tok is None:
            got = self.peek()
            raise self.error(f"expected {' or '.join(map(repr, ops))}, got {got.text!r}")
        return tok

    def accept_kw(self, *names: str) -> Token | None:
        """Accept a case-insensitive keyword (lexed as IDENT)."""
        if self.peek().is_ident(*names):
            return self.next()
        return None

    def expect_kw(self, *names: str) -> Token:
        tok = self.accept_kw(*names)
        if tok is None:
            got = self.peek()
            raise self.error(f"expected keyword {' or '.join(names)}, got {got.text!r}")
        return tok

    def expect_ident(self, what: str = "identifier") -> Token:
        tok = self.peek()
        if tok.kind != TokenKind.IDENT:
            raise self.error(f"expected {what}, got {tok.text!r}")
        return self.next()

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, tok.line, tok.column)

    def skip_until_op(self, *ops: str) -> None:
        """Advance until one of ``ops`` at paren/bracket depth 0 (not consumed).

        Parenthesized/bracketed groups are skipped whole so separators inside
        aggregates or call arguments don't terminate early.  Hitting a close
        delimiter at depth 0 also stops (the caller's enclosing group ended);
        the delimiter is left unconsumed either way.
        """
        depth = 0
        while not self.at_eof():
            tok = self.peek()
            if tok.is_op("(", "["):
                depth += 1
            elif tok.is_op(")", "]"):
                if depth == 0:
                    return
                depth -= 1
            elif depth == 0 and tok.is_op(*ops):
                return
            self.next()
