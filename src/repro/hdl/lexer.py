"""Configurable lexer shared by the VHDL and Verilog/SystemVerilog parsers.

One tokenizer engine, two dialect configurations.  Handles the lexical forms
the declaration subset needs:

- comments: ``--`` (VHDL), ``//`` and ``/* */`` (Verilog);
- based literals: ``16#FF#``/``2#1010#`` (VHDL), ``8'hFF``/``'b1010``
  (Verilog, with underscores and optional size/sign);
- identifiers: plain, VHDL extended (``\\foo bar\\``), Verilog escaped
  (``\\foo!bar`` terminated by whitespace);
- strings and VHDL character literals (``'0'``, disambiguated from Verilog
  based literals by dialect);
- Verilog attribute instances ``(* ... *)`` and preprocessor lines
  (``\\`timescale``, ``\\`define`` …), both skipped.

Numbers are normalized to Python ints at lex time so parsers and the
expression evaluator never re-parse literal text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import LexError

__all__ = ["TokenKind", "Token", "LexerConfig", "Lexer", "VHDL_LEX", "VERILOG_LEX"]


class TokenKind(str, enum.Enum):
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    CHAR = "CHAR"      # VHDL character literal: '0'
    OP = "OP"          # operator or punctuation
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    value: int | None = None  # numeric value for NUMBER tokens

    def is_ident(self, *names: str) -> bool:
        """Case-insensitive identifier match (VHDL keywords are identifiers)."""
        return self.kind == TokenKind.IDENT and self.text.lower() in {
            n.lower() for n in names
        }

    def is_op(self, *ops: str) -> bool:
        return self.kind == TokenKind.OP and self.text in ops


# Longest-first operator tables so maximal munch is a simple ordered scan.
_VHDL_OPS = [
    "**", "=>", ":=", "<=", ">=", "/=", "<>", "<<", ">>",
    "(", ")", ";", ":", ",", ".", "+", "-", "*", "/", "=", "<", ">", "&", "'", "|",
]
_VERILOG_OPS = [
    "**", "<<<", ">>>", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "::",
    "+:", "-:", "->", "#", "@",
    "(", ")", "[", "]", "{", "}", ";", ":", ",", ".", "+", "-", "*", "/", "%",
    "=", "<", ">", "&", "|", "^", "~", "!", "?", "$", "'",
]


@dataclass(frozen=True)
class LexerConfig:
    name: str
    line_comments: tuple[str, ...]
    block_comments: tuple[tuple[str, str], ...]
    operators: tuple[str, ...]
    vhdl_literals: bool = False      # 16#FF#, character literals, extended idents
    verilog_literals: bool = False   # 8'hFF, escaped idents, `directives, (* *)
    ident_extra: str = "_$"
    _op_heads: frozenset[str] = field(init=False, default=frozenset())

    def __post_init__(self) -> None:
        object.__setattr__(self, "_op_heads", frozenset(op[0] for op in self.operators))


VHDL_LEX = LexerConfig(
    name="vhdl",
    line_comments=("--",),
    block_comments=(("/*", "*/"),),  # VHDL-2008 delimited comments
    operators=tuple(_VHDL_OPS),
    vhdl_literals=True,
)

VERILOG_LEX = LexerConfig(
    name="verilog",
    line_comments=("//",),
    block_comments=(("/*", "*/"),),
    operators=tuple(_VERILOG_OPS),
    verilog_literals=True,
)

_BASE_DIGITS = {
    "b": 2, "o": 8, "d": 10, "h": 16,
    "sb": 2, "so": 8, "sd": 10, "sh": 16,
}


class Lexer:
    """Tokenize ``source`` eagerly into a list of :class:`Token`."""

    def __init__(self, source: str, config: LexerConfig) -> None:
        self.src = source
        self.cfg = config
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level helpers --------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.src[i] if i < len(self.src) else ""

    def _startswith(self, text: str) -> bool:
        return self.src.startswith(text, self.pos)

    def _advance(self, n: int = 1) -> str:
        chunk = self.src[self.pos : self.pos + n]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return chunk

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col)

    # -- whitespace / comments ----------------------------------------------

    def _skip_trivia(self) -> None:
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n\f":
                self._advance()
                continue
            matched = False
            for marker in self.cfg.line_comments:
                if self._startswith(marker):
                    while self.pos < len(self.src) and self._peek() != "\n":
                        self._advance()
                    matched = True
                    break
            if matched:
                continue
            for begin, end in self.cfg.block_comments:
                if self._startswith(begin):
                    start_line = self.line
                    self._advance(len(begin))
                    while self.pos < len(self.src) and not self._startswith(end):
                        self._advance()
                    if self.pos >= len(self.src):
                        raise LexError("unterminated block comment", start_line, 0)
                    self._advance(len(end))
                    matched = True
                    break
            if matched:
                continue
            if self.cfg.verilog_literals and self._startswith("(*") and self._peek(2) != ")":
                # Attribute instance (* keep = "true" *). `(*)` is a real
                # paren-star-paren sequence in event expressions; not our subset.
                start_line = self.line
                self._advance(2)
                while self.pos < len(self.src) and not self._startswith("*)"):
                    self._advance()
                if self.pos >= len(self.src):
                    raise LexError("unterminated attribute instance", start_line, 0)
                self._advance(2)
                continue
            if self.cfg.verilog_literals and ch == "`":
                # Compiler directive: consume the whole line.
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
                continue
            break

    # -- token scanners ------------------------------------------------------

    def _scan_string(self) -> Token:
        line, col = self.line, self.col
        quote = self._advance()
        chars: list[str] = []
        while True:
            if self.pos >= len(self.src):
                raise LexError("unterminated string literal", line, col)
            ch = self._advance()
            if ch == "\\" and self.cfg.verilog_literals:
                chars.append(self._advance())
                continue
            if ch == quote:
                if self.cfg.vhdl_literals and self._peek() == quote:
                    chars.append(self._advance())  # VHDL doubled-quote escape
                    continue
                break
            chars.append(ch)
        return Token(TokenKind.STRING, "".join(chars), line, col)

    def _scan_number(self) -> Token:
        line, col = self.line, self.col
        digits: list[str] = []
        while self._peek().isdigit() or self._peek() == "_":
            digits.append(self._advance())
        text = "".join(d for d in digits if d != "_")
        # VHDL based literal: 16#FF#
        if self.cfg.vhdl_literals and self._peek() == "#":
            base = int(text)
            self._advance()
            mant: list[str] = []
            while self._peek() not in ("#", ""):
                mant.append(self._advance())
            if self._peek() != "#":
                raise LexError("unterminated based literal", line, col)
            self._advance()
            raw = "".join(c for c in mant if c != "_")
            try:
                value = int(raw, base)
            except ValueError as exc:
                raise LexError(f"bad based literal {raw!r} in base {base}", line, col) from exc
            return Token(TokenKind.NUMBER, f"{base}#{raw}#", line, col, value=value)
        # Verilog sized literal: 8'hFF  (size just lexed as `text`)
        if self.cfg.verilog_literals and self._peek() == "'":
            return self._scan_verilog_based(int(text) if text else None, line, col)
        if self._peek() == "." and self._peek(1).isdigit():
            # Real literal; interface arithmetic is integral, keep the int part
            # if exact, else error (ports never have fractional widths).
            frac: list[str] = [self._advance()]
            while self._peek().isdigit():
                frac.append(self._advance())
            real_text = text + "".join(frac)
            value_f = float(real_text)
            if value_f != int(value_f):
                raise LexError(f"non-integral literal {real_text} in interface", line, col)
            return Token(TokenKind.NUMBER, real_text, line, col, value=int(value_f))
        if not text:
            raise self._error("empty number literal")
        return Token(TokenKind.NUMBER, text, line, col, value=int(text))

    def _scan_verilog_based(self, size: int | None, line: int, col: int) -> Token:
        self._advance()  # consume '
        spec = ""
        if self._peek().lower() == "s":
            spec += self._advance().lower()
        if self._peek().lower() in "bodh":
            spec += self._advance().lower()
        else:
            # '0 / '1 / 'x unbased unsized literal
            ch = self._advance()
            if ch in "01":
                return Token(TokenKind.NUMBER, f"'{ch}", line, col, value=int(ch))
            if ch.lower() in "xz":
                return Token(TokenKind.NUMBER, f"'{ch}", line, col, value=0)
            raise LexError(f"bad unbased literal '{ch}", line, col)
        base = _BASE_DIGITS[spec]
        mant: list[str] = []
        while True:
            ch = self._peek()
            if ch == "_" or ch.isalnum():
                # stop at identifiers that are not valid digits in this base
                if ch != "_" and not _is_base_digit(ch, base):
                    break
                mant.append(self._advance())
            else:
                break
        raw = "".join(c for c in mant if c != "_")
        if not raw:
            raise LexError("based literal with no digits", line, col)
        cleaned = raw.lower().replace("x", "0").replace("z", "0")
        value = int(cleaned, base)
        size_txt = str(size) if size is not None else ""
        return Token(
            TokenKind.NUMBER, f"{size_txt}'{spec}{raw}", line, col, value=value
        )

    def _scan_ident(self) -> Token:
        line, col = self.line, self.col
        chars: list[str] = []
        while True:
            ch = self._peek()
            # NB: the explicit emptiness check matters — `"" in "_$"` is True.
            if ch and (ch.isalnum() or ch in self.cfg.ident_extra):
                chars.append(self._advance())
            else:
                break
        return Token(TokenKind.IDENT, "".join(chars), line, col)

    def _scan_extended_ident(self) -> Token:
        """VHDL ``\\name\\`` or Verilog ``\\name<space>`` escaped identifier."""
        line, col = self.line, self.col
        self._advance()  # leading backslash
        chars: list[str] = []
        if self.cfg.vhdl_literals:
            while True:
                if self.pos >= len(self.src):
                    raise LexError("unterminated extended identifier", line, col)
                ch = self._advance()
                if ch == "\\":
                    if self._peek() == "\\":
                        chars.append(self._advance())
                        continue
                    break
                chars.append(ch)
        else:
            while self.pos < len(self.src) and not self._peek().isspace():
                chars.append(self._advance())
        if not chars:
            raise LexError("empty escaped identifier", line, col)
        return Token(TokenKind.IDENT, "".join(chars), line, col)

    def _scan_char_or_tick(self) -> Token:
        """VHDL ``'`` is either a character literal or the attribute tick."""
        line, col = self.line, self.col
        if self._peek(2) == "'" and self._peek(1) != "":
            text = self._peek(1)
            self._advance(3)
            return Token(TokenKind.CHAR, text, line, col)
        self._advance()
        return Token(TokenKind.OP, "'", line, col)

    # -- main loop -----------------------------------------------------------

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.src):
                out.append(Token(TokenKind.EOF, "", self.line, self.col))
                return out
            ch = self._peek()
            if ch == '"':
                out.append(self._scan_string())
            elif ch.isdigit():
                out.append(self._scan_number())
            elif self.cfg.verilog_literals and ch == "'" and (
                self._peek(1).lower() in "sbodh01xz"
            ):
                line, col = self.line, self.col
                out.append(self._scan_verilog_based(None, line, col))
            elif self.cfg.vhdl_literals and ch == "'":
                out.append(self._scan_char_or_tick())
            elif ch == "\\":
                out.append(self._scan_extended_ident())
            elif ch.isalpha() or ch == "_":
                out.append(self._scan_ident())
            elif ch in self.cfg._op_heads:
                line, col = self.line, self.col
                for op in self.cfg.operators:
                    if self._startswith(op):
                        self._advance(len(op))
                        out.append(Token(TokenKind.OP, op, line, col))
                        break
                else:  # pragma: no cover - every op head has a 1-char op
                    raise self._error(f"unexpected character {ch!r}")
            else:
                # Lenient fallback: bodies (which the parsers skip token-wise)
                # may contain operators outside our subset, e.g. VHDL-2008
                # matching operators. Emit them as single-char OP tokens.
                line, col = self.line, self.col
                self._advance()
                out.append(Token(TokenKind.OP, ch, line, col))


def _is_base_digit(ch: str, base: int) -> bool:
    ch = ch.lower()
    if ch in "xz?":
        return True
    try:
        return int(ch, base) < base
    except ValueError:
        return False


def tokenize(source: str, config: LexerConfig) -> list[Token]:
    """Convenience wrapper: lex ``source`` under ``config``."""
    return Lexer(source, config).tokens()
