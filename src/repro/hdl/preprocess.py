"""Verilog preprocessor: ``\\`define``, conditionals, ``\\`include``.

Real Verilog/SV trees (Corundum included) lean on compiler directives; the
lexer alone just skips backtick lines, which silently drops macro-driven
interface declarations.  This pass runs *before* parsing and resolves:

- ``\\`define NAME value`` and simple function-like
  ``\\`define NAME(a, b) ...`` macros, with nested-expansion support and a
  recursion cap;
- ``\\`undef``;
- ``\\`ifdef`` / ``\\`ifndef`` / ``\\`elsif`` / ``\\`else`` / ``\\`endif``,
  arbitrarily nested;
- ``\\`include "file"`` through a caller-provided loader (a dict of
  virtual files or the filesystem), with cycle detection;
- usage expansion ``\\`NAME`` / ``\\`NAME(args)``.

Unknown directives (``\\`timescale``, ``\\`default_nettype`` …) pass
through untouched — the lexer already ignores them.  Comments are
respected: directives inside ``//`` or ``/* */`` are not processed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping

from repro.errors import HdlError

__all__ = ["PreprocessorError", "Macro", "preprocess_verilog"]

_MAX_EXPANSION_DEPTH = 32
_PASSTHROUGH = {
    "timescale", "default_nettype", "resetall", "celldefine", "endcelldefine",
    "line", "pragma", "begin_keywords", "end_keywords",
}


class PreprocessorError(HdlError):
    """Raised on malformed directives, missing includes, or macro loops."""


@dataclass(frozen=True)
class Macro:
    name: str
    params: tuple[str, ...] | None  # None = object-like
    body: str


_DIRECTIVE_RE = re.compile(r"^\s*`(\w+)\s*(.*)$", re.DOTALL)
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def _strip_comments_preserving_strings(text: str) -> str:
    """Replace comments with spaces (for directive scanning only)."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append(text[i : min(j + 1, n)])
            i = j + 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            if j < 0:
                raise PreprocessorError("unterminated block comment")
            out.append(" " * (j + 2 - i))
            i = j + 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _join_continuations(lines: list[str]) -> list[str]:
    out: list[str] = []
    buffer = ""
    for line in lines:
        if line.rstrip().endswith("\\"):
            buffer += line.rstrip()[:-1] + " "
        else:
            out.append(buffer + line)
            buffer = ""
    if buffer:
        out.append(buffer)
    return out


def _parse_define(rest: str) -> Macro:
    m = _IDENT_RE.match(rest.strip())
    if not m:
        raise PreprocessorError(f"malformed `define: {rest!r}")
    name = m.group(0)
    after = rest.strip()[m.end():]
    if after.startswith("("):
        close = after.find(")")
        if close < 0:
            raise PreprocessorError(f"`define {name}: unterminated parameter list")
        params = tuple(
            p.strip() for p in after[1:close].split(",") if p.strip()
        )
        body = after[close + 1:].strip()
        return Macro(name=name, params=params, body=body)
    return Macro(name=name, params=None, body=after.strip())


def _split_args(text: str, start: int) -> tuple[list[str], int]:
    """Parse a balanced macro-argument list starting at ``text[start] == '('``.

    Returns (args, index-after-close-paren).
    """
    assert text[start] == "("
    depth = 0
    args: list[str] = []
    current = ""
    i = start
    while i < len(text):
        ch = text[i]
        if ch == "(":
            depth += 1
            if depth > 1:
                current += ch
        elif ch == ")":
            depth -= 1
            if depth == 0:
                args.append(current.strip())
                return args, i + 1
            current += ch
        elif ch == "," and depth == 1:
            args.append(current.strip())
            current = ""
        else:
            current += ch
        i += 1
    raise PreprocessorError("unterminated macro argument list")


def _expand(text: str, macros: dict[str, Macro], depth: int = 0) -> str:
    if depth > _MAX_EXPANSION_DEPTH:
        raise PreprocessorError("macro expansion too deep (recursive `define?)")
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch != "`":
            out.append(ch)
            i += 1
            continue
        m = _IDENT_RE.match(text, i + 1)
        if not m:
            out.append(ch)
            i += 1
            continue
        name = m.group(0)
        macro = macros.get(name)
        if macro is None:
            if name in _PASSTHROUGH:
                out.append(text[i : m.end()])
                i = m.end()
                continue
            raise PreprocessorError(f"undefined macro `{name}")
        i = m.end()
        if macro.params is not None:
            while i < n and text[i] in " \t":
                i += 1
            if i >= n or text[i] != "(":
                raise PreprocessorError(f"macro `{name} expects arguments")
            args, i = _split_args(text, i)
            if len(args) != len(macro.params):
                raise PreprocessorError(
                    f"macro `{name}: {len(args)} args, expected {len(macro.params)}"
                )
            body = macro.body
            for param, arg in zip(macro.params, args):
                body = re.sub(rf"\b{re.escape(param)}\b", arg, body)
        else:
            body = macro.body
        out.append(_expand(body, macros, depth + 1))
    return "".join(out)


def preprocess_verilog(
    source: str,
    defines: Mapping[str, str] | None = None,
    include_files: Mapping[str, str] | None = None,
    include_dirs: tuple[str, ...] = (),
) -> str:
    """Preprocess ``source``; returns directive-free text (except
    pass-through directives like ``\\`timescale``).

    ``defines`` seeds command-line-style macros; ``include_files`` maps
    include names to contents (virtual filesystem); ``include_dirs`` are
    searched on disk otherwise.
    """
    macros: dict[str, Macro] = {
        name: Macro(name=name, params=None, body=str(value))
        for name, value in (defines or {}).items()
    }
    lines = _process(source, macros, include_files, include_dirs, ())
    return "\n".join(lines)


def _process(
    source: str,
    macros: dict[str, Macro],
    include_files: Mapping[str, str] | None,
    include_dirs: tuple[str, ...],
    _include_stack: tuple[str, ...],
) -> list[str]:
    """Process one file; mutates ``macros`` (includes share the table)."""
    scan = _strip_comments_preserving_strings(source)
    scan_lines = _join_continuations(scan.split("\n"))
    raw_lines = _join_continuations(source.split("\n"))
    if len(scan_lines) != len(raw_lines):  # pragma: no cover - same algorithm
        raise PreprocessorError("internal: comment stripping changed line count")

    out: list[str] = []
    # Conditional stack: (taken_branch_already, currently_active)
    stack: list[tuple[bool, bool]] = []

    def active() -> bool:
        return all(live for _, live in stack)

    for scan_line, raw_line in zip(scan_lines, raw_lines):
        m = _DIRECTIVE_RE.match(scan_line)
        directive = m.group(1) if m else None
        rest = m.group(2).strip() if m else ""

        if directive == "ifdef" or directive == "ifndef":
            name = rest.split()[0] if rest else ""
            defined = name in macros
            cond = defined if directive == "ifdef" else not defined
            stack.append((cond, cond and active()))
            continue
        if directive == "elsif":
            if not stack:
                raise PreprocessorError("`elsif without `ifdef")
            taken, _ = stack.pop()
            name = rest.split()[0] if rest else ""
            cond = (not taken) and (name in macros)
            stack.append((taken or cond, cond and active()))
            continue
        if directive == "else":
            if not stack:
                raise PreprocessorError("`else without `ifdef")
            taken, _ = stack.pop()
            stack.append((True, (not taken) and active()))
            continue
        if directive == "endif":
            if not stack:
                raise PreprocessorError("`endif without `ifdef")
            stack.pop()
            continue

        if not active():
            continue

        if directive == "define":
            macro = _parse_define(rest)
            macros[macro.name] = macro
            continue
        if directive == "undef":
            macros.pop(rest.split()[0] if rest else "", None)
            continue
        if directive == "include":
            name = rest.strip().strip('"<>')
            if name in _include_stack:
                raise PreprocessorError(f"circular include of {name!r}")
            content = None
            if include_files and name in include_files:
                content = include_files[name]
            else:
                for d in include_dirs:
                    candidate = Path(d) / name
                    if candidate.exists():
                        content = candidate.read_text(encoding="utf-8")
                        break
            if content is None:
                raise PreprocessorError(f"cannot resolve `include {name!r}")
            # The include shares this file's macro table, so its `defines
            # are visible to the rest of the includer (the Verilog rule).
            out.extend(
                _process(
                    content, macros, include_files, include_dirs,
                    _include_stack + (name,),
                )
            )
            continue
        if directive in _PASSTHROUGH:
            out.append(raw_line)
            continue

        # Ordinary line: expand macro *usages* (skip inside line comments is
        # handled by operating on the raw line but guarding with the scan
        # line's backtick positions).
        if "`" in scan_line:
            out.append(_expand(raw_line, macros))
        else:
            out.append(raw_line)

    if stack:
        raise PreprocessorError("unterminated `ifdef block")
    return out
