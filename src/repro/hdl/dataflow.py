"""Parameter dataflow: body scanning and the dependency graph.

The interface parsers deliberately skip module bodies, so by themselves
they can only say how a parameter shapes the *interface*.  Dovado's DSE
wants the next question: where does each top-level knob actually *flow*?
Into a port range, a generate condition, a child instance's generic, the
body at all?  This module answers it in two layers:

1. :func:`scan_bodies` — a tolerant token-level pass over module /
   architecture bodies (the same Lexer/Cursor machinery the hierarchy
   extractor uses) that collects, per design unit:

   - every identifier referenced in the body (liveness evidence),
   - ``if (...)``-generate conditions as parsed expressions,
   - child-instance generic bindings (``#(.W(DEPTH*2))`` /
     ``generic map (W => DEPTH*2)``) as parsed expressions.

   The scan is best-effort by design: anything it cannot parse degrades
   to plain identifier collection, which *over*-approximates liveness —
   the safe direction for a dead-parameter warning.

2. :class:`ParameterDependencyGraph` — a directed graph from parameters
   (including localparams) to the sinks they reach: port ranges, generate
   conditions, child generics, and body references, with flows threaded
   transitively through localparam defaults.  ``DEPTH → ADDR_DEPTH →
   port 'raddr'`` makes ``DEPTH`` interface-live even though no port
   range names it directly.

The D-series rules (:mod:`repro.analysis.dataflow_rules`) consume both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import networkx as nx

from repro.errors import ParseError
from repro.hdl import expr as E
from repro.hdl.ast import HdlLanguage, Module
from repro.hdl.cursor import Cursor
from repro.hdl.hierarchy import _VERILOG_STMT_WORDS
from repro.hdl.lexer import Lexer, TokenKind, VERILOG_LEX, VHDL_LEX
from repro.hdl.verilog_parser import VerilogParser
from repro.hdl.vhdl_parser import VhdlParser

__all__ = [
    "GenerateCondition",
    "GenericBinding",
    "BodyScan",
    "scan_bodies",
    "scan_for",
    "Sink",
    "ParameterDependencyGraph",
    "build_dependency_graph",
]


@dataclass(frozen=True)
class GenerateCondition:
    """One conditional-generate guard found in a module body."""

    module: str
    condition: E.Expr
    line: int


@dataclass(frozen=True)
class GenericBinding:
    """One generic/parameter override on a child instantiation.

    ``generic`` is the formal name for named associations, or ``"#<i>"``
    for positional ones (the child's formal list is not known here).
    """

    module: str
    target: str
    label: str
    generic: str
    value: E.Expr
    line: int


@dataclass(frozen=True)
class BodyScan:
    """Everything one design unit's body revealed about parameter use."""

    module: str
    generate_conditions: tuple[GenerateCondition, ...] = ()
    generic_bindings: tuple[GenericBinding, ...] = ()
    body_idents: frozenset[str] = frozenset()  # lowercase


class _ScanBuilder:
    """Mutable accumulator for one unit while the token scan runs."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.conditions: list[GenerateCondition] = []
        self.bindings: list[GenericBinding] = []
        self.idents: set[str] = set()

    def note_expr(self, expr: E.Expr) -> None:
        self.idents.update(n.lower() for n in E.free_names(expr))

    def finish(self) -> BodyScan:
        return BodyScan(
            module=self.module,
            generate_conditions=tuple(self.conditions),
            generic_bindings=tuple(self.bindings),
            body_idents=frozenset(self.idents),
        )


# ---------------------------------------------------------------------------
# Verilog / SystemVerilog body scan
# ---------------------------------------------------------------------------

_V_PROC_OPENERS = {"always", "always_ff", "always_comb", "always_latch",
                   "initial", "final"}
# Words that are structure, not references — excluded from liveness evidence.
_V_NOISE = (
    _VERILOG_STMT_WORDS
    | _V_PROC_OPENERS
    | {"endmodule", "join", "join_any", "join_none", "fork", "iff", "inside",
       "automatic", "static", "edge", "or", "and", "not", "macromodule",
       "covergroup", "endgroup", "clocking", "endclocking", "interface"}
)


def _collect_group(cur: Cursor, builder: _ScanBuilder) -> bool:
    """Consume a parenthesized group (opener already consumed), collecting
    identifier references inside it.  Returns False at EOF."""
    depth = 1
    while depth and not cur.at_eof():
        tok = cur.next()
        if tok.is_op("("):
            depth += 1
        elif tok.is_op(")"):
            depth -= 1
        elif tok.kind == TokenKind.IDENT and tok.text.lower() not in _V_NOISE:
            builder.idents.add(tok.text.lower())
    return depth == 0


def _parse_verilog_bindings(cur: Cursor) -> list[tuple[str, E.Expr]]:
    """Parse ``.NAME(expr), ...`` / positional exprs after ``#(`` (consumed).

    Raises ParseError when the list is not expression-shaped; the caller
    rewinds and degrades to plain scanning.
    """
    out: list[tuple[str, E.Expr]] = []
    if cur.peek().is_op(")"):
        cur.next()
        return out
    index = 0
    while True:
        if cur.accept_op("."):
            formal = cur.expect_ident("parameter name").text
            cur.expect_op("(")
            if cur.peek().is_op(")"):  # explicitly open binding: .W()
                cur.next()
            else:
                value = VerilogParser.expression_from(cur)
                cur.expect_op(")")
                out.append((formal, value))
        else:
            out.append((f"#{index}", VerilogParser.expression_from(cur)))
        index += 1
        if cur.accept_op(","):
            continue
        cur.expect_op(")")
        return out


def _scan_verilog_module(cur: Cursor, name: str, line: int) -> BodyScan:
    """Scan one module body; the header has NOT been consumed yet."""
    builder = _ScanBuilder(name)
    # Skip the header (its parameter/port expressions are in the parsed
    # AST already; counting them here would mark every parameter live).
    cur.skip_until_op(";")
    cur.accept_op(";")
    proc_depth = 0       # inside an always/initial begin..end region
    pending_proc = False  # saw always/initial, its statement not yet open
    func_depth = 0       # inside function/task (procedural by definition)
    while not cur.at_eof():
        tok = cur.next()
        if tok.kind != TokenKind.IDENT:
            if tok.is_op(";") and proc_depth == 0:
                pending_proc = False  # single-statement always ended
            continue
        word = tok.text.lower()
        if word == "endmodule":
            cur.accept_op(":")  # endmodule : name
            if cur.peek().kind == TokenKind.IDENT:
                cur.next()
            break
        if word in _V_PROC_OPENERS:
            pending_proc = True
            continue
        if word in ("function", "task"):
            func_depth += 1
            continue
        if word in ("endfunction", "endtask"):
            func_depth = max(0, func_depth - 1)
            continue
        if word == "begin":
            if pending_proc:
                pending_proc = False
                proc_depth += 1
            elif proc_depth:
                proc_depth += 1
            continue
        if word == "end":
            if proc_depth:
                proc_depth -= 1
            continue
        if word in ("parameter", "localparam"):
            # Declarations, not uses: names and default expressions are in
            # the parsed AST; the dependency graph threads them from there.
            cur.skip_until_op(";")
            cur.accept_op(";")
            continue
        in_procedural = proc_depth > 0 or pending_proc or func_depth > 0
        if word == "if" and not in_procedural:
            # Structural (generate) conditional.
            mark = cur.mark()
            if cur.accept_op("("):
                try:
                    cond = VerilogParser.expression_from(cur)
                    if cur.accept_op(")"):
                        builder.conditions.append(
                            GenerateCondition(name, cond, tok.line)
                        )
                        builder.note_expr(cond)
                        continue
                except ParseError:
                    pass
                cur.rewind(mark)
            continue
        if word in _V_NOISE:
            continue
        # Candidate instantiation:  type [#(...)] label [range] ( ... ) ;
        if not in_procedural:
            mark = cur.mark()
            bindings: list[tuple[str, E.Expr]] = []
            matched = False
            try:
                if cur.accept_op("#"):
                    if cur.accept_op("("):
                        bindings = _parse_verilog_bindings(cur)
                    else:
                        raise ParseError("not a parameterized instance")
                label_tok = cur.peek()
                if (
                    label_tok.kind == TokenKind.IDENT
                    and label_tok.text.lower() not in _V_NOISE
                ):
                    cur.next()
                    if cur.accept_op("["):  # instance array range
                        depth = 1
                        while depth and not cur.at_eof():
                            t = cur.next()
                            if t.is_op("["):
                                depth += 1
                            elif t.is_op("]"):
                                depth -= 1
                            elif t.kind == TokenKind.IDENT:
                                builder.idents.add(t.text.lower())
                    if cur.accept_op("(") and _collect_group(cur, builder):
                        if cur.accept_op(";"):
                            matched = True
            except ParseError:
                matched = False
            if matched:
                for formal, value in bindings:
                    builder.bindings.append(
                        GenericBinding(
                            module=name,
                            target=tok.text,
                            label=label_tok.text,
                            generic=formal,
                            value=value,
                            line=tok.line,
                        )
                    )
                    builder.note_expr(value)
                continue
            cur.rewind(mark)
        builder.idents.add(word)
    return builder.finish()


def _scan_verilog(source: str) -> list[BodyScan]:
    cur = Cursor(Lexer(source, VERILOG_LEX).tokens())
    scans: list[BodyScan] = []
    while not cur.at_eof():
        tok = cur.next()
        if tok.is_ident("module", "macromodule"):
            name_tok = cur.peek()
            if name_tok.kind != TokenKind.IDENT:
                continue
            cur.next()
            scans.append(_scan_verilog_module(cur, name_tok.text, tok.line))
    return scans


# ---------------------------------------------------------------------------
# VHDL body scan
# ---------------------------------------------------------------------------

_VHDL_NOISE = {
    "is", "begin", "end", "signal", "variable", "constant", "process",
    "architecture", "of", "if", "then", "else", "elsif", "generate", "for",
    "in", "to", "downto", "port", "map", "generic", "entity", "component",
    "others", "when", "case", "loop", "wait", "until", "function",
    "procedure", "type", "subtype", "attribute", "use", "library", "all",
    "not", "and", "or", "nand", "nor", "xor", "xnor", "mod", "rem", "sll",
    "srl", "sla", "sra", "abs", "range", "array", "record", "block", "on",
    "after", "report", "severity", "null", "exit", "next", "return", "with",
    "select", "alias", "file", "shared", "new", "out", "inout", "buffer",
    "true", "false", "event", "rising_edge", "falling_edge", "std_logic",
    "std_logic_vector", "unsigned", "signed", "integer", "natural",
    "positive", "boolean", "work",
}


def _vhdl_collect_ident(builder: _ScanBuilder, text: str) -> None:
    lowered = text.lower()
    if lowered not in _VHDL_NOISE:
        builder.idents.add(lowered)


def _parse_vhdl_generic_map(
    cur: Cursor, builder: _ScanBuilder, target: str, label: str, line: int
) -> None:
    """Parse ``( formal => actual, ... )`` after ``generic map`` (the open
    paren already consumed).  Tolerant: an unparseable association is
    skipped to the next separator, its identifiers still collected."""
    index = 0
    while not cur.at_eof():
        if cur.accept_op(")"):
            return
        mark = cur.mark()
        formal = f"#{index}"
        if (
            cur.peek().kind == TokenKind.IDENT
            and cur.peek(1).is_op("=>")
        ):
            formal = cur.next().text
            cur.next()  # =>
        try:
            value = VhdlParser.expression_from(cur)
        except ParseError:
            cur.rewind(mark)
            depth = 0
            while not cur.at_eof():
                t = cur.peek()
                if t.is_op("("):
                    depth += 1
                elif t.is_op(")"):
                    if depth == 0:
                        break
                    depth -= 1
                elif depth == 0 and t.is_op(","):
                    break
                if t.kind == TokenKind.IDENT:
                    _vhdl_collect_ident(builder, t.text)
                cur.next()
        else:
            builder.bindings.append(
                GenericBinding(
                    module=builder.module,
                    target=target,
                    label=label,
                    generic=formal,
                    value=value,
                    line=line,
                )
            )
            builder.note_expr(value)
        index += 1
        if not cur.accept_op(","):
            cur.accept_op(")")
            return


def _scan_vhdl_statement(
    cur: Cursor, builder: _ScanBuilder, target: str, label: str, line: int
) -> None:
    """Scan one concurrent statement after ``label : target`` up to ``;``,
    harvesting ``generic map`` associations and identifier references."""
    depth = 0
    while not cur.at_eof():
        tok = cur.peek()
        if tok.is_op("("):
            depth += 1
            cur.next()
            continue
        if tok.is_op(")"):
            if depth == 0:
                return
            depth -= 1
            cur.next()
            continue
        if depth == 0 and tok.is_op(";"):
            cur.next()
            return
        if (
            depth == 0
            and tok.is_ident("generic")
            and cur.peek(1).is_ident("map")
            and cur.peek(2).is_op("(")
        ):
            cur.next()
            cur.next()
            cur.next()
            _parse_vhdl_generic_map(cur, builder, target, label, line)
            continue
        if tok.kind == TokenKind.IDENT:
            _vhdl_collect_ident(builder, tok.text)
        cur.next()


def _scan_vhdl(source: str) -> list[BodyScan]:
    cur = Cursor(Lexer(source, VHDL_LEX).tokens())
    scans: list[BodyScan] = []
    builder: Optional[_ScanBuilder] = None
    while not cur.at_eof():
        tok = cur.next()
        if tok.is_ident("architecture"):
            if cur.peek().kind != TokenKind.IDENT:
                continue
            cur.next()  # architecture name
            if cur.accept_kw("of"):
                if builder is not None:
                    scans.append(builder.finish())
                    builder = None
                entity_tok = cur.peek()
                if entity_tok.kind == TokenKind.IDENT:
                    cur.next()
                    builder = _ScanBuilder(entity_tok.text)
                cur.accept_kw("is")
            continue
        if tok.is_ident("end"):
            if cur.peek().is_ident("architecture") and builder is not None:
                scans.append(builder.finish())
                builder = None
            continue
        if builder is None or tok.kind != TokenKind.IDENT:
            continue
        # Conditional generate guards, labelled or chained:
        #   label : if COND generate ... elsif COND generate
        if tok.is_ident("elsif"):
            mark = cur.mark()
            try:
                cond = VhdlParser.expression_from(cur)
                if cur.accept_kw("generate"):
                    builder.conditions.append(
                        GenerateCondition(builder.module, cond, tok.line)
                    )
                    builder.note_expr(cond)
                    continue
            except ParseError:
                pass
            cur.rewind(mark)
            continue
        if cur.peek().is_op(":"):
            label = tok.text
            cur.next()  # ':'
            nxt = cur.peek()
            if nxt.is_ident("if"):
                cur.next()
                mark = cur.mark()
                try:
                    cond = VhdlParser.expression_from(cur)
                    if cur.accept_kw("generate"):
                        builder.conditions.append(
                            GenerateCondition(builder.module, cond, nxt.line)
                        )
                        builder.note_expr(cond)
                        continue
                except ParseError:
                    pass
                cur.rewind(mark)
                continue
            if nxt.is_ident("entity"):
                cur.next()
                if cur.peek().kind != TokenKind.IDENT:
                    continue
                target = cur.next().text
                while cur.accept_op("."):
                    if cur.peek().kind == TokenKind.IDENT:
                        target = cur.next().text
                    else:
                        break
                _scan_vhdl_statement(cur, builder, target, label, tok.line)
                continue
            if nxt.is_ident("component"):
                cur.next()
                if cur.peek().kind != TokenKind.IDENT:
                    continue
                target = cur.next().text
                _scan_vhdl_statement(cur, builder, target, label, tok.line)
                continue
            if (
                nxt.kind == TokenKind.IDENT
                and nxt.text.lower() not in _VHDL_NOISE
            ):
                target = cur.next().text
                _vhdl_collect_ident(builder, target)
                _scan_vhdl_statement(cur, builder, target, label, tok.line)
                continue
            continue
        _vhdl_collect_ident(builder, tok.text)
    if builder is not None:
        scans.append(builder.finish())
    return scans


# ---------------------------------------------------------------------------
# public scan entry points
# ---------------------------------------------------------------------------


def scan_bodies(source: str, language: HdlLanguage | str) -> tuple[BodyScan, ...]:
    """Scan every design unit body in ``source`` for parameter uses."""
    language = HdlLanguage(language)
    if language == HdlLanguage.VHDL:
        return tuple(_scan_vhdl(source))
    return tuple(_scan_verilog(source))


def scan_for(
    module_name: str, sources: Iterable[tuple[str, str]]
) -> Optional[BodyScan]:
    """Find the body scan of ``module_name`` across ``(text, language)``
    source pairs; None when no body for that unit is present."""
    wanted = module_name.lower()
    for text, language in sources:
        try:
            for scan in scan_bodies(text, language):
                if scan.module.lower() == wanted:
                    return scan
        except Exception:  # tolerate unlexable companion sources
            continue
    return None


# ---------------------------------------------------------------------------
# the dependency graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Sink:
    """A place a parameter's value flows into."""

    kind: str      # "port-range" | "generate-if" | "child-generic" | "body"
    name: str      # port name / "target.generic" / "" for body
    line: int = 0

    def __str__(self) -> str:
        if self.kind == "body":
            return "module body"
        return f"{self.kind} {self.name}"


def _param_node(name: str) -> str:
    return f"param:{name.lower()}"


@dataclass
class ParameterDependencyGraph:
    """Directed parameter→sink flow graph for one module.

    Parameter nodes (free parameters *and* localparams) connect to the
    sinks their values reach; localparam default expressions thread flows
    transitively, so reachability answers "does this knob matter
    anywhere" in one query.
    """

    module: Module
    scan: Optional[BodyScan] = None
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    _sinks: dict[str, Sink] = field(default_factory=dict)

    def __post_init__(self) -> None:
        params = {p.name.lower(): p for p in self.module.parameters}

        def connect(expr: E.Expr, sink_id: str, sink: Sink) -> None:
            refs = [n.lower() for n in E.free_names(expr)]
            if not any(r in params for r in refs):
                return
            if sink_id not in self._sinks:
                self._sinks[sink_id] = sink
                self.graph.add_node(sink_id)
            for ref in refs:
                if ref in params:
                    self.graph.add_edge(_param_node(ref), sink_id)

        for p in self.module.parameters:
            self.graph.add_node(_param_node(p.name))
            if p.default is not None:
                for ref in E.free_names(p.default):
                    if ref.lower() in params:
                        self.graph.add_edge(
                            _param_node(ref), _param_node(p.name)
                        )
        for port in self.module.ports:
            for bound in (port.ptype.high, port.ptype.low):
                if bound is not None:
                    connect(
                        bound,
                        f"port:{port.name.lower()}",
                        Sink("port-range", port.name, port.line),
                    )
        if self.scan is not None:
            for i, cond in enumerate(self.scan.generate_conditions):
                connect(
                    cond.condition,
                    f"gen:{i}",
                    Sink("generate-if", cond.condition.render(), cond.line),
                )
            for i, binding in enumerate(self.scan.generic_bindings):
                connect(
                    binding.value,
                    f"child:{i}",
                    Sink(
                        "child-generic",
                        f"{binding.target}.{binding.generic}",
                        binding.line,
                    ),
                )
            body_id = "body:"
            for name, p in params.items():
                if name in self.scan.body_idents:
                    if body_id not in self._sinks:
                        self._sinks[body_id] = Sink("body", "")
                        self.graph.add_node(body_id)
                    self.graph.add_edge(_param_node(p.name), body_id)

    # ------------------------------------------------------------------

    def flows(self, param: str) -> tuple[Sink, ...]:
        """Every sink ``param`` reaches, directly or through localparams."""
        node = _param_node(param)
        if node not in self.graph:
            return ()
        reached = nx.descendants(self.graph, node)
        out = [self._sinks[n] for n in reached if n in self._sinks]
        return tuple(sorted(out, key=lambda s: (s.kind, s.name, s.line)))

    def is_live(self, param: str) -> bool:
        """Does ``param`` reach any sink at all?"""
        return bool(self.flows(param))

    def dead_parameters(self) -> tuple[str, ...]:
        """Free, integer-like parameters that reach no sink.

        Meaningful only when a body scan was available — without one, a
        parameter used exclusively in the body would be indistinguishable
        from a dead one, so this returns empty rather than guess.
        """
        if self.scan is None:
            return ()
        out = []
        for p in self.module.free_parameters():
            if p.is_integer_like() and not self.is_live(p.name):
                out.append(p.name)
        return tuple(out)

    def describe(self, param: str) -> str:
        """One-line human rendering of a parameter's flows."""
        sinks = self.flows(param)
        if not sinks:
            return f"{param}: no flows (dead)"
        return f"{param}: " + ", ".join(str(s) for s in sinks)


def build_dependency_graph(
    module: Module,
    sources: Sequence[tuple[str, str]] = (),
) -> ParameterDependencyGraph:
    """Convenience constructor: find the module's body scan, then build."""
    scan = scan_for(module.name, sources) if sources else None
    return ParameterDependencyGraph(module=module, scan=scan)
