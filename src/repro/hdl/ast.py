"""AST node types for parsed HDL interfaces.

Only the interface subset matters to Dovado: a :class:`Module` records the
unit's name, its parameters/generics, its ports, and its context clauses
(VHDL libraries / SV package imports).  Bodies are skipped by the parsers
(they scan to the matching ``end``), so these nodes carry no statements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.hdl import expr as E

__all__ = [
    "HdlLanguage",
    "Direction",
    "PortType",
    "Parameter",
    "Port",
    "Module",
    "SourceUnit",
]


class HdlLanguage(str, enum.Enum):
    VHDL = "vhdl"
    VERILOG = "verilog"
    SYSTEMVERILOG = "systemverilog"

    def __str__(self) -> str:
        return self.value


class Direction(str, enum.Enum):
    IN = "in"
    OUT = "out"
    INOUT = "inout"
    BUFFER = "buffer"  # VHDL only

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class PortType:
    """A port's type: base name plus an optional vector range.

    ``high``/``low`` are constant expressions (possibly referencing
    parameters).  ``descending`` records ``downto``/``[high:low]`` order vs
    ``to``.  A scalar port has ``high is None``.
    """

    base: str  # std_logic, std_logic_vector, wire, logic, integer, ...
    high: Optional[E.Expr] = None
    low: Optional[E.Expr] = None
    descending: bool = True

    def is_vector(self) -> bool:
        return self.high is not None

    def width(self, env: dict[str, int] | None = None) -> int:
        """Concrete bit width under parameter environment ``env``."""
        if self.high is None:
            return 1
        hi = E.evaluate(self.high, env)
        lo = E.evaluate(self.low, env) if self.low is not None else 0
        return abs(hi - lo) + 1

    def render_vhdl(self) -> str:
        if self.high is None:
            return self.base
        direction = "downto" if self.descending else "to"
        lo = self.low.render() if self.low is not None else "0"
        return f"{self.base}({self.high.render()} {direction} {lo})"

    def render_verilog(self) -> str:
        if self.high is None:
            return self.base
        lo = self.low.render() if self.low is not None else "0"
        return f"{self.base} [{self.high.render()}:{lo}]"


@dataclass(frozen=True)
class Parameter:
    """A free knob of the module: VHDL generic or (System)Verilog parameter.

    ``local`` marks ``localparam``/deferred constants, which are *not* free
    design-space dimensions; the frontend still records them so width
    expressions referencing them can be evaluated.
    """

    name: str
    ptype: str = "integer"  # integer, natural, positive, boolean, string, int, ...
    default: Optional[E.Expr] = None
    local: bool = False
    line: int = 0

    def default_value(self, env: dict[str, int] | None = None) -> Optional[int]:
        """Evaluate the default, or None when absent/not integer-evaluable."""
        if self.default is None:
            return None
        try:
            return E.evaluate(self.default, env)
        except E.EvalError:
            return None

    def is_integer_like(self) -> bool:
        """True when the parameter is a legal integer DSE dimension.

        The paper restricts DSE to integer parameters; booleans are treated
        as integers over {0, 1}.
        """
        return self.ptype.lower() in (
            "integer", "natural", "positive", "int", "int unsigned", "integer_vector",
            "boolean", "bit", "logic", "shortint", "longint", "byte", "parameter",
            "time", "unsigned", "signed",
        )

    def is_boolean(self) -> bool:
        return self.ptype.lower() in ("boolean", "bit")


@dataclass(frozen=True)
class Port:
    name: str
    direction: Direction
    ptype: PortType
    line: int = 0

    def width(self, env: dict[str, int] | None = None) -> int:
        return self.ptype.width(env)


# Names commonly given to clock ports, in priority order; boxing uses this to
# pick the clock for the generated constraint.
_CLOCK_NAMES = ("clk", "clock", "clk_i", "i_clk", "aclk", "clk_in", "sys_clk", "wclk")


@dataclass(frozen=True)
class Module:
    """A parsed design unit interface (VHDL entity or Verilog module)."""

    name: str
    language: HdlLanguage
    parameters: tuple[Parameter, ...] = field(default_factory=tuple)
    ports: tuple[Port, ...] = field(default_factory=tuple)
    libraries: tuple[str, ...] = field(default_factory=tuple)   # VHDL `library X;`
    use_clauses: tuple[str, ...] = field(default_factory=tuple) # VHDL `use X.Y.all;` / SV imports
    architecture: Optional[str] = None  # VHDL architecture name if seen
    line: int = 0

    def free_parameters(self) -> tuple[Parameter, ...]:
        """Parameters usable as DSE dimensions (non-local)."""
        return tuple(p for p in self.parameters if not p.local)

    def parameter(self, name: str) -> Parameter:
        for p in self.parameters:
            if p.name.lower() == name.lower():
                return p
        raise KeyError(f"module {self.name!r} has no parameter {name!r}")

    def port(self, name: str) -> Port:
        for p in self.ports:
            if p.name.lower() == name.lower():
                return p
        raise KeyError(f"module {self.name!r} has no port {name!r}")

    def default_environment(self) -> dict[str, int]:
        """Parameter defaults, resolved in declaration order.

        Later defaults may reference earlier parameters (``ADDR_WIDTH =
        clog2(DEPTH)``), so evaluation threads the growing environment.
        Non-evaluable defaults are skipped.
        """
        env: dict[str, int] = {}
        for p in self.parameters:
            v = p.default_value(env)
            if v is not None:
                env[p.name] = v
        return env

    def clock_ports(self) -> tuple[Port, ...]:
        """Input scalar ports that look like clocks, best candidates first."""
        found: list[tuple[int, Port]] = []
        for port in self.ports:
            if port.direction != Direction.IN or port.ptype.is_vector():
                continue
            lowered = port.name.lower()
            for rank, pattern in enumerate(_CLOCK_NAMES):
                if lowered == pattern:
                    found.append((rank, port))
                    break
            else:
                if "clk" in lowered or "clock" in lowered:
                    found.append((len(_CLOCK_NAMES), port))
        found.sort(key=lambda rp: rp[0])
        return tuple(p for _, p in found)

    def total_port_bits(self, env: dict[str, int] | None = None) -> int:
        full_env = dict(self.default_environment())
        if env:
            full_env.update(env)
        return sum(p.width(full_env) for p in self.ports)


@dataclass(frozen=True)
class SourceUnit:
    """One parsed source file: its language and the modules it declares."""

    path: str
    language: HdlLanguage
    modules: tuple[Module, ...]

    def module(self, name: str) -> Module:
        for m in self.modules:
            if m.name.lower() == name.lower():
                return m
        raise KeyError(f"{self.path}: no module {name!r}")
