"""HDL frontend: lexers, parsers, and ASTs for VHDL and Verilog/SystemVerilog.

The paper parses RTL with ANTLR-generated VHDL-2008 and Verilog/SV parsers,
consuming only the *declaration* subset: module/entity names, parameter
(generic) declarations with defaults, port declarations in their many
styles, and library/use context.  This package provides hand-written
equivalents:

- :mod:`repro.hdl.lexer` — a configurable lexer covering both dialects'
  comments, literals, and identifier forms;
- :mod:`repro.hdl.expr` — a shared constant-expression AST + evaluator
  (parameter arithmetic, ``clog2``, ranges such as ``WIDTH-1 downto 0``);
- :mod:`repro.hdl.vhdl_parser` / :mod:`repro.hdl.verilog_parser` —
  recursive-descent parsers for entity/module interfaces;
- :mod:`repro.hdl.frontend` — extension-based dialect dispatch and source
  collections;
- :mod:`repro.hdl.validate` — the lint pass the paper calls a "first formal
  verification".
"""

from repro.hdl.ast import (
    Direction,
    HdlLanguage,
    Module,
    Parameter,
    Port,
    PortType,
    SourceUnit,
)
from repro.hdl.frontend import parse_source, parse_file, SourceCollection
from repro.hdl.validate import validate_module, lint_module
from repro.hdl.hierarchy import build_hierarchy, extract_instances
from repro.hdl.preprocess import preprocess_verilog

__all__ = [
    "Direction",
    "HdlLanguage",
    "Module",
    "Parameter",
    "Port",
    "PortType",
    "SourceUnit",
    "parse_source",
    "parse_file",
    "SourceCollection",
    "validate_module",
    "lint_module",
    "build_hierarchy",
    "extract_instances",
    "preprocess_verilog",
]
