"""Recursive-descent parser for the VHDL-2008 declaration subset.

Parses the constructs Dovado needs from a VHDL file:

- ``library`` and ``use`` context clauses (attached to following entities);
- ``entity NAME is [generic (...);] [port (...);] end [entity] [NAME];``
  with the full variety of generic/port declaration styles — grouped
  identifier lists, per-item or trailing semicolons, defaults via ``:=``,
  constrained vector types, ``integer range A to B`` subtypes;
- ``architecture ARCH of NAME is ... end`` — only the architecture name is
  recorded; bodies are skipped token-wise;
- ``package``/``package body``/``configuration`` units are skipped whole.

Everything else (processes, signals, concurrent statements) is outside the
interface subset and deliberately ignored, mirroring the paper's use of the
ANTLR grammar purely for interface extraction.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ParseError
from repro.hdl import expr as E
from repro.hdl.ast import Direction, HdlLanguage, Module, Parameter, Port, PortType
from repro.hdl.cursor import Cursor
from repro.hdl.lexer import Lexer, Token, TokenKind, VHDL_LEX

__all__ = ["parse_vhdl", "VhdlParser"]

# VHDL operator precedence for constant expressions, low to high.
_BINARY_LEVELS: tuple[tuple[str, ...], ...] = (
    ("or", "nor", "xor", "xnor"),
    ("and", "nand"),
    ("=", "/=", "<", "<=", ">", ">="),
    ("sll", "srl", "sla", "sra"),
    ("+", "-", "&"),
    ("*", "/", "mod", "rem"),
)
_WORD_OPS = {"or", "nor", "xor", "xnor", "and", "nand", "sll", "srl", "sla", "sra",
             "mod", "rem", "not"}

_DIRECTIONS = {
    "in": Direction.IN,
    "out": Direction.OUT,
    "inout": Direction.INOUT,
    "buffer": Direction.BUFFER,
}

# Keywords that may not start an expression primary; used to stop expression
# parsing at structural boundaries like `downto` without consuming them.
_EXPR_STOP_WORDS = {"downto", "to", "range", "generic", "port", "end", "is", "of",
                    "others", "when", "else", "open"}


class VhdlParser:
    """Parser over a lexed VHDL token stream."""

    def __init__(self, source: str) -> None:
        self.cur = Cursor(Lexer(source, VHDL_LEX).tokens())
        self._libraries: list[str] = []
        self._uses: list[str] = []

    # ------------------------------------------------------------------
    # design file
    # ------------------------------------------------------------------

    def parse(self) -> list[Module]:
        """Parse the whole file; returns the entities found, in order."""
        modules: list[Module] = []
        arch_of: dict[str, str] = {}
        while not self.cur.at_eof():
            tok = self.cur.peek()
            if tok.is_ident("library"):
                self._parse_library()
            elif tok.is_ident("use"):
                self._parse_use()
            elif tok.is_ident("context"):
                self._skip_statement()
            elif tok.is_ident("entity"):
                modules.append(self._parse_entity())
            elif tok.is_ident("architecture"):
                name, of = self._parse_architecture_header_and_skip()
                arch_of.setdefault(of.lower(), name)
            elif tok.is_ident("package", "configuration"):
                self._skip_design_unit(tok.text.lower())
            else:
                # Stray token at file level (e.g. tool pragmas): skip it.
                self.cur.next()
        if arch_of:
            modules = [
                dataclasses.replace(
                    m, architecture=arch_of.get(m.name.lower(), m.architecture)
                )
                for m in modules
            ]
        return modules

    # ------------------------------------------------------------------
    # context clauses
    # ------------------------------------------------------------------

    def _parse_library(self) -> None:
        self.cur.expect_kw("library")
        while True:
            name = self.cur.expect_ident("library name").text
            self._libraries.append(name)
            if not self.cur.accept_op(","):
                break
        self.cur.expect_op(";")

    def _parse_use(self) -> None:
        self.cur.expect_kw("use")
        parts: list[str] = [self.cur.expect_ident("library name").text]
        while self.cur.accept_op("."):
            nxt = self.cur.peek()
            if nxt.is_ident("all"):
                self.cur.next()
                parts.append("all")
                break
            parts.append(self.cur.expect_ident("selected name").text)
        self.cur.expect_op(";")
        self._uses.append(".".join(parts))

    # ------------------------------------------------------------------
    # entity
    # ------------------------------------------------------------------

    def _parse_entity(self) -> Module:
        ent_tok = self.cur.expect_kw("entity")
        name = self.cur.expect_ident("entity name").text
        self.cur.expect_kw("is")
        parameters: tuple[Parameter, ...] = ()
        ports: tuple[Port, ...] = ()
        if self.cur.peek().is_ident("generic"):
            parameters = self._parse_generic_clause()
        if self.cur.peek().is_ident("port"):
            ports = self._parse_port_clause()
        # entity declarative part / statements are rare; skip to `end`.
        while not self.cur.at_eof() and not self.cur.peek().is_ident("end"):
            self.cur.next()
        self.cur.expect_kw("end")
        self.cur.accept_kw("entity")
        if self.cur.peek().kind == TokenKind.IDENT:
            closing = self.cur.next()
            if closing.text.lower() != name.lower():
                raise ParseError(
                    f"entity {name!r} closed by {closing.text!r}",
                    closing.line,
                    closing.column,
                )
        self.cur.expect_op(";")
        module = Module(
            name=name,
            language=HdlLanguage.VHDL,
            parameters=parameters,
            ports=ports,
            libraries=tuple(self._libraries),
            use_clauses=tuple(self._uses),
            line=ent_tok.line,
        )
        return module

    def _parse_generic_clause(self) -> tuple[Parameter, ...]:
        self.cur.expect_kw("generic")
        self.cur.expect_op("(")
        params: list[Parameter] = []
        while not self.cur.peek().is_op(")"):
            params.extend(self._parse_generic_item())
            if not self.cur.accept_op(";"):
                break
        self.cur.expect_op(")")
        self.cur.expect_op(";")
        return tuple(params)

    def _parse_generic_item(self) -> list[Parameter]:
        # [constant] name {, name} : type [:= default]
        self.cur.accept_kw("constant")
        names: list[Token] = [self.cur.expect_ident("generic name")]
        while self.cur.accept_op(","):
            names.append(self.cur.expect_ident("generic name"))
        self.cur.expect_op(":")
        ptype = self._parse_subtype_name()
        default: E.Expr | None = None
        if self.cur.accept_op(":="):
            default = self._parse_expression()
        return [
            Parameter(name=t.text, ptype=ptype, default=default, line=t.line)
            for t in names
        ]

    def _parse_subtype_name(self) -> str:
        """Parse a generic's subtype indication, returning its base-name text.

        Handles ``natural``, ``integer range 0 to 15``, ``std_logic_vector(7
        downto 0)`` (constraint discarded — generics used in DSE are
        integer-like anyway), and selected names like ``work.pkg.my_type``.
        """
        base = self.cur.expect_ident("type name").text
        while self.cur.accept_op("."):
            base = self.cur.expect_ident("selected type name").text
        if self.cur.peek().is_ident("range"):
            self.cur.next()
            self._parse_expression()
            self.cur.expect_kw("to", "downto")
            self._parse_expression()
        elif self.cur.peek().is_op("("):
            # constrained composite type: skip the constraint
            self.cur.next()
            self.cur.skip_until_op(")")
            self.cur.expect_op(")")
        return base

    def _parse_port_clause(self) -> tuple[Port, ...]:
        self.cur.expect_kw("port")
        self.cur.expect_op("(")
        ports: list[Port] = []
        while not self.cur.peek().is_op(")"):
            ports.extend(self._parse_port_item())
            if not self.cur.accept_op(";"):
                break
        self.cur.expect_op(")")
        self.cur.expect_op(";")
        return tuple(ports)

    def _parse_port_item(self) -> list[Port]:
        # [signal] name {, name} : [direction] subtype [:= default]
        self.cur.accept_kw("signal")
        names: list[Token] = [self.cur.expect_ident("port name")]
        while self.cur.accept_op(","):
            names.append(self.cur.expect_ident("port name"))
        self.cur.expect_op(":")
        direction = Direction.IN
        tok = self.cur.peek()
        if tok.kind == TokenKind.IDENT and tok.text.lower() in _DIRECTIONS:
            direction = _DIRECTIONS[tok.text.lower()]
            self.cur.next()
        ptype = self._parse_port_type()
        if self.cur.accept_op(":="):
            self._parse_expression()  # port default: parsed, not stored
        return [
            Port(name=t.text, direction=direction, ptype=ptype, line=t.line)
            for t in names
        ]

    def _parse_port_type(self) -> PortType:
        base = self.cur.expect_ident("type name").text
        while self.cur.accept_op("."):
            base = self.cur.expect_ident("selected type name").text
        if self.cur.peek().is_ident("range"):
            # `integer range 0 to 7` — scalar numeric subtype
            self.cur.next()
            self._parse_expression()
            self.cur.expect_kw("to", "downto")
            self._parse_expression()
            return PortType(base=base)
        if self.cur.accept_op("("):
            high = self._parse_expression()
            dir_tok = self.cur.expect_kw("downto", "to")
            low = self._parse_expression()
            self.cur.expect_op(")")
            descending = dir_tok.text.lower() == "downto"
            if descending:
                return PortType(base=base, high=high, low=low, descending=True)
            # ascending range: normalize so width() is still |high-low|+1
            return PortType(base=base, high=low, low=high, descending=False)
        return PortType(base=base)

    # ------------------------------------------------------------------
    # architectures and other units
    # ------------------------------------------------------------------

    def _parse_architecture_header_and_skip(self) -> tuple[str, str]:
        """Parse ``architecture A of E is`` and skip to its end.

        Returns ``(architecture_name, entity_name)``.  The body is skipped
        by scanning for ``end architecture`` or ``end <arch_name>``; inner
        ``end process``/``end if``/… forms never match either pattern.
        """
        self.cur.expect_kw("architecture")
        arch = self.cur.expect_ident("architecture name").text
        self.cur.expect_kw("of")
        entity = self.cur.expect_ident("entity name").text
        self.cur.expect_kw("is")
        while not self.cur.at_eof():
            tok = self.cur.next()
            if not tok.is_ident("end"):
                continue
            nxt = self.cur.peek()
            if nxt.is_ident("architecture"):
                self.cur.next()
                if self.cur.peek().kind == TokenKind.IDENT:
                    self.cur.next()
                self.cur.expect_op(";")
                return arch, entity
            if nxt.kind == TokenKind.IDENT and nxt.text.lower() == arch.lower():
                self.cur.next()
                self.cur.expect_op(";")
                return arch, entity
        raise ParseError(f"unterminated architecture {arch!r}")

    def _skip_design_unit(self, kind: str) -> None:
        """Skip a package/configuration: scan for ``end [kind] [name];``."""
        self.cur.next()  # the introducing keyword
        self.cur.accept_kw("body")
        name_tok = self.cur.expect_ident(f"{kind} name")
        name = name_tok.text
        while not self.cur.at_eof():
            tok = self.cur.next()
            if not tok.is_ident("end"):
                continue
            nxt = self.cur.peek()
            if nxt.is_ident(kind) or nxt.is_ident("package"):
                self.cur.next()
                self.cur.accept_kw("body")
                if self.cur.peek().kind == TokenKind.IDENT:
                    self.cur.next()
                self.cur.expect_op(";")
                return
            if nxt.kind == TokenKind.IDENT and nxt.text.lower() == name.lower():
                self.cur.next()
                self.cur.expect_op(";")
                return
        raise ParseError(f"unterminated {kind} {name!r}")

    def _skip_statement(self) -> None:
        self.cur.skip_until_op(";")
        self.cur.accept_op(";")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    @classmethod
    def expression_from(cls, cur: Cursor) -> E.Expr:
        """Parse one constant expression at ``cur``'s current position.

        Shares the cursor with the caller (no copy): used by the body
        scanner in :mod:`repro.hdl.dataflow` to parse generate conditions
        and generic-map actuals with the real expression grammar.
        """
        parser = cls.__new__(cls)
        parser.cur = cur
        parser._libraries = []
        parser._uses = []
        return parser._parse_expression()

    def _parse_expression(self, level: int = 0) -> E.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_factor()
        left = self._parse_expression(level + 1)
        ops = _BINARY_LEVELS[level]
        while True:
            tok = self.cur.peek()
            is_word = tok.kind == TokenKind.IDENT and tok.text.lower() in ops
            is_sym = tok.kind == TokenKind.OP and tok.text in ops
            if not (is_word or is_sym):
                return left
            # `to`/`downto` boundaries never reach here: they are keywords,
            # not operators — but guard against consuming relational `<=` in
            # contexts where a port default aggregate was mis-shaped.
            op = tok.text.lower() if is_word else tok.text
            self.cur.next()
            right = self._parse_expression(level + 1)
            if op in ("sll",):
                left = E.BinOp("<<", left, right)
            elif op in ("srl",):
                left = E.BinOp(">>", left, right)
            else:
                left = E.BinOp(op, left, right)

    def _parse_factor(self) -> E.Expr:
        # factor ::= primary [** primary] | abs primary | not primary
        tok = self.cur.peek()
        if tok.is_ident("abs"):
            self.cur.next()
            return E.Call("abs", (self._parse_factor(),))
        if tok.is_ident("not"):
            self.cur.next()
            return E.UnOp("not", self._parse_factor())
        if tok.is_op("-", "+"):
            self.cur.next()
            return E.UnOp(tok.text, self._parse_factor())
        primary = self._parse_primary()
        if self.cur.accept_op("**"):
            exponent = self._parse_factor()
            return E.BinOp("**", primary, exponent)
        return primary

    def _parse_primary(self) -> E.Expr:
        tok = self.cur.peek()
        if tok.kind == TokenKind.NUMBER:
            self.cur.next()
            return E.Num(tok.value if tok.value is not None else int(tok.text))
        if tok.kind == TokenKind.STRING:
            self.cur.next()
            return E.StrLit(tok.text)
        if tok.kind == TokenKind.CHAR:
            self.cur.next()
            if tok.text in ("0", "1"):
                return E.Num(int(tok.text))
            return E.StrLit(tok.text)
        if tok.is_op("("):
            self.cur.next()
            # Could be a parenthesized expression or an aggregate `(others => '0')`.
            if self.cur.peek().is_ident("others"):
                self.cur.skip_until_op(")")
                self.cur.expect_op(")")
                return E.Num(0)
            inner = self._parse_expression()
            self.cur.expect_op(")")
            return inner
        if tok.is_ident("true", "false"):
            self.cur.next()
            return E.Num(1 if tok.text.lower() == "true" else 0)
        if tok.kind == TokenKind.IDENT:
            if tok.text.lower() in _EXPR_STOP_WORDS or tok.text.lower() in _WORD_OPS:
                raise self.cur.error(f"unexpected keyword {tok.text!r} in expression")
            self.cur.next()
            name = tok.text
            if self.cur.peek().is_op("'"):
                # attribute: name'length etc. — not evaluable; keep the name.
                self.cur.next()
                self.cur.expect_ident("attribute name")
                return E.Name(name)
            if self.cur.accept_op("("):
                args: list[E.Expr] = []
                if not self.cur.peek().is_op(")"):
                    args.append(self._parse_expression())
                    while self.cur.accept_op(","):
                        args.append(self._parse_expression())
                self.cur.expect_op(")")
                return E.Call(name, tuple(args))
            return E.Name(name)
        raise self.cur.error(f"unexpected token {tok.text!r} in expression")


def parse_vhdl(source: str) -> list[Module]:
    """Parse VHDL source text, returning all declared entities."""
    return VhdlParser(source).parse()
