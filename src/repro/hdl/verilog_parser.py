"""Recursive-descent parser for the Verilog-2005 / SystemVerilog subset.

Covers both module header styles the paper's parser must handle:

- **ANSI** — ``module m #(parameter int W = 8)(input wire [W-1:0] d, ...);``
  with parameter/localparam lists, typed and untyped parameters, direction
  and type inheritance across comma-separated port items, packed dimension
  ranges, and SystemVerilog ``logic``/``bit`` types;
- **non-ANSI** — ``module m(a, b); input a; output [7:0] b; parameter W=8;``
  where directions, widths, and parameters are declared in the body.

Module bodies are scanned token-wise with block-depth tracking so that only
*module-level* declarations are collected; everything else (always blocks,
instances, generate regions) is skipped.  ``import pkg::*;`` clauses are
recorded as use-clauses, mirroring the paper's note that SV packages must be
read first.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.hdl import expr as E
from repro.hdl.ast import Direction, HdlLanguage, Module, Parameter, Port, PortType
from repro.hdl.cursor import Cursor
from repro.hdl.lexer import Lexer, Token, TokenKind, VERILOG_LEX

__all__ = ["parse_verilog", "VerilogParser"]

_DIRECTIONS = {
    "input": Direction.IN,
    "output": Direction.OUT,
    "inout": Direction.INOUT,
}

_NET_TYPES = {
    "wire", "reg", "logic", "bit", "tri", "tri0", "tri1", "wand", "wor",
    "supply0", "supply1", "uwire", "var",
}

_PARAM_TYPES = {
    "int", "integer", "logic", "bit", "byte", "shortint", "longint",
    "string", "real", "realtime", "time", "signed", "unsigned", "type",
}

# Block-depth bookkeeping for body scanning.
_DEPTH_OPEN = {"begin", "function", "task", "case", "casex", "casez",
               "generate", "fork", "specify", "covergroup", "property",
               "sequence", "interface", "clocking"}
_DEPTH_CLOSE = {"end", "endfunction", "endtask", "endcase", "endgenerate",
                "join", "join_any", "join_none", "endspecify", "endgroup",
                "endproperty", "endsequence", "endinterface", "endclocking"}

# Verilog operator precedence for constant expressions, low to high
# (ternary handled separately above this table).
_BINARY_LEVELS: tuple[tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>", "<<<", ">>>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class VerilogParser:
    """Parser over a lexed Verilog/SV token stream."""

    def __init__(self, source: str, language: HdlLanguage = HdlLanguage.VERILOG) -> None:
        self.cur = Cursor(Lexer(source, VERILOG_LEX).tokens())
        self.language = language

    # ------------------------------------------------------------------
    # design file
    # ------------------------------------------------------------------

    def parse(self) -> list[Module]:
        modules: list[Module] = []
        pending_imports: list[str] = []
        while not self.cur.at_eof():
            tok = self.cur.peek()
            if tok.is_ident("module", "macromodule"):
                modules.append(self._parse_module(tuple(pending_imports)))
            elif tok.is_ident("import"):
                pending_imports.extend(self._parse_import())
            elif tok.is_ident("package"):
                self._skip_region("package", "endpackage")
            elif tok.is_ident("interface"):
                self._skip_region("interface", "endinterface")
            elif tok.is_ident("class"):
                self._skip_region("class", "endclass")
            elif tok.is_ident("program"):
                self._skip_region("program", "endprogram")
            else:
                self.cur.next()
        return modules

    def _parse_import(self) -> list[str]:
        self.cur.expect_kw("import")
        imports: list[str] = []
        while True:
            pkg = self.cur.expect_ident("package name").text
            item = ""
            if self.cur.accept_op("::"):
                nxt = self.cur.peek()
                if nxt.is_op("*"):
                    self.cur.next()
                    item = "*"
                else:
                    item = self.cur.expect_ident("imported name").text
            imports.append(f"{pkg}::{item}" if item else pkg)
            if not self.cur.accept_op(","):
                break
        self.cur.expect_op(";")
        return imports

    def _skip_region(self, opener: str, closer: str) -> None:
        self.cur.expect_kw(opener)
        depth = 1
        while not self.cur.at_eof() and depth:
            tok = self.cur.next()
            if tok.is_ident(opener):
                depth += 1
            elif tok.is_ident(closer):
                depth -= 1

    # ------------------------------------------------------------------
    # module
    # ------------------------------------------------------------------

    def _parse_module(self, imports: tuple[str, ...]) -> Module:
        mod_tok = self.cur.expect_kw("module", "macromodule")
        name = self.cur.expect_ident("module name").text
        params: list[Parameter] = []
        ports: list[Port] = []

        # Header-scoped package imports: module m import pkg::*; #(...) (...);
        header_imports = list(imports)
        while self.cur.peek().is_ident("import"):
            header_imports.extend(self._parse_import())

        if self.cur.accept_op("#"):
            self.cur.expect_op("(")
            params.extend(self._parse_parameter_port_list())
            self.cur.expect_op(")")

        header_names: list[str] = []
        if self.cur.accept_op("("):
            if not self.cur.peek().is_op(")"):
                first = self.cur.peek()
                if first.kind == TokenKind.IDENT and (
                    first.text.lower() not in _DIRECTIONS
                    and first.text.lower() not in _NET_TYPES
                    and not first.is_ident("interface")
                ) and self.cur.peek(1).is_op(",", ")"):
                    # non-ANSI: plain identifier list
                    header_names.append(self.cur.next().text)
                    while self.cur.accept_op(","):
                        header_names.append(self.cur.expect_ident("port name").text)
                else:
                    ports.extend(self._parse_ansi_port_list())
            self.cur.expect_op(")")
        self.cur.expect_op(";")

        body_params, body_ports = self._scan_body(header_names)
        params.extend(body_params)
        ports.extend(body_ports)

        # non-ANSI headers list names whose declarations we may not have seen
        # (e.g. implicit 1-bit inout); backfill as scalar inputs.
        declared = {p.name.lower() for p in ports}
        for port_name in header_names:
            if port_name.lower() not in declared:
                ports.append(
                    Port(
                        name=port_name,
                        direction=Direction.IN,
                        ptype=PortType(base="wire"),
                        line=mod_tok.line,
                    )
                )

        return Module(
            name=name,
            language=self.language,
            parameters=tuple(params),
            ports=tuple(ports),
            use_clauses=tuple(header_imports),
            line=mod_tok.line,
        )

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------

    def _parse_parameter_port_list(self) -> list[Parameter]:
        params: list[Parameter] = []
        local = False
        ptype = "integer"
        while not self.cur.peek().is_op(")"):
            tok = self.cur.peek()
            if tok.is_ident("parameter"):
                self.cur.next()
                local = False
                ptype = self._accept_param_type() or "integer"
            elif tok.is_ident("localparam"):
                self.cur.next()
                local = True
                ptype = self._accept_param_type() or "integer"
            params.append(self._parse_param_assignment(ptype, local))
            if not self.cur.accept_op(","):
                break
        return params

    def _accept_param_type(self) -> str | None:
        """Accept an optional data type after ``parameter``/``localparam``."""
        tok = self.cur.peek()
        if tok.kind != TokenKind.IDENT or tok.text.lower() not in _PARAM_TYPES:
            # `parameter [7:0] P = ...` — packed-dim-only implicit type
            if tok.is_op("["):
                self._skip_packed_dims()
                return "logic"
            return None
        # Don't eat the name itself: `parameter integer = 3` is illegal, so an
        # IDENT here followed by `=`/`,`/`)` is the parameter *name*.
        nxt = self.cur.peek(1)
        if nxt.is_op("=", ",", ")", ";"):
            return None
        ptype = self.cur.next().text.lower()
        if self.cur.accept_kw("signed", "unsigned"):
            pass
        if self.cur.peek().is_op("["):
            self._skip_packed_dims()
        return ptype

    def _parse_param_assignment(self, ptype: str, local: bool) -> Parameter:
        name_tok = self.cur.expect_ident("parameter name")
        default: E.Expr | None = None
        if self.cur.accept_op("="):
            default = self._parse_expression()
        return Parameter(
            name=name_tok.text, ptype=ptype, default=default, local=local,
            line=name_tok.line,
        )

    def _skip_packed_dims(self) -> None:
        while self.cur.peek().is_op("["):
            self.cur.next()
            self.cur.skip_until_op("]")
            self.cur.expect_op("]")

    # ------------------------------------------------------------------
    # ANSI ports
    # ------------------------------------------------------------------

    def _parse_ansi_port_list(self) -> list[Port]:
        ports: list[Port] = []
        direction = Direction.IN
        base = "wire"
        high: E.Expr | None = None
        low: E.Expr | None = None
        while True:
            tok = self.cur.peek()
            if tok.kind == TokenKind.IDENT and tok.text.lower() in _DIRECTIONS:
                direction = _DIRECTIONS[tok.text.lower()]
                self.cur.next()
                base, high, low = self._parse_port_type_prefix()
            elif tok.kind == TokenKind.IDENT and tok.text.lower() in _NET_TYPES:
                base, high, low = self._parse_port_type_prefix()
            name_tok = self.cur.expect_ident("port name")
            # unpacked dimensions after the name: skip
            self._skip_packed_dims()
            ports.append(
                Port(
                    name=name_tok.text,
                    direction=direction,
                    ptype=PortType(base=base, high=high, low=low),
                    line=name_tok.line,
                )
            )
            if not self.cur.accept_op(","):
                return ports

    def _parse_port_type_prefix(self) -> tuple[str, E.Expr | None, E.Expr | None]:
        """Parse ``[net type] [signed] [packed dims]`` returning (base, hi, lo)."""
        base = "wire"
        tok = self.cur.peek()
        if tok.kind == TokenKind.IDENT and tok.text.lower() in _NET_TYPES:
            base = self.cur.next().text.lower()
            # `var logic` / `wire logic`
            nxt = self.cur.peek()
            if nxt.kind == TokenKind.IDENT and nxt.text.lower() in ("logic", "bit"):
                base = self.cur.next().text.lower()
        self.cur.accept_kw("signed", "unsigned")
        high: E.Expr | None = None
        low: E.Expr | None = None
        if self.cur.accept_op("["):
            high = self._parse_expression()
            self.cur.expect_op(":")
            low = self._parse_expression()
            self.cur.expect_op("]")
            # further packed dims collapse into the first (total width would
            # multiply; out of subset, keep the outermost range)
            self._skip_packed_dims()
        return base, high, low

    # ------------------------------------------------------------------
    # non-ANSI body scanning
    # ------------------------------------------------------------------

    def _scan_body(self, header_names: list[str]) -> tuple[list[Parameter], list[Port]]:
        """Scan a module body for declarations until ``endmodule``.

        Collects module-level ``parameter``/``localparam`` declarations and —
        when the header was non-ANSI (``header_names`` non-empty) —
        ``input``/``output``/``inout`` declarations.  Depth counting keeps
        nested blocks (functions, generate regions) out of scope.
        """
        params: list[Parameter] = []
        ports: list[Port] = []
        depth = 0
        while not self.cur.at_eof():
            tok = self.cur.peek()
            if tok.is_ident("endmodule"):
                self.cur.next()
                if self.cur.accept_op(":"):
                    self.cur.expect_ident("module name")
                return params, ports
            if tok.kind == TokenKind.IDENT:
                word = tok.text.lower()
                if word in _DEPTH_OPEN:
                    depth += 1
                    self.cur.next()
                    continue
                if word in _DEPTH_CLOSE:
                    depth = max(0, depth - 1)
                    self.cur.next()
                    continue
                if depth == 0 and word in ("parameter", "localparam"):
                    self.cur.next()
                    local = word == "localparam"
                    ptype = self._accept_param_type() or "integer"
                    params.append(self._parse_param_assignment(ptype, local))
                    while self.cur.accept_op(","):
                        params.append(self._parse_param_assignment(ptype, local))
                    self.cur.accept_op(";")
                    continue
                if depth == 0 and header_names and word in _DIRECTIONS:
                    self.cur.next()
                    direction = _DIRECTIONS[word]
                    base, high, low = self._parse_port_type_prefix()
                    while True:
                        name_tok = self.cur.expect_ident("port name")
                        self._skip_packed_dims()
                        ports.append(
                            Port(
                                name=name_tok.text,
                                direction=direction,
                                ptype=PortType(base=base, high=high, low=low),
                                line=name_tok.line,
                            )
                        )
                        if not self.cur.accept_op(","):
                            break
                    self.cur.accept_op(";")
                    continue
            self.cur.next()
        raise ParseError("unterminated module body (missing endmodule)")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    @classmethod
    def expression_from(
        cls, cur: Cursor, language: HdlLanguage = HdlLanguage.VERILOG
    ) -> E.Expr:
        """Parse one constant expression at ``cur``'s current position.

        The cursor is shared, not copied: on return it sits just past the
        expression, so body scanners (:mod:`repro.hdl.dataflow`) can reuse
        the full expression grammar mid-scan.  Raises
        :class:`~repro.errors.ParseError` like any other entry point; the
        caller is expected to mark/rewind around speculative parses.
        """
        parser = cls.__new__(cls)
        parser.cur = cur
        parser.language = language
        return parser._parse_expression()

    def _parse_expression(self) -> E.Expr:
        cond = self._parse_binary(0)
        if self.cur.accept_op("?"):
            then = self._parse_expression()
            self.cur.expect_op(":")
            other = self._parse_expression()
            return E.Cond(cond, then, other)
        return cond

    def _parse_binary(self, level: int) -> E.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.cur.peek().is_op(*ops):
            op = self.cur.next().text
            right = self._parse_binary(level + 1)
            if op in ("<<<",):
                op = "<<"
            elif op in (">>>",):
                op = ">>"
            left = E.BinOp(op, left, right)
        return left

    def _parse_unary(self) -> E.Expr:
        tok = self.cur.peek()
        if tok.is_op("-", "+", "~", "!"):
            self.cur.next()
            return E.UnOp(tok.text, self._parse_unary())
        primary = self._parse_primary()
        if self.cur.accept_op("**"):
            return E.BinOp("**", primary, self._parse_unary())
        return primary

    def _parse_primary(self) -> E.Expr:
        tok = self.cur.peek()
        if tok.kind == TokenKind.NUMBER:
            self.cur.next()
            return E.Num(tok.value if tok.value is not None else int(tok.text))
        if tok.kind == TokenKind.STRING:
            self.cur.next()
            return E.StrLit(tok.text)
        if tok.is_op("("):
            self.cur.next()
            inner = self._parse_expression()
            self.cur.expect_op(")")
            return inner
        if tok.is_op("{"):
            # concatenation/replication in a default: not integer-evaluable;
            # skip it whole and fold to 0 so parsing can continue.
            self.cur.next()
            depth = 1
            while not self.cur.at_eof() and depth:
                nxt = self.cur.next()
                if nxt.is_op("{"):
                    depth += 1
                elif nxt.is_op("}"):
                    depth -= 1
            return E.Num(0)
        if tok.is_op("$"):
            self.cur.next()
            fname = "$" + self.cur.expect_ident("system function name").text
            self.cur.expect_op("(")
            args: list[E.Expr] = []
            if not self.cur.peek().is_op(")"):
                args.append(self._parse_expression())
                while self.cur.accept_op(","):
                    args.append(self._parse_expression())
            self.cur.expect_op(")")
            return E.Call(fname, tuple(args))
        if tok.kind == TokenKind.IDENT:
            self.cur.next()
            name = tok.text
            # package-scoped constant pkg::NAME — keep the leaf name
            while self.cur.accept_op("::"):
                name = self.cur.expect_ident("scoped name").text
            if self.cur.accept_op("("):
                args = []
                if not self.cur.peek().is_op(")"):
                    args.append(self._parse_expression())
                    while self.cur.accept_op(","):
                        args.append(self._parse_expression())
                self.cur.expect_op(")")
                return E.Call(name, tuple(args))
            if self.cur.peek().is_op("["):
                # bit/part select in a constant expr: skip the select
                self._skip_packed_dims()
            return E.Name(name)
        raise self.cur.error(f"unexpected token {tok.text!r} in expression")


def parse_verilog(
    source: str, language: HdlLanguage = HdlLanguage.VERILOG
) -> list[Module]:
    """Parse Verilog/SystemVerilog source, returning all declared modules."""
    return VerilogParser(source, language).parse()
