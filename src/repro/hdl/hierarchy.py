"""RTL hierarchy extraction.

Dovado starts "from an RTL hierarchy": the user hands over a design tree
and picks a (possibly non-top) module to explore.  The interface parsers
skip bodies, so hierarchy comes from a dedicated lightweight pass that
scans module/architecture bodies for instantiations:

- **VHDL** — direct entity instantiation (``label : entity work.name``)
  and component instantiation (``label : comp_name port map (...)``);
- **Verilog/SV** — module instantiation (``type [#(..)] label (..);``) at
  module-body depth 0 (generate regions are descended into, since their
  instances exist in the elaborated design).

The result is a :class:`Hierarchy`: a directed multigraph of
module→submodule edges with instance labels, top candidates (modules never
instantiated), cycle detection (recursive instantiation is an error), and
a tree rendering for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import HdlError
from repro.hdl.ast import HdlLanguage
from repro.hdl.cursor import Cursor
from repro.hdl.lexer import Lexer, TokenKind, VERILOG_LEX, VHDL_LEX

__all__ = ["Instance", "Hierarchy", "extract_instances", "build_hierarchy"]


@dataclass(frozen=True)
class Instance:
    """One instantiation site: ``parent`` contains ``label : target``."""

    parent: str
    label: str
    target: str


# Verilog words that can open a statement but never name an instance type.
_VERILOG_STMT_WORDS = {
    "assign", "always", "always_ff", "always_comb", "always_latch",
    "initial", "final", "wire", "reg", "logic", "bit", "integer", "int",
    "genvar", "real", "time", "parameter", "localparam", "input", "output",
    "inout", "if", "else", "for", "while", "case", "casex", "casez",
    "begin", "end", "endcase", "endgenerate", "generate", "function",
    "endfunction", "task", "endtask", "typedef", "enum", "struct", "import",
    "defparam", "specify", "endspecify", "posedge", "negedge", "module",
    "endmodule", "signed", "unsigned", "supply0", "supply1", "tri", "var",
    "return", "unique", "priority", "default", "assert", "property",
    "cover", "sequence", "string", "byte", "shortint", "longint",
}


def _verilog_instances(source: str) -> list[Instance]:
    toks = Lexer(source, VERILOG_LEX).tokens()
    cur = Cursor(toks)
    out: list[Instance] = []
    current_module: str | None = None
    while not cur.at_eof():
        tok = cur.next()
        if tok.is_ident("module", "macromodule"):
            current_module = cur.expect_ident("module name").text
            # skip header to the closing `;`
            cur.skip_until_op(";")
            cur.accept_op(";")
            continue
        if tok.is_ident("endmodule"):
            current_module = None
            continue
        if current_module is None or tok.kind != TokenKind.IDENT:
            continue
        word = tok.text.lower()
        if word in _VERILOG_STMT_WORDS:
            continue
        # Candidate instance type. Accept:  type [#(...)] label ( ... ) ;
        mark = cur.mark()
        if cur.accept_op("#"):
            if not cur.accept_op("("):
                cur.rewind(mark)
                continue
            cur.skip_until_op(")")
            if not cur.accept_op(")"):
                cur.rewind(mark)
                continue
        label_tok = cur.peek()
        if label_tok.kind != TokenKind.IDENT or label_tok.text.lower() in _VERILOG_STMT_WORDS:
            cur.rewind(mark)
            continue
        cur.next()
        # optional instance array range: label [3:0] ( ... )
        if cur.accept_op("["):
            cur.skip_until_op("]")
            if not cur.accept_op("]"):
                cur.rewind(mark)
                continue
        if not cur.accept_op("("):
            cur.rewind(mark)
            continue
        cur.skip_until_op(")")
        if not cur.accept_op(")"):
            cur.rewind(mark)
            continue
        if not cur.accept_op(";"):
            cur.rewind(mark)
            continue
        out.append(
            Instance(parent=current_module, label=label_tok.text, target=tok.text)
        )
    return out


def _vhdl_instances(source: str) -> list[Instance]:
    toks = Lexer(source, VHDL_LEX).tokens()
    cur = Cursor(toks)
    out: list[Instance] = []
    current_arch_entity: str | None = None
    while not cur.at_eof():
        tok = cur.next()
        if tok.is_ident("architecture"):
            cur.expect_ident("architecture name")
            if cur.accept_kw("of"):
                current_arch_entity = cur.expect_ident("entity name").text
                cur.accept_kw("is")
            continue
        if tok.is_ident("end"):
            nxt = cur.peek()
            if nxt.is_ident("architecture"):
                current_arch_entity = None
            continue
        if current_arch_entity is None or tok.kind != TokenKind.IDENT:
            continue
        # label : entity [lib.]name  |  label : comp_name ... port map
        if not cur.peek().is_op(":"):
            continue
        label = tok.text
        mark = cur.mark()
        cur.next()  # ':'
        nxt = cur.peek()
        if nxt.is_ident("entity"):
            cur.next()
            name = cur.expect_ident("entity name").text
            while cur.accept_op("."):
                name = cur.expect_ident("selected entity name").text
            # strip optional (architecture) spec
            if cur.accept_op("("):
                cur.skip_until_op(")")
                cur.accept_op(")")
            out.append(Instance(parent=current_arch_entity, label=label, target=name))
            continue
        if nxt.is_ident("component"):
            cur.next()
            name = cur.expect_ident("component name").text
            out.append(Instance(parent=current_arch_entity, label=label, target=name))
            continue
        if nxt.kind == TokenKind.IDENT and not nxt.is_ident(
            "process", "block", "for", "if", "signal", "variable", "constant",
            "begin", "function", "procedure", "type", "subtype", "attribute",
        ):
            # Possible component instantiation: confirm by a following
            # `generic map` / `port map` before the terminating `;`.
            name = cur.next().text
            confirmed = False
            depth = 0
            while not cur.at_eof():
                t = cur.peek()
                if t.is_op("("):
                    depth += 1
                elif t.is_op(")"):
                    depth -= 1
                elif depth == 0 and t.is_op(";"):
                    break
                elif depth == 0 and t.is_ident("map"):
                    confirmed = True
                cur.next()
            if confirmed:
                out.append(
                    Instance(parent=current_arch_entity, label=label, target=name)
                )
            else:
                cur.rewind(mark)
                cur.next()  # re-consume ':' so scanning advances
    return out


def extract_instances(source: str, language: HdlLanguage | str) -> list[Instance]:
    """Scan ``source`` for instantiation sites."""
    language = HdlLanguage(language)
    if language == HdlLanguage.VHDL:
        return _vhdl_instances(source)
    return _verilog_instances(source)


@dataclass
class Hierarchy:
    """The design tree built from instantiation edges."""

    graph: nx.MultiDiGraph = field(default_factory=nx.MultiDiGraph)

    def add(self, instance: Instance) -> None:
        self.graph.add_edge(
            instance.parent.lower(), instance.target.lower(), label=instance.label
        )

    def add_module(self, name: str) -> None:
        self.graph.add_node(name.lower())

    def modules(self) -> list[str]:
        return sorted(self.graph.nodes)

    def children(self, module: str) -> list[tuple[str, str]]:
        """(label, target) pairs instantiated inside ``module``."""
        out = []
        for _, dst, data in self.graph.out_edges(module.lower(), data=True):
            out.append((data.get("label", "?"), dst))
        return sorted(out)

    def top_candidates(self) -> list[str]:
        """Modules never instantiated by another (Dovado's default tops)."""
        return sorted(
            n for n in self.graph.nodes if self.graph.in_degree(n) == 0
        )

    def check_acyclic(self) -> None:
        try:
            cycle = nx.find_cycle(self.graph)
        except nx.NetworkXNoCycle:
            return
        chain = " -> ".join(e[0] for e in cycle) + f" -> {cycle[-1][1]}"
        raise HdlError(f"recursive instantiation: {chain}")

    def subtree(self, module: str) -> set[str]:
        """All modules reachable from ``module`` (itself included)."""
        module = module.lower()
        if module not in self.graph:
            return {module}
        return {module} | nx.descendants(self.graph, module)

    def render(self, root: str, max_depth: int = 8) -> str:
        """ASCII tree of ``root``'s subtree."""
        lines: list[str] = [root.lower()]

        def walk(node: str, prefix: str, depth: int) -> None:
            if depth >= max_depth:
                return
            kids = self.children(node)
            for i, (label, target) in enumerate(kids):
                last = i == len(kids) - 1
                branch = "`-- " if last else "|-- "
                lines.append(f"{prefix}{branch}{label}: {target}")
                walk(target, prefix + ("    " if last else "|   "), depth + 1)

        walk(root.lower(), "", 0)
        return "\n".join(lines)


def build_hierarchy(
    sources: list[tuple[str, HdlLanguage | str]],
    known_modules: list[str] | None = None,
) -> Hierarchy:
    """Build the hierarchy of a source set; checks for recursion."""
    h = Hierarchy()
    for name in known_modules or []:
        h.add_module(name)
    for source, language in sources:
        for inst in extract_instances(source, language):
            h.add(inst)
    h.check_acyclic()
    return h
