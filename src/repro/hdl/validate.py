"""Interface lint — the paper's "first formal verification" at parse time.

This module is the stable, historical API over the design rule checker in
:mod:`repro.analysis`: the E/W interface rules that used to live here are
now registered rules (see :mod:`repro.analysis.interface_rules`), sharing
codes, severities, and suppression machinery with the elaboration-aware
passes.  :func:`lint_module` returns the interface findings;
:func:`validate_module` raises on any error-severity one.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity
from repro.errors import ValidationError
from repro.hdl.ast import Module

__all__ = ["Severity", "Finding", "lint_module", "validate_module"]


def lint_module(module: Module) -> list[Finding]:
    """Run all interface checks; returns findings (possibly empty)."""
    from repro.analysis.checker import DesignRuleChecker

    return list(DesignRuleChecker().check_interface(module).findings)


def validate_module(module: Module) -> list[Finding]:
    """Lint and raise :class:`ValidationError` on the first error finding.

    Returns the warning-level findings for caller-side reporting.
    """
    findings = lint_module(module)
    errors = [f for f in findings if f.severity == Severity.ERROR]
    if errors:
        details = "; ".join(str(f) for f in errors)
        raise ValidationError(f"module {module.name!r} failed validation: {details}")
    return [f for f in findings if f.severity == Severity.WARNING]
