"""Interface lint — the paper's "first formal verification" at parse time.

Dovado's parsing step "applies a first formal verification to the design":
before any tool run, the extracted interface is checked for the defects that
would otherwise surface deep inside the flow.  :func:`lint_module` returns a
list of findings; :func:`validate_module` raises on any error-severity one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.hdl import expr as E
from repro.hdl.ast import Direction, Module

__all__ = ["Severity", "Finding", "lint_module", "validate_module"]


class Severity(str, enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}:{self.code}] {self.message}"


def lint_module(module: Module) -> list[Finding]:
    """Run all interface checks; returns findings (possibly empty)."""
    findings: list[Finding] = []

    # E001: duplicate port names (case-insensitive, as VHDL requires).
    seen_ports: dict[str, str] = {}
    for port in module.ports:
        key = port.name.lower()
        if key in seen_ports:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "E001",
                    f"duplicate port {port.name!r} (also declared as {seen_ports[key]!r})",
                )
            )
        seen_ports[key] = port.name

    # E002: duplicate parameter names.
    seen_params: dict[str, str] = {}
    for param in module.parameters:
        key = param.name.lower()
        if key in seen_params:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "E002",
                    f"duplicate parameter {param.name!r}",
                )
            )
        seen_params[key] = param.name

    # E003: port/parameter name collision (breaks boxing's generic map).
    for port in module.ports:
        if port.name.lower() in seen_params:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "E003",
                    f"port {port.name!r} collides with a parameter name",
                )
            )

    # E004: width expressions referencing unknown parameters.
    param_names = {p.name.lower() for p in module.parameters}
    builtin = {"true", "false"}
    for port in module.ports:
        for ref in _width_refs(port):
            if ref.lower() not in param_names and ref.lower() not in builtin:
                findings.append(
                    Finding(
                        Severity.ERROR,
                        "E004",
                        f"port {port.name!r} width references unknown name {ref!r}",
                    )
                )

    # W001: no ports at all (nothing for the box to wire; tool will prune).
    if not module.ports:
        findings.append(
            Finding(Severity.WARNING, "W001", f"module {module.name!r} has no ports")
        )

    # W002: no identifiable clock — timing analysis needs a constraint target.
    elif not module.clock_ports():
        findings.append(
            Finding(
                Severity.WARNING,
                "W002",
                f"module {module.name!r} has no identifiable clock port",
            )
        )

    # W003: free parameter without a default (exact evaluation must bind it).
    for param in module.free_parameters():
        if param.default is None:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "W003",
                    f"parameter {param.name!r} has no default value",
                )
            )

    # W004: only out/inout ports — inputs were likely parsed away or absent.
    if module.ports and all(
        p.direction != Direction.IN for p in module.ports
    ):
        findings.append(
            Finding(
                Severity.WARNING,
                "W004",
                f"module {module.name!r} declares no input ports",
            )
        )

    return findings


def _width_refs(port) -> set[str]:
    refs: set[str] = set()
    if port.ptype.high is not None:
        refs |= E.free_names(port.ptype.high)
    if port.ptype.low is not None:
        refs |= E.free_names(port.ptype.low)
    return refs


def validate_module(module: Module) -> list[Finding]:
    """Lint and raise :class:`ValidationError` on the first error finding.

    Returns the warning-level findings for caller-side reporting.
    """
    findings = lint_module(module)
    errors = [f for f in findings if f.severity == Severity.ERROR]
    if errors:
        details = "; ".join(str(f) for f in errors)
        raise ValidationError(f"module {module.name!r} failed validation: {details}")
    return [f for f in findings if f.severity == Severity.WARNING]
