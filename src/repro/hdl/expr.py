"""Constant-expression AST shared by the VHDL and Verilog parsers.

Parameter defaults and port widths are integer constant expressions over
other parameters — ``DATA_WIDTH-1 downto 0``, ``$clog2(DEPTH)``,
``2**ADDR_BITS``.  Both parsers build the same small AST, and elaboration
evaluates it under a parameter environment to obtain concrete widths.

The evaluator implements integer semantics: ``/`` truncates toward zero
(Verilog rules; VHDL integer division behaves identically for positive
operands, which is all interface arithmetic uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import HdlError

__all__ = [
    "Expr",
    "Num",
    "Name",
    "StrLit",
    "UnOp",
    "BinOp",
    "Cond",
    "Call",
    "EvalError",
    "evaluate",
    "free_names",
]


class EvalError(HdlError):
    """Raised when a constant expression cannot be evaluated to an integer."""


class Expr:
    """Base class for constant-expression nodes."""

    __slots__ = ()

    def render(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Num(Expr):
    """Integer literal (all HDL number bases are normalized at lex time)."""

    value: int

    def render(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class StrLit(Expr):
    """String literal — VHDL string generics ("TRUE", file names…)."""

    value: str

    def render(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class Name(Expr):
    """Reference to another parameter/generic (case preserved from source)."""

    ident: str

    def render(self) -> str:
        return self.ident


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # "-", "+", "not", "!", "~"
    operand: Expr

    def render(self) -> str:
        return f"({self.op}{self.operand.render()})"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - * / % ** mod rem << >> and or == != < <= > >=
    left: Expr
    right: Expr

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass(frozen=True)
class Cond(Expr):
    """Ternary ``cond ? a : b`` (Verilog) — VHDL interfaces don't need one."""

    cond: Expr
    then: Expr
    other: Expr

    def render(self) -> str:
        return f"({self.cond.render()} ? {self.then.render()} : {self.other.render()})"


@dataclass(frozen=True)
class Call(Expr):
    """Function call; only width helpers are evaluable (``$clog2``, ``clog2``,
    ``log2ceil``, ``maximum``/``minimum``)."""

    func: str
    args: tuple[Expr, ...]

    def render(self) -> str:
        inner = ", ".join(a.render() for a in self.args)
        return f"{self.func}({inner})"


# Results wider than this (in bits) are rejected rather than materialized:
# no real width expression needs a megabit integer, and a single adversarial
# `1 << (1 << 60)` must not stall (or OOM) the checker.
FOLD_BIT_LIMIT = 1 << 20


def _clog2(n: int) -> int:
    if n <= 0:
        raise EvalError(f"clog2 of non-positive value {n}")
    return (n - 1).bit_length()


_FUNCS = {
    "$clog2": lambda a: _clog2(a[0]),
    "clog2": lambda a: _clog2(a[0]),
    "log2ceil": lambda a: _clog2(a[0]),
    "maximum": lambda a: max(a),
    "minimum": lambda a: min(a),
    "max": lambda a: max(a),
    "min": lambda a: min(a),
    "abs": lambda a: abs(a[0]),
}


def _as_int(value: int | str | bool) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, str):
        # VHDL boolean-ish string generics.
        lowered = value.lower()
        if lowered == "true":
            return 1
        if lowered == "false":
            return 0
        raise EvalError(f"string {value!r} used in integer context")
    return int(value)


def evaluate(expr: Expr, env: Mapping[str, int | str | bool] | None = None) -> int:
    """Evaluate ``expr`` to an integer under parameter environment ``env``.

    Name lookup is case-insensitive for convenience across dialects (VHDL
    identifiers are case-insensitive; Verilog sources in practice reference
    parameters with consistent casing).
    """
    env = env or {}
    folded = {k.lower(): v for k, v in env.items()}

    def ev(node: Expr) -> int:
        if isinstance(node, Num):
            return node.value
        if isinstance(node, StrLit):
            return _as_int(node.value)
        if isinstance(node, Name):
            key = node.ident.lower()
            if key not in folded:
                raise EvalError(
                    f"unbound name {node.ident!r} in constant expression "
                    f"{expr.render()!r}"
                )
            return _as_int(folded[key])
        if isinstance(node, UnOp):
            v = ev(node.operand)
            if node.op == "-":
                return -v
            if node.op == "+":
                return v
            if node.op in ("not", "!"):
                return int(v == 0)
            if node.op == "~":
                return ~v
            raise EvalError(f"unknown unary operator {node.op!r}")
        if isinstance(node, BinOp):
            lv, rv = ev(node.left), ev(node.right)
            op = node.op
            if op == "+":
                return lv + rv
            if op == "-":
                return lv - rv
            if op == "*":
                return lv * rv
            if op == "/":
                if rv == 0:
                    raise EvalError("division by zero in constant expression")
                return int(lv / rv)  # truncate toward zero
            if op in ("%", "mod"):
                if rv == 0:
                    raise EvalError("modulo by zero in constant expression")
                return lv % rv
            if op == "rem":
                if rv == 0:
                    raise EvalError("rem by zero in constant expression")
                return int(lv - int(lv / rv) * rv)
            if op == "**":
                if rv < 0:
                    raise EvalError("negative exponent in constant expression")
                if rv * max(1, abs(lv).bit_length()) > FOLD_BIT_LIMIT:
                    raise EvalError(
                        "constant power exceeds the folding bit limit"
                    )
                return lv**rv
            if op == "<<":
                if rv > 0 and rv + abs(lv).bit_length() > FOLD_BIT_LIMIT:
                    raise EvalError(
                        "constant shift exceeds the folding bit limit"
                    )
                return lv << rv
            if op == ">>":
                return lv >> rv
            if op in ("and", "&&"):
                return int(bool(lv) and bool(rv))
            if op in ("or", "||"):
                return int(bool(lv) or bool(rv))
            if op == "&":
                return lv & rv
            if op == "|":
                return lv | rv
            if op == "^":
                return lv ^ rv
            if op in ("=", "=="):
                return int(lv == rv)
            if op in ("/=", "!="):
                return int(lv != rv)
            if op == "<":
                return int(lv < rv)
            if op == "<=":
                return int(lv <= rv)
            if op == ">":
                return int(lv > rv)
            if op == ">=":
                return int(lv >= rv)
            raise EvalError(f"unknown binary operator {op!r}")
        if isinstance(node, Cond):
            return ev(node.then) if ev(node.cond) else ev(node.other)
        if isinstance(node, Call):
            fn = _FUNCS.get(node.func.lower())
            if fn is None:
                raise EvalError(f"uninterpretable function {node.func!r}")
            return fn([ev(a) for a in node.args])
        raise EvalError(f"unknown expression node {type(node).__name__}")

    return ev(expr)


def free_names(expr: Expr) -> set[str]:
    """All parameter names referenced by ``expr`` (original casing)."""
    names: set[str] = set()

    def walk(node: Expr) -> None:
        if isinstance(node, Name):
            names.add(node.ident)
        elif isinstance(node, UnOp):
            walk(node.operand)
        elif isinstance(node, BinOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Cond):
            walk(node.cond)
            walk(node.then)
            walk(node.other)
        elif isinstance(node, Call):
            for a in node.args:
                walk(a)

    walk(expr)
    return names
